"""CI degradation smoke: resilience must pay, and never corrupt.

Replays the fixed-seed reference overload mix against a cluster pool
with one sick cluster (every attempt on it bit-flips; see
``cluster_fault_scale``) and fails (exit 1) unless all three hold:

1. **Quarantine + priority shedding strictly beats naive FIFO.**  The
   same seeded chaos is served twice: once with the policy-free FIFO
   baseline (retries stay on the sick cluster, batches burn their
   re-dispatch budget and fail), once with the degradation policy on
   (faults re-route, the breaker quarantines the sick cluster).  The
   degraded run must deliver strictly higher goodput — otherwise the
   whole subsystem is dead weight.

2. **Zero silent corruptions, every loss typed.**  Both runs go through
   :func:`repro.serve.chaos_serve`, which recomputes every completed
   response independently and checks every non-completed record carries
   a typed error.

3. **Deterministic under the seed.**  Each chaos run is replayed and the
   two latency tables compared bit-for-bit.

All simulated time, fixed seed: a failure here is a regression, not
noise.

Usage::

    PYTHONPATH=src python benchmarks/degrade_smoke.py [seed]
"""

from __future__ import annotations

import dataclasses
import sys

from repro.faults import FaultPlan
from repro.serve import DegradePolicy, ServeConfig, chaos_serve, make_requests

SEED = 42
OVERLOAD_RPS = 120_000.0
N_REQUESTS = 150
QUEUE_CAP = 256
#: cluster 0 is sick: full fault rates there, healthy elsewhere
SICK_FIRST = (1.0, 0.0, 0.0, 0.0)


def main(argv: list[str]) -> int:
    seed = int(argv[1]) if len(argv) > 1 else SEED
    failures = []

    naive = ServeConfig(
        policy="fifo", queue_cap=QUEUE_CAP,
        faults=FaultPlan(seed=7, bitflip_rate=1.0, max_kernel_retries=0),
        cluster_fault_scale=SICK_FIRST,
        max_redispatch=1,
    )
    degraded = dataclasses.replace(naive, degrade=DegradePolicy())

    results = {}
    for name, config in (("naive", naive), ("degraded", degraded)):
        requests = make_requests(
            "overload", rate_rps=OVERLOAD_RPS, n_requests=N_REQUESTS,
            seed=seed,
        )
        chaos = chaos_serve(requests, config)
        results[name] = chaos
        rep = chaos.report
        print(
            f"{name:9s}: goodput={rep.goodput_rps:.0f} rps  "
            f"completed={rep.completed} failed={rep.failed} "
            f"shed={rep.shed}  silent={len(chaos.silent)} "
            f"untyped={len(chaos.untyped)} "
            f"deterministic={chaos.deterministic}"
        )
        if chaos.silent:
            failures.append(f"{name}: silent corruptions {chaos.silent}")
        if chaos.untyped:
            failures.append(f"{name}: untyped losses {chaos.untyped}")
        if chaos.deterministic is not True:
            failures.append(f"{name}: chaos run is not deterministic")

    d = results["degraded"].report.degrade
    print(
        f"degraded run health: {d.faults} faulted attempt(s), "
        f"{d.quarantines} quarantine(s), {d.probes} probe(s)"
    )
    if d.quarantines < 1:
        failures.append("the sick cluster was never quarantined")

    naive_goodput = results["naive"].report.goodput_rps
    degraded_goodput = results["degraded"].report.goodput_rps
    if not degraded_goodput > naive_goodput:
        failures.append(
            f"quarantine + priority shedding must strictly beat naive "
            f"FIFO under chaos, got {degraded_goodput:.0f} vs "
            f"{naive_goodput:.0f} rps"
        )

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print(
        f"OK: degraded goodput {degraded_goodput:.0f} rps > naive "
        f"{naive_goodput:.0f} rps; contract clean on both runs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
