"""Before/after instrumentation for the adaptive-plan-search PR.

Writes ``BENCH_PR7.json`` at the repo root with four measurements, all
host wall-clock on hermetic temp-dir caches:

1. **Pruned vs exhaustive search** on the reference shapes: wall time,
   scored fraction, and the bit-identity check (pruning must change the
   cost of the search, never its answer).
2. **Cross-shape transfer**: a cold search populates the plan database,
   then a tolerance-gated neighbor search short-circuits from it — the
   speedup is the cold/warm ratio.
3. **Parallel amortization** (the BENCH_PR2 regression fix): serial vs
   ``jobs=2`` wall on the BENCH_PR2 reference shape 2048x32x2048; the
   sub-threshold search must stay serial, so jobs=2 must be ~1.0x, not
   the 0.66x the one-shot pool spawn used to cost.
4. **Serve cold-start warmup**: the transformer mix's warmup wall under
   the PR-4 baseline (rule tuner, first-request M, cold caches) vs a
   search+stack-hints session, cold and then restarted warm (riding the
   persistent plan database and kernel cache).  Each serve session runs
   in a subprocess with its own ``$REPRO_KERNEL_CACHE`` so "cold" means
   cold.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr7.py [-o BENCH_PR7.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.autotune import autotune
from repro.core.plan_search import PlanDB
from repro.core.shapes import GemmShape
from repro.hw.config import default_machine
from repro.kernels.registry import KernelDiskCache, KernelRegistry
from repro.obs import make_record

REFERENCE_SHAPES = [
    GemmShape(2048, 32, 2048),
    GemmShape(4096, 64, 512),
    GemmShape(20480, 16, 20480),
]
PR2_SHAPE = GemmShape(2048, 32, 2048)
TRANSFER_TOL = 0.25

_SERVE_SNIPPET = """\
import json, sys, time
from repro.serve.loadgen import make_requests
from repro.serve.server import ServeConfig, serve

mode, hints, runs = sys.argv[1], sys.argv[2] == "hints", int(sys.argv[3])
reqs = make_requests("transformer", rate_rps=60000, n_requests=120, seed=0)
walls = []
for _ in range(runs):
    t0 = time.perf_counter()
    report = serve(reqs, ServeConfig(warmup_tune=mode, stack_hints=hints))
    walls.append({
        "warmup_s": report.warmup.wall_s,
        "total_s": time.perf_counter() - t0,
        "hinted": report.warmup.hinted,
        "transfer_hits": report.warmup.transfer_hits,
        "short_circuits": report.warmup.short_circuits,
    })
print(json.dumps(walls))
"""


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _record(shape: GemmShape, impl: str, strategy: str, seconds: float) -> dict:
    cluster = default_machine().cluster
    return make_record(
        shape=f"{shape.m}x{shape.n}x{shape.k}",
        impl=impl,
        strategy=strategy,
        cores=cluster.n_cores,
        seconds=seconds,
        gflops=2.0 * shape.m * shape.n * shape.k / seconds / 1e9,
        efficiency=0.0,          # host wall-clock, not modeled DSP time
        bound="wallclock",
    )


def bench_pruning(cluster, registry) -> tuple[dict, list[dict]]:
    shapes = []
    records = []
    print("pruned vs exhaustive (host wall-clock):")
    for shape in REFERENCE_SHAPES:
        t0 = time.perf_counter()
        pruned = autotune(shape, cluster, registry, jobs=1,
                          mode="pruned", plan_db=False)
        pruned_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = autotune(shape, cluster, registry, jobs=1,
                        mode="exhaustive", plan_db=False)
        full_s = time.perf_counter() - t0
        label = f"{shape.m}x{shape.n}x{shape.k}"
        entry = {
            "shape": label,
            "exhaustive_s": full_s,
            "pruned_s": pruned_s,
            "speedup": full_s / pruned_s if pruned_s > 0 else float("inf"),
            "generated": pruned.stats.generated,
            "scored": pruned.stats.scored,
            "scored_fraction": pruned.stats.scored / pruned.stats.generated,
            "identical_plan": pruned.best == full.best,
            "best": pruned.best.label,
        }
        shapes.append(entry)
        records.append(_record(shape, "autotune/exhaustive",
                               full.best.strategy, full_s))
        records.append(_record(shape, "autotune/pruned",
                               pruned.best.strategy, pruned_s))
        print(f"  {label:>16s}: exhaustive {full_s * 1e3:7.1f} ms -> "
              f"pruned {pruned_s * 1e3:7.1f} ms "
              f"({entry['speedup']:.1f}x, scored "
              f"{entry['scored']}/{entry['generated']}, "
              f"{'identical' if entry['identical_plan'] else 'DIFFERS'})")
    return {
        "shapes": shapes,
        "all_identical": all(e["identical_plan"] for e in shapes),
        "max_scored_fraction": max(e["scored_fraction"] for e in shapes),
    }, records


def bench_transfer(cluster, registry, tmp: Path) -> tuple[dict, list[dict]]:
    db = PlanDB(tmp / "plans")
    donor = GemmShape(2048, 32, 2048)
    t0 = time.perf_counter()
    autotune(donor, cluster, registry, jobs=1, plan_db=db)
    cold_s = time.perf_counter() - t0
    near = GemmShape(2304, 32, 2048)
    t0 = time.perf_counter()
    warm = autotune(near, cluster, registry, jobs=1, plan_db=db,
                    transfer_tol=TRANSFER_TOL)
    warm_s = time.perf_counter() - t0
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print("cross-shape transfer:")
    print(f"  cold {cold_s * 1e3:7.1f} ms -> warm {warm_s * 1e3:7.1f} ms "
          f"({speedup:.1f}x, {warm.stats.transfer})")
    records = [
        _record(donor, "autotune/cold", "m", cold_s),
        _record(near, "autotune/transfer-warm", warm.best.strategy, warm_s),
    ]
    return {
        "donor": f"{donor.m}x{donor.n}x{donor.k}",
        "neighbor": f"{near.m}x{near.n}x{near.k}",
        "transfer_tol": TRANSFER_TOL,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "transfer": warm.stats.transfer,
    }, records


def bench_parallel(cluster, registry) -> tuple[dict, list[dict]]:
    autotune(PR2_SHAPE, cluster, registry, jobs=1, plan_db=False)

    def _best(jobs: int):
        walls, pooled = [], False
        for _ in range(3):
            t0 = time.perf_counter()
            result = autotune(PR2_SHAPE, cluster, registry, jobs=jobs,
                              plan_db=False)
            walls.append(time.perf_counter() - t0)
            pooled = result.stats.pooled
        return min(walls), pooled

    serial_s, _ = _best(1)
    parallel_s, pooled = _best(2)
    ratio = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print("parallel amortization (BENCH_PR2 reference shape):")
    print(f"  serial {serial_s * 1e3:7.1f} ms, jobs=2 "
          f"{parallel_s * 1e3:7.1f} ms ({ratio:.2f}x, "
          f"{'pooled' if pooled else 'amortized serial'})")
    records = [
        _record(PR2_SHAPE, "autotune/serial", "m", serial_s),
        _record(PR2_SHAPE, "autotune/jobs2", "m", parallel_s),
    ]
    return {
        "shape": f"{PR2_SHAPE.m}x{PR2_SHAPE.n}x{PR2_SHAPE.k}",
        "serial_s": serial_s,
        "jobs2_s": parallel_s,
        "jobs2_over_serial": ratio,
        "pooled": pooled,
    }, records


def _serve_session(cache: Path, mode: str, hints: bool, runs: int) -> list[dict]:
    env = dict(os.environ, REPRO_KERNEL_CACHE=str(cache),
               PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"))
    out = subprocess.run(
        [sys.executable, "-c", _SERVE_SNIPPET, mode,
         "hints" if hints else "nohints", str(runs)],
        capture_output=True, text=True, check=True, env=env,
    )
    return json.loads(out.stdout)


def bench_serve_warmup() -> dict:
    print("serve cold-start warmup (transformer mix, subprocess sessions):")
    with tempfile.TemporaryDirectory(prefix="repro-pr7-serve-") as tmp:
        baseline = _serve_session(Path(tmp) / "a", "rule", False, 1)[0]
    with tempfile.TemporaryDirectory(prefix="repro-pr7-serve-") as tmp:
        cold, warm = _serve_session(Path(tmp) / "b", "search", True, 2)
    print(f"  PR4 baseline (rule, cold)     {baseline['warmup_s'] * 1e3:7.1f} ms")
    print(f"  search+hints (cold session)   {cold['warmup_s'] * 1e3:7.1f} ms "
          f"(short-circuits {cold['short_circuits']})")
    print(f"  search+hints (warm restart)   {warm['warmup_s'] * 1e3:7.1f} ms "
          f"(short-circuits {warm['short_circuits']})")
    return {
        "mix": "transformer",
        "baseline_rule_cold": baseline,
        "search_hints_cold": cold,
        "search_hints_warm": warm,
        "warm_vs_baseline": baseline["warmup_s"] / warm["warmup_s"]
        if warm["warmup_s"] > 0 else float("inf"),
        "warm_drops_vs_pr4_baseline":
            warm["warmup_s"] < baseline["warmup_s"],
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR7.json"),
    )
    args = parser.parse_args(argv[1:])

    cluster = default_machine().cluster
    with tempfile.TemporaryDirectory(prefix="repro-pr7-") as tmp:
        tmp_path = Path(tmp)
        registry = KernelRegistry(
            cluster.core, disk=KernelDiskCache(tmp_path / "kernels")
        )
        pruning, rec_p = bench_pruning(cluster, registry)
        transfer, rec_t = bench_transfer(cluster, registry, tmp_path)
        parallel, rec_j = bench_parallel(cluster, registry)
    serve_warmup = bench_serve_warmup()

    gates = {
        "pruned_identical_half_grid": (
            pruning["all_identical"]
            and pruning["max_scored_fraction"] <= 0.5
        ),
        "transfer_5x": transfer["speedup"] >= 5.0,
        "jobs2_not_slower": (
            not parallel["pooled"]
            and parallel["jobs2_s"] <= parallel["serial_s"] * 1.25
        ),
        "serve_warm_drops": serve_warmup["warm_drops_vs_pr4_baseline"],
    }
    payload = {
        "commit": _git_head(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "gates": gates,
        "pruning": pruning,
        "transfer": transfer,
        "parallel": parallel,
        "serve_warmup": serve_warmup,
        "records": rec_p + rec_t + rec_j,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"gates: " + "  ".join(
        f"{name}={'ok' if ok else 'FAIL'}" for name, ok in gates.items()
    ))
    print(f"wrote {args.output}")
    return 0 if all(gates.values()) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
