"""Fig. 3: micro-kernel efficiency sweeps (six panels)."""

from repro.experiments import fig3

from conftest import assert_claims, report


def test_fig3_micro_kernels(benchmark):
    results = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
