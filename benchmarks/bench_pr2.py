"""Before/after instrumentation for the fast-execution-engine PR.

Measures the two reference workloads the PR targets and writes
``BENCH_PR2.json`` at the repo root:

1. **Functional GEMM** (512x32x512, ISA-fidelity execution): wall-clock of
   ``ftimm_gemm(..., kernel_exec="interp")`` — the pre-PR reference
   interpreter — against ``kernel_exec="compiled"``, the trace-compiled
   path this PR adds.  Results are checked bit-identical.

2. **Autotune plan search** (2048x32x2048): wall-clock of the pre-PR
   configuration — serial scoring, no persistent kernel cache — against
   the new engine: ``jobs>1`` worker fan-out with a warm on-disk kernel
   cache.  Results are checked identical (same best plan, same rule plan).

Each measurement is also recorded in the PR-1 run-log schema
(:mod:`repro.obs.runlog`), so ``read_records``/``diff_records`` work on
the file's ``records`` list, and the current commit is stamped in.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr2.py [-o BENCH_PR2.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.autotune import autotune
from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmShape
from repro.hw.config import default_machine
from repro.kernels.registry import KernelDiskCache, KernelRegistry
from repro.obs import make_record
from repro.workloads.generators import random_operands

GEMM_SHAPE = GemmShape(512, 32, 1024)
TUNE_SHAPE = GemmShape(2048, 32, 2048)
REQUIRED_SPEEDUP = 3.0


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _record(shape: GemmShape, impl: str, strategy: str, seconds: float) -> dict:
    cluster = default_machine().cluster
    return make_record(
        shape=f"{shape.m}x{shape.n}x{shape.k}",
        impl=impl,
        strategy=strategy,
        cores=cluster.n_cores,
        seconds=seconds,
        gflops=2.0 * shape.m * shape.n * shape.k / seconds / 1e9,
        efficiency=0.0,          # host wall-clock, not modeled DSP time
        bound="wallclock",
    )


def bench_gemm() -> tuple[dict, list[dict]]:
    a, b, c0 = random_operands(GEMM_SHAPE, seed=0)
    results = {}
    records = []
    outputs = {}
    for mode in ("interp", "compiled"):
        c = c0.copy()
        t0 = time.perf_counter()
        ftimm_gemm(
            GEMM_SHAPE.m, GEMM_SHAPE.n, GEMM_SHAPE.k,
            a=a, b=b, c=c, timing="none", kernel_exec=mode,
        )
        seconds = time.perf_counter() - t0
        results[mode] = seconds
        outputs[mode] = c
        records.append(_record(GEMM_SHAPE, f"ftimm/{mode}", "m", seconds))
        print(f"  gemm {mode:8s} {seconds:8.3f} s")
    if not np.array_equal(outputs["interp"], outputs["compiled"]):
        raise SystemExit("FAIL: compiled GEMM diverges from the interpreter")
    results["speedup"] = results["interp"] / results["compiled"]
    return results, records


def bench_autotune(jobs: int) -> tuple[dict, list[dict]]:
    cluster = default_machine().cluster
    results = {}
    records = []

    # pre-PR configuration: serial scoring, no kernel cache anywhere
    t0 = time.perf_counter()
    before = autotune(
        TUNE_SHAPE, cluster,
        KernelRegistry(cluster.core, disk=False), jobs=1,
    )
    results["serial_nocache_s"] = time.perf_counter() - t0
    records.append(
        _record(TUNE_SHAPE, "autotune/serial-nocache", before.best.strategy,
                results["serial_nocache_s"])
    )
    print(f"  autotune serial/no-cache {results['serial_nocache_s']:8.3f} s")

    # new engine: parallel scoring over a warm persistent kernel cache
    with tempfile.TemporaryDirectory(prefix="repro-kcache-") as tmp:
        disk = KernelDiskCache(Path(tmp))
        t0 = time.perf_counter()
        autotune(TUNE_SHAPE, cluster, KernelRegistry(cluster.core, disk=disk),
                 jobs=1)
        results["cache_warmup_s"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        after = autotune(TUNE_SHAPE, cluster,
                         KernelRegistry(cluster.core, disk=disk), jobs=jobs)
        results["parallel_warm_s"] = time.perf_counter() - t0
    records.append(
        _record(TUNE_SHAPE, f"autotune/jobs{jobs}-warm", after.best.strategy,
                results["parallel_warm_s"])
    )
    print(f"  autotune jobs={jobs}/warm   {results['parallel_warm_s']:8.3f} s")

    if (before.best.label, before.rule.label) != (
        after.best.label, after.rule.label
    ):
        raise SystemExit("FAIL: parallel autotune picked a different plan")
    results["speedup"] = (
        results["serial_nocache_s"] / results["parallel_warm_s"]
    )
    results["best"] = after.best.label
    results["n_candidates"] = after.n_candidates
    results["jobs"] = jobs
    return results, records


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR2.json"),
    )
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv[1:])

    print("reference workloads (host wall-clock):")
    gemm, gemm_records = bench_gemm()
    tune, tune_records = bench_autotune(args.jobs)

    total_before = gemm["interp"] + tune["serial_nocache_s"]
    total_after = gemm["compiled"] + tune["parallel_warm_s"]
    overall = total_before / total_after
    payload = {
        "commit": _git_head(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "required_speedup": REQUIRED_SPEEDUP,
        "overall_speedup": overall,
        "functional_gemm": {
            "shape": f"{GEMM_SHAPE.m}x{GEMM_SHAPE.n}x{GEMM_SHAPE.k}",
            **gemm,
        },
        "autotune": {
            "shape": f"{TUNE_SHAPE.m}x{TUNE_SHAPE.n}x{TUNE_SHAPE.k}",
            **tune,
        },
        "records": gemm_records + tune_records,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"overall: {total_before:.3f} s -> {total_after:.3f} s "
          f"({overall:.1f}x); wrote {args.output}")
    if overall < REQUIRED_SPEEDUP:
        print(f"FAIL: overall speedup below {REQUIRED_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
