"""CI placement smoke: replicated-B placement earns its keep, safely.

Drives the transformer overload mix (hot shared-B decode-projection
buckets) through the serve engine and fails (exit 1) unless all four
hold:

1. **Replication wins at saturation.**  ``replicate_b="adaptive"`` must
   *strictly* beat ``least_loaded`` without replication on goodput at a
   saturating offered load — the tentpole claim.  Replication pays DDR
   staging once per replica to let the hot bucket's batches skip their
   per-dispatch B staging and spread across clusters.

2. **Off is bit-identical.**  ``replicate_b="off"`` must produce records
   and batch rows bit-identical to the default config, whatever the
   placement knobs say — the placement layer must be invisible when
   disabled.

3. **Gateway parity with replication on.**  The live asyncio gateway
   must stay bit-identical to the pre-drawn replay with ``adaptive``
   replication enabled: placement decisions happen at batch close,
   inside engine event processing, which both paths drive in the same
   ``offer()`` order.

4. **Zero corruption under chaos.**  One sick cluster under aggressive
   bit-flips, degrade *and* replication enabled: every loss typed, no
   corrupted result completes unrepaired, conservation holds, and
   replica residency never exceeds the budget.

All runs are deterministic (simulated time, fixed seed), so a failure
here is a regression, not noise.

Usage::

    PYTHONPATH=src python benchmarks/placement_smoke.py [seed]
"""

from __future__ import annotations

import sys

from repro.faults import FaultPlan
from repro.hw.config import default_machine
from repro.serve import (
    DegradePolicy,
    ServeConfig,
    gateway_replay,
    make_requests,
    serve,
)

SEED = 42
#: saturating load: well past the knee of the overload-mix curve, where
#: per-dispatch B staging of the hot decode-projection bucket serializes
SATURATED_RPS = 300_000.0
N_REQUESTS = 200
QUEUE_CAP = 256


def _requests(seed: int, rate: float = SATURATED_RPS):
    return make_requests(
        "overload", rate_rps=rate, n_requests=N_REQUESTS, seed=seed
    )


def main(argv: list[str]) -> int:
    seed = int(argv[1]) if len(argv) > 1 else SEED
    failures = []

    # -- claim 1: adaptive strictly beats least_loaded-without ---------
    baseline = serve(_requests(seed), ServeConfig(
        policy="least_loaded", queue_cap=QUEUE_CAP,
    ))
    adaptive = serve(_requests(seed), ServeConfig(
        policy="least_loaded", queue_cap=QUEUE_CAP,
        replicate_b="adaptive",
    ))
    placement = adaptive.placement
    print(
        f"saturation @ {SATURATED_RPS:.0f} rps (n={N_REQUESTS}, "
        f"seed={seed}): least_loaded goodput={baseline.goodput_rps:.0f} "
        f"rps, +adaptive replication={adaptive.goodput_rps:.0f} rps "
        f"({placement.hits} staging skips, "
        f"{placement.promotions} promotion(s))"
    )
    if not adaptive.goodput_rps > baseline.goodput_rps:
        failures.append(
            "adaptive replication must strictly beat least_loaded "
            f"without replication at saturation: {adaptive.goodput_rps:.0f}"
            f" vs {baseline.goodput_rps:.0f} rps"
        )
    if placement.hits == 0:
        failures.append(
            "placement leg is vacuous: no batch ever ran on a replica "
            "holder"
        )

    # -- claim 2: off is bit-identical, knobs inert --------------------
    off = serve(_requests(seed), ServeConfig(
        policy="least_loaded", queue_cap=QUEUE_CAP,
        replicate_b="off", replica_budget_bytes=1, max_replicas=9,
        promote_after=7,
    ))
    off_identical = (
        off.records == baseline.records
        and off.batches == baseline.batches
        and off.makespan_s == baseline.makespan_s
        and off.placement is None
    )
    print(
        "replicate_b=off vs default config: "
        f"bit-identical={'yes' if off_identical else 'NO'}"
    )
    if not off_identical:
        failures.append(
            "replicate_b='off' must be record-bit-identical to the "
            "pre-placement serve, placement knobs inert"
        )

    # -- claim 3: gateway bit-identity with replication on -------------
    gw_config = ServeConfig(
        policy="least_loaded", queue_cap=QUEUE_CAP, replicate_b="adaptive",
    )
    live = gateway_replay(_requests(seed), gw_config)
    gw_identical = (
        live.records == adaptive.records
        and live.batches == adaptive.batches
        and live.placement.events == adaptive.placement.events
    )
    print(
        "gateway vs pre-drawn replay with adaptive replication: "
        f"bit-identical={'yes' if gw_identical else 'NO'}"
    )
    if not gw_identical:
        failures.append(
            "gateway records and placement timeline must be bit-identical"
            " to the pre-drawn replay with replication on"
        )

    # -- claim 4: zero corruption under one-sick-cluster chaos ---------
    n_clusters = default_machine().n_clusters
    chaotic = serve(_requests(seed), ServeConfig(
        policy="least_loaded", queue_cap=QUEUE_CAP,
        replicate_b="adaptive",
        degrade=DegradePolicy(),
        faults=FaultPlan(seed=seed, bitflip_rate=1.0, max_kernel_retries=0),
        cluster_fault_scale=(1.0,) + (0.0,) * (n_clusters - 1),
    ))
    counts = {r.status for r in chaotic.records}
    accounted = chaotic.completed + chaotic.shed + chaotic.failed
    corrupted = [
        r for r in chaotic.records
        if r.status == "completed" and not r.bit_exact
    ]
    over_budget = [
        peak for peak in chaotic.placement.peak_bytes
        if peak > chaotic.config.replica_budget_bytes
    ]
    print(
        f"chaos with replication: completed={chaotic.completed} "
        f"shed={chaotic.shed} failed={chaotic.failed} "
        f"repaired={chaotic.verify_repaired} "
        f"restages={chaotic.placement.restages} outcomes={sorted(counts)}"
    )
    if accounted != N_REQUESTS:
        failures.append(
            f"conservation violated under chaos: completed + shed + "
            f"failed = {accounted}, offered {N_REQUESTS}"
        )
    if not counts <= {"completed", "shed", "failed"}:
        failures.append(
            f"untyped outcome under chaos: {sorted(counts)} — every loss "
            "must be a typed shed or failure"
        )
    if corrupted:
        failures.append(
            f"{len(corrupted)} corrupted result(s) completed unrepaired "
            "under chaos"
        )
    if over_budget:
        failures.append(
            "replica residency exceeded the per-cluster budget under "
            f"chaos: {over_budget}"
        )
    if chaotic.redispatches == 0 and chaotic.failed == 0:
        failures.append(
            "chaos leg is vacuous: the fault plan injected no faulted "
            "attempts (no redispatches, no failures)"
        )

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print(
        "OK: adaptive replication strictly beats the non-replicated "
        "baseline at saturation, off-mode is bit-identical, the gateway "
        "replays to the bit with replication on, zero corruption under "
        "chaos"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
