"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Dynamic adjusting on/off — what Section IV-C's block adaptation buys.
2. Schedule-derived kernel timing vs the naive resource-count bound.
3. DES vs analytic timing agreement (the model-reduction ablation).
4. B-in-GSM caching vs streaming B from DDR (Alg. 4's design choice).
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.blocking import MPlan, adjust_m_plan
from repro.core.ftimm import ftimm_gemm
from repro.core.parallel_m import build_parallel_m
from repro.core.shapes import GemmShape
from repro.executor.analytic import analytic_parallel_m
from repro.executor.timed import run_timed
from repro.hw.config import default_machine
from repro.isa.scheduler import resource_mii
from repro.kernels.registry import registry_for

CLUSTER = default_machine().cluster
REGISTRY = registry_for(CLUSTER.core)


def test_ablation_dynamic_adjusting(benchmark):
    """Three rungs of the ftIMM ladder, per shape:

    * full ftIMM (adjusted blocks + generated kernels),
    * fixed initial blocks (generated kernels still adapt to tiles),
    * padded kernels (adjusted blocks but TGEMM's fixed 6x96 kernel),
      measured on ONE core — with eight cores these shapes are DDR-bound
      and compute waste hides behind the memory wall.

    Finding recorded in EXPERIMENTS.md: kernel auto-generation carries
    the compute-side advantage (large on narrow N, single core);
    block-size adjusting contributes a few percent on top (its bigger
    role is enabling the right parallelization granularity).
    """

    shapes = [(65536, 32, 32), (65536, 96, 96), (20480, 16, 20480), (2**20, 8, 8)]
    one_core = CLUSTER.with_cores(1)

    def run():
        rows = []
        for m, n, k in shapes:
            shape = GemmShape(m, n, k)
            tuned = ftimm_gemm(m, n, k, timing="analytic", adjust=True, cores=1)
            fixed = ftimm_gemm(m, n, k, timing="analytic", adjust=False, cores=1)
            plan6 = adjust_m_plan(MPlan(m_s=6), shape, one_core)
            padded = analytic_parallel_m(
                shape, one_core, plan6, REGISTRY, kernel_style="tgemm"
            )
            rows.append(
                [f"{m}x{n}x{k}", tuned.gflops, fixed.gflops, padded.gflops,
                 tuned.gflops / padded.gflops]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["shape (1 core)", "full ftIMM", "fixed blocks", "padded kernel",
         "kernel gain"],
        rows,
    ))
    assert all(r[1] >= 0.95 * r[2] for r in rows), "adjusting must not hurt"
    assert all(r[4] >= 1.0 for r in rows), "generated kernels never lose"
    # deep-K narrow-N is compute-bound: the padding waste is fully exposed
    deep_narrow = [r for r in rows if "20480x16" in r[0]]
    assert all(r[4] > 1.3 for r in deep_narrow), (
        "generated kernels must clearly beat padded kernels when compute-bound"
    )


def test_ablation_latency_hiding_tiling(benchmark):
    """The generator's k_u > 1 latency-hiding rule vs naive k_u = 1.

    For short-row kernels (m_s < t_fma) a single accumulator copy leaves
    the FMAC recurrence exposed: the scheduler is forced to an II above
    the resource bound.  The generator's extra accumulator copies recover
    the loss — the exact motivation of Section IV-A2.
    """
    from repro.kernels.generator import generate_kernel
    from repro.kernels.spec import KernelSpec

    def run():
        rows = []
        for m_s in (1, 2, 3):
            auto = REGISTRY.ftimm(m_s, 96, 512)
            naive = generate_kernel(
                KernelSpec(m_s, 96, 512), CLUSTER.core,
                force_m_u=m_s, force_k_u=1, allow_block_adjust=False,
            )
            rows.append(
                [f"{m_s}x96x512", naive.ii, auto.blocks[0].ii,
                 naive.efficiency, auto.efficiency,
                 auto.efficiency / naive.efficiency]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["kernel", "naive II", "auto II", "naive eff", "auto eff", "gain"],
        rows,
    ))
    assert all(row[5] > 1.15 for row in rows), (
        "k_u latency hiding must pay off for short rows"
    )
    # the fully saturated case hits the resource bound exactly either way
    sat = REGISTRY.ftimm(8, 96, 512)
    assert sat.ii == resource_mii(
        sat.program.blocks[0].body, sat.body_schedules[0].units
    )


def test_ablation_des_vs_analytic(benchmark):
    """The closed-form model vs full event-driven simulation."""

    shapes = [(20000, 32, 32), (8192, 96, 512), (20480, 32, 2048)]

    def run():
        rows = []
        for m, n, k in shapes:
            shape = GemmShape(m, n, k)
            plan = adjust_m_plan(MPlan(), shape, CLUSTER)
            des = run_timed(
                build_parallel_m(
                    shape, CLUSTER, plan=plan, adjust=False, registry=REGISTRY
                )
            )
            ana = analytic_parallel_m(shape, CLUSTER, plan, REGISTRY)
            rows.append(
                [str(shape), des.seconds * 1e6, ana.seconds * 1e6,
                 ana.seconds / des.seconds]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["shape", "DES (us)", "analytic (us)", "ratio"], rows))
    for row in rows:
        assert row[3] == pytest.approx(1.0, abs=0.20)


def test_ablation_gsm_caching(benchmark):
    """Alg. 4 caches the shared B operand in GSM; stream-from-DDR variant."""

    shapes = [(65536, 96, 96), (20480, 96, 20480), (2**20, 32, 512)]

    def run():
        rows = []
        for m, n, k in shapes:
            shape = GemmShape(m, n, k)
            plan = adjust_m_plan(MPlan(), shape, CLUSTER)
            with_gsm = analytic_parallel_m(shape, CLUSTER, plan, REGISTRY)
            without = analytic_parallel_m(
                shape, CLUSTER, plan, REGISTRY, use_gsm=False
            )
            rows.append(
                [str(shape), with_gsm.gflops, without.gflops,
                 with_gsm.gflops / without.gflops]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["shape", "B in GSM", "B from DDR", "gain"], rows))
    assert all(row[3] >= 0.99 for row in rows), "GSM caching must not hurt"
    assert any(row[3] > 1.02 for row in rows), "and must help somewhere"


def test_ablation_pingpong_double_buffering(benchmark):
    """The paper's ping-pong scheme vs single buffering.

    With one slot per tile, each DMA serializes against the compute that
    consumes its buffer; double buffering hides whichever of DMA/compute
    is shorter.  The gain is largest when the two are comparable.
    """
    from repro.core.parallel_k import build_parallel_k

    shapes_m = [(2000, 32, 512), (8192, 96, 512)]
    shapes_k = [(32, 32, 32768)]

    def run():
        rows = []
        for m, n, k in shapes_m:
            shape = GemmShape(m, n, k)
            on = run_timed(build_parallel_m(shape, CLUSTER, registry=REGISTRY))
            off = run_timed(
                build_parallel_m(shape, CLUSTER, registry=REGISTRY, pingpong=False)
            )
            rows.append([f"m:{shape}", on.seconds * 1e6, off.seconds * 1e6,
                         off.seconds / on.seconds])
        for m, n, k in shapes_k:
            shape = GemmShape(m, n, k)
            on = run_timed(build_parallel_k(shape, CLUSTER, registry=REGISTRY))
            off = run_timed(
                build_parallel_k(shape, CLUSTER, registry=REGISTRY, pingpong=False)
            )
            rows.append([f"k:{shape}", on.seconds * 1e6, off.seconds * 1e6,
                         off.seconds / on.seconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["driver:shape", "ping-pong (us)", "single-buffer (us)", "overlap gain"],
        rows,
    ))
    assert all(row[3] >= 1.0 for row in rows), "overlap can never hurt"
    assert max(row[3] for row in rows) > 1.15, "and must clearly help somewhere"
