"""CI chaos smoke: no faulted GEMM may return silently wrong bits.

Runs the fixed-seed chaos sweep — bit-flip plans at rates up to 1e-2,
mid-run core losses, and a DES probe with DMA failures plus a DDR
brown-out — over both implementations, and **fails (exit 1) if any run
returned a result that differs from its fault-free baseline without
raising a typed error**.  Recovered faults and loud typed failures are
both acceptable; silence is the only sin.

A second check asserts the sweep actually exercised the machinery: at
least one fault must have been injected and recovered, so a regression
that quietly disables injection (rates ignored, guards bypassed) also
fails the gate.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [seeds]
"""

from __future__ import annotations

import sys

from repro.faults import chaos_sweep


def main(argv: list[str]) -> int:
    seeds = int(argv[1]) if len(argv) > 1 else 3
    summary = chaos_sweep(
        seeds=range(seeds),
        rates=(1e-3, 1e-2),
        impls=("ftimm", "tgemm"),
        core_failures=True,
        timed_probe=True,
    )
    print(summary.describe())
    if not summary.ok:
        print("FAIL: silent corruption escaped the recovery guards")
        return 1
    recovered = sum(
        o.report.recovered_faults for o in summary.outcomes if o.report
    )
    injected = sum(
        o.report.injected_bitflips + o.report.core_failures
        for o in summary.outcomes
        if o.report
    )
    if injected == 0 or recovered == 0:
        print(
            f"FAIL: sweep injected {injected} faults and recovered "
            f"{recovered} — the injection machinery looks disabled"
        )
        return 1
    print(f"OK: {injected} faults injected, {recovered} recovered, 0 silent")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
