"""CI gateway smoke: the async front-end's determinism contract.

Drives the fixed-seed reference mix through the asyncio gateway
(``repro.serve.gateway``) and fails (exit 1) unless all three hold:

1. **Bit-identity.**  The seeded async driver must produce records
   bit-identical to the equivalent pre-drawn replay (``serve``) at the
   same offered load — same outcomes, timestamps, digests, batch rows
   and makespan.  This is the gateway's core contract: the virtual-clock
   bridge may never perturb simulated time.

2. **Goodput parity.**  Async goodput must land within 2% of the replay
   at the same offered load.  Bit-identity actually implies exact
   equality, so the tolerance only exists to keep the gate meaningful if
   the identity audit is ever relaxed; a parity miss with identical
   records is impossible.

3. **Zero corruption under chaos.**  With one sick cluster under
   aggressive bit-flips and degrade enabled, every loss must be typed
   (shed or failed, never silent), no corrupted result may complete
   unrepaired, and the conservation law offered = completed + shed +
   failed must hold.

All runs are deterministic (simulated time, fixed seed), so a failure
here is a regression, not noise.

Usage::

    PYTHONPATH=src python benchmarks/gateway_smoke.py [seed]
"""

from __future__ import annotations

import sys

from repro.faults import FaultPlan
from repro.hw.config import default_machine
from repro.serve import (
    DegradePolicy,
    ServeConfig,
    gateway_replay,
    make_requests,
    serve,
)

SEED = 42
OFFERED_RPS = 120_000.0
N_REQUESTS = 120
QUEUE_CAP = 64
GOODPUT_TOL = 0.02


def _requests(seed: int):
    return make_requests(
        "overload", rate_rps=OFFERED_RPS, n_requests=N_REQUESTS, seed=seed
    )


def main(argv: list[str]) -> int:
    seed = int(argv[1]) if len(argv) > 1 else SEED
    failures = []

    # -- claim 1 + 2: bit-identity and goodput parity vs replay --------
    config = ServeConfig(policy="edf", queue_cap=QUEUE_CAP)
    live = gateway_replay(_requests(seed), config)
    replay = serve(_requests(seed), config)
    identical = (
        live.records == replay.records
        and live.batches == replay.batches
        and live.makespan_s == replay.makespan_s
    )
    print(
        f"gateway vs replay @ {OFFERED_RPS:.0f} rps (n={N_REQUESTS}, "
        f"seed={seed}): live goodput={live.goodput_rps:.0f} rps, "
        f"replay goodput={replay.goodput_rps:.0f} rps, "
        f"bit-identical={'yes' if identical else 'NO'}"
    )
    if not identical:
        failures.append(
            "async gateway records must be bit-identical to the "
            "pre-drawn replay at the same offered load"
        )
    if replay.goodput_rps > 0:
        rel = abs(live.goodput_rps - replay.goodput_rps) / replay.goodput_rps
        if rel > GOODPUT_TOL:
            failures.append(
                f"async goodput must be within {GOODPUT_TOL:.0%} of the "
                f"replay, got {rel:.1%} off"
            )

    # -- claim 3: zero corruption under chaos --------------------------
    n_clusters = default_machine().n_clusters
    chaos_config = ServeConfig(
        policy="edf",
        queue_cap=QUEUE_CAP,
        degrade=DegradePolicy(),
        faults=FaultPlan(seed=seed, bitflip_rate=1.0, max_kernel_retries=0),
        cluster_fault_scale=(1.0,) + (0.0,) * (n_clusters - 1),
    )
    chaotic = gateway_replay(_requests(seed), chaos_config)
    counts = {r.status for r in chaotic.records}
    accounted = chaotic.completed + chaotic.shed + chaotic.failed
    corrupted = [
        r for r in chaotic.records
        if r.status == "completed" and not r.bit_exact
    ]
    print(
        f"gateway under chaos: completed={chaotic.completed} "
        f"shed={chaotic.shed} failed={chaotic.failed} "
        f"repaired={chaotic.verify_repaired} "
        f"outcomes={sorted(counts)}"
    )
    if accounted != N_REQUESTS:
        failures.append(
            f"conservation violated under chaos: completed + shed + "
            f"failed = {accounted}, offered {N_REQUESTS}"
        )
    if not counts <= {"completed", "shed", "failed"}:
        failures.append(
            f"untyped outcome under chaos: {sorted(counts)} — every loss "
            "must be a typed shed or failure"
        )
    if corrupted:
        failures.append(
            f"{len(corrupted)} corrupted result(s) completed unrepaired "
            "under chaos"
        )
    if chaotic.redispatches == 0 and chaotic.failed == 0:
        failures.append(
            "chaos leg is vacuous: the fault plan injected no faulted "
            "attempts (no redispatches, no failures)"
        )

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print(
        "OK: gateway is bit-identical to replay, goodput within "
        f"{GOODPUT_TOL:.0%}, zero corruption under chaos"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
