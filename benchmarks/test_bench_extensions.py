"""Benchmarks for the extension experiments (beyond the paper's scope):
FP64 kernels, multi-cluster scaling, and model-driven auto-tuning."""

from repro.experiments import (
    ext_autotune,
    ext_fp64,
    ext_hetero,
    ext_multicluster,
    ext_sensitivity,
    ext_workloads,
)

from conftest import assert_claims, report


def test_ext_fp64_kernels(benchmark):
    results = benchmark.pedantic(ext_fp64.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)


def test_ext_multicluster_scaling(benchmark):
    results = benchmark.pedantic(ext_multicluster.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)


def test_ext_autotune_search(benchmark):
    results = benchmark.pedantic(ext_autotune.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)


def test_ext_workloads(benchmark):
    results = benchmark.pedantic(ext_workloads.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)


def test_ext_sensitivity(benchmark):
    results = benchmark.pedantic(ext_sensitivity.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)


def test_ext_hetero(benchmark):
    results = benchmark.pedantic(ext_hetero.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)


def test_ext_bandwidth(benchmark):
    from repro.experiments import ext_bandwidth

    results = benchmark.pedantic(ext_bandwidth.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
