"""Fig. 7: efficiency, ftIMM on a GPDSP cluster vs OpenBLAS on the CPU."""

from repro.experiments import fig7

from conftest import assert_claims, report


def test_fig7_cpu_vs_dsp(benchmark):
    results = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
