"""Tables I-III: generated assembly pipelines (steady-state VLIW grids)."""

from repro.experiments import tables123

from conftest import assert_claims, report


def test_tables_1_2_3(benchmark):
    results = benchmark.pedantic(tables123.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
