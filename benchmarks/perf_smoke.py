"""CI perf smoke: the trace-compiled kernel path must beat the interpreter.

Runs the reference functional workload (512x32x512, the shape the CI
perf-report smoke already uses) once with ``kernel_exec="interp"`` and
once with ``kernel_exec="compiled"``, checks the two produce bit-identical
results, and **fails (exit 1) if the compiled path is not faster** — the
guard that keeps a regression in :mod:`repro.isa.compile` (e.g. a new
generator idiom silently falling back to the interpreter) from landing.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py [MxNxK]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core.ftimm import ftimm_gemm
from repro.core.shapes import GemmShape
from repro.workloads.generators import random_operands


def timed_run(shape: GemmShape, kernel_exec: str) -> tuple[float, np.ndarray]:
    a, b, c0 = random_operands(shape, seed=0)
    c = c0.copy()
    t0 = time.perf_counter()
    ftimm_gemm(
        shape.m, shape.n, shape.k, a=a, b=b, c=c,
        timing="none", kernel_exec=kernel_exec,
    )
    return time.perf_counter() - t0, c


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        m, n, k = (int(x) for x in argv[1].lower().split("x"))
        shape = GemmShape(m, n, k)
    else:
        shape = GemmShape(512, 32, 512)

    interp_s, c_interp = timed_run(shape, "interp")
    compiled_s, c_compiled = timed_run(shape, "compiled")
    speedup = interp_s / compiled_s if compiled_s > 0 else float("inf")

    print(f"perf smoke on {shape.m}x{shape.n}x{shape.k}:")
    print(f"  interp   {interp_s:8.3f} s")
    print(f"  compiled {compiled_s:8.3f} s   ({speedup:.1f}x)")

    if not np.array_equal(c_interp, c_compiled):
        print("FAIL: compiled result differs from the interpreter")
        return 1
    if compiled_s >= interp_s:
        print("FAIL: compiled path is not faster than the interpreter")
        return 1
    print("OK: compiled path is bit-identical and faster")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
