"""Fig. 4: single-core ftIMM vs TGEMM across the three irregular types."""

from repro.experiments import fig4

from conftest import assert_claims, report


def test_fig4_single_core(benchmark):
    results = benchmark.pedantic(fig4.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
