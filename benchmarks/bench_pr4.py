"""Saturation-sweep record for the serving-subsystem PR.

Runs the reference overload mix through an offered-load sweep — batched
server vs the one-call-per-request baseline, plus the three scheduling
policies at the overload point — and writes ``BENCH_PR4.json`` at the
repo root.  All numbers are simulated seconds from fixed seeds, so the
file is reproducible bit-for-bit and diffs meaningfully across commits.

Usage::

    PYTHONPATH=src python benchmarks/bench_pr4.py [-o BENCH_PR4.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from pathlib import Path

from repro.hw.config import default_machine
from repro.obs import make_record
from repro.serve import ServeConfig, make_requests, serve, sweep

SEED = 42
N_REQUESTS = 150
QUEUE_CAP = 256
LOADS_RPS = [30_000.0, 60_000.0, 120_000.0, 240_000.0]
OVERLOAD_RPS = 120_000.0


def _git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def bench_saturation() -> tuple[dict, list[dict]]:
    config = ServeConfig(policy="edf", queue_cap=QUEUE_CAP)
    result = sweep(
        "overload", LOADS_RPS, n_requests=N_REQUESTS, seed=SEED,
        config=config, compare_naive=True,
    )
    print(result.render())
    cluster = default_machine().cluster
    records = []
    for tag, points in (("batched", result.points),
                        ("naive", result.naive_points)):
        for p in points:
            records.append(make_record(
                shape=f"mix:overload@{p.offered_rps:.0f}rps",
                impl="serve",
                strategy=f"edf/{tag}",
                cores=cluster.n_cores,
                seconds=p.report.makespan_s,
                gflops=p.report.throughput_gflops,
                efficiency=(p.report.goodput_rps / p.offered_rps
                            if p.offered_rps else 0.0),
                bound="serve",
            ))
    return result.to_record_fields(), records


def bench_policies() -> dict:
    out = {}
    for policy in ("fifo", "least_loaded", "edf"):
        requests = make_requests(
            "overload", rate_rps=OVERLOAD_RPS, n_requests=N_REQUESTS,
            seed=SEED,
        )
        report = serve(
            requests, ServeConfig(policy=policy, queue_cap=QUEUE_CAP)
        )
        out[policy] = {
            "deadline_met": report.deadline_met,
            "deadline_missed": report.deadline_missed,
            "goodput_rps": report.goodput_rps,
            "p99_s": report.latency_quantile(0.99),
            "mean_batch": report.mean_batch_size,
        }
        print(f"  {policy:13s} met={report.deadline_met:3d} "
              f"goodput={report.goodput_rps:8.0f} rps "
              f"p99={report.latency_quantile(0.99) * 1e3:.3f} ms")
    return out


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("-o", "--output", default="BENCH_PR4.json")
    args = parser.parse_args()

    print(f"saturation sweep (seed={SEED}, n={N_REQUESTS}):")
    sweep_fields, records = bench_saturation()
    print(f"policies @ {OVERLOAD_RPS:.0f} rps:")
    policies = bench_policies()

    batched = sweep_fields["sweep"][-1]["goodput_rps"]
    naive = sweep_fields["naive_sweep"][-1]["goodput_rps"]
    payload = {
        "commit": _git_head(),
        "generated_at": time.time(),
        "seed": SEED,
        "n_requests": N_REQUESTS,
        "queue_cap": QUEUE_CAP,
        "saturation": sweep_fields,
        "batched_vs_naive_at_saturation": batched / naive,
        "policies_at_overload": policies,
        "records": records,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}: batching x{batched / naive:.2f} at "
          f"saturation, EDF meets {policies['edf']['deadline_met']} vs "
          f"FIFO {policies['fifo']['deadline_met']} deadlines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
