"""Fig. 5: multi-core ftIMM vs TGEMM vs roofline (six panels)."""

from repro.experiments import fig5

from conftest import assert_claims, report


def test_fig5_multi_core(benchmark):
    results = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
