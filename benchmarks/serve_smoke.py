"""CI serving smoke: the two claims the serve subsystem stands on.

Replays the fixed-seed reference overload mix (``repro.serve.loadgen``)
and fails (exit 1) unless both hold:

1. **EDF meets strictly more deadlines than FIFO.**  Under overload the
   deadline-aware policy must actually buy something — if EDF and FIFO
   tie, either the mix no longer overloads the clusters or the policy
   plumbing regressed to arrival order.

2. **Batching beats one-call-per-request at saturation.**  The
   offered-load sweep's highest point must show strictly higher goodput
   with shape-bucketed batching than with ``max_batch=1``; otherwise the
   batcher is pure overhead and the subsystem is not paying for itself.

Both runs are deterministic (simulated time, fixed seed), so a failure
here is a regression, not noise.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py [seed]
"""

from __future__ import annotations

import sys

from repro.serve import ServeConfig, make_requests, serve, sweep

SEED = 42
OVERLOAD_RPS = 120_000.0
SWEEP_RPS = [60_000.0, 240_000.0]
N_REQUESTS = 150
QUEUE_CAP = 256


def main(argv: list[str]) -> int:
    seed = int(argv[1]) if len(argv) > 1 else SEED
    failures = []

    # -- claim 1: EDF strictly beats FIFO on deadlines under overload --
    met = {}
    for policy in ("fifo", "least_loaded", "edf"):
        requests = make_requests(
            "overload", rate_rps=OVERLOAD_RPS, n_requests=N_REQUESTS,
            seed=seed,
        )
        report = serve(
            requests, ServeConfig(policy=policy, queue_cap=QUEUE_CAP)
        )
        met[policy] = report.deadline_met
        assert report.completed + report.shed + report.failed == N_REQUESTS
    print(
        f"deadlines met @ {OVERLOAD_RPS:.0f} rps (n={N_REQUESTS}, "
        f"seed={seed}): " + "  ".join(f"{p}={m}" for p, m in met.items())
    )
    if not met["edf"] > met["fifo"]:
        failures.append(
            f"EDF must meet strictly more deadlines than FIFO, got "
            f"edf={met['edf']} vs fifo={met['fifo']}"
        )

    # -- claim 2: batching beats the naive baseline at saturation --
    result = sweep(
        "overload", SWEEP_RPS, n_requests=N_REQUESTS, seed=seed,
        config=ServeConfig(policy="edf", queue_cap=QUEUE_CAP),
        compare_naive=True,
    )
    print(
        f"saturation goodput @ {SWEEP_RPS[-1]:.0f} rps: "
        f"batched={result.saturated_goodput_rps:.0f} rps vs "
        f"naive={result.naive_saturated_goodput_rps:.0f} rps"
    )
    if not result.batching_wins_at_saturation:
        failures.append(
            "batched goodput must strictly beat the one-call-per-request "
            "baseline at saturation"
        )

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print("OK: EDF beats FIFO on deadlines; batching wins at saturation")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
