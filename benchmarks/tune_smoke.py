"""CI tune smoke: the adaptive plan search must pay for itself.

Three gates, all on reference shapes with hermetic (temp-dir) caches:

1. **Pruning** — the bound-pruned search must fully score at most half
   of the candidate grid while selecting a plan **bit-identical** to the
   exhaustive search (the correctness invariant: pruning is a search-
   order optimization, never a different answer).
2. **Transfer** — once a neighboring shape class is in the plan
   database, a tolerance-gated warm search must complete at least
   ``TRANSFER_SPEEDUP``x faster than the cold search that populated it.
3. **Amortization** — ``autotune(jobs=2)`` must not lose to serial on a
   single-shape search (the BENCH_PR2 0.66x regression this PR fixes:
   below the pool-amortization threshold the search stays serial).

Usage::

    PYTHONPATH=src python benchmarks/tune_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.core.autotune import autotune
from repro.core.plan_search import PlanDB
from repro.core.shapes import GemmShape
from repro.hw.config import default_machine
from repro.kernels.registry import KernelDiskCache, KernelRegistry

#: shapes with full candidate grids (tiny grids are all-finalist anyway)
REFERENCE_SHAPES = [
    GemmShape(2048, 32, 2048),
    GemmShape(4096, 64, 512),
    GemmShape(20480, 16, 20480),
]
MAX_SCORED_FRACTION = 0.5
TRANSFER_SPEEDUP = 5.0
#: noise margin for gate 3 (two timings of the same serial work)
PARALLEL_MARGIN = 1.25


def _registry(tmp: Path, cluster):
    return KernelRegistry(cluster.core, disk=KernelDiskCache(tmp / "kernels"))


def gate_pruning(cluster, registry) -> bool:
    ok = True
    print("gate 1: pruned search scores <= "
          f"{MAX_SCORED_FRACTION:.0%} of the grid, identical plan")
    for shape in REFERENCE_SHAPES:
        pruned = autotune(shape, cluster, registry, jobs=1,
                          mode="pruned", plan_db=False)
        full = autotune(shape, cluster, registry, jobs=1,
                        mode="exhaustive", plan_db=False)
        frac = pruned.stats.scored / pruned.stats.generated
        same = pruned.best == full.best
        print(f"  {shape.m}x{shape.n}x{shape.k}: scored "
              f"{pruned.stats.scored}/{pruned.stats.generated} "
              f"({frac:.0%}), plan {'identical' if same else 'DIFFERS'}")
        if frac > MAX_SCORED_FRACTION or not same:
            ok = False
    return ok


def gate_transfer(cluster, registry, tmp: Path) -> bool:
    db = PlanDB(tmp / "plans")
    donor = GemmShape(2048, 32, 2048)
    t0 = time.perf_counter()
    autotune(donor, cluster, registry, jobs=1, plan_db=db)
    cold_s = time.perf_counter() - t0

    near = GemmShape(2304, 32, 2048)
    t0 = time.perf_counter()
    warm = autotune(near, cluster, registry, jobs=1, plan_db=db,
                    transfer_tol=0.25)
    warm_s = time.perf_counter() - t0
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"gate 2: transfer warm start >= {TRANSFER_SPEEDUP:.0f}x faster")
    print(f"  cold {cold_s * 1e3:7.1f} ms -> warm {warm_s * 1e3:7.1f} ms "
          f"({speedup:.1f}x, transfer={warm.stats.transfer})")
    return speedup >= TRANSFER_SPEEDUP and warm.stats.transfer in (
        "warm", "short_circuit"
    )


def gate_parallel(cluster, registry) -> bool:
    shape = GemmShape(2048, 32, 2048)
    autotune(shape, cluster, registry, jobs=1, plan_db=False)  # warm kernels

    def _best_of_two(jobs: int) -> tuple[float, bool]:
        walls = []
        pooled = False
        for _ in range(2):
            t0 = time.perf_counter()
            result = autotune(shape, cluster, registry, jobs=jobs,
                              plan_db=False)
            walls.append(time.perf_counter() - t0)
            pooled = result.stats.pooled
        return min(walls), pooled

    serial_s, _ = _best_of_two(1)
    parallel_s, pooled = _best_of_two(2)
    print("gate 3: autotune(jobs=2) does not lose to serial")
    print(f"  serial {serial_s * 1e3:7.1f} ms, jobs=2 "
          f"{parallel_s * 1e3:7.1f} ms "
          f"({serial_s / parallel_s:.2f}x, "
          f"{'pooled' if pooled else 'amortized serial'})")
    # the fix under test: a lone sub-threshold search must not pay a
    # pool spawn, so jobs=2 rides the identical serial path
    return not pooled and parallel_s <= serial_s * PARALLEL_MARGIN


def main() -> int:
    cluster = default_machine().cluster
    with tempfile.TemporaryDirectory(prefix="repro-tune-smoke-") as tmp:
        tmp_path = Path(tmp)
        registry = _registry(tmp_path, cluster)
        gates = [
            gate_pruning(cluster, registry),
            gate_transfer(cluster, registry, tmp_path),
            gate_parallel(cluster, registry),
        ]
    if all(gates):
        print("OK: pruning, transfer and amortization gates all hold")
        return 0
    failed = [i + 1 for i, g in enumerate(gates) if not g]
    print(f"FAIL: gate(s) {failed} did not hold")
    return 1


if __name__ == "__main__":
    sys.exit(main())
