"""Benchmark harness helpers.

Each benchmark regenerates one table/figure of the paper: it runs the
experiment once under pytest-benchmark (pedantic, single round — the
workloads are seconds-long simulations, not microbenchmarks), prints the
same rows/series the paper reports, and asserts the paper's claims hold.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations


def report(results, benchmark=None) -> None:
    """Print experiment tables and stash headline numbers on the benchmark."""
    for result in results:
        print()
        print(result.render())
        if benchmark is not None:
            for claim in result.claims:
                benchmark.extra_info[f"{result.exp_id}:{claim.name}"] = (
                    claim.measured
                )


def assert_claims(results) -> None:
    failed = [
        f"{r.exp_id}: {c.name} (paper {c.paper}, measured {c.measured})"
        for r in results
        for c in r.claims
        if not c.holds
    ]
    assert not failed, "paper claims failed:\n" + "\n".join(failed)
