"""Fig. 6: scalability of ftIMM over 1-8 DSP cores."""

from repro.experiments import fig6

from conftest import assert_claims, report


def test_fig6_scalability(benchmark):
    results = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    report(results, benchmark)
    assert_claims(results)
