"""CI tracing smoke: the claims the observability layer stands on.

Runs the fixed-seed reference overload mix under the request tracer and
fails (exit 1) unless all of the following hold:

1. **The exported trace is schema-valid and self-consistent.**  The
   Chrome trace passes :func:`repro.obs.validate_chrome_trace`, and for
   every completed request the trace's span durations reconstruct the
   serve record's latency decomposition (queue + batch-wait + compute =
   latency) within float rounding.

2. **Tracing is observation-only.**  The traced run's serve records are
   bit-identical to the untraced run's.

3. **SLO alerts are deterministic and load-selective.**  The saturated
   overload mix fires at least one burn-rate alert; the light
   transformer mix fires none.

4. **Tracing overhead stays inside a fixed wall-clock budget.**  The
   traced run may cost at most ``OVERHEAD_BUDGET_S`` extra wall time
   over the untraced run (generous by construction — a regression here
   means a hook landed on a hot path).

5. **``repro perf --json`` emits the stable machine-readable schema.**
   A subprocess run must print exactly one JSON object carrying the
   run-log record's required fields.

All runs are deterministic (simulated time, fixed seed), so a failure
here is a regression, not noise.

Usage::

    PYTHONPATH=src python benchmarks/trace_smoke.py [seed]
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis import from_spans
from repro.obs import load_spans, tracing, validate_chrome_trace
from repro.serve import ServeConfig, make_requests, monitor, serve

SEED = 0
OVERLOAD_RPS = 480_000.0
LIGHT_RPS = 30_000.0
N_REQUESTS = 120
#: wall-clock budget for tracing overhead, per traced run (claim 4)
OVERHEAD_BUDGET_S = 2.0
#: the perf-smoke reference shape (see benchmarks/perf_smoke.py)
PERF_SHAPE = (512, 32, 512)
#: absolute slack for segment-sum reconstruction (claim 1), seconds
ROUNDING_S = 1e-9

PERF_RECORD_KEYS = {
    "schema", "ts", "shape", "impl", "strategy", "cores",
    "seconds", "gflops", "efficiency", "bound", "epochs",
    "profile", "metrics",
}


def run_serve(mix: str, rate: float, seed: int):
    requests = make_requests(
        mix, rate_rps=rate, n_requests=N_REQUESTS, seed=seed
    )
    return serve(requests, ServeConfig())


def main(argv: list[str]) -> int:
    seed = int(argv[1]) if len(argv) > 1 else SEED
    failures: list[str] = []

    # baseline (untraced) and traced runs of the same overload stream
    t0 = time.perf_counter()
    baseline = run_serve("overload", OVERLOAD_RPS, seed)
    untraced_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with tracing() as tracer:
        traced = run_serve("overload", OVERLOAD_RPS, seed)
    traced_s = time.perf_counter() - t0

    # -- claim 2: observation-only ------------------------------------
    if traced.records != baseline.records or traced.batches != baseline.batches:
        failures.append("traced serve run diverged from the untraced run")

    # -- claim 1: valid trace that reconstructs the decomposition -----
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        tracer.save(trace_path)
        trace = json.loads(trace_path.read_text())
        try:
            validate_chrome_trace(trace)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"exported trace failed validation: {exc}")
        spans = load_spans(trace_path)
    by_req: dict[int, dict[str, float]] = {}
    for s in spans:
        rid = s.args.get("req_id")
        if rid is None or s.category not in ("queue", "batch-wait", "compute"):
            continue
        by_req.setdefault(int(rid), {})[s.category] = s.duration_s
    checked = 0
    for rec in traced.records:
        if rec.status != "completed":
            continue
        segs = by_req.get(rec.req_id)
        if segs is None or len(segs) != 3:
            failures.append(f"request {rec.req_id}: missing segment spans")
            continue
        total = sum(segs.values())
        if abs(total - rec.latency_s) > ROUNDING_S:
            failures.append(
                f"request {rec.req_id}: span sum {total:.3e}s != "
                f"recorded latency {rec.latency_s:.3e}s"
            )
        if abs(segs["queue"] - rec.queue_s) > ROUNDING_S or \
                abs(segs["batch-wait"] - rec.batch_s) > ROUNDING_S or \
                abs(segs["compute"] - rec.compute_s) > ROUNDING_S:
            failures.append(
                f"request {rec.req_id}: per-segment spans disagree "
                "with the serve record"
            )
        checked += 1
    print(f"trace: {len(spans)} spans, {checked} completed requests "
          "reconstructed from span sums")
    if not checked:
        failures.append("no completed requests to check — mix regressed?")

    # the critical-path analyzer must explain (nearly) all of the latency
    cp = from_spans(spans)
    print(f"critical path: dominant={cp.tail_dominant} "
          f"min_coverage={cp.min_coverage * 100:.2f}%")
    if cp.min_coverage < 0.95:
        failures.append(
            f"critical-path coverage {cp.min_coverage:.3f} below 0.95"
        )

    # -- claim 3: SLO fire / no-fire ----------------------------------
    slo_hot = monitor(traced.records)
    print(f"slo overload@{OVERLOAD_RPS:.0f}: {slo_hot.bad_events}/"
          f"{slo_hot.n_events} bad, {len(slo_hot.alerts)} alert(s)")
    if not slo_hot.alerts:
        failures.append("overload mix at saturation fired no SLO alert")
    light = run_serve("transformer", LIGHT_RPS, seed)
    slo_light = monitor(light.records)
    print(f"slo transformer@{LIGHT_RPS:.0f}: {slo_light.bad_events}/"
          f"{slo_light.n_events} bad, {len(slo_light.alerts)} alert(s)")
    if slo_light.alerts:
        failures.append("light transformer mix fired an SLO alert")

    # -- claim 4: overhead budget -------------------------------------
    overhead = traced_s - untraced_s
    print(f"serve tracing overhead: {overhead * 1e3:.1f} ms "
          f"(untraced {untraced_s * 1e3:.1f} ms, "
          f"traced {traced_s * 1e3:.1f} ms, "
          f"budget {OVERHEAD_BUDGET_S * 1e3:.0f} ms)")
    if overhead > OVERHEAD_BUDGET_S:
        failures.append(
            f"serve tracing overhead {overhead:.2f}s over the "
            f"{OVERHEAD_BUDGET_S:.1f}s budget"
        )
    # same budget on the perf-smoke reference shape's DES run
    from repro.core.ftimm import ftimm_gemm

    ftimm_gemm(*PERF_SHAPE, timing="des")  # warm plan + kernel caches
    t0 = time.perf_counter()
    plain = ftimm_gemm(*PERF_SHAPE, timing="des")
    gemm_untraced_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    with tracing():
        traced_gemm = ftimm_gemm(*PERF_SHAPE, timing="des")
    gemm_traced_s = time.perf_counter() - t0
    if traced_gemm.seconds != plain.seconds:
        failures.append("traced GEMM modeled time diverged from untraced")
    gemm_overhead = gemm_traced_s - gemm_untraced_s
    print(f"gemm tracing overhead ({PERF_SHAPE[0]}x{PERF_SHAPE[1]}x"
          f"{PERF_SHAPE[2]}): {gemm_overhead * 1e3:.1f} ms "
          f"(budget {OVERHEAD_BUDGET_S * 1e3:.0f} ms)")
    if gemm_overhead > OVERHEAD_BUDGET_S:
        failures.append(
            f"gemm tracing overhead {gemm_overhead:.2f}s over the "
            f"{OVERHEAD_BUDGET_S:.1f}s budget"
        )

    # -- claim 5: repro perf --json schema ----------------------------
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "perf", "--shape", "512x32x256",
             "--runlog", str(Path(tmp) / "runs.jsonl"), "--json"],
            capture_output=True, text=True, timeout=600,
        )
        if proc.returncode != 0:
            failures.append(f"repro perf --json exited {proc.returncode}: "
                            f"{proc.stderr.strip()[:200]}")
        else:
            try:
                record = json.loads(proc.stdout)
            except json.JSONDecodeError:
                record = None
                failures.append("repro perf --json printed non-JSON output")
            if record is not None:
                missing = PERF_RECORD_KEYS - record.keys()
                if missing:
                    failures.append(
                        f"perf --json record missing keys: {sorted(missing)}"
                    )
                else:
                    print("perf --json: schema ok "
                          f"({record['shape']}, {record['gflops']:.1f} GFLOPS)")

    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print()
    print("trace smoke: all claims hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
