#!/usr/bin/env python3
"""Scaling one irregular GEMM across the whole FT-m7032 chip.

The paper's evaluation stays inside one GPDSP cluster.  This example walks
the same type-1 problem through every level of the chip the model exposes:

1. one DSP core, then 8 cores of one cluster (the paper's Fig. 6 regime,
   capped by the cluster's single DDR port);
2. co-executing with the 16-core host CPU (extension: single-digit gain —
   the CPU's irregular-GEMM rate is small, per Fig. 7);
3. all four GPDSP clusters with private DDR ports (extension: near-linear).

Run:  python examples/whole_chip_tour.py
"""

import repro
from repro.analysis.tables import format_table
from repro.core.hetero import hetero_gemm
from repro.core.multi_cluster import multi_cluster_gemm


def main() -> None:
    m, n, k = 2**20, 32, 32
    print(f"problem: {m}x{n}x{k} ({repro.classify(m, n, k)})\n")

    rows = []
    base = repro.ftimm_gemm(m, n, k, cores=1, timing="analytic")
    rows.append(["1 DSP core", f"{base.gflops:.0f}", "1.00x"])

    one_cluster = repro.ftimm_gemm(m, n, k, timing="analytic")
    rows.append([
        "8 cores / 1 cluster",
        f"{one_cluster.gflops:.0f}",
        f"{one_cluster.gflops / base.gflops:.2f}x",
    ])

    hetero = hetero_gemm(m, n, k)
    rows.append([
        f"1 cluster + CPU ({hetero.cpu_share:.0%} of M)",
        f"{hetero.gflops:.0f}",
        f"{hetero.gflops / base.gflops:.2f}x",
    ])

    for clusters in (2, 4):
        mc = multi_cluster_gemm(m, n, k, n_clusters=clusters, split="m")
        rows.append([
            f"{clusters} clusters",
            f"{mc.gflops:.0f}",
            f"{mc.gflops / base.gflops:.2f}x",
        ])

    print(format_table(["configuration", "GFLOPS", "vs 1 core"], rows))
    print()
    print("reading: within a cluster, scaling is capped by the shared DDR")
    print("port (the paper's Fig. 6 observation); the CPU adds only a few")
    print("percent (its irregular-GEMM rate is small, Fig. 7); private DDR")
    print("ports across clusters restore near-linear scaling.")


if __name__ == "__main__":
    main()
