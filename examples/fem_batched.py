#!/usr/bin/env python3
"""FEM operator application as batched irregular GEMMs.

The paper's introduction cites FEM (via libxsmm) as a source of "many
GEMMs working on small matrices".  This example applies element-local
interpolation operators for a mixed-order mesh:

1. verifies the grouped execution numerically (shared basis operator B,
   one stacked tall-and-skinny GEMM per element order);
2. compares the modeled cluster time of grouped execution against issuing
   one GEMM per element batch — the amortization the batching API exists
   for;
3. shows the per-operator shape classification (every one is type 1).

Run:  python examples/fem_batched.py
"""

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.core.batched import grouped_gemm, naive_batch_seconds
from repro.core.shapes import GemmShape
from repro.workloads.fem import STANDARD_OPERATORS, lagrange_basis_1d


def main() -> None:
    rng = np.random.default_rng(0)

    # --- 1. numerics: grouped execution of P3 interpolation ---------------
    order, n_quad = 3, 7
    basis = lagrange_basis_1d(order, np.linspace(0, 1, n_quad))  # (4, 7)
    batches = [rng.standard_normal((m, order + 1)).astype(np.float32)
               for m in (500, 750, 250)]
    outs = [np.zeros((a.shape[0], n_quad), np.float32) for a in batches]
    result = repro.grouped_gemm(batches, basis, outs, timing="analytic")
    err = max(
        float(np.abs(out - a @ basis).max()) for a, out in zip(batches, outs)
    )
    print(f"grouped P{order} interpolation over {result.n_items} element "
          f"batches ({result.shape}): max error {err:.2e}")
    print(f"modeled time on the GPDSP cluster: {result.seconds * 1e6:.1f} us "
          f"({result.gflops:.1f} GFLOPS)\n")

    # --- 2. grouped vs one-call-per-batch across a mixed-order mesh -------
    rows = []
    for op in STANDARD_OPERATORS:
        shape = op.gemm_shape()
        # the mesh hands us the elements in 64 chunks (partitioned assembly)
        chunk = max(1, shape.m // 64)
        chunks = [chunk] * (shape.m // chunk)
        grouped = grouped_gemm(
            None, None, None,
            m_blocks=chunks, n=shape.n, k=shape.k, timing="analytic",
        )
        naive = naive_batch_seconds([GemmShape(chunk, shape.n, shape.k)] * len(chunks))
        rows.append([
            op.name,
            str(shape),
            repro.classify(shape.m, shape.n, shape.k),
            f"{grouped.seconds * 1e3:.2f}",
            f"{naive * 1e3:.2f}",
            f"{naive / grouped.seconds:.2f}x",
        ])
    print("mixed-order mesh, 64-chunk partitioned assembly:")
    print(format_table(
        ["operator", "stacked MxNxK", "class", "grouped (ms)",
         "per-chunk calls (ms)", "win"],
        rows,
    ))


if __name__ == "__main__":
    main()
