#!/usr/bin/env python3
"""A tour of ftIMM's dynamic adjusting (Section IV-C of the paper).

Sweeps a family of shapes across the three irregular types and shows, for
each, what the tuner decided: parallelization strategy, adapted block
sizes, the generated micro-kernel, and the payoff vs running with the
fixed initial blocks or the fixed TGEMM implementation.

Run:  python examples/autotuning_tour.py
"""

import repro
from repro.analysis.tables import format_table
from repro.core.shapes import GemmShape
from repro.core.tuner import tune
from repro.hw.config import default_machine


SHAPES = [
    (2**20, 32, 32),       # type 1: tall-and-skinny x small
    (2**16, 8, 8),         # type 1, extreme
    (32, 32, 2**20),       # type 2: skinny-and-tall x tall-and-skinny
    (96, 96, 65536),       # type 2, wider
    (20480, 32, 20480),    # type 3: large regular x tall-and-skinny
    (20480, 80, 20480),    # type 3, near the 96 edge
]


def describe_plan(decision) -> str:
    plan = decision.plan
    if decision.strategy == "m":
        return (f"k_g={plan.k_g} n_g={plan.n_g} m_a={plan.m_a} "
                f"n_a={plan.n_a} k_a={plan.k_a} m_s={plan.m_s}")
    if decision.strategy == "k":
        return (f"m_g={plan.m_g} m_a={plan.m_a} n_a={plan.n_a} "
                f"k_a={plan.k_a} m_s={plan.m_s}")
    return str(plan)


def main() -> None:
    cluster = default_machine().cluster
    rows = []
    for m, n, k in SHAPES:
        decision = tune(GemmShape(m, n, k), cluster)
        tuned = repro.ftimm_gemm(m, n, k, timing="analytic")
        fixed = repro.ftimm_gemm(m, n, k, timing="analytic", adjust=False)
        tgemm = repro.tgemm_gemm(m, n, k, timing="analytic")
        rows.append([
            f"{m}x{n}x{k}",
            decision.strategy,
            f"{tuned.gflops:.0f}",
            f"{tuned.gflops / fixed.gflops:.2f}x",
            f"{tuned.gflops / tgemm.gflops:.2f}x",
        ])
        print(f"{m}x{n}x{k}  [{repro.classify(m, n, k)}]")
        print(f"  strategy : {decision.strategy}-parallel — {decision.reason}")
        print(f"  blocks   : {describe_plan(decision)}")
        plan = decision.plan
        kern = repro.generate_kernel(plan.m_s, plan.n_a, min(plan.k_a, k))
        print(f"  kernel   : {kern.spec} -> m_u={kern.blocks[0].m_u}, "
              f"k_u={kern.blocks[0].k_u}, II={kern.ii}, "
              f"{100 * kern.efficiency:.1f}% of core peak")
        print()

    print("summary:")
    print(format_table(
        ["shape", "strategy", "GFLOPS", "vs fixed blocks", "vs TGEMM"], rows
    ))


if __name__ == "__main__":
    main()
