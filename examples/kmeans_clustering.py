#!/usr/bin/env python3
"""K-means clustering with the distance GEMM routed through ftIMM.

The paper's introduction motivates irregular GEMM with K-means: computing
distances between many samples and a few centroids is a tall-and-skinny
times small multiplication (``n_samples x n_clusters x n_features``).
This example clusters Gaussian blobs twice — once with NumPy's matmul and
once with the simulated ftIMM — verifies both agree bit-for-bit in the
labels, and reports what the distance GEMM would cost on the FT-m7032
cluster vs TGEMM and the CPU.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

import repro
from repro.baselines.cpu_openblas import openblas_sgemm
from repro.core.shapes import GemmShape
from repro.hw.config import default_machine
from repro.workloads.kmeans import blob_dataset, lloyd_kmeans


def ftimm_gemm_fn(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    m, k = a.shape
    n = b.shape[1]
    repro.ftimm_gemm(m, n, k, a=a, b=b, c=c, timing="none")


def main() -> None:
    n_samples, n_features, n_clusters = 20_000, 16, 8
    x, _ = blob_dataset(n_samples, n_features, n_clusters, seed=11)
    print(f"dataset: {n_samples} samples x {n_features} features, "
          f"{n_clusters} clusters")

    ref = lloyd_kmeans(x, n_clusters, seed=11)
    sim = lloyd_kmeans(x, n_clusters, gemm=ftimm_gemm_fn, seed=11)
    agree = np.array_equal(ref.labels, sim.labels)
    print(f"labels via NumPy == labels via simulated ftIMM: {agree}")
    print(f"iterations: {sim.iterations}, inertia: {sim.inertia:.1f}")

    shape = sim.gemm_shapes[0]
    print(f"\ndistance GEMM per iteration: {shape} "
          f"({repro.classify(shape.m, shape.n, shape.k)})")

    ft = repro.ftimm_gemm(shape.m, shape.n, shape.k, timing="analytic")
    tg = repro.tgemm_gemm(shape.m, shape.n, shape.k, timing="analytic")
    cpu = openblas_sgemm(GemmShape(shape.m, shape.n, shape.k),
                         default_machine().cpu)
    print(f"  ftIMM on GPDSP cluster : {ft.gflops:7.1f} GFLOPS "
          f"({ft.strategy}-parallel)")
    print(f"  TGEMM on GPDSP cluster : {tg.gflops:7.1f} GFLOPS "
          f"-> ftIMM {ft.gflops / tg.gflops:.2f}x faster")
    print(f"  OpenBLAS on 16-core CPU: {cpu.gflops:7.1f} GFLOPS (modeled)")
    print(f"  per-iteration time on cluster: {ft.seconds * 1e6:.1f} us")


if __name__ == "__main__":
    main()
