#!/usr/bin/env python3
"""Quickstart: run an irregular-shaped GEMM through simulated ftIMM.

Demonstrates the three things the library does:

1. compute a real ``C += A @ B`` with the full blocked/parallel algorithm
   (verified here against NumPy),
2. model its performance on the FT-m7032 GPDSP cluster and compare with
   the traditional TGEMM implementation,
3. show the auto-generated micro-kernel behind it (the paper's Table I-III
   style pipeline view).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

def main() -> None:
    m, n, k = 20480, 32, 256  # a tall-and-skinny times small GEMM (type 1)
    print(f"problem: C[{m}x{n}] += A[{m}x{k}] @ B[{k}x{n}]")
    print(f"shape class: {repro.classify(m, n, k)}")
    print()

    # --- 1. numerics: the simulated library computes the real result ----
    rng = np.random.default_rng(42)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    c = np.zeros((m, n), dtype=np.float32)
    result = repro.ftimm_gemm(m, n, k, a=a, b=b, c=c)
    err = np.abs(c - a @ b).max()
    print(f"ftIMM strategy chosen : {result.strategy!r} "
          f"({result.decision.reason})")
    print(f"max |C - A@B|         : {err:.3e}  (float32)")

    # --- 2. performance model: ftIMM vs the traditional TGEMM -----------
    tgemm = repro.tgemm_gemm(m, n, k)
    print()
    print(f"modeled ftIMM          : {result.gflops:8.1f} GFLOPS "
          f"({100 * result.efficiency:.1f}% of cluster peak)")
    print(f"modeled TGEMM baseline : {tgemm.gflops:8.1f} GFLOPS")
    print(f"speedup                : {result.gflops / tgemm.gflops:.2f}x")

    # --- 3. the generated micro-kernel behind this call -----------------
    plan = result.decision.m_plan
    kernel = repro.generate_kernel(plan.m_s, plan.n_a, plan.k_a)
    print()
    print(f"micro-kernel {kernel.spec} "
          f"(II={kernel.ii}, efficiency {100 * kernel.efficiency:.1f}%):")
    print(kernel.pipeline_table())


if __name__ == "__main__":
    main()
