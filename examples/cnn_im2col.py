#!/usr/bin/env python3
"""CNN convolutions as im2col GEMMs across VGG-16 / ResNet-18.

The paper observes that im2col-lowered convolutions sweep from extremely
tall-and-skinny GEMMs in early layers (huge M = B*H*W, small N = C_out)
to near-regular shapes deep in the network.  This example:

1. runs one real convolution through the simulated ftIMM and checks it
   against a direct convolution;
2. walks the VGG-16 / ResNet-18 layer tables, classifying each layer's
   GEMM and reporting modeled ftIMM vs TGEMM performance — showing where
   irregular-shape optimization matters in a real network.

Run:  python examples/cnn_im2col.py
"""

import numpy as np

import repro
from repro.analysis.tables import format_table
from repro.workloads.convnets import (
    ConvLayer,
    RESNET18_LAYERS,
    VGG16_LAYERS,
    conv2d_direct,
    conv2d_im2col,
)


def ftimm_gemm_fn(a, b, c):
    m, k = a.shape
    n = b.shape[1]
    repro.ftimm_gemm(m, n, k, a=a, b=b, c=c, timing="none")


def main() -> None:
    # --- numerical check on a small layer --------------------------------
    rng = np.random.default_rng(0)
    layer = ConvLayer("demo", 4, 16, 12, 3, 1, 1)
    x = rng.standard_normal((1, 4, 12, 12)).astype(np.float32)
    w = rng.standard_normal((16, 4, 3, 3)).astype(np.float32)
    via_ftimm = conv2d_im2col(x, w, layer, gemm=ftimm_gemm_fn)
    direct = conv2d_direct(x, w, layer)
    err = np.abs(via_ftimm - direct).max()
    print(f"conv {layer.name}: max |im2col-ftIMM - direct| = {err:.2e}\n")

    # --- layer sweeps ------------------------------------------------------
    for net, layers in (("VGG-16", VGG16_LAYERS), ("ResNet-18", RESNET18_LAYERS)):
        rows = []
        for lyr in layers:
            shape = lyr.gemm_shape(batch=1)
            kind = repro.classify(shape.m, shape.n, shape.k)
            if shape.n <= 96:
                ft = repro.ftimm_gemm(shape.m, shape.n, shape.k, timing="analytic")
                tg = repro.tgemm_gemm(shape.m, shape.n, shape.k, timing="analytic")
                speedup = f"{ft.gflops / tg.gflops:.2f}x"
                gflops = f"{ft.gflops:.0f}"
            else:
                # wide-N layers are regular: TGEMM's home turf
                tg = repro.tgemm_gemm(shape.m, shape.n, shape.k, timing="analytic")
                speedup = "-"
                gflops = f"{tg.gflops:.0f} (tgemm)"
            rows.append([lyr.name, str(shape), kind, gflops, speedup])
        print(f"{net} (batch 1, im2col GEMM per layer):")
        print(format_table(
            ["layer", "MxNxK", "class", "GFLOPS", "vs TGEMM"], rows
        ))
        print()


if __name__ == "__main__":
    main()
