"""Software-managed memory spaces of the FT-m7032 model.

DSP cores in FT-m7032 have no data cache for vector data: kernels work on
explicitly allocated buffers in the Scalar Memory (SM), Array Memory (AM)
and the cluster-shared GSM, filled by DMA.  The paper's blocking parameters
are chosen precisely to fit these capacities (Section IV-C), so enforcing
them is load-bearing for the reproduction: a plan whose tiles don't fit must
fail loudly.

:class:`MemorySpace` is a first-fit allocator with coalescing free list.
Buffers optionally carry a NumPy array (functional execution); timing-only
runs allocate unbacked buffers so multi-gigabyte DDR operands cost nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import AllocationError, CapacityError


class MemKind(enum.Enum):
    """The four levels of the memory hierarchy (Fig. 1 / Fig. 2)."""

    DDR = "ddr"   # off-chip main memory (42.6 GB/s per cluster)
    GSM = "gsm"   # 6 MB cluster-shared on-chip memory
    SM = "sm"     # 64 KB per-core scalar memory
    AM = "am"     # 768 KB per-core array memory

    @property
    def on_chip(self) -> bool:
        return self is not MemKind.DDR


@dataclass
class Buffer:
    """A live allocation inside a :class:`MemorySpace`.

    ``shape``/``dtype`` describe the logical tile.  ``data`` is present only
    for functionally-backed buffers.  ``offset`` is the byte offset within
    the space, kept so tests can assert deterministic, in-bounds placement.
    """

    space: "MemorySpace"
    offset: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: np.dtype
    data: np.ndarray | None = None
    label: str = ""
    freed: bool = False

    @property
    def end(self) -> int:
        return self.offset + self.nbytes

    def array(self) -> np.ndarray:
        """The backing array; raises for unbacked (timing-only) buffers."""
        if self.data is None:
            raise AllocationError(
                f"buffer {self.label or '<anon>'} in {self.space.name} is "
                "not backed by data (timing-only allocation)"
            )
        return self.data

    def free(self) -> None:
        self.space.free(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backed = "backed" if self.data is not None else "unbacked"
        return (
            f"Buffer({self.label or 'anon'}@{self.space.name}"
            f"+{self.offset}, {self.shape}, {backed})"
        )


@dataclass
class MemorySpace:
    """One addressable memory with capacity enforcement.

    Allocation is first-fit over a sorted free list with coalescing on free.
    This is deliberately simple — kernels allocate a handful of long-lived
    tiles — but it catches the two bugs that matter: exceeding capacity and
    double-free/leak of ping-pong buffers.
    """

    name: str
    kind: MemKind
    capacity: int
    alignment: int = 64
    _free: list[tuple[int, int]] = field(default_factory=list)  # (offset, size)
    _used: int = 0
    _live: int = 0
    peak_used: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise CapacityError(f"{self.name}: capacity must be positive")
        if self.alignment < 1 or self.alignment & (self.alignment - 1):
            raise CapacityError(f"{self.name}: alignment must be a power of 2")
        self._free = [(0, self.capacity)]

    # -- queries ---------------------------------------------------------

    @property
    def used(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    @property
    def live_buffers(self) -> int:
        return self._live

    # -- allocation ------------------------------------------------------

    def alloc(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype | str = np.float32,
        *,
        backed: bool = False,
        label: str = "",
    ) -> Buffer:
        """Allocate a tile of ``shape`` x ``dtype``.

        Raises :class:`CapacityError` when the space cannot hold it — this is
        how an over-sized blocking plan is rejected, mirroring what a real
        FT-m7032 build would catch at link time.
        """
        dt = np.dtype(dtype)
        nelems = 1
        for extent in shape:
            if extent < 0:
                raise AllocationError(f"negative extent in shape {shape}")
            nelems *= extent
        nbytes = nelems * dt.itemsize
        rounded = max(self._round(nbytes), self.alignment)
        offset = self._take(rounded)
        if offset is None:
            raise CapacityError(
                f"{self.name} ({self.kind.value}): cannot allocate "
                f"{nbytes} B for {label or shape}; "
                f"{self.free_bytes} B free of {self.capacity}"
            )
        self._used += rounded
        self._live += 1
        self.peak_used = max(self.peak_used, self._used)
        data = np.zeros(shape, dtype=dt) if backed else None
        return Buffer(
            space=self,
            offset=offset,
            nbytes=rounded,
            shape=tuple(shape),
            dtype=dt,
            data=data,
            label=label,
        )

    def free(self, buf: Buffer) -> None:
        if buf.space is not self:
            raise AllocationError(
                f"buffer {buf.label!r} belongs to {buf.space.name}, "
                f"not {self.name}"
            )
        if buf.freed:
            raise AllocationError(f"double free of buffer {buf.label!r}")
        buf.freed = True
        self._used -= buf.nbytes
        self._live -= 1
        self._insert_free(buf.offset, buf.nbytes)

    def reset(self) -> None:
        """Drop all allocations (used between independent plan executions)."""
        self._free = [(0, self.capacity)]
        self._used = 0
        self._live = 0

    # -- internals -------------------------------------------------------

    def _round(self, nbytes: int) -> int:
        a = self.alignment
        return (nbytes + a - 1) // a * a

    def _take(self, nbytes: int) -> int | None:
        for i, (off, size) in enumerate(self._free):
            if size >= nbytes:
                if size == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, size - nbytes)
                return off
        return None

    def _insert_free(self, offset: int, size: int) -> None:
        # insert keeping the list sorted by offset, then coalesce neighbours
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, size))
        merged: list[tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemorySpace({self.name}, {self.kind.value}, "
            f"{self._used}/{self.capacity} B used)"
        )


def make_core_spaces(core_id: int, am_bytes: int, sm_bytes: int) -> dict[MemKind, MemorySpace]:
    """Create the per-core private spaces (SM + AM)."""
    return {
        MemKind.AM: MemorySpace(f"am{core_id}", MemKind.AM, am_bytes),
        MemKind.SM: MemorySpace(f"sm{core_id}", MemKind.SM, sm_bytes),
    }
