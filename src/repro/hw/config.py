"""Machine configuration for the FT-m7032 heterogeneous processor model.

The FT-m7032 (Section II of the paper) integrates one 16-core ARMv8 CPU and
four GPDSP clusters.  Each cluster has eight VLIW DSP cores sharing a 6 MB
on-chip Global Shared Memory (GSM) and a 42.6 GB/s DDR port.  Each DSP core
contains a scalar unit (SPU, with 64 KB Scalar Memory), a vector unit (VPU,
with 768 KB Array Memory, 16 VPEs x 3 FMAC units, SIMD width 32 for FP32)
and a DMA engine.

Numbers printed in the paper are used verbatim.  Numbers the paper does not
print (instruction latencies, DMA startup cost, GSM bandwidth, DDR burst
granularity) are explicit assumptions, documented on each field; they were
chosen so the auto-generated micro-kernels land near the paper's reported
peak efficiencies.

All configs are frozen dataclasses: a config is a value, never mutated.
Use :func:`dataclasses.replace` to derive variants (e.g. a 4-core cluster
for the scalability experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError

KIB = 1024
MIB = 1024 * 1024
GB = 1e9  # bandwidth units are decimal GB, as in the paper's 42.6 GB/s


@dataclass(frozen=True)
class LatencyConfig:
    """Instruction latencies, in cycles.

    The paper names ``t_fma``, ``t_VLDW`` and ``t_SBR`` (Table I) without
    printing values; these are assumptions calibrated against the reported
    micro-kernel efficiencies (Fig. 3).
    """

    t_fma: int = 4      # vector fused multiply-add (VFMULAS32) result latency
    t_vldw: int = 3     # vector load (VLDW / VLDDW) result latency
    t_sbr: int = 2      # branch (SBR) resolution latency
    t_sld: int = 2      # scalar load (SLDH / SLDW) latency
    t_sfext: int = 1    # scalar extend (SFEXTS32L) latency
    t_sieu: int = 1     # fixed-point rearrange (SBALE2H) latency
    t_bcast: int = 2    # SPU -> VPU broadcast (SVBCAST / SVBCAST2) latency
    t_vst: int = 1      # vector store issue cost (no consumer, latency moot)
    t_vmov: int = 1     # vector register init (VMOVI)
    t_vadd: int = 3     # vector add (VADDS32) used in the k_u reduction

    def validate(self) -> None:
        for name, value in vars(self).items():
            if value < 1:
                raise ConfigError(f"latency {name} must be >= 1, got {value}")


@dataclass(frozen=True)
class DspCoreConfig:
    """One DSP core of a GPDSP cluster (Fig. 2 of the paper)."""

    clock_hz: float = 1.8e9
    #: FP32 SIMD width across the 16 VPEs (paper: "the SIMD width for FP32
    #: data type is 32").  One vector register holds this many FP32 lanes.
    simd_lanes: int = 32
    #: FMAC units per VPE; three vector FMA instructions can issue per cycle.
    n_vector_fmac: int = 3
    #: each FMAC lane performs a multiply-add: 2 FLOPs per lane per cycle.
    flops_per_lane: int = 2
    #: 64-bit registers per VPE; a live FP32 vector register consumes one.
    n_vector_regs: int = 64
    n_scalar_regs: int = 64
    #: Array Memory (AM) — software-managed vector scratchpad.
    am_bytes: int = 768 * KIB
    #: Scalar Memory (SM) — software-managed scalar scratchpad.
    sm_bytes: int = 64 * KIB
    #: AM can deliver 512 bytes per cycle to registers (two load/store units).
    am_bytes_per_cycle: int = 512
    #: SPU can broadcast at most two FP32 scalars to vectors per cycle.
    broadcast_scalars_per_cycle: int = 2
    #: vector load/store units (VLS1, VLS2).
    n_vector_ls: int = 2
    #: scalar load/store units usable per cycle in the pipelines (Tables I-III
    #: show a single "Scalar Load&Store1" row).
    n_scalar_ls: int = 1
    latencies: LatencyConfig = field(default_factory=LatencyConfig)
    #: registers the generator must leave free for addresses/loop counters.
    reserved_vector_regs: int = 4
    #: fixed cost of invoking a micro-kernel (call, address setup, loop
    #: priming) — an assumption, visible mainly for small k_a; calibrated
    #: against the paper's shallow-K kernel efficiencies (Fig. 3 d-f).
    kernel_call_overhead_cycles: int = 80

    @property
    def fma_lanes_per_cycle(self) -> int:
        """FP32 multiply-adds retired per cycle at full FMAC occupancy."""
        return self.n_vector_fmac * self.simd_lanes

    @property
    def peak_flops(self) -> float:
        """Peak FP32 FLOP/s of one core (345.6 GFLOPS at 1.8 GHz)."""
        return self.fma_lanes_per_cycle * self.flops_per_lane * self.clock_hz

    @property
    def usable_vector_regs(self) -> int:
        return self.n_vector_regs - self.reserved_vector_regs

    def validate(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")
        if self.simd_lanes < 1 or self.n_vector_fmac < 1:
            raise ConfigError("SIMD width and FMAC count must be >= 1")
        if self.usable_vector_regs < 8:
            raise ConfigError("too few usable vector registers")
        if self.am_bytes <= 0 or self.sm_bytes <= 0:
            raise ConfigError("scratchpad sizes must be positive")
        self.latencies.validate()


@dataclass(frozen=True)
class DmaConfig:
    """DMA engine timing model.

    A transfer of ``rows`` rows of ``row_bytes`` each costs::

        startup_cycles / clock  +  rows * (row_bytes + row_overhead_bytes) / bw

    where ``bw`` is the (possibly contended) bandwidth of the slowest memory
    the transfer touches.  ``row_overhead_bytes`` models DDR burst and
    descriptor overhead per 2-D row: short rows waste bandwidth, which is why
    measured bandwidth stays below the theoretical 42.6 GB/s (the paper cites
    exactly this as the reason ftIMM reaches only 67% of its roofline).
    """

    startup_cycles: int = 200
    row_overhead_bytes: int = 64
    #: independent DMA channels per core engine (concurrent descriptors).
    channels_per_core: int = 2
    #: sustainable DDR draw of one DMA channel (outstanding-transaction
    #: limit) — one engine cannot saturate the 42.6 GB/s port alone, which
    #: is what lets multi-core runs scale on memory-bound shapes (Fig. 6).
    #: Assumption: a quarter of the port per channel.
    channel_bandwidth: float = 10.65e9
    #: fraction of the theoretical DDR bandwidth sustainable by perfectly
    #: streaming DMA (refresh, page misses, scheduling).  The paper's
    #: roofline uses the theoretical 42.6 GB/s while noting "the actual
    #: bandwidth cannot reach the theoretical bandwidth" — this derate is
    #: why ftIMM tops out below its roofline (<= 67% in Fig. 5).
    ddr_efficiency: float = 0.72

    def validate(self) -> None:
        if self.startup_cycles < 0 or self.row_overhead_bytes < 0:
            raise ConfigError("DMA overheads must be non-negative")
        if self.channels_per_core < 1:
            raise ConfigError("DMA engine needs at least one channel")
        if not 0 < self.ddr_efficiency <= 1:
            raise ConfigError("ddr_efficiency must be in (0, 1]")
        if self.channel_bandwidth <= 0:
            raise ConfigError("channel_bandwidth must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """One GPDSP cluster: eight DSP cores + GSM + a private DDR port."""

    n_cores: int = 8
    core: DspCoreConfig = field(default_factory=DspCoreConfig)
    gsm_bytes: int = 6 * MIB
    #: DDR bandwidth of the cluster's main-memory port (paper: 42.6 GB/s),
    #: shared by all cores of the cluster.
    ddr_bandwidth: float = 42.6 * GB
    #: aggregate GSM crossbar bandwidth (assumption: 64 B/cycle/port * 4
    #: ports at 1.8 GHz ~= 460 GB/s; the paper only says "crossbar").
    gsm_bandwidth: float = 460.8 * GB
    dma: DmaConfig = field(default_factory=DmaConfig)
    #: cycles for a full-cluster software barrier (assumption).
    barrier_cycles: int = 400

    @property
    def peak_flops(self) -> float:
        """Peak FP32 FLOP/s of the cluster (2764.8 GFLOPS with 8 cores)."""
        return self.n_cores * self.core.peak_flops

    def with_cores(self, n: int) -> "ClusterConfig":
        """A copy of this cluster restricted to ``n`` cores (Fig. 6)."""
        if not 1 <= n <= self.n_cores:
            raise ConfigError(f"core count {n} outside 1..{self.n_cores}")
        return replace(self, n_cores=n)

    def validate(self) -> None:
        if self.n_cores < 1:
            raise ConfigError("cluster needs at least one core")
        if self.gsm_bytes <= 0:
            raise ConfigError("GSM capacity must be positive")
        if self.ddr_bandwidth <= 0 or self.gsm_bandwidth <= 0:
            raise ConfigError("bandwidths must be positive")
        self.core.validate()
        self.dma.validate()


@dataclass(frozen=True)
class CpuConfig:
    """The 16-core ARMv8 CPU of FT-m7032 (baseline for Fig. 7).

    Peak single-precision performance is 281.6 GFLOPS (paper, Section II):
    16 cores x 2.2 GHz x 8 FP32 FLOPs/cycle.  It shares the same 42.6 GB/s
    main-memory bandwidth figure the paper uses for the comparison
    ("based on the same bandwidth").
    """

    n_cores: int = 16
    clock_hz: float = 2.2e9
    flops_per_cycle: int = 8  # one 128-bit FMA pipe: 4 lanes x 2 FLOPs
    ddr_bandwidth: float = 42.6 * GB
    #: OpenBLAS-like blocked-GEMM parameters of the analytic model.
    mr: int = 8
    nr: int = 12
    mc: int = 128
    kc: int = 384
    nc: int = 4032
    #: sustained fraction of peak of the inner kernel on large square GEMM.
    kernel_peak_fraction: float = 0.92
    l2_bytes: int = 512 * KIB
    #: K extent at which the inner kernel reaches half its sustained rate
    #: (loop setup, edge handling, packing-amortization — assumption).
    k_half: int = 64
    #: achieved streaming bandwidth per CPU core under OpenBLAS's access
    #: patterns, and the aggregate ceiling.  The FT-m7032 CPU is a cut-down
    #: management processor; these values are calibrated so the OpenBLAS
    #: baseline lands in the 5-30 GFLOPS range published for irregular
    #: SGEMM on Phytium CPUs (LibShalom, SC'21) and reproduces the paper's
    #: <= 3.1x efficiency deficit vs ftIMM (Fig. 7).
    stream_bw_per_core: float = 1.5e9
    stream_bw_cap: float = 2.4e9
    #: extra main-memory round trips caused by packing A and B panels.
    pack_round_trips: float = 1.0
    #: fork/join cost of one threaded panel region.
    fork_join_seconds: float = 12e-6
    #: minimum rows of an M-split chunk for OpenBLAS to give it a thread.
    thread_rows_min: int = 16

    @property
    def peak_flops(self) -> float:
        return self.n_cores * self.clock_hz * self.flops_per_cycle

    def validate(self) -> None:
        if self.n_cores < 1 or self.clock_hz <= 0:
            raise ConfigError("CPU config invalid")
        if not 0 < self.kernel_peak_fraction <= 1:
            raise ConfigError("kernel_peak_fraction must be in (0, 1]")


@dataclass(frozen=True)
class MachineConfig:
    """Top-level FT-m7032 model: one GPDSP cluster + the multi-core CPU.

    The paper's experiments use a single GPDSP cluster, so the machine model
    exposes one; the full chip has four identical clusters.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    n_clusters: int = 4

    def validate(self) -> "MachineConfig":
        self.cluster.validate()
        self.cpu.validate()
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")
        return self


#: The reference machine all experiments run on.
FT_M7032 = MachineConfig().validate()


def default_machine() -> MachineConfig:
    """Return the validated FT-m7032 reference configuration."""
    return FT_M7032
