"""Hardware model of the FT-m7032 GPDSP cluster.

Submodules:

* :mod:`repro.hw.config` — machine parameters (the reference ``FT_M7032``).
* :mod:`repro.hw.memory` — software-managed memory spaces with capacity
  enforcement.
* :mod:`repro.hw.event_sim` — the discrete-event simulation kernel.
* :mod:`repro.hw.bandwidth` — shared (processor-sharing) bandwidth channels.
* :mod:`repro.hw.dma` — DMA descriptors, timing model and engine.
* :mod:`repro.hw.cluster` — cluster assemblies for functional and timed runs.
"""

from .bandwidth import LocalChannel, SharedChannel
from .cluster import ClusterSim, ClusterSpaces, CoreSim
from .config import (
    ClusterConfig,
    CpuConfig,
    DmaConfig,
    DspCoreConfig,
    FT_M7032,
    LatencyConfig,
    MachineConfig,
    default_machine,
)
from .dma import DmaDescriptor, DmaEngine, DmaTimingModel
from .event_sim import AllOf, Event, Process, Resource, Simulator, Timeout
from .memory import Buffer, MemKind, MemorySpace

__all__ = [
    "AllOf",
    "Buffer",
    "ClusterConfig",
    "ClusterSim",
    "ClusterSpaces",
    "CoreSim",
    "CpuConfig",
    "DmaConfig",
    "DmaDescriptor",
    "DmaEngine",
    "DmaTimingModel",
    "DspCoreConfig",
    "Event",
    "FT_M7032",
    "LatencyConfig",
    "LocalChannel",
    "MachineConfig",
    "MemKind",
    "MemorySpace",
    "Process",
    "Resource",
    "SharedChannel",
    "Simulator",
    "Timeout",
    "default_machine",
]
