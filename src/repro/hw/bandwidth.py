"""Shared-bandwidth channels with processor-sharing semantics.

The 42.6 GB/s DDR port of a GPDSP cluster is shared by the DMA engines of
all eight cores; when several cores stream A-panels concurrently, each sees
a fraction of the port.  This contention is the mechanism behind two of the
paper's observations: multi-core ftIMM saturating well below the roofline,
and the poor scaling of memory-bound shapes in Fig. 6.

:class:`SharedChannel` models the port as a fluid processor-sharing server:
``n`` concurrent transfers each progress at ``bandwidth / n``.  The DES
implementation is exact (no time-stepping): on every arrival/departure the
channel advances all flows by the elapsed time at the old rate and
reschedules the next completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .event_sim import Event, Simulator

_EPS_BYTES = 1e-6


@dataclass
class _Flow:
    remaining: float
    done: Event
    tag: str = ""


@dataclass
class ChannelStats:
    """Aggregate statistics, for tests and bandwidth-utilization reports."""

    bytes_served: float = 0.0
    flows_completed: int = 0
    busy_time: float = 0.0
    weighted_concurrency: float = 0.0  # integral of n_active dt
    #: busy time during which >1 flow shared the port (contention)
    contended_time: float = 0.0
    #: integral of (n_active - 1) dt — flow-seconds spent stalled behind
    #: other flows; the "contention stall" measure of the perf report
    stall_flow_seconds: float = 0.0

    def mean_concurrency(self) -> float:
        return self.weighted_concurrency / self.busy_time if self.busy_time else 0.0

    def contended_fraction(self, until: float) -> float:
        """Share of the whole run during which the port was contended."""
        return self.contended_time / until if until > 0 else 0.0


class SharedChannel:
    """A fluid-flow processor-sharing bandwidth server.

    ``per_flow_cap`` bounds the rate any single flow can draw — modeling a
    DMA channel's own sustainable bandwidth: one engine cannot saturate the
    whole DDR port, which is what makes multi-core GEMM scale at all on
    memory-bound shapes (Fig. 6).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        name: str = "",
        per_flow_cap: float | None = None,
        record_timeline: bool = False,
        degradation: list[tuple[float, float, float]] | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError(f"channel {name!r}: bandwidth must be > 0")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise SimulationError(f"channel {name!r}: cap must be > 0")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.per_flow_cap = float(per_flow_cap) if per_flow_cap else None
        self.name = name
        self.stats = ChannelStats()
        self._flows: list[_Flow] = []
        self._last_t = sim.now
        self._epoch = 0
        #: fault-injection degradation windows: sorted, non-overlapping
        #: ``(start_s, end_s, factor)`` triples scaling the port bandwidth
        #: during ``[start_s, end_s)``.  The fluid model stays exact: the
        #: wake-up scheduler never projects a completion across a window
        #: boundary, so every integration interval has a constant rate.
        self._windows: tuple[tuple[float, float, float], ...] = tuple(
            sorted(degradation or (), key=lambda w: w[0])
        )
        for start, end, factor in self._windows:
            if not (0.0 <= start < end and 0.0 < factor <= 1.0):
                raise SimulationError(
                    f"channel {name!r}: bad degradation window "
                    f"({start}, {end}, {factor})"
                )
        #: optional (time, aggregate_rate_bytes_per_s) step samples; one
        #: entry per membership change when enabled
        self.timeline: list[tuple[float, float]] | None = (
            [] if record_timeline else None
        )

    def _factor_at(self, t: float) -> float:
        for start, end, factor in self._windows:
            if start <= t < end:
                return factor
        return 1.0

    def _next_boundary(self, t: float) -> float | None:
        """The earliest window edge strictly after ``t``, if any."""
        for start, end, _factor in self._windows:
            if t < start:
                return start
            if t < end:
                return end
        return None

    def _aggregate_rate(self) -> float:
        n = len(self._flows)
        if n == 0:
            return 0.0
        per_flow = self.bandwidth * self._factor_at(self.sim.now) / n
        if self.per_flow_cap is not None:
            per_flow = min(per_flow, self.per_flow_cap)
        return per_flow * n

    def _record(self) -> None:
        if self.timeline is not None:
            self.timeline.append((self.sim.now, self._aggregate_rate()))

    # -- public API --------------------------------------------------------

    def transfer(self, nbytes: float, tag: str = "") -> Event:
        """Start a transfer of ``nbytes``; returns its completion event."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        done = Event(self.sim, name=f"xfer:{self.name}:{tag}")
        if nbytes == 0:
            self.sim._schedule_at(self.sim.now, done, None)
            return done
        self._advance()
        self._flows.append(_Flow(float(nbytes), done, tag))
        self._record()
        self._reschedule()
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate(self) -> float:
        """Per-flow bandwidth right now (full bandwidth when idle)."""
        n = max(1, len(self._flows))
        rate = self.bandwidth * self._factor_at(self.sim.now) / n
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return rate

    # -- internals ---------------------------------------------------------

    def _advance(self) -> None:
        """Apply progress accumulated since the last state change."""
        now = self.sim.now
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0 or not self._flows:
            return
        n = len(self._flows)
        # rate is constant over [last_t, now]: wake-ups are capped at
        # window boundaries, so no interval straddles a factor change
        rate = self.bandwidth * self._factor_at(now - dt) / n
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        served = dt * rate
        self.stats.busy_time += dt
        self.stats.weighted_concurrency += n * dt
        if n > 1:
            self.stats.contended_time += dt
            self.stats.stall_flow_seconds += (n - 1) * dt
        finished: list[_Flow] = []
        for flow in self._flows:
            flow.remaining -= served
            self.stats.bytes_served += min(served, served + flow.remaining)
            if flow.remaining <= _EPS_BYTES:
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            self.stats.flows_completed += 1
            flow.done.succeed(None)
        if finished:
            self._record()

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion.

        With degradation windows the projection is capped at the next
        window boundary: the wake-up there re-integrates at the old rate
        and re-projects at the new one, keeping the fluid model exact
        under a piecewise-constant port bandwidth.
        """
        self._epoch += 1
        if not self._flows:
            return
        epoch = self._epoch
        n = len(self._flows)
        rate = self.bandwidth * self._factor_at(self.sim.now) / n
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        min_remaining = min(f.remaining for f in self._flows)
        delay = min_remaining / rate
        boundary = self._next_boundary(self.sim.now)
        if boundary is not None:
            delay = min(delay, boundary - self.sim.now)
        wake = Event(self.sim, name=f"wake:{self.name}")
        wake.wait(lambda _ev: self._on_wake(epoch))
        self.sim._schedule_at(self.sim.now + delay, wake, None)

    def _on_wake(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # stale wake-up: membership changed since it was armed
        self._advance()
        self._reschedule()


class LocalChannel:
    """Uncontended fixed-bandwidth link (per-core SM/AM side of a DMA).

    Transfers each take ``nbytes / bandwidth`` independent of concurrency;
    serialization, when it matters, is enforced by the DMA engine's channel
    Resource, not by the link.
    """

    def __init__(self, sim: Simulator, bandwidth: float, name: str = "") -> None:
        if bandwidth <= 0:
            raise SimulationError(f"channel {name!r}: bandwidth must be > 0")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.name = name
        self.stats = ChannelStats()

    def transfer(self, nbytes: float, tag: str = "") -> Event:
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        self.stats.bytes_served += nbytes
        self.stats.flows_completed += 1
        delay = nbytes / self.bandwidth
        self.stats.busy_time += delay
        self.stats.weighted_concurrency += delay
        return self.sim.timeout(delay)

    @property
    def active_flows(self) -> int:  # parity with SharedChannel
        return 0

    def current_rate(self) -> float:
        return self.bandwidth


def mean_utilization(
    timeline: list[tuple[float, float]], bandwidth: float, until: float
) -> float:
    """Time-averaged fraction of ``bandwidth`` drawn, from step samples."""
    if not timeline or until <= 0:
        return 0.0
    total = 0.0
    for (t0, rate), (t1, _r) in zip(timeline, timeline[1:]):
        total += rate * (t1 - t0)
    last_t, last_rate = timeline[-1]
    total += last_rate * max(0.0, until - last_t)
    return total / (bandwidth * until)
