"""GPDSP-cluster assemblies.

Two views of a cluster exist, matching the two execution modes:

* :class:`ClusterSpaces` — just the memory spaces (DDR, GSM, per-core SM/AM),
  used by the functional executor to enforce capacities while computing real
  results with NumPy.
* :class:`ClusterSim` — the discrete-event world: shared DDR/GSM bandwidth
  channels, one DMA engine + one compute pipeline per core, and a barrier,
  used by the timed executor.
"""

from __future__ import annotations

from ..errors import ConfigError
from .bandwidth import LocalChannel, SharedChannel
from .config import ClusterConfig
from .dma import Channel, DmaEngine
from .event_sim import Event, Resource, Simulator
from .memory import MemKind, MemorySpace

#: DDR is modeled as effectively unbounded for allocation purposes; the
#: operands of the largest experiment (M = 2^22) would occupy ~4 GB.
_DDR_CAPACITY = 1 << 40


class ClusterSpaces:
    """Memory spaces of one cluster, for capacity-checked functional runs."""

    def __init__(self, cfg: ClusterConfig) -> None:
        self.cfg = cfg
        self.ddr = MemorySpace("ddr", MemKind.DDR, _DDR_CAPACITY)
        self.gsm = MemorySpace("gsm", MemKind.GSM, cfg.gsm_bytes)
        self.am = [
            MemorySpace(f"am{i}", MemKind.AM, cfg.core.am_bytes)
            for i in range(cfg.n_cores)
        ]
        self.sm = [
            MemorySpace(f"sm{i}", MemKind.SM, cfg.core.sm_bytes)
            for i in range(cfg.n_cores)
        ]

    def space(self, kind: MemKind, core_id: int = 0) -> MemorySpace:
        if kind is MemKind.DDR:
            return self.ddr
        if kind is MemKind.GSM:
            return self.gsm
        if not 0 <= core_id < self.cfg.n_cores:
            raise ConfigError(f"core id {core_id} outside cluster")
        return self.am[core_id] if kind is MemKind.AM else self.sm[core_id]

    def reset(self) -> None:
        for space in [self.ddr, self.gsm, *self.am, *self.sm]:
            space.reset()

    def peak_report(self) -> dict[str, int]:
        """Peak bytes used per space — handy for blocking-plan diagnostics."""
        report = {"gsm": self.gsm.peak_used}
        for i, (a, s) in enumerate(zip(self.am, self.sm)):
            report[f"am{i}"] = a.peak_used
            report[f"sm{i}"] = s.peak_used
        return report


class CoreSim:
    """DES resources of one DSP core: a DMA engine and a compute pipeline."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        cluster_cfg: ClusterConfig,
        channels: dict[MemKind, Channel],
        faults=None,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.cfg = cluster_cfg.core
        self.dma = DmaEngine(
            sim, core_id, cluster_cfg.core, cluster_cfg.dma, channels,
            faults=faults,
        )
        #: the vector pipeline runs one micro-kernel at a time.
        self.compute = Resource(sim, 1, name=f"vpu{core_id}")
        self.compute_cycles = 0
        self.busy_time = 0.0

    def run_kernel(self, cycles: int, tag: str = "") -> Event:
        """Occupy the compute pipeline for ``cycles`` cycles."""
        return self.sim.process(self._compute(cycles), name=f"k{self.core_id}:{tag}")

    def _compute(self, cycles: int):
        yield self.compute.request()
        try:
            duration = cycles / self.cfg.clock_hz
            self.compute_cycles += cycles
            self.busy_time += duration
            yield self.sim.timeout(duration)
        finally:
            self.compute.release()


class ClusterSim:
    """The full DES world for one GPDSP cluster."""

    def __init__(
        self,
        cfg: ClusterConfig,
        sim: Simulator | None = None,
        *,
        record_bandwidth: bool = False,
        faults=None,
    ) -> None:
        self.cfg = cfg
        self.sim = sim or Simulator()
        achieved_ddr = cfg.ddr_bandwidth * cfg.dma.ddr_efficiency
        degradation = None
        if faults is not None and faults.plan.ddr_degradation:
            degradation = [
                (w.start_s, w.end_s, w.factor)
                for w in faults.plan.ddr_degradation
            ]
        self.ddr_channel = SharedChannel(
            self.sim, achieved_ddr, name="ddr",
            per_flow_cap=cfg.dma.channel_bandwidth,
            record_timeline=record_bandwidth,
            degradation=degradation,
        )
        self.gsm_channel = SharedChannel(self.sim, cfg.gsm_bandwidth, name="gsm")
        local_bw = cfg.core.am_bytes_per_cycle * cfg.core.clock_hz
        channels: dict[MemKind, Channel] = {
            MemKind.DDR: self.ddr_channel,
            MemKind.GSM: self.gsm_channel,
            MemKind.AM: LocalChannel(self.sim, local_bw, name="local"),
        }
        channels[MemKind.SM] = channels[MemKind.AM]
        self.cores = [
            CoreSim(self.sim, i, cfg, channels, faults=faults)
            for i in range(cfg.n_cores)
        ]

    def barrier(self, arrivals: list[Event], tag: str = "") -> Event:
        """All-cores synchronization: fires ``barrier_cycles`` after the last
        arrival event."""
        gathered = self.sim.all_of(arrivals, name=f"barrier:{tag}")
        done = self.sim.event(name=f"barrier_done:{tag}")
        delay = self.cfg.barrier_cycles / self.cfg.core.clock_hz

        def _release(_ev: Event) -> None:
            released = self.sim.timeout(delay)
            released.wait(lambda _e: done.succeed(None))

        gathered.wait(_release)
        return done

    def reduction_seconds(self, nbytes: int, n_cores: int) -> float:
        return reduction_seconds(self.cfg, nbytes, n_cores)

    def elapsed(self) -> float:
        return self.sim.now


def reduction_seconds(cfg: ClusterConfig, nbytes: int, n_cores: int) -> float:
    """Cost of a GSM-based all-reduce of an ``nbytes`` partial per core.

    Model (Alg. 5, line 12): every core writes its partial tile to GSM,
    then the cores cooperatively read all partials back, add them, and
    one result is written to DDR.  Traffic: ``n_cores`` writes +
    ``n_cores`` reads of the tile over the GSM crossbar, plus one
    DDR write, plus the vector adds (3 FMAC-equivalent add units).
    This overhead grows with core count — the reason the K-parallel
    strategy scales worst in the paper's Fig. 6.
    """
    if n_cores <= 1:
        return nbytes / cfg.ddr_bandwidth
    gsm_traffic = 2.0 * n_cores * nbytes
    t_gsm = gsm_traffic / cfg.gsm_bandwidth
    t_ddr = nbytes / cfg.ddr_bandwidth
    lanes = cfg.core.fma_lanes_per_cycle * 4  # bytes of adds per cycle
    add_cycles = (n_cores - 1) * nbytes / (lanes * max(1, n_cores))
    t_add = add_cycles / cfg.core.clock_hz
    t_barrier = cfg.barrier_cycles / cfg.core.clock_hz
    return t_gsm + t_ddr + t_add + t_barrier
