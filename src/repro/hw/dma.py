"""DMA engine model: 2-D strided descriptors and their timing.

Each DSP core owns a DMA engine used to move tiles between DDR, GSM, SM and
AM (Fig. 2).  A descriptor describes a 2-D transfer: ``rows`` rows of
``row_bytes`` contiguous bytes each (strides exist in the real hardware but
only the row geometry affects timing, via per-row burst overhead).

Timing of one descriptor::

    startup  +  effective_bytes / bandwidth(medium, contention)

* ``startup`` — engine programming + first-burst latency
  (``DmaConfig.startup_cycles``).
* ``effective_bytes`` — ``rows * (row_bytes + row_overhead)`` when the
  transfer touches DDR: short rows waste DDR bursts.  On-chip media move
  exactly ``rows * row_bytes``.
* the *medium* is the slowest memory touched: DDR if either endpoint is
  DDR, else GSM if either endpoint is GSM, else the core-local link.

The per-row overhead is what makes measured DDR bandwidth fall short of the
theoretical 42.6 GB/s for skinny tiles — the effect the paper invokes to
explain ftIMM reaching only ~67% of its roofline (Section V-C1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import DmaTransferError, PlanError
from ..obs.trace import current_tracer
from .bandwidth import LocalChannel, SharedChannel
from .config import DmaConfig, DspCoreConfig
from .event_sim import Event, Resource, Simulator
from .memory import MemKind

Channel = Union[SharedChannel, LocalChannel]


@dataclass(frozen=True)
class DmaDescriptor:
    """One 2-D DMA transfer: ``rows`` rows of ``row_bytes`` each."""

    src: MemKind
    dst: MemKind
    rows: int
    row_bytes: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.rows < 0 or self.row_bytes < 0:
            raise PlanError(f"negative DMA geometry in {self}")

    @property
    def nbytes(self) -> int:
        return self.rows * self.row_bytes

    @property
    def medium(self) -> MemKind:
        """The slowest memory level this transfer touches."""
        kinds = {self.src, self.dst}
        if MemKind.DDR in kinds:
            return MemKind.DDR
        if MemKind.GSM in kinds:
            return MemKind.GSM
        return MemKind.AM

    def effective_bytes(self, cfg: DmaConfig) -> int:
        if self.medium is MemKind.DDR:
            return self.rows * (self.row_bytes + cfg.row_overhead_bytes)
        return self.nbytes


class DmaTimingModel:
    """Pure (simulator-free) timing of a descriptor at a known bandwidth.

    Used by the analytic executor, which composes closed-form loop times
    instead of simulating each transfer.
    """

    def __init__(self, core: DspCoreConfig, dma: DmaConfig) -> None:
        self.core = core
        self.dma = dma
        self.startup_s = dma.startup_cycles / core.clock_hz
        self.local_bandwidth = core.am_bytes_per_cycle * core.clock_hz

    def seconds(self, desc: DmaDescriptor, bandwidth: float) -> float:
        """Duration at a fixed ``bandwidth`` for the shared medium."""
        if desc.medium is MemKind.AM:
            bandwidth = self.local_bandwidth
        if desc.nbytes == 0:
            return 0.0
        return self.startup_s + desc.effective_bytes(self.dma) / bandwidth


class DmaEngine:
    """The per-core DMA engine, for discrete-event execution.

    ``channels_per_core`` descriptors may be in flight concurrently; further
    requests queue FIFO at the engine.  The data movement itself is charged
    to the medium's bandwidth channel (shared for DDR/GSM).
    """

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        core_cfg: DspCoreConfig,
        dma_cfg: DmaConfig,
        channels: dict[MemKind, Channel],
        faults=None,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.cfg = dma_cfg
        self.core_cfg = core_cfg
        self.channels = channels
        self.slots = Resource(sim, dma_cfg.channels_per_core, name=f"dma{core_id}")
        self.startup_s = dma_cfg.startup_cycles / core_cfg.clock_hz
        self.bytes_moved = 0
        self.transfers = 0
        #: optional :class:`~repro.faults.inject.FaultInjector`; when set,
        #: transfers can fail (seeded) and are retried with exponential
        #: backoff — every retry costed in simulated time.
        self.faults = faults
        self._issued = 0
        #: failed-transfer retries performed, and the simulated seconds
        #: they consumed (wasted transfer time + backoff)
        self.retries = 0
        self.retry_s = 0.0
        # observation-only accounting (never feeds back into timing):
        #: total seconds descriptors waited for a free engine channel
        self.queue_wait_s = 0.0
        #: high-water mark of descriptors queued behind the channels
        self.queue_depth_peak = 0
        #: payload bytes moved, keyed by medium value ("ddr", "gsm", "am")
        self.bytes_by_medium: dict[str, int] = {}

    def issue(self, desc: DmaDescriptor) -> Event:
        """Start a transfer; returns the event that fires at completion."""
        return self.sim.process(self._run(desc), name=f"dma{self.core_id}:{desc.tag}")

    def _run(self, desc: DmaDescriptor):
        queued = self.slots.queued
        if queued + 1 > self.queue_depth_peak and self.slots.in_use >= self.slots.capacity:
            self.queue_depth_peak = queued + 1
        t_request = self.sim.now
        yield self.slots.request()
        self.queue_wait_s += self.sim.now - t_request
        try:
            if desc.nbytes > 0:
                issue_idx = self._issued
                self._issued += 1
                attempt = 0
                while True:
                    t0 = self.sim.now
                    yield self.sim.timeout(self.startup_s)
                    channel = self.channels[desc.medium]
                    yield channel.transfer(
                        desc.effective_bytes(self.cfg), tag=desc.tag
                    )
                    inj = self.faults
                    if inj is None or not inj.dma_transfer_fails(
                        self.core_id, issue_idx, attempt
                    ):
                        break
                    # transfer failed: the time it took is already spent;
                    # back off exponentially, then re-issue from scratch
                    attempt += 1
                    wasted = self.sim.now - t0
                    if attempt > inj.plan.max_dma_retries:
                        self.retries += 1
                        self.retry_s += wasted
                        inj.count("dma_retries")
                        inj.count("dma_retry_s", wasted)
                        raise DmaTransferError(
                            f"DMA {desc.tag!r} on core {self.core_id} failed "
                            f"{attempt} times (giving up at "
                            f"t={self.sim.now:.3e}s)"
                        )
                    backoff = inj.backoff_s(attempt, self.core_cfg.clock_hz)
                    tracer = current_tracer()
                    if tracer is not None:
                        tracer.instant(
                            f"dma-retry {desc.tag or 'transfer'}",
                            at_s=self.sim.now,
                            category="dma-retry",
                            track=f"core{self.core_id}/dma",
                            args={"core": self.core_id, "attempt": attempt,
                                  "wasted_s": wasted, "backoff_s": backoff},
                        )
                    yield self.sim.timeout(backoff)
                    self.retries += 1
                    self.retry_s += wasted + backoff
                    inj.count("dma_retries")
                    inj.count("dma_retry_s", wasted + backoff)
                self.bytes_moved += desc.nbytes
                medium = desc.medium.value
                self.bytes_by_medium[medium] = (
                    self.bytes_by_medium.get(medium, 0) + desc.nbytes
                )
                tracer = current_tracer()
                if tracer is not None:
                    # queue wait + startup + transfer (+ retries), end to end
                    tracer.record(
                        desc.tag or "dma",
                        category="dma",
                        start_s=t_request,
                        end_s=self.sim.now,
                        track=f"core{self.core_id}/dma",
                        args={"core": self.core_id, "bytes": desc.nbytes,
                              "medium": medium, "rows": desc.rows},
                    )
            self.transfers += 1
        finally:
            self.slots.release()
