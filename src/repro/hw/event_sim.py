"""A small discrete-event simulation (DES) kernel.

This is the substrate under the timed executor: DMA engines, compute units
and shared-bandwidth channels are modeled as processes and resources on one
simulated clock.  The design follows the classic generator-based pattern
(processes are Python generators that ``yield`` events; the simulator resumes
them when the event fires), kept deliberately small:

* :class:`Event` — one-shot occurrence carrying an optional value.
* :class:`Timeout` — event that fires after a simulated delay.
* :class:`Process` — wraps a generator; itself an event that fires when the
  generator returns (value = the generator's return value).
* :class:`AllOf` — barrier over a set of events.
* :class:`Resource` — FIFO resource with integer capacity (DMA channels,
  the single compute pipeline of a core).

Time is in **seconds** (float).  Determinism: ties on the event heap break on
a monotonically increasing sequence number, so runs are exactly repeatable.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot event.  Processes wait on it by ``yield``-ing it."""

    __slots__ = ("sim", "callbacks", "_value", "triggered", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self.triggered = False
        self.name = name

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately (at the current simulated time)."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def wait(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs immediately if already triggered."""
        if self.triggered:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.triggered else "pending"
        return f"Event({self.name or hex(id(self))}, {state})"


class Timeout(Event):
    """Event that fires ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        super().__init__(sim, name=f"timeout+{delay:g}")
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        sim._schedule_at(sim.now + delay, self, value)


class Process(Event):
    """Drives a generator; fires (as an event) when the generator returns."""

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(gen, "__name__", "proc"))
        self._gen = gen
        # start the process at the current time, not synchronously, so a
        # spawner can create several processes "at once"
        start = Event(sim, name=f"start:{self.name}")
        start.wait(self._resume)
        sim._schedule_at(sim.now, start, None)

    def _resume(self, event: Event) -> None:
        self.sim._wakeups += 1
        try:
            target = self._gen.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        target.wait(self._resume)


class AllOf(Event):
    """Fires when every event in ``events`` has fired (a barrier).

    Value is the list of the constituent events' values, in input order.
    """

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str = "") -> None:
        super().__init__(sim, name=name or "all_of")
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            sim._schedule_at(sim.now, self, [])
            return
        for ev in self._events:
            ev.wait(self._one_done)

    def _one_done(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev.value for ev in self._events])


class Simulator:
    """Event loop: a heap of (time, seq, event, value) to trigger."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event, Any]] = []
        self._seq = 0
        self._processed = 0
        self._heap_peak = 0
        self._wakeups = 0

    # -- factory helpers ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        return AllOf(self, events, name)

    # -- scheduling --------------------------------------------------------

    def _schedule_at(self, when: float, event: Event, value: Any) -> None:
        if when < self.now - 1e-18:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event, value))
        if len(self._heap) > self._heap_peak:
            self._heap_peak = len(self._heap)

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Run until the heap drains (or simulated time passes ``until``).

        Returns the final simulation time.  ``max_events`` is a runaway
        guard; real experiments stay far below it.
        """
        while self._heap:
            when, _seq, event, value = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            self._processed += 1
            if self._processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; likely a runaway process"
                )
            if not event.triggered:
                event.succeed(value)
        return self.now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def heap_peak(self) -> int:
        """High-water mark of the pending-event heap."""
        return self._heap_peak

    @property
    def process_wakeups(self) -> int:
        """Times any process generator was resumed."""
        return self._wakeups


class Resource:
    """FIFO resource with integer capacity.

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot.  Used for DMA channels (capacity =
    channels_per_core) and the compute pipeline (capacity = 1).
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue")

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r} capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()

    def request(self) -> Event:
        ev = Event(self.sim, name=f"req:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim._schedule_at(self.sim.now, ev, None)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            self.sim._schedule_at(self.sim.now, nxt, None)
        else:
            self._in_use -= 1

    def use(self, duration: float) -> ProcessGen:
        """Convenience process: acquire, hold for ``duration``, release."""
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)
