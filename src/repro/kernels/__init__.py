"""Micro-kernel generation (the paper's Section IV-A).

:func:`~repro.kernels.generator.generate_kernel` turns a
:class:`~repro.kernels.spec.KernelSpec` into a scheduled, interpretable,
cycle-modeled :class:`~repro.kernels.generator.MicroKernel`;
:func:`~repro.kernels.tgemm_kernel.generate_tgemm_kernel` builds the
traditional fixed 6x96 kernel with implicit padding;
:class:`~repro.kernels.registry.KernelRegistry` memoizes generation.
"""

from .generator import (
    GENERATOR_VERSION,
    BlockInfo,
    MicroKernel,
    generate_kernel,
    max_m_u,
    select_tiling,
)
from .registry import (
    KernelDiskCache,
    KernelRegistry,
    default_cache_dir,
    registry_for,
)
from .serialize import (
    KERNEL_FORMAT,
    instr_from_dict,
    instr_to_dict,
    kernel_from_dict,
    kernel_to_dict,
    program_from_dict,
    program_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from .spec import KernelSpec, MAX_M_S, MAX_N_A
from .tgemm_kernel import TGEMM_M_S, TGEMM_N_A, generate_tgemm_kernel

__all__ = [
    "BlockInfo",
    "GENERATOR_VERSION",
    "KERNEL_FORMAT",
    "KernelDiskCache",
    "KernelRegistry",
    "KernelSpec",
    "MAX_M_S",
    "MAX_N_A",
    "MicroKernel",
    "TGEMM_M_S",
    "TGEMM_N_A",
    "default_cache_dir",
    "generate_kernel",
    "generate_tgemm_kernel",
    "instr_from_dict",
    "instr_to_dict",
    "kernel_from_dict",
    "kernel_to_dict",
    "max_m_u",
    "program_from_dict",
    "program_to_dict",
    "registry_for",
    "schedule_from_dict",
    "schedule_to_dict",
    "select_tiling",
]
