"""Serialization of generated kernel programs.

A generated kernel is ultimately data — instructions, tilings, a schedule.
Serializing the *program* (not the schedule: rescheduling is deterministic
and cheap relative to I/O) enables:

* persisting a kernel cache across processes,
* diffing generated code between library versions,
* feeding the instruction stream to external tools.

Round-trip guarantee: ``program_from_dict(program_to_dict(p))`` produces a
program that renders, schedules and interprets identically (tested).
"""

from __future__ import annotations

from ..errors import IsaError
from ..isa.instructions import Affine, Instr, MemRef, Opcode
from ..isa.program import KernelProgram, LoopProgram


def _affine_to_dict(a: Affine) -> dict:
    return {"base": a.base, "step": a.step}


def _affine_from_dict(d: dict) -> Affine:
    return Affine(int(d["base"]), int(d["step"]))


def instr_to_dict(instr: Instr) -> dict:
    out: dict = {"op": instr.op.value}
    if instr.dsts:
        out["dsts"] = list(instr.dsts)
    if instr.srcs:
        out["srcs"] = list(instr.srcs)
    if instr.mem is not None:
        out["mem"] = {
            "array": instr.mem.array,
            "row": _affine_to_dict(instr.mem.row),
            "col": _affine_to_dict(instr.mem.col),
        }
    if instr.imm:
        out["imm"] = instr.imm
    if instr.tag:
        out["tag"] = instr.tag
    return out


def instr_from_dict(d: dict) -> Instr:
    try:
        op = Opcode(d["op"])
    except ValueError as exc:
        raise IsaError(f"unknown opcode {d.get('op')!r}") from exc
    mem = None
    if "mem" in d:
        mem = MemRef(
            d["mem"]["array"],
            _affine_from_dict(d["mem"]["row"]),
            _affine_from_dict(d["mem"]["col"]),
        )
    return Instr(
        op,
        dsts=tuple(d.get("dsts", ())),
        srcs=tuple(d.get("srcs", ())),
        mem=mem,
        imm=float(d.get("imm", 0.0)),
        tag=d.get("tag", ""),
    )


def program_to_dict(program: KernelProgram) -> dict:
    return {
        "meta": dict(program.meta),
        "blocks": [
            {
                "row0": block.row0,
                "rows": block.rows,
                "trip": block.trip,
                "setup": [instr_to_dict(i) for i in block.setup],
                "body": [instr_to_dict(i) for i in block.body],
                "teardown": [instr_to_dict(i) for i in block.teardown],
            }
            for block in program.blocks
        ],
    }


def program_from_dict(d: dict) -> KernelProgram:
    blocks = [
        LoopProgram(
            setup=[instr_from_dict(i) for i in raw["setup"]],
            body=[instr_from_dict(i) for i in raw["body"]],
            trip=int(raw["trip"]),
            teardown=[instr_from_dict(i) for i in raw["teardown"]],
            row0=int(raw.get("row0", 0)),
            rows=int(raw.get("rows", 0)),
        )
        for raw in d["blocks"]
    ]
    return KernelProgram(blocks, meta=dict(d.get("meta", {})))
