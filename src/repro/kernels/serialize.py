"""Serialization of generated kernel programs, schedules and kernels.

A generated kernel is ultimately data — instructions, tilings, a schedule.
Serializing it enables:

* persisting a kernel cache across processes (see
  :class:`repro.kernels.registry.KernelDiskCache`),
* diffing generated code between library versions,
* feeding the instruction stream to external tools.

Schedules are stored compactly: only issue times, unit assignments and the
initiation interval are written.  Dependence edges are *recomputed* at load
time (``build_dependences`` is deterministic) and the reloaded schedule is
re-verified with :func:`~repro.isa.scheduler.verify_schedule`, so a stale
or hand-edited file cannot smuggle in an illegal schedule.

Round-trip guarantee: ``program_from_dict(program_to_dict(p))`` produces a
program that renders, schedules and interprets identically, and
``kernel_from_dict(kernel_to_dict(k), core)`` an equivalent kernel
(both tested).
"""

from __future__ import annotations

from ..errors import IsaError
from ..hw.config import DspCoreConfig
from ..isa.instructions import Affine, Instr, MemRef, Opcode
from ..isa.program import KernelProgram, LoopProgram, build_dependences
from ..isa.scheduler import Schedule, verify_schedule
from ..isa.units import UnitClass, UnitFile, units_for
from .generator import BlockInfo, MicroKernel
from .spec import KernelSpec

#: bump when the on-disk kernel layout changes incompatibly.
KERNEL_FORMAT = 1


def _affine_to_dict(a: Affine) -> dict:
    return {"base": a.base, "step": a.step}


def _affine_from_dict(d: dict) -> Affine:
    return Affine(int(d["base"]), int(d["step"]))


def instr_to_dict(instr: Instr) -> dict:
    out: dict = {"op": instr.op.value}
    if instr.dsts:
        out["dsts"] = list(instr.dsts)
    if instr.srcs:
        out["srcs"] = list(instr.srcs)
    if instr.mem is not None:
        out["mem"] = {
            "array": instr.mem.array,
            "row": _affine_to_dict(instr.mem.row),
            "col": _affine_to_dict(instr.mem.col),
        }
    if instr.imm:
        out["imm"] = instr.imm
    if instr.tag:
        out["tag"] = instr.tag
    return out


def instr_from_dict(d: dict) -> Instr:
    try:
        op = Opcode(d["op"])
    except ValueError as exc:
        raise IsaError(f"unknown opcode {d.get('op')!r}") from exc
    mem = None
    if "mem" in d:
        mem = MemRef(
            d["mem"]["array"],
            _affine_from_dict(d["mem"]["row"]),
            _affine_from_dict(d["mem"]["col"]),
        )
    return Instr(
        op,
        dsts=tuple(d.get("dsts", ())),
        srcs=tuple(d.get("srcs", ())),
        mem=mem,
        imm=float(d.get("imm", 0.0)),
        tag=d.get("tag", ""),
    )


def program_to_dict(program: KernelProgram) -> dict:
    return {
        "meta": dict(program.meta),
        "blocks": [
            {
                "row0": block.row0,
                "rows": block.rows,
                "trip": block.trip,
                "setup": [instr_to_dict(i) for i in block.setup],
                "body": [instr_to_dict(i) for i in block.body],
                "teardown": [instr_to_dict(i) for i in block.teardown],
            }
            for block in program.blocks
        ],
    }


def program_from_dict(d: dict) -> KernelProgram:
    blocks = [
        LoopProgram(
            setup=[instr_from_dict(i) for i in raw["setup"]],
            body=[instr_from_dict(i) for i in raw["body"]],
            trip=int(raw["trip"]),
            teardown=[instr_from_dict(i) for i in raw["teardown"]],
            row0=int(raw.get("row0", 0)),
            rows=int(raw.get("rows", 0)),
        )
        for raw in d["blocks"]
    ]
    return KernelProgram(blocks, meta=dict(d.get("meta", {})))


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------


def schedule_to_dict(sched: Schedule) -> dict:
    """Compact schedule: times + assignments + II (edges are recomputed)."""
    return {
        "ii": sched.ii,
        "times": list(sched.times),
        "assignments": [[cls.value, inst] for cls, inst in sched.assignments],
    }


def schedule_from_dict(
    d: dict, instrs: list[Instr], latencies, units: UnitFile
) -> Schedule:
    """Rebuild and *verify* a schedule for ``instrs`` from its dict form."""
    times = [int(t) for t in d["times"]]
    assignments = [
        (UnitClass(cls), int(inst)) for cls, inst in d["assignments"]
    ]
    if len(times) != len(instrs) or len(assignments) != len(instrs):
        raise IsaError(
            f"schedule length mismatch: {len(times)} times / "
            f"{len(assignments)} assignments for {len(instrs)} instructions"
        )
    ii = int(d["ii"])
    if not instrs:
        return Schedule([], [], [], 0, [], units)
    edges = build_dependences(instrs, latencies, loop=ii > 0)
    sched = Schedule(instrs, times, assignments, ii, edges, units)
    verify_schedule(sched, latencies)
    return sched


# ---------------------------------------------------------------------------
# whole kernels
# ---------------------------------------------------------------------------


def _block_info_to_dict(info: BlockInfo) -> dict:
    return {
        "row0": info.row0,
        "m_u": info.m_u,
        "k_u": info.k_u,
        "trip": info.trip,
        "ii": info.ii,
        "setup_cycles": info.setup_cycles,
        "body_cycles": info.body_cycles,
        "teardown_cycles": info.teardown_cycles,
    }


def kernel_to_dict(kern: MicroKernel) -> dict:
    """Serialize a generated kernel (program + schedules + cycle model).

    The core configuration is deliberately *not* stored: the disk cache
    keys on it, and the loader receives it explicitly, so a kernel can
    never be silently rehydrated against the wrong machine.
    """
    return {
        "format": KERNEL_FORMAT,
        "spec": {
            "m_s": kern.spec.m_s,
            "n_a": kern.spec.n_a,
            "k_a": kern.spec.k_a,
            "dtype": kern.spec.dtype,
        },
        "name": kern.name,
        "cycles": kern.cycles,
        "compute_n": kern.compute_n,
        "compute_k": kern.compute_k,
        "program": program_to_dict(kern.program),
        "blocks": [_block_info_to_dict(i) for i in kern.blocks],
        "setup_schedules": [schedule_to_dict(s) for s in kern.setup_schedules],
        "body_schedules": [schedule_to_dict(s) for s in kern.body_schedules],
        "teardown_schedules": [
            schedule_to_dict(s) for s in kern.teardown_schedules
        ],
    }


def kernel_from_dict(d: dict, core: DspCoreConfig) -> MicroKernel:
    """Rehydrate a kernel for ``core``; every schedule is re-verified."""
    if d.get("format") != KERNEL_FORMAT:
        raise IsaError(
            f"unsupported kernel format {d.get('format')!r}; "
            f"expected {KERNEL_FORMAT}"
        )
    spec = KernelSpec(**{k: d["spec"][k] for k in ("m_s", "n_a", "k_a", "dtype")})
    program = program_from_dict(d["program"])
    n_blocks = len(program.blocks)
    for key in ("setup_schedules", "body_schedules", "teardown_schedules"):
        if len(d[key]) != n_blocks:
            raise IsaError(
                f"{key}: {len(d[key])} entries for {n_blocks} blocks"
            )
    units = units_for(core)
    lat = core.latencies
    setup_scheds = [
        schedule_from_dict(s, blk.setup, lat, units)
        for s, blk in zip(d["setup_schedules"], program.blocks)
    ]
    body_scheds = [
        schedule_from_dict(s, blk.body, lat, units)
        for s, blk in zip(d["body_schedules"], program.blocks)
    ]
    teardown_scheds = [
        schedule_from_dict(s, blk.teardown, lat, units)
        for s, blk in zip(d["teardown_schedules"], program.blocks)
    ]
    blocks = [BlockInfo(**raw) for raw in d["blocks"]]
    return MicroKernel(
        spec=spec,
        core=core,
        program=program,
        body_schedules=body_scheds,
        setup_schedules=setup_scheds,
        teardown_schedules=teardown_scheds,
        blocks=blocks,
        cycles=int(d["cycles"]),
        compute_n=int(d["compute_n"]),
        compute_k=int(d["compute_k"]),
        name=str(d["name"]),
    )


# ---------------------------------------------------------------------------
# blocking plans (for the persistent plan database)
# ---------------------------------------------------------------------------

#: bump when the on-disk blocking-plan layout changes incompatibly.
PLAN_FORMAT = 1

_PLAN_KINDS = ("m", "k", "tgemm")


def plan_to_dict(strategy: str, plan) -> dict:
    """Serialize a blocking plan with its strategy tag and format stamp."""
    if strategy not in _PLAN_KINDS:
        raise IsaError(f"unknown plan strategy {strategy!r}")
    import dataclasses

    return {
        "format": PLAN_FORMAT,
        "strategy": strategy,
        "fields": dataclasses.asdict(plan),
    }


def plan_from_dict(d: dict):
    """Reconstruct ``(strategy, plan)``; raises :class:`IsaError` on junk."""
    from ..core.blocking import KPlan, MPlan, TgemmPlan

    if d.get("format") != PLAN_FORMAT:
        raise IsaError(
            f"unsupported plan format {d.get('format')!r}; "
            f"expected {PLAN_FORMAT}"
        )
    strategy = d.get("strategy")
    types = {"m": MPlan, "k": KPlan, "tgemm": TgemmPlan}
    if strategy not in types:
        raise IsaError(f"unknown plan strategy {strategy!r}")
    try:
        plan = types[strategy](**d["fields"])
    except (KeyError, TypeError) as exc:
        raise IsaError(f"malformed plan fields: {exc}") from exc
    return strategy, plan
