"""Kernel cache: in-memory memoization plus a persistent disk cache.

Generating a kernel involves modulo scheduling, which is the expensive part
of a GEMM *plan* (the paper generates assembly ahead of time and selects at
runtime).  Drivers request kernels through :class:`KernelRegistry`, which
memoizes by specification, so sweeping M in an experiment reuses kernels
instead of rescheduling per call.

Two levels:

* **memory** — per-registry dicts keyed by spec, as before;
* **disk** (:class:`KernelDiskCache`) — serialized kernels + schedules
  keyed by a digest of (kind, spec, core config, generator version,
  serialization format).  Repeat runs and autotuner worker processes skip
  modulo scheduling entirely.  Reloaded schedules are re-verified, and a
  corrupt or truncated cache file is treated as a miss and overwritten.

Cache location: ``$REPRO_KERNEL_CACHE`` if set (``0``/``off`` disables the
disk level), else ``~/.cache/repro/kernels``.  Files live in a
version-stamped subdirectory, so bumping ``GENERATOR_VERSION`` or
``KERNEL_FORMAT`` invalidates old entries without deleting them.

Hit/miss counters are published to :mod:`repro.obs` under
``kernels/cache/*`` whenever a metrics registry is active.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

from ..hw.config import DspCoreConfig
from ..obs.registry import current as _obs_current
from .generator import GENERATOR_VERSION, MicroKernel, generate_kernel
from .serialize import KERNEL_FORMAT, kernel_from_dict, kernel_to_dict
from .spec import KernelSpec
from .tgemm_kernel import generate_tgemm_kernel

_DISABLE_VALUES = ("", "0", "off", "none")


def _count(event: str) -> None:
    m = _obs_current()
    if m is not None:
        m.counter(f"kernels/cache/{event}").inc()


def default_cache_dir() -> Path | None:
    """Disk-cache root from ``$REPRO_KERNEL_CACHE`` (``0``/``off`` = no disk
    cache), defaulting to ``~/.cache/repro/kernels``."""
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env is not None:
        if env.strip().lower() in _DISABLE_VALUES:
            return None
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "kernels"


class KernelDiskCache:
    """Content-addressed store of serialized kernels.

    Entries are JSON files named by a SHA-256 digest of the full request
    key (kind + spec + core config + versions), under a subdirectory
    stamped with the generator and format versions.  Writes are atomic
    (temp file + rename) so concurrent worker processes never observe a
    partial entry; unreadable entries are treated as misses.
    """

    __slots__ = ("root",)

    def __init__(self, root: Path) -> None:
        self.root = Path(root) / f"v{GENERATOR_VERSION}-f{KERNEL_FORMAT}"

    @staticmethod
    def key(kind: str, params: dict, core: DspCoreConfig) -> str:
        payload = {
            "kind": kind,
            "params": params,
            "core": dataclasses.asdict(core),
            "generator_version": GENERATOR_VERSION,
            "format": KERNEL_FORMAT,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str, core: DspCoreConfig) -> MicroKernel | None:
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            _count("disk_miss")
            return None
        try:
            kern = kernel_from_dict(json.loads(raw), core)
        except Exception:
            # corrupt/stale entry: quarantine it (rename to *.bad, kept
            # for post-mortem instead of destroyed) and regenerate
            _count("disk_miss")
            _count("quarantined")
            try:
                os.replace(path, path.with_suffix(".json.bad"))
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        _count("disk_hit")
        return kern

    def store(self, key: str, kern: MicroKernel) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            blob = json.dumps(kernel_to_dict(kern), separators=(",", ":"))
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(blob)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a read-only or full cache dir must never fail the run
        _count("disk_write")


class KernelRegistry:
    """Memoized kernel generation for one core configuration.

    ``disk`` controls the persistent level: a :class:`KernelDiskCache`, or
    ``None`` to resolve the default location (pass ``disk=False`` to run
    memory-only, e.g. in tests that must exercise the generator).
    """

    def __init__(
        self,
        core: DspCoreConfig,
        disk: KernelDiskCache | None | bool = None,
    ) -> None:
        self.core = core
        if disk is None:
            root = default_cache_dir()
            disk = KernelDiskCache(root) if root is not None else False
        self.disk: KernelDiskCache | None = disk or None
        self._ftimm: dict[KernelSpec, MicroKernel] = {}
        self._tgemm: dict[tuple[int, int, int], MicroKernel] = {}

    def _lookup(self, kind: str, params: dict, generate) -> MicroKernel:
        """Disk-or-generate for one memory miss."""
        _count("mem_miss")
        if self.disk is None:
            return generate()
        key = KernelDiskCache.key(kind, params, self.core)
        kern = self.disk.load(key, self.core)
        if kern is None:
            kern = generate()
            self.disk.store(key, kern)
        return kern

    def ftimm(
        self, m_s: int, n_a: int, k_a: int, dtype: str = "f32"
    ) -> MicroKernel:
        spec = KernelSpec(m_s, n_a, k_a, dtype)
        kernel = self._ftimm.get(spec)
        if kernel is None:
            kernel = self._lookup(
                "ftimm",
                {"m_s": m_s, "n_a": n_a, "k_a": k_a, "dtype": dtype},
                lambda: generate_kernel(spec, self.core),
            )
            self._ftimm[spec] = kernel
        else:
            _count("mem_hit")
        return kernel

    def tgemm(self, m_rows: int, n: int, k: int) -> MicroKernel:
        key = (m_rows, n, k)
        kernel = self._tgemm.get(key)
        if kernel is None:
            kernel = self._lookup(
                "tgemm",
                {"m_rows": m_rows, "n": n, "k": k},
                lambda: generate_tgemm_kernel(m_rows, n, k, self.core),
            )
            self._tgemm[key] = kernel
        else:
            _count("mem_hit")
        return kernel

    @property
    def generated_count(self) -> int:
        return len(self._ftimm) + len(self._tgemm)

    def clear(self) -> None:
        self._ftimm.clear()
        self._tgemm.clear()


#: keyed by the *value* of the core config (frozen dataclass), not by
#: ``id()``: ids are reused after GC, which let a fresh config silently
#: inherit another machine's kernels.
_registries: dict[DspCoreConfig, KernelRegistry] = {}


def registry_for(core: DspCoreConfig) -> KernelRegistry:
    """Process-wide registry per core configuration (keyed by value)."""
    reg = _registries.get(core)
    if reg is None:
        reg = KernelRegistry(core)
        _registries[core] = reg
    return reg
