"""Kernel cache.

Generating a kernel involves modulo scheduling, which is the expensive part
of a GEMM *plan* (the paper generates assembly ahead of time and selects at
runtime).  Drivers request kernels through :class:`KernelRegistry`, which
memoizes by specification, so sweeping M in an experiment reuses kernels
instead of rescheduling per call.
"""

from __future__ import annotations

from ..hw.config import DspCoreConfig
from .generator import MicroKernel, generate_kernel
from .spec import KernelSpec
from .tgemm_kernel import generate_tgemm_kernel


class KernelRegistry:
    """Memoized kernel generation for one core configuration."""

    def __init__(self, core: DspCoreConfig) -> None:
        self.core = core
        self._ftimm: dict[KernelSpec, MicroKernel] = {}
        self._tgemm: dict[tuple[int, int, int], MicroKernel] = {}

    def ftimm(
        self, m_s: int, n_a: int, k_a: int, dtype: str = "f32"
    ) -> MicroKernel:
        spec = KernelSpec(m_s, n_a, k_a, dtype)
        kernel = self._ftimm.get(spec)
        if kernel is None:
            kernel = generate_kernel(spec, self.core)
            self._ftimm[spec] = kernel
        return kernel

    def tgemm(self, m_rows: int, n: int, k: int) -> MicroKernel:
        key = (m_rows, n, k)
        kernel = self._tgemm.get(key)
        if kernel is None:
            kernel = generate_tgemm_kernel(m_rows, n, k, self.core)
            self._tgemm[key] = kernel
        return kernel

    @property
    def generated_count(self) -> int:
        return len(self._ftimm) + len(self._tgemm)

    def clear(self) -> None:
        self._ftimm.clear()
        self._tgemm.clear()


_registries: dict[int, KernelRegistry] = {}


def registry_for(core: DspCoreConfig) -> KernelRegistry:
    """Process-wide registry per core configuration (keyed by identity)."""
    reg = _registries.get(id(core))
    if reg is None:
        reg = KernelRegistry(core)
        _registries[id(core)] = reg
    return reg
