"""Automatic generation of micro-kernels (Section IV-A of the paper).

Given a :class:`~repro.kernels.spec.KernelSpec` the generator

1. chooses the unroll factors ``m_u`` (rows per register block) and ``k_u``
   (k-steps kept in independent accumulators) following the paper's rules:

   * ``64 < n_a <= 96``: parallelism across ``n_a`` feeds all three FMAC
     pipes; ``k_u = 1`` and ``m_u`` as large as the register file allows
     when ``m_s >= t_fma``, else ``m_u = m_s`` with ``k_u > 1`` so enough
     independent accumulators exist to hide the FMAC latency;
   * ``n_a <= 64``: per-row FMA parallelism is insufficient, so ``k_u > 1``
     (pairs of k-values are fetched with one SLDW and broadcast with one
     SVBCAST2 — two scalars per cycle, the SPU's ceiling) and ``m_u`` as
     large as registers allow;

2. emits the symbolic instruction stream of Alg. 3 (A-broadcast chain,
   B vector loads, FMA lattice, the ``k_u`` reduction and the C update);

3. software-pipelines the loop body with the modulo scheduler, giving the
   initiation interval II that determines steady-state efficiency, and
   list-schedules setup/teardown;

4. wraps everything in a :class:`MicroKernel` carrying both the functional
   implementations (NumPy fast path and ISA-interpreter path) and the cycle
   model used by the timed executors.

Deviation from the paper's Alg. 3 noted here once: instead of zero-
initializing *all* accumulators and read-modify-writing C afterwards, the
generator loads the existing C tile into the ``ku = 0`` accumulator set and
zero-fills only the ``ku > 0`` copies; the reduction then folds everything
into the loaded values before the store.  This is functionally identical
(C accumulation semantics) and saves one AM pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import KernelError
from ..hw.config import DspCoreConfig
from ..isa.emitter import render_pipeline_table
from ..isa.instructions import Affine, Instr, MemRef, Opcode, fma
from ..isa.interp import run_program
from ..isa.program import KernelProgram, LoopProgram
from ..isa.scheduler import Schedule, schedule_loop, schedule_straightline
from ..isa.units import units_for
from ..isa.validator import validate_program
from .spec import KernelSpec

#: bump when generated instruction streams or schedules change meaning;
#: the on-disk kernel cache (:mod:`repro.kernels.registry`) keys on this.
GENERATOR_VERSION = 1


#: accumulator-independence target: enough FMAs in flight per iteration to
#: cover the FMAC latency on all three pipes.
def _min_fmas_per_iter(core: DspCoreConfig) -> int:
    return core.n_vector_fmac * core.latencies.t_fma


def max_m_u(v_n: int, k_u: int, core: DspCoreConfig) -> int:
    """Largest row unroll fitting the vector register budget.

    Registers per ``m_u``: ``k_u * v_n`` accumulators + ``k_u`` broadcast
    targets; plus ``k_u * v_n`` shared B registers.
    """
    budget = core.usable_vector_regs - k_u * v_n
    per_row = k_u * (v_n + 1)
    return max(1, budget // per_row)


def select_tiling(m_s: int, v_n: int, k_a: int, core: DspCoreConfig) -> tuple[int, int]:
    """Choose ``(m_u, k_u)`` for a kernel of ``m_s`` rows and ``v_n`` vectors."""
    t_fma = core.latencies.t_fma
    if v_n == 3:
        if m_s >= t_fma:
            k_u = 1
        else:
            k_u = 2
            while m_s * k_u * v_n < _min_fmas_per_iter(core) and k_u < 8:
                k_u *= 2
    else:
        k_u = 2
        while min(m_s, max_m_u(v_n, k_u, core)) * k_u * v_n < _min_fmas_per_iter(
            core
        ) and k_u < 8:
            k_u *= 2
    while k_u > 1 and k_u >= 2 * k_a:
        k_u //= 2
    m_u = min(m_s, max_m_u(v_n, k_u, core))
    return m_u, k_u


@dataclass
class BlockInfo:
    """Generator decisions for one row block, for reports and tests."""

    row0: int
    m_u: int
    k_u: int
    trip: int
    ii: int
    setup_cycles: int
    body_cycles: int
    teardown_cycles: int

    @property
    def cycles(self) -> int:
        return self.setup_cycles + self.body_cycles + self.teardown_cycles


@dataclass
class MicroKernel:
    """A generated (or TGEMM-style fixed) micro-kernel.

    Functional semantics: ``C[:m_s, :n_a] += A[:m_s, :k_a] @ B[:k_a, :n_a]``
    in the spec's precision.  ``cycles`` is the modeled time on one core;
    ``compute_n``/``compute_k`` are the *padded* extents actually processed
    (they exceed ``spec.n_a``/``spec.k_a`` for TGEMM's implicit padding).
    """

    spec: KernelSpec
    core: DspCoreConfig
    program: KernelProgram
    body_schedules: list[Schedule]
    setup_schedules: list[Schedule]
    teardown_schedules: list[Schedule]
    blocks: list[BlockInfo]
    cycles: int
    compute_n: int
    compute_k: int
    name: str = "ftimm"
    _interp_cache: dict = field(default_factory=dict, repr=False)

    #: functional execution modes accepted by :meth:`apply_exec`
    EXEC_MODES = ("numpy", "compiled", "interp")

    # -- performance -------------------------------------------------------

    @property
    def flops(self) -> int:
        return self.spec.flops

    @property
    def peak_flops_per_cycle(self) -> int:
        """Core peak for this precision (FP64 halves the lane count)."""
        return (
            self.core.n_vector_fmac * self.spec.lanes * self.core.flops_per_lane
        )

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the core's (per-precision) peak."""
        return self.flops / (self.cycles * self.peak_flops_per_cycle)

    @property
    def gflops(self) -> float:
        return self.flops / (self.cycles / self.core.clock_hz) / 1e9

    @property
    def ii(self) -> int:
        """Initiation interval of the (first) steady-state loop."""
        return self.body_schedules[0].ii

    # -- functional execution ----------------------------------------------

    def apply(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
        """NumPy fast path: ``c += a @ b`` (in place)."""
        m, n, k = self.spec.m_s, self.spec.n_a, self.spec.k_a
        if a.shape != (m, k) or b.shape != (k, n) or c.shape != (m, n):
            raise KernelError(
                f"kernel {self.spec}: got A{a.shape} B{b.shape} C{c.shape}"
            )
        c += a @ b

    def apply_isa(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        mode: str = "compiled",
    ) -> None:
        """Execute the generated instruction stream on the ISA machine model.

        ``mode="compiled"`` (default) runs the trace-compiled program
        (:mod:`repro.isa.compile`); ``mode="interp"`` forces the reference
        interpreter.  Both are bit-identical; used by tests to prove the
        generated code equals ``a @ b``.
        """
        m, n = self.spec.m_s, self.spec.n_a
        k = self.spec.k_a
        dt = self.spec.np_dtype
        a_p = np.zeros((m, self.compute_k), dtype=dt)
        a_p[:, :k] = a
        b_p = np.zeros((self.compute_k, self.compute_n), dtype=dt)
        b_p[:k, :n] = b
        c_p = np.zeros((m, self.compute_n), dtype=dt)
        c_p[:, :n] = c
        run_program(self.program, {"A": a_p, "B": b_p, "C": c_p}, mode=mode)
        c[:, :] = c_p[:, :n]

    def apply_interpreted(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
        mode: str = "compiled",
    ) -> None:
        """ISA-model execution (compiled by default; see :meth:`apply_isa`)."""
        self.apply_isa(a, b, c, mode=mode)

    def apply_exec(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray, mode: str = "numpy"
    ) -> None:
        """Dispatch a functional kernel application by execution mode.

        ``"numpy"`` is the fast path (``c += a @ b``); ``"compiled"`` and
        ``"interp"`` run the generated instruction stream for ISA fidelity.
        """
        if mode == "numpy":
            self.apply(a, b, c)
        elif mode in ("compiled", "interp"):
            self.apply_isa(a, b, c, mode=mode)
        else:
            raise KernelError(
                f"unknown kernel execution mode {mode!r}; "
                f"expected one of {self.EXEC_MODES}"
            )

    # -- introspection -------------------------------------------------------

    def pipeline_table(self, block: int = 0) -> str:
        info = self.blocks[block]
        title = (
            f"Micro-kernel {self.spec} ({self.name}): block m_u={info.m_u}, "
            f"k_u={info.k_u}, II={info.ii}"
        )
        return render_pipeline_table(self.body_schedules[block], title)

    def registers_used(self) -> tuple[int, int]:
        return self.program.registers_used()


# ---------------------------------------------------------------------------
# instruction emission
# ---------------------------------------------------------------------------


def _emit_c_row_load(
    instrs: list[Instr], row: int, mu: int, v_n: int, lanes: int, reg: str
) -> None:
    """Load one C row (v_n vectors) into the ku=0 accumulators."""
    col = 0
    remaining = v_n
    while remaining >= 2:
        instrs.append(
            Instr(
                Opcode.VLDDW,
                dsts=(f"{reg}0_{mu}_{col // lanes}", f"{reg}0_{mu}_{col // lanes + 1}"),
                mem=MemRef("C", Affine(row), Affine(col)),
                tag="cload",
            )
        )
        col += 2 * lanes
        remaining -= 2
    if remaining:
        instrs.append(
            Instr(
                Opcode.VLDW,
                dsts=(f"{reg}0_{mu}_{col // lanes}",),
                mem=MemRef("C", Affine(row), Affine(col)),
                tag="cload",
            )
        )


def _emit_c_row_store(
    instrs: list[Instr], row: int, mu: int, v_n: int, lanes: int
) -> None:
    col = 0
    remaining = v_n
    while remaining >= 2:
        instrs.append(
            Instr(
                Opcode.VSTDW,
                srcs=(f"vc0_{mu}_{col // lanes}", f"vc0_{mu}_{col // lanes + 1}"),
                mem=MemRef("C", Affine(row), Affine(col)),
                tag="cstore",
            )
        )
        col += 2 * lanes
        remaining -= 2
    if remaining:
        instrs.append(
            Instr(
                Opcode.VSTW,
                srcs=(f"vc0_{mu}_{col // lanes}",),
                mem=MemRef("C", Affine(row), Affine(col)),
                tag="cstore",
            )
        )


def _emit_a_broadcast(
    instrs: list[Instr], row: int, mu: int, k_u: int, dtype: str = "f32"
) -> None:
    """A-element load + broadcast chain for one row, covering k_u k-steps.

    FP32, ``k_u == 1``: SLDH -> SFEXTS32L -> SVBCAST (Table I's chain).
    FP32, ``k_u >= 2``: per pair, SLDW -> SFEXTS32L (low) + SBALE2H (high)
    -> SVBCAST2 (both scalars in one slot — Tables II/III's chain).
    FP64: one SLDD -> SVBCAST per k step; the 64-bit broadcast bus moves
    a single double per cycle, so there is no paired form.
    """
    if dtype == "f64":
        for ku in range(k_u):
            sreg = f"s{mu}_{ku}"
            instrs.append(
                Instr(
                    Opcode.SLDD,
                    dsts=(sreg,),
                    mem=MemRef("A", Affine(row), Affine(ku, k_u)),
                    tag="aload",
                )
            )
            instrs.append(
                Instr(Opcode.SVBCAST, dsts=(f"va{mu}_{ku}",), srcs=(sreg,))
            )
        return
    if k_u == 1:
        pair = f"s{mu}_0"
        low = f"sl{mu}_0"
        instrs.append(
            Instr(
                Opcode.SLDH,
                dsts=(pair,),
                mem=MemRef("A", Affine(row), Affine(0, 1)),
                tag="aload",
            )
        )
        instrs.append(Instr(Opcode.SFEXTS32L, dsts=(low,), srcs=(pair,)))
        instrs.append(Instr(Opcode.SVBCAST, dsts=(f"va{mu}_0",), srcs=(low,)))
        return
    for kp in range(k_u // 2):
        pair = f"s{mu}_{kp}"
        low = f"sl{mu}_{kp}"
        high = f"sh{mu}_{kp}"
        instrs.append(
            Instr(
                Opcode.SLDW,
                dsts=(pair,),
                mem=MemRef("A", Affine(row), Affine(2 * kp, k_u)),
                tag="aload",
            )
        )
        instrs.append(Instr(Opcode.SFEXTS32L, dsts=(low,), srcs=(pair,)))
        instrs.append(Instr(Opcode.SBALE2H, dsts=(high,), srcs=(pair,)))
        instrs.append(
            Instr(
                Opcode.SVBCAST2,
                dsts=(f"va{mu}_{2 * kp}", f"va{mu}_{2 * kp + 1}"),
                srcs=(low, high),
            )
        )


def _emit_b_loads(
    instrs: list[Instr], ku: int, k_u: int, v_n: int, lanes: int
) -> None:
    """Vector loads of B row ``kk + ku`` into the vb registers."""
    col = 0
    remaining = v_n
    while remaining >= 2:
        instrs.append(
            Instr(
                Opcode.VLDDW,
                dsts=(f"vb{ku}_{col // lanes}", f"vb{ku}_{col // lanes + 1}"),
                mem=MemRef("B", Affine(ku, k_u), Affine(col)),
                tag="bload",
            )
        )
        col += 2 * lanes
        remaining -= 2
    if remaining:
        instrs.append(
            Instr(
                Opcode.VLDW,
                dsts=(f"vb{ku}_{col // lanes}",),
                mem=MemRef("B", Affine(ku, k_u), Affine(col)),
                tag="bload",
            )
        )


def _build_block(
    row0: int,
    m_u: int,
    k_u: int,
    v_n: int,
    trip: int,
    *,
    load_c: bool,
    lanes: int = 32,
    dtype: str = "f32",
) -> LoopProgram:
    """Emit one row block: setup, one kk-loop body iteration, teardown."""
    setup: list[Instr] = []
    for mu in range(m_u):
        if load_c:
            _emit_c_row_load(setup, row0 + mu, mu, v_n, lanes, "vc")
        else:
            for nn in range(v_n):
                setup.append(
                    Instr(Opcode.VMOVI, dsts=(f"vc0_{mu}_{nn}",), imm=0.0)
                )
        for ku in range(1, k_u):
            for nn in range(v_n):
                setup.append(
                    Instr(Opcode.VMOVI, dsts=(f"vc{ku}_{mu}_{nn}",), imm=0.0)
                )

    body: list[Instr] = []
    for mu in range(m_u):
        _emit_a_broadcast(body, row0 + mu, mu, k_u, dtype)
    for ku in range(k_u):
        _emit_b_loads(body, ku, k_u, v_n, lanes)
    for mu in range(m_u):
        for ku in range(k_u):
            for nn in range(v_n):
                body.append(
                    fma(f"vc{ku}_{mu}_{nn}", f"va{mu}_{ku}", f"vb{ku}_{nn}")
                )
    body.append(Instr(Opcode.SBR, tag="loop"))

    teardown: list[Instr] = []
    for ku in range(1, k_u):
        for mu in range(m_u):
            for nn in range(v_n):
                acc = f"vc0_{mu}_{nn}"
                teardown.append(
                    Instr(
                        Opcode.VADDS32,
                        dsts=(acc,),
                        srcs=(acc, f"vc{ku}_{mu}_{nn}"),
                        tag="reduce",
                    )
                )
    for mu in range(m_u):
        _emit_c_row_store(teardown, row0 + mu, mu, v_n, lanes)
    return LoopProgram(setup, body, trip, teardown, row0=row0, rows=m_u)


# ---------------------------------------------------------------------------
# generation entry points
# ---------------------------------------------------------------------------


def generate_kernel(
    spec: KernelSpec,
    core: DspCoreConfig,
    *,
    name: str = "ftimm",
    force_m_u: int | None = None,
    force_k_u: int | None = None,
    pad_n_to: int | None = None,
    allow_block_adjust: bool = True,
) -> MicroKernel:
    """Generate, schedule and model a micro-kernel for ``spec``.

    ``force_m_u``/``force_k_u``/``pad_n_to`` exist for the TGEMM baseline
    kernel (fixed 6-row, full-width shape with implicit padding) and for
    ablation experiments; normal callers let the selection rules decide.
    """
    lanes = spec.lanes
    v_n = spec.v_n
    compute_n = spec.padded_n
    if pad_n_to is not None:
        if pad_n_to < spec.n_a:
            raise KernelError(f"pad_n_to={pad_n_to} below n_a={spec.n_a}")
        v_n = -(-pad_n_to // lanes)
        compute_n = v_n * lanes
    if v_n > 3:
        raise KernelError(
            f"n_a={spec.n_a} needs {v_n} vector registers per row; "
            f"the hardware supports at most 3 ({3 * lanes} {spec.dtype} lanes)"
        )

    m_u_sel, k_u_sel = select_tiling(spec.m_s, v_n, spec.k_a, core)
    m_u = force_m_u if force_m_u is not None else m_u_sel
    k_u = force_k_u if force_k_u is not None else k_u_sel
    if m_u < 1 or k_u < 1:
        raise KernelError(f"invalid tiling m_u={m_u}, k_u={k_u}")
    if k_u not in (1, 2, 4, 8):
        raise KernelError(f"k_u must be 1, 2, 4 or 8 (SLDW pairs), got {k_u}")

    regs_needed = k_u * v_n + min(spec.m_s, m_u) * k_u * (v_n + 1)
    if regs_needed > core.usable_vector_regs:
        raise KernelError(
            f"tiling m_u={m_u}, k_u={k_u}, v_n={v_n} needs {regs_needed} "
            f"vector registers; only {core.usable_vector_regs} usable"
        )

    k_eff = -(-spec.k_a // k_u) * k_u
    trip = k_eff // k_u

    rows_left = spec.m_s
    row0 = 0
    blocks: list[LoopProgram] = []
    infos: list[BlockInfo] = []
    body_scheds: list[Schedule] = []
    setup_scheds: list[Schedule] = []
    teardown_scheds: list[Schedule] = []
    lat = core.latencies
    total_cycles = core.kernel_call_overhead_cycles

    while rows_left > 0:
        rows = min(m_u, rows_left)
        block_k_u = k_u
        # a short remainder block may need extra accumulator copies to keep
        # the FMAC pipes busy (same rule as the top-level selection)
        while (
            allow_block_adjust
            and rows * block_k_u * v_n < _min_fmas_per_iter(core)
            and block_k_u < 8
            and block_k_u * 2 <= max(2, k_eff)
        ):
            block_k_u *= 2
        block_k_eff = -(-spec.k_a // block_k_u) * block_k_u
        block_trip = block_k_eff // block_k_u
        if block_k_eff > k_eff:
            # the padded tiles are sized for k_eff; don't exceed them
            block_k_u = k_u
            block_trip = trip
        block = _build_block(
            row0, rows, block_k_u, v_n, block_trip,
            load_c=True, lanes=lanes, dtype=spec.dtype,
        )
        blocks.append(block)

        units = units_for(core)
        s_setup = schedule_straightline(block.setup, lat, units)
        s_body = schedule_loop(block.body, lat, units)
        s_teardown = schedule_straightline(block.teardown, lat, units)
        setup_scheds.append(s_setup)
        body_scheds.append(s_body)
        teardown_scheds.append(s_teardown)
        info = BlockInfo(
            row0=row0,
            m_u=rows,
            k_u=block_k_u,
            trip=block_trip,
            ii=s_body.ii,
            setup_cycles=s_setup.total_cycles(1, lat),
            body_cycles=s_body.total_cycles(block_trip, lat),
            teardown_cycles=s_teardown.total_cycles(1, lat),
        )
        infos.append(info)
        total_cycles += info.cycles
        rows_left -= rows
        row0 += rows

    program = KernelProgram(
        blocks,
        meta={
            "name": name,
            "m_u": m_u,
            "k_u": k_u,
            "v_n": v_n,
            "k_eff": k_eff,
            "compute_n": compute_n,
            "dtype": spec.dtype,
            "vector_regs_needed": regs_needed,
        },
    )
    validate_program(
        program, m_s=spec.m_s, k_eff=k_eff, padded_n=compute_n,
        vlanes=lanes,
    )
    return MicroKernel(
        spec=spec,
        core=core,
        program=program,
        body_schedules=body_scheds,
        setup_schedules=setup_scheds,
        teardown_schedules=teardown_scheds,
        blocks=infos,
        cycles=total_cycles,
        compute_n=compute_n,
        compute_k=k_eff,
        name=name,
    )
