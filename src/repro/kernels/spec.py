"""Micro-kernel specifications.

A micro-kernel computes ``C[m_s][n_a] += A[m_s][k_a] x B[k_a][n_a]`` on one
DSP core with all three tiles resident on chip (A in SM, B and C in AM).
The paper's central observation (Section III-C) is that a *single* fixed
kernel shape cannot serve irregular GEMMs: ftIMM therefore generates
kernels for arbitrary ``m_s`` and ``n_a`` under the hardware constraints
(``n_a <= 96`` for FP32: three 32-lane vector registers per row is what
the B-side load bandwidth and FMAC count support).

**FP64 extension** (not in the paper, which evaluates single precision
only): the 64-bit VPE registers hold 16 FP64 lanes, so the same kernel
structure supports double precision with ``n_a <= 48`` — but the SPU
broadcast bus moves only one FP64 per cycle (vs two FP32), which shifts
the broadcast-bandwidth ceiling from the paper's n_a <= 32 regime onto
every FP64 kernel narrower than three vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import KernelError
from ..isa.interp import LANES, LANES_F64

#: per-dtype lane counts of one vector register (64-bit per VPE).
DTYPE_LANES = {"f32": LANES, "f64": LANES_F64}
DTYPE_NUMPY = {"f32": np.float32, "f64": np.float64}

#: the widest FP32 kernel the hardware supports (3 x 32 lanes).
MAX_N_A = 96
#: practical ceiling on kernel rows; larger m_s is handled by row blocks.
MAX_M_S = 1024


@dataclass(frozen=True)
class KernelSpec:
    """Shape (and precision) of one micro-kernel invocation."""

    m_s: int
    n_a: int
    k_a: int
    dtype: str = "f32"

    def __post_init__(self) -> None:
        if self.dtype not in DTYPE_LANES:
            raise KernelError(f"dtype must be f32 or f64, got {self.dtype!r}")
        if not 1 <= self.m_s <= MAX_M_S:
            raise KernelError(f"m_s={self.m_s} outside 1..{MAX_M_S}")
        if not 1 <= self.n_a <= self.max_n_a:
            raise KernelError(
                f"n_a={self.n_a} outside 1..{self.max_n_a} for {self.dtype}"
            )
        if self.k_a < 1:
            raise KernelError(f"k_a={self.k_a} must be >= 1")

    @property
    def lanes(self) -> int:
        """Elements per vector register for this precision."""
        return DTYPE_LANES[self.dtype]

    @property
    def max_n_a(self) -> int:
        """Widest kernel: three vector registers per row."""
        return 3 * self.lanes

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(DTYPE_NUMPY[self.dtype])

    @property
    def v_n(self) -> int:
        """Vector registers per row of B/C (1, 2 or 3)."""
        return -(-self.n_a // self.lanes)

    @property
    def padded_n(self) -> int:
        """Lane-aligned width of the B and C tiles."""
        return self.v_n * self.lanes

    @property
    def flops(self) -> int:
        """Useful floating-point operations of the kernel."""
        return 2 * self.m_s * self.n_a * self.k_a

    def __str__(self) -> str:
        suffix = "" if self.dtype == "f32" else f"/{self.dtype}"
        return f"{self.m_s}x{self.n_a}x{self.k_a}{suffix}"
