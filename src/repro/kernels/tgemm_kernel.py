"""The fixed micro-kernel of the traditional implementation (TGEMM, Alg. 2).

TGEMM supports exactly one kernel shape: ``m_s = 6`` rows against the full
``n_a = 96`` width, with ``k_u = 1`` (no extra accumulator copies).  When
the true ``N`` is smaller, B is still stored in AM as a ``k x 96`` tile and
the kernel still issues the full-width FMAs — the *implicit padding* the
paper identifies as TGEMM's first weakness on irregular shapes (Section
III-C): wasted AM space, wasted FMAC issue slots, and no latency-hiding
choice for short rows.

This module builds that kernel with the same generator machinery (so both
implementations share the scheduler and the interpreter) but with the
tiling pinned to TGEMM's fixed choices.
"""

from __future__ import annotations

from ..errors import KernelError
from ..hw.config import DspCoreConfig
from .generator import MicroKernel, generate_kernel
from .spec import KernelSpec

#: TGEMM's fixed kernel geometry (Section III-B).
TGEMM_M_S = 6
TGEMM_N_A = 96


def generate_tgemm_kernel(
    m_rows: int, n: int, k: int, core: DspCoreConfig
) -> MicroKernel:
    """The TGEMM kernel for an ``m_rows x n x k`` tile (``m_rows <= 6``).

    ``n`` may be anything up to 96; the kernel pads it to 96 internally
    (B and C tiles must be allocated 96 wide).  Efficiency on narrow tiles
    degrades by exactly the padding ratio ``n / 96`` — the effect ftIMM's
    generated kernels remove.
    """
    if not 1 <= m_rows <= TGEMM_M_S:
        raise KernelError(
            f"TGEMM kernel rows must be in 1..{TGEMM_M_S}, got {m_rows}"
        )
    if n > TGEMM_N_A:
        raise KernelError(f"TGEMM kernel width must be <= {TGEMM_N_A}, got {n}")
    spec = KernelSpec(m_rows, n, k)
    return generate_kernel(
        spec,
        core,
        name="tgemm",
        force_m_u=m_rows,
        force_k_u=1,
        pad_n_to=TGEMM_N_A,
        allow_block_adjust=False,
    )
