"""SLO monitoring over serve records: error budgets and burn-rate alerts.

SRE-style monitoring on the simulated timeline.  An :class:`SloPolicy`
states an objective (fraction of requests that must be *good*: completed
and inside their deadline) and a set of :class:`BurnWindow`\\ s.  The
monitor replays a serve run's request records as a time-ordered event
stream and, per window, tracks the **burn rate** — the rate the error
budget is being consumed, normalized so burn 1.0 exhausts the budget
exactly at the objective::

    burn = bad_fraction_in_window / (1 - objective)

A window whose burn rate crosses its threshold fires one typed
:class:`SloAlert` (first crossing only — the alert marks the onset, the
report carries the peak).  The classic fast/slow pairing applies: the
fast window catches a cliff within milliseconds of simulated time, the
slow window catches a smolder the fast one would flap on.

Everything is a pure function of the records, so alerts are exactly as
deterministic as the serve run itself — the smoke gate asserts the
overload mix fires and the light mix never does.  Alerts append to the
JSONL run-log under their own schema (``repro-slo/1``); ``repro-perf/1``
readers skip them by design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import PlanError
from ..obs.runlog import append_record
from .request import COMPLETED, RequestRecord

SLO_SCHEMA = "repro-slo/1"


@dataclass(frozen=True)
class BurnWindow:
    """One sliding burn-rate window with an alerting threshold."""

    name: str
    window_s: float
    threshold: float               # fire when burn >= threshold
    severity: str = "page"         # "page" | "ticket"

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise PlanError(f"window {self.name!r}: window_s must be > 0")
        if self.threshold <= 0:
            raise PlanError(f"window {self.name!r}: threshold must be > 0")


@dataclass(frozen=True)
class SloPolicy:
    """Objective + windows; defaults tuned for the serve harness scales.

    The default objective (99% good) with a 10x fast burn means alerting
    requires >= 10% of a window's requests to be bad — a real cliff, not
    one straggler; ``min_events`` keeps a nearly-empty window from
    firing off a single early failure.
    """

    objective: float = 0.99
    windows: tuple[BurnWindow, ...] = (
        BurnWindow("fast", window_s=5e-3, threshold=10.0, severity="page"),
        BurnWindow("slow", window_s=5e-2, threshold=4.0, severity="ticket"),
    )
    min_events: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise PlanError("objective must be in (0, 1)")
        if not self.windows:
            raise PlanError("policy needs at least one burn window")
        if self.min_events < 1:
            raise PlanError("min_events must be >= 1")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad fraction (1 - objective)."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate threshold crossing (the onset event)."""

    window: str
    severity: str
    at_s: float                    # simulated time of the crossing
    burn: float
    threshold: float
    bad: int
    total: int
    objective: float

    def describe(self) -> str:
        return (
            f"[{self.severity}] {self.window} burn {self.burn:.1f}x "
            f">= {self.threshold:.1f}x at t={self.at_s * 1e3:.3f} ms "
            f"({self.bad}/{self.total} bad, objective "
            f"{self.objective * 100:.1f}%)"
        )

    def to_record(self) -> dict[str, Any]:
        return {
            "schema": SLO_SCHEMA,
            "ts": time.time(),
            "kind": "slo_alert",
            "window": self.window,
            "severity": self.severity,
            "at_s": self.at_s,
            "burn": self.burn,
            "threshold": self.threshold,
            "bad": self.bad,
            "total": self.total,
            "objective": self.objective,
        }


@dataclass
class SloReport:
    """Outcome of monitoring one serve run against a policy."""

    policy: SloPolicy
    n_events: int
    bad_events: int
    alerts: list[SloAlert] = field(default_factory=list)
    peak_burn: dict[str, float] = field(default_factory=dict)

    @property
    def bad_fraction(self) -> float:
        return self.bad_events / self.n_events if self.n_events else 0.0

    @property
    def budget_consumed(self) -> float:
        """Run-wide budget consumption (1.0 = exactly at the objective)."""
        return self.bad_fraction / self.policy.budget

    @property
    def ok(self) -> bool:
        return not self.alerts

    def render(self) -> str:
        lines = [
            f"SLO objective {self.policy.objective * 100:.1f}%: "
            f"{self.bad_events}/{self.n_events} bad "
            f"({self.budget_consumed * 100:.0f}% of error budget)",
        ]
        for w in self.policy.windows:
            lines.append(
                f"  window {w.name} ({w.window_s * 1e3:g} ms): peak burn "
                f"{self.peak_burn.get(w.name, 0.0):.1f}x "
                f"(threshold {w.threshold:g}x)"
            )
        if self.alerts:
            lines.append(f"  {len(self.alerts)} alert(s):")
            lines.extend(f"    {a.describe()}" for a in self.alerts)
        else:
            lines.append("  no alerts")
        return "\n".join(lines)

    def append_to_runlog(self, path: str | Path) -> int:
        """Append one ``repro-slo/1`` record per alert; returns the count."""
        for alert in self.alerts:
            append_record(path, alert.to_record())
        return len(self.alerts)


def _event_time(rec: RequestRecord | Any) -> float:
    finish = getattr(rec, "finish_s", None)
    return finish if finish is not None else rec.arrival_s


def _is_bad(rec: RequestRecord | Any) -> bool:
    """Shed and failed requests are bad; completed ones are bad only when
    they blew a deadline they had."""
    if rec.status != COMPLETED:
        return True
    return rec.deadline_met is False


def monitor(
    records: list[RequestRecord],
    policy: SloPolicy | None = None,
) -> SloReport:
    """Run burn-rate monitoring over one serve run's request records.

    Events are placed at each request's outcome time (finish, or arrival
    for shed requests) and replayed in order; each window slides over
    that stream.  Pure and deterministic — same records, same alerts.
    """
    policy = policy or SloPolicy()
    if not records:
        raise PlanError("no records to monitor")
    events = sorted(
        ((_event_time(r), _is_bad(r)) for r in records),
        key=lambda e: e[0],
    )
    report = SloReport(
        policy=policy,
        n_events=len(events),
        bad_events=sum(1 for _t, bad in events if bad),
    )
    for w in policy.windows:
        fired = False
        peak = 0.0
        window: list[tuple[float, bool]] = []
        bad_in = 0
        for t, bad in events:
            window.append((t, bad))
            if bad:
                bad_in += 1
            while window and window[0][0] < t - w.window_s:
                if window[0][1]:
                    bad_in -= 1
                window.pop(0)
            if len(window) < policy.min_events:
                continue
            burn = (bad_in / len(window)) / policy.budget
            if burn > peak:
                peak = burn
            if not fired and burn >= w.threshold:
                fired = True
                report.alerts.append(SloAlert(
                    window=w.name,
                    severity=w.severity,
                    at_s=t,
                    burn=burn,
                    threshold=w.threshold,
                    bad=bad_in,
                    total=len(window),
                    objective=policy.objective,
                ))
        report.peak_burn[w.name] = peak
    report.alerts.sort(key=lambda a: (a.at_s, a.window))
    return report
