"""Open-loop load generation: arrival processes and workload shape mixes.

The serving layer is exercised with *open-loop* request streams — arrival
times are drawn up front from the seed and do not react to server state,
so offered load is an independent variable and the same seed + config
always replays the identical stream.

Shape mixes are drawn from the paper's motivating workload generators in
:mod:`repro.workloads` rather than invented here:

* ``transformer`` — per-head projection and context GEMMs of small
  decode-sized :class:`~repro.workloads.transformer.AttentionConfig`\\ s
  (type-1 tall-and-skinny shapes, tight SLOs);
* ``fem``         — chunked :class:`~repro.workloads.fem.FemOperator`
  element batches (tiny N/K, shared operator B — the shared-B
  coalescing case);
* ``convnet``     — im2col :class:`~repro.workloads.convnets.ConvLayer`
  shapes at small image sizes (looser SLOs);
* ``mixed``       — all three, weighted;
* ``overload``    — the reference overload mix used by the CI smoke
  gate: heterogeneous SLOs so deadline-aware scheduling has something
  to exploit.

Every request gets its **own copy** of the class's B variant — the
deserialized-from-a-stream case — so shared-B detection must go through
content digests, not object identity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.shapes import GemmShape
from ..errors import PlanError
from ..workloads.convnets import ConvLayer
from ..workloads.fem import FemOperator
from ..workloads.transformer import AttentionConfig
from .request import GemmRequest


@dataclass(frozen=True)
class ShapeClass:
    """One request class of a mix."""

    name: str
    shape: GemmShape
    weight: float = 1.0
    slo_s: float | None = None     # relative deadline; None = no SLO
    n_b_variants: int = 1          # distinct B contents ("models") served
    #: explicit priority class ("interactive" / "bulk"); None lets the
    #: degradation policy classify by the request's deadline budget
    priority: str | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise PlanError(f"class {self.name}: weight must be > 0")
        if self.slo_s is not None and self.slo_s <= 0:
            raise PlanError(f"class {self.name}: slo_s must be > 0")
        if self.n_b_variants < 1:
            raise PlanError(f"class {self.name}: n_b_variants must be >= 1")


def transformer_mix() -> list[ShapeClass]:
    """Decode-sized attention GEMMs (one small config, per-head shapes)."""
    cfg = AttentionConfig("serve-decode", d_model=256, n_heads=4, seq_len=16)
    shapes = cfg.gemm_shapes()
    return [
        ShapeClass("attn/head_proj", shapes["head_projection"],
                   weight=3.0, slo_s=2e-3, n_b_variants=2),
        ShapeClass("attn/context", shapes["context"],
                   weight=1.0, slo_s=2e-3, n_b_variants=2),
    ]


def fem_mix() -> list[ShapeClass]:
    """Chunked per-element operator applications (shared basis B)."""
    ops = [
        FemOperator("p1_tet_chunk", 512, 4, 4),
        FemOperator("p2_tet_chunk", 256, 10, 15),
        FemOperator("q1_hex_chunk", 128, 8, 24),
    ]
    return [
        ShapeClass(f"fem/{op.name}", op.gemm_shape(),
                   weight=1.0, slo_s=1e-3, n_b_variants=1)
        for op in ops
    ]


def convnet_mix() -> list[ShapeClass]:
    """im2col layers at small images (bulkier K, looser SLOs)."""
    layers = [
        ConvLayer("conv_mid", 64, 32, 14, 3, 1, 1),
        ConvLayer("conv_late", 128, 64, 7, 3, 1, 1),
    ]
    return [
        ShapeClass(f"conv/{layer.name}", layer.gemm_shape(batch=1),
                   weight=1.0, slo_s=8e-3, n_b_variants=2)
        for layer in layers
    ]


def mixed_mix() -> list[ShapeClass]:
    return transformer_mix() + fem_mix() + convnet_mix()


def overload_mix() -> list[ShapeClass]:
    """The CI reference mix: tight-SLO small GEMMs sharing the server
    with loose-SLO bulky ones, so EDF ordering has real work to do.

    The bulky classes are batched im2col layers (``batch=4``) — heavy
    enough that a moderate offered load saturates the four clusters,
    which is the regime the smoke gate probes.
    """
    tight_op = FemOperator("q2_face_chunk", 256, 16, 16)
    decode = AttentionConfig(
        "serve-decode-lg", d_model=1024, n_heads=8, seq_len=16
    )
    heavy = ConvLayer("conv_bulk", 128, 64, 14, 3, 1, 1)
    return [
        # tight SLO, tiny compute: what EDF protects under overload
        ShapeClass(f"fem/{tight_op.name}", tight_op.gemm_shape(),
                   weight=3.0, slo_s=1.0e-3, n_b_variants=1),
        # shared-weight decode projection: staging B dominates a single
        # call, so coalescing on the B digest is where batching pays
        ShapeClass("attn/head_proj",
                   decode.gemm_shapes()["head_projection"],
                   weight=3.0, slo_s=2.0e-3, n_b_variants=1),
        # bulky loose-SLO im2col batches: what saturates the clusters
        ShapeClass(f"conv/{heavy.name}", heavy.gemm_shape(batch=4),
                   weight=1.0, slo_s=5e-2, n_b_variants=2),
    ]


MIXES = {
    "transformer": transformer_mix,
    "fem": fem_mix,
    "convnet": convnet_mix,
    "mixed": mixed_mix,
    "overload": overload_mix,
}


def get_mix(name: str) -> list[ShapeClass]:
    try:
        return MIXES[name]()
    except KeyError:
        raise PlanError(
            f"unknown mix {name!r} (have {', '.join(sorted(MIXES))})"
        ) from None


def _b_pools(
    classes: list[ShapeClass], seed: int
) -> list[list[np.ndarray]]:
    """Per-class pools of distinct B contents, derived from the seed."""
    pools = []
    for idx, cls in enumerate(classes):
        rng = np.random.default_rng([seed, 0xB, idx])
        pools.append([
            rng.standard_normal(
                (cls.shape.k, cls.shape.n)
            ).astype(np.float32)
            for _ in range(cls.n_b_variants)
        ])
    return pools


def make_requests(
    mix: list[ShapeClass] | str,
    *,
    rate_rps: float,
    n_requests: int,
    seed: int = 0,
    arrivals: str = "poisson",
    burst_factor: float = 4.0,
    burst_len: int = 16,
) -> list[GemmRequest]:
    """Draw an open-loop request stream.

    ``arrivals="poisson"`` draws i.i.d. exponential gaps at ``rate_rps``;
    ``"bursty"`` alternates hot phases (rate x ``burst_factor``) and cold
    phases every ``burst_len`` requests, with the cold rate chosen so the
    long-run offered load is still ``rate_rps``.
    """
    classes = get_mix(mix) if isinstance(mix, str) else list(mix)
    if not classes:
        raise PlanError("empty shape mix")
    if rate_rps <= 0 or n_requests <= 0:
        raise PlanError("rate_rps and n_requests must be > 0")
    if arrivals not in ("poisson", "bursty"):
        raise PlanError(f"unknown arrival process {arrivals!r}")
    if burst_factor <= 1.0:
        raise PlanError("burst_factor must be > 1")

    rng = np.random.default_rng([seed, 0xA])
    weights = np.asarray([c.weight for c in classes], dtype=np.float64)
    weights /= weights.sum()
    pools = _b_pools(classes, seed)

    # mean gap of (hot, cold) must average to 1/rate:
    # cold_rate = bf * rate / (2 bf - 1)
    hot_rate = burst_factor * rate_rps
    cold_rate = burst_factor * rate_rps / (2.0 * burst_factor - 1.0)

    requests = []
    t = 0.0
    for i in range(n_requests):
        if arrivals == "poisson":
            gap_rate = rate_rps
        else:
            gap_rate = hot_rate if (i // burst_len) % 2 == 0 else cold_rate
        t += float(rng.exponential(1.0 / gap_rate))
        ci = int(rng.choice(len(classes), p=weights))
        cls = classes[ci]
        shape = cls.shape
        a = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
        c = rng.standard_normal((shape.m, shape.n)).astype(np.float32)
        b = pools[ci][i % cls.n_b_variants].copy()  # fresh object, equal bits
        requests.append(
            GemmRequest(
                req_id=i,
                arrival_s=t,
                shape=shape,
                a=a,
                b=b,
                c=c,
                klass=cls.name,
                deadline_s=t + cls.slo_s if cls.slo_s is not None else None,
                priority=cls.priority,
            )
        )
    return requests
