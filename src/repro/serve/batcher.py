"""Shape-bucketed batching with a max-wait / max-batch policy.

Requests are bucketed by *coalescibility*: two requests can run as one
:func:`~repro.core.batched.grouped_gemm` call iff they share N, K, dtype
and B **content** (digest, not object identity — stream-deserialized
requests never share objects).  M may differ per member; the group runs
as one stacked tall GEMM, which is exactly where ftIMM's irregular-shape
machinery earns its keep.

A bucket closes into a :class:`Batch` when it holds ``max_batch``
requests, when its oldest member has waited ``max_wait_s``, or when the
stream drains.  The trade is the classic one: waiting longer builds
taller (more efficient) stacks but spends latency budget; the serving
experiment measures both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.batched import b_digest
from ..core.blocking import DTYPE_SIZES
from ..errors import PlanError
from ..obs.trace import current_tracer
from .request import GemmRequest

#: bucket key: (N, K, dtype-str, B-content-digest-or-id)
BucketKey = tuple[int, int, str, object]

#: numpy dtype name -> the repo's dtype tags (core.blocking.DTYPE_SIZES)
_DTYPE_TAGS = {"float32": "f32", "float64": "f64"}


def dtype_tag(dtype) -> str:
    name = str(dtype)
    try:
        return _DTYPE_TAGS[name]
    except KeyError:
        raise PlanError(f"unsupported operand dtype {name!r}") from None


def bucket_key(req: GemmRequest, *, by_digest: bool = True) -> BucketKey:
    """The coalescibility class of a request."""
    b_id = b_digest(req.b) if by_digest else id(req.b)
    return (req.shape.n, req.shape.k, dtype_tag(req.b.dtype), b_id)


def bucket_label(key: BucketKey) -> str:
    n, k, dtype, b_id = key
    tag = b_id[:8] if isinstance(b_id, str) else f"id{b_id:x}"[:10]
    return f"*x{n}x{k}/{dtype}/{tag}"


def bucket_b_bytes(key: BucketKey) -> int:
    """Size of the bucket's shared B matrix in bytes.

    A pure function of the bucket key (K x N at the dtype's width), so
    the placement layer can budget replica memory without touching
    request operands.
    """
    n, k, dtype, _b_id = key
    return n * k * DTYPE_SIZES[dtype]


@dataclass
class Batch:
    """A closed group of coalescible requests, ready to dispatch."""

    batch_id: int
    key: BucketKey
    requests: list[GemmRequest]
    close_s: float
    reason: str = "full"           # "full" | "timeout" | "drain"

    @property
    def n_items(self) -> int:
        return len(self.requests)

    @property
    def b_digest(self) -> object:
        """The shared-B content token the bucket coalesced on.

        A blake2b content digest with ``by_digest=True`` (the default),
        an object id otherwise — either way the token the placement
        layer keys replica sets on.
        """
        return self.key[3]

    @property
    def b_bytes(self) -> int:
        """Size of the batch's shared B matrix in bytes."""
        return bucket_b_bytes(self.key)

    @property
    def stacked_m(self) -> int:
        return sum(r.shape.m for r in self.requests)

    @property
    def deadline_s(self) -> float | None:
        """Earliest member deadline (what EDF sorts on)."""
        deadlines = [
            r.deadline_s for r in self.requests if r.deadline_s is not None
        ]
        return min(deadlines) if deadlines else None


class ShapeBucketBatcher:
    """Accumulates requests into buckets; closes them into batches."""

    def __init__(
        self,
        *,
        max_batch: int = 16,
        max_wait_s: float = 5e-4,
        by_digest: bool = True,
    ) -> None:
        if max_batch < 1:
            raise PlanError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise PlanError("max_wait_s must be >= 0")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.by_digest = by_digest
        self._buckets: dict[BucketKey, list[GemmRequest]] = {}
        self._next_id = 0

    @property
    def waiting(self) -> int:
        """Requests admitted but not yet closed into a batch."""
        return sum(len(reqs) for reqs in self._buckets.values())

    def add(self, req: GemmRequest, now: float) -> Batch | None:
        """Admit one request; returns a batch if its bucket just filled."""
        key = bucket_key(req, by_digest=self.by_digest)
        bucket = self._buckets.setdefault(key, [])
        bucket.append(req)
        if len(bucket) >= self.max_batch:
            return self._close(key, now, reason="full")
        return None

    def due_at(self, key: BucketKey) -> float | None:
        """When this bucket's oldest member hits max_wait (None if empty)."""
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        return bucket[0].arrival_s + self.max_wait_s

    def close_due(self, key: BucketKey, now: float) -> Batch | None:
        """Close the bucket if its oldest member has waited long enough."""
        due = self.due_at(key)
        if due is not None and due <= now:
            return self._close(key, now, reason="timeout")
        return None

    def drain(self, now: float) -> list[Batch]:
        """Close every non-empty bucket (end of stream)."""
        return [self._close(key, now, reason="drain")
                for key in list(self._buckets) if self._buckets[key]]

    def _close(self, key: BucketKey, now: float, *, reason: str) -> Batch:
        requests = self._buckets.pop(key)
        if not requests:
            raise PlanError("closing an empty bucket")
        batch = Batch(
            batch_id=self._next_id, key=key, requests=requests,
            close_s=now, reason=reason,
        )
        self._next_id += 1
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"coalesce b{batch.batch_id}",
                at_s=now,
                category="coalesce",
                track="batcher",
                pid=0,
                args={
                    "batch_id": batch.batch_id,
                    "reason": reason,
                    "n_items": batch.n_items,
                    "stacked_m": batch.stacked_m,
                    "bucket": bucket_label(key),
                },
            )
        return batch


@dataclass
class BucketStats:
    """Per-bucket aggregate for the report."""

    label: str
    batches: int = 0
    items: int = 0
    stacked_m: int = 0
    coalesced: int = 0  # items that shared a batch with at least one other

    def absorb(self, batch: Batch) -> None:
        self.batches += 1
        self.items += batch.n_items
        self.stacked_m += batch.stacked_m
        if batch.n_items > 1:
            self.coalesced += batch.n_items

    @property
    def mean_batch(self) -> float:
        return self.items / self.batches if self.batches else 0.0


def collect_bucket_stats(batches: list[Batch]) -> dict[str, BucketStats]:
    stats: dict[str, BucketStats] = {}
    for batch in batches:
        label = bucket_label(batch.key)
        stats.setdefault(label, BucketStats(label)).absorb(batch)
    return stats
