"""Live asyncio serving gateway over the discrete-event serve engine.

:class:`Gateway` is the front door for *live* callers: ``await
gw.submit(request)`` admits a request into the same
batcher/scheduler/backends the replay path uses — streaming admission,
not a pre-drawn list — and resolves when the simulated backend finishes
it, with the same typed outcomes (:class:`~repro.serve.request
.RequestRecord` on completion, :class:`~repro.errors.OverloadError` on
shed, :class:`~repro.errors.FaultError` past the re-dispatch budget).

**Virtual-clock bridge.** The engine runs in simulated seconds; asyncio
runs in wall time.  The bridge never free-runs the simulation: a pump
callback (scheduled with ``loop.call_soon``, so it interleaves fairly
with caller coroutines) advances the DES exactly far enough to resolve
the *oldest outstanding await*, resolves every future whose record
appeared along the way, and re-schedules itself while awaits remain.
Callers therefore interleave deterministically with simulated compute:
the event heap orders same-instant events arrivals-first then by push
order, a rule independent of *when* an event was pushed, so a seeded
async driver produces records bit-identical to the equivalent pre-drawn
replay (:func:`gateway_replay` is that driver; the test suite and CI
gate hold it to the bit).

**No silent losses.** Every submitted request ends in the engine's
record table.  Closing the gateway without draining resolves still
in-flight awaits with ``OverloadError(reason="shutdown")`` — typed and
counted, never a bare ``CancelledError``.

**Observability.** When metrics collection is ambient at construction,
engine work runs under a private registry that is folded into the
ambient one on :meth:`stats`/:meth:`close` via the delta-aware
``MetricsRegistry.merge(..., baseline=)``, so mid-flight snapshots never
double-count.  With tracing active the gateway adds ``submit`` /
``resolve`` instants and one ``await`` span per request on its own
track.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable

import numpy as np

from ..core.shapes import GemmShape
from ..errors import FaultError, OverloadError, PlanError
from ..hw.config import MachineConfig, default_machine
from ..obs import MetricsRegistry, current
from ..obs.registry import set_registry
from ..obs.trace import current_tracer
from .request import COMPLETED, FAILED, SHED, GemmRequest, RequestRecord
from .scheduler import StackHints, WarmupReport
from .server import (
    ServeConfig,
    ServeEngine,
    ServeReport,
    assemble_report,
    persist_observed_hints,
    warm_engine,
)


class Gateway:
    """Asyncio front-end: live streaming admission over the serve engine.

        gw = Gateway(ServeConfig(policy="edf"))
        gw.warm(expected_requests)          # optional, replay-parity warmup
        record = await gw.submit(request)   # raises OverloadError on shed
        await gw.close()                    # drain; gw.report() afterwards

    Requests must be submitted in non-decreasing ``arrival_s`` order (the
    engine's streaming-admission contract); ``submit_gemm`` stamps
    arrivals from the gateway clock automatically.  Use it as an async
    context manager to get drain-on-exit.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        machine: MachineConfig | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.machine = machine or default_machine()
        self.engine = ServeEngine(self.config, self.machine)
        self.warmup = WarmupReport(mode=self.config.warmup_tune)
        self._warmed = False
        #: submit order of awaits still outstanding: req_id -> future
        self._waiters: dict[int, asyncio.Future] = {}
        self._inflight: dict[int, GemmRequest] = {}
        self._pump_scheduled = False
        self._closed = False
        self._next_req_id = 0
        #: most awaits ever outstanding at once — the backpressure the
        #: live callers actually exerted (1 = strict closed loop)
        self._outstanding_high = 0
        #: live clock: auto-stamped arrivals never precede the last
        #: resolved response (a live caller reacts to what it has seen)
        self._live_now = 0.0
        # private registry so in-flight stats() snapshots can be folded
        # into the ambient registry without double-counting on close()
        self._ambient = current()
        self._metrics = MetricsRegistry() if self._ambient is not None else None
        self._merged_baseline: MetricsRegistry | None = None

    # -- metrics plumbing --------------------------------------------------

    def _swap_in(self) -> MetricsRegistry | None:
        if self._metrics is None:
            return None
        return set_registry(self._metrics)

    def _swap_out(self, prev: MetricsRegistry | None) -> None:
        if self._metrics is not None:
            set_registry(prev)

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def _sync_metrics(self) -> None:
        """Fold the private registry into the ambient one, delta-aware."""
        if self._metrics is None or self._ambient is None:
            return
        self._ambient.merge(self._metrics, baseline=self._merged_baseline)
        self._merged_baseline = MetricsRegistry.from_snapshot(
            self._metrics.snapshot()
        )

    # -- warmup ------------------------------------------------------------

    def warm(
        self,
        requests: list[GemmRequest],
        *,
        stack_hints: StackHints | None = None,
        warm_jobs: int | None = None,
    ) -> WarmupReport:
        """Pre-tune the bucket classes an expected stream will hit.

        Identical to the replay path's warmup (same helper), which is
        what makes gateway timing bit-identical to :func:`serve` — cold
        tunes charge the same penalties on both paths.
        """
        if self._closed:
            raise PlanError("gateway is closed")
        prev = self._swap_in()
        try:
            self.warmup = warm_engine(
                self.engine, requests,
                stack_hints=stack_hints, warm_jobs=warm_jobs,
            )
        finally:
            self._swap_out(prev)
        self._warmed = True
        return self.warmup

    # -- submission --------------------------------------------------------

    async def submit(self, req: GemmRequest) -> RequestRecord:
        """Admit one request; await its typed outcome.

        Returns the completed :class:`RequestRecord`; raises
        :class:`OverloadError` when the request was shed (admission
        queue, priority class, burn protection or gateway shutdown) and
        :class:`FaultError` when every re-dispatch attempt faulted.  The
        record always exists in :meth:`report` either way.
        """
        record = await self._submit(req)
        return self._raise_typed(record)

    async def submit_many(
        self, requests: Iterable[GemmRequest]
    ) -> list[RequestRecord]:
        """Admit a burst; return every record (shed/failed included).

        Unlike :meth:`submit` this never raises on per-request outcomes:
        sheds and faults come back as records with their typed error
        strings, in submission order.
        """
        futures = [self._offer(req) for req in requests]
        return list(await asyncio.gather(*futures))

    async def stream(
        self, requests: Iterable[GemmRequest]
    ) -> AsyncIterator[RequestRecord]:
        """Yield each request's record as it resolves, in submit order."""
        futures = [self._offer(req) for req in requests]
        for fut in futures:
            yield await fut

    async def submit_gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        c: np.ndarray | None = None,
        klass: str = "adhoc",
        deadline_budget_s: float | None = None,
        priority: str | None = None,
        arrival_s: float | None = None,
    ) -> RequestRecord:
        """Build, stamp and submit one GEMM; await its typed outcome.

        ``arrival_s`` defaults to the gateway clock (never earlier than
        the last submission or the last resolved response);
        ``deadline_budget_s`` is a latency budget from that arrival.
        """
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise PlanError(
                f"submit_gemm needs 2-D operands with a.shape[1] == "
                f"b.shape[0], got {a.shape} x {b.shape}"
            )
        at = arrival_s
        if at is None:
            at = max(self.engine.last_arrival_s, self._live_now)
        req = GemmRequest(
            req_id=self._next_req_id,
            arrival_s=at,
            shape=GemmShape(a.shape[0], b.shape[1], a.shape[1]),
            a=a,
            b=b,
            c=c if c is not None else np.zeros(
                (a.shape[0], b.shape[1]), dtype=a.dtype
            ),
            klass=klass,
            deadline_s=(
                at + deadline_budget_s
                if deadline_budget_s is not None else None
            ),
            priority=priority,
        )
        record = await self._submit(req)
        return self._raise_typed(record)

    async def _submit(self, req: GemmRequest) -> RequestRecord:
        return await self._offer(req)

    def _offer(self, req: GemmRequest) -> "asyncio.Future[RequestRecord]":
        """Synchronously admit ``req``; return the future of its record.

        The offer happens *before* any await point, so a driver that
        creates submit tasks in arrival order admits in arrival order —
        the determinism contract callers rely on.
        """
        if self._closed:
            raise PlanError("gateway is closed")
        if self._next_req_id <= req.req_id:
            self._next_req_id = req.req_id + 1
        # the request being admitted is in flight during its own offer —
        # counted even when a full bucket resolves it synchronously, so
        # the stat reports the backpressure the driver exerted
        inflight = len(self._waiters) + 1
        if inflight > self._outstanding_high:
            self._outstanding_high = inflight
            if self._metrics is not None:
                self._metrics.gauge("serve/gateway/outstanding").set(
                    inflight
                )
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"submit req {req.req_id}",
                at_s=req.arrival_s,
                category="gateway",
                track="gateway",
                pid=0,
                args={"req_id": req.req_id, "klass": req.klass,
                      "shape": str(req.shape)},
            )
        prev = self._swap_in()
        try:
            self._count("serve/gateway/submitted")
            self.engine.offer(req)
        finally:
            self._swap_out(prev)
        loop = asyncio.get_running_loop()
        fut: asyncio.Future[RequestRecord] = loop.create_future()
        record = self.engine.records.get(req.req_id)
        if record is not None:
            # a full bucket (or a shed) resolved synchronously
            self._resolve(req.req_id, fut, record)
            return fut
        self._waiters[req.req_id] = fut
        self._inflight[req.req_id] = req
        self._schedule_pump(loop)
        return fut

    # -- the virtual-clock bridge ------------------------------------------

    def _schedule_pump(self, loop: asyncio.AbstractEventLoop) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            loop.call_soon(self._pump)

    def _pump(self) -> None:
        """Advance the DES as far as the oldest outstanding await needs."""
        self._pump_scheduled = False
        if self._closed or not self._waiters:
            return
        oldest = next(iter(self._waiters))
        prev = self._swap_in()
        try:
            self.engine.advance_until(oldest)
        finally:
            self._swap_out(prev)
        for rid in [r for r in self._waiters if self.engine.resolved(r)]:
            fut = self._waiters.pop(rid)
            self._inflight.pop(rid, None)
            self._resolve(rid, fut, self.engine.records[rid])
        if self._waiters:
            self._schedule_pump(asyncio.get_running_loop())

    def _resolve(
        self, req_id: int, fut: "asyncio.Future[RequestRecord]",
        record: RequestRecord,
    ) -> None:
        end = record.finish_s
        if end is None:
            end = max(self.engine.now_s, record.arrival_s)
        self._live_now = max(self._live_now, end)
        self._count("serve/gateway/resolved")
        self._sync_live_metrics_hint(record)
        tracer = current_tracer()
        if tracer is not None:
            tracer.record(
                f"await req {req_id}",
                category="gateway",
                start_s=record.arrival_s,
                end_s=end,
                track="gateway",
                pid=0,
                args={"req_id": req_id, "status": record.status,
                      "error": record.error},
            )
            tracer.instant(
                f"resolve req {req_id}",
                at_s=end,
                category="gateway",
                track="gateway",
                pid=0,
                args={"req_id": req_id, "status": record.status},
            )
        if not fut.done():
            fut.set_result(record)

    def _sync_live_metrics_hint(self, record: RequestRecord) -> None:
        if self._metrics is not None and record.status != COMPLETED:
            self._metrics.counter("serve/gateway/losses_typed").inc()

    def _raise_typed(self, record: RequestRecord) -> RequestRecord:
        if record.status == SHED:
            raise OverloadError(
                record.req_id,
                self.config.queue_cap,
                reason=record.shed_reason or "queue_full",
            ) from None
        if record.status == FAILED:
            raise FaultError(
                f"request {record.req_id} failed: {record.error}"
            ) from None
        return record

    # -- introspection -----------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Submitted awaits not yet resolved."""
        return len(self._waiters)

    @property
    def outstanding_high_water(self) -> int:
        """Most submits ever in flight at once (backpressure stat).

        A strict closed loop holds this at 1; a windowed driver at its
        window size.  A submit counts during its own admission even when
        a full bucket resolves it synchronously.  Also exported as the
        ``serve/gateway/outstanding`` gauge (whose high-water mark this
        mirrors) when metrics are on.
        """
        return self._outstanding_high

    @property
    def now_s(self) -> float:
        """The bridge's virtual clock (simulated seconds)."""
        return max(self.engine.now_s, self._live_now)

    def stats(self) -> dict:
        """An in-flight metrics snapshot; folds into the ambient registry.

        Safe to call repeatedly while requests are in flight: the fold
        uses the delta-aware merge baseline, so the ambient registry sees
        each increment exactly once no matter how many snapshots (and the
        final :meth:`close`) happen.
        """
        self._sync_metrics()
        return self._metrics.snapshot() if self._metrics is not None else {}

    def report(self) -> ServeReport:
        """The serve report over everything resolved so far."""
        return assemble_report(self.engine, self.warmup)

    # -- teardown ----------------------------------------------------------

    async def close(self, *, drain: bool = True) -> None:
        """Shut the gateway down; idempotent.

        ``drain=True`` (default) runs the engine to completion first so
        every outstanding await resolves with its real outcome.
        ``drain=False`` abandons in-flight work: each outstanding await
        resolves with a shed record — ``OverloadError(reason=
        "shutdown")`` for :meth:`submit` callers — typed and counted,
        never silently cancelled.  Either way the private metrics are
        folded into the ambient registry exactly once.
        """
        if self._closed:
            return
        prev = self._swap_in()
        try:
            if drain:
                self.engine.finish()
            else:
                for rid, req in list(self._inflight.items()):
                    if not self.engine.resolved(rid):
                        self.engine._shed(
                            req, self.engine.now_s, "shutdown",
                            self.config.degrade.classify(req)
                            if self.config.degrade is not None else None,
                        )
                self.engine._finished = True
        finally:
            self._swap_out(prev)
        for rid in list(self._waiters):
            fut = self._waiters.pop(rid)
            self._inflight.pop(rid, None)
            record = self.engine.records.get(rid)
            if record is None:  # pragma: no cover - contract guard
                fut.set_exception(PlanError(
                    f"request {rid} lost at shutdown — contract violation"
                ))
                continue
            self._resolve(rid, fut, record)
        self._closed = True
        self._sync_metrics()
        persist_observed_hints(self.report())

    async def __aenter__(self) -> "Gateway":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)


def gateway_replay(
    requests: list[GemmRequest],
    config: ServeConfig | None = None,
    *,
    machine: MachineConfig | None = None,
    stack_hints: StackHints | None = None,
    warm_jobs: int | None = None,
) -> ServeReport:
    """Drive a pre-drawn stream through the live gateway; return its report.

    The equivalence driver behind the determinism contract: one submit
    task per request, created in arrival order (offers are synchronous
    up to the first await, so admission order equals replay order), all
    gathered concurrently while the pump advances the bridge clock.  The
    resulting records are bit-identical to ``serve(requests, config)``
    — asserted by the test suite and the CI smoke gate, not just here.
    """
    config = config or ServeConfig()
    if not requests:
        raise PlanError("empty request stream")
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))

    async def drive() -> ServeReport:
        gw = Gateway(config, machine=machine)
        gw.warm(ordered, stack_hints=stack_hints, warm_jobs=warm_jobs)
        tasks = [
            asyncio.ensure_future(gw.submit(req)) for req in ordered
        ]
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        for out in outcomes:
            if isinstance(out, BaseException) and not isinstance(
                out, (OverloadError, FaultError)
            ):
                raise out  # anything untyped is a contract violation
        await gw.close()
        report = gw.report()
        if len(report.records) != len(ordered):  # pragma: no cover - guard
            raise PlanError("a gateway request was dropped silently")
        return report

    return asyncio.run(drive())
