"""Load-aware replicated-B placement across GPDSP clusters.

The multi-cluster cost model already replicates B across clusters to
scale a *single* GEMM (:mod:`repro.core.multi_cluster` — each cluster
owns a private DDR port, so the copy is paid once and the compute scales
out).  The serving layer had no equivalent: every batch staged its B
into whichever cluster happened to run it, so a hot shared-B bucket (the
decode projections of the transformer overload mix) re-staged the same
weight matrix on every dispatch, and under load those batches serialized
behind one another's staging.

:class:`PlacementManager` is the serving-side counterpart.  It tracks
per-bucket traffic by B content digest, **promotes** hot B matrices to
:class:`ReplicaSet`\\ s replicated across several clusters (staging each
replica is charged to that cluster's timeline at the host CPU's DDR
bandwidth in DES time — exactly the multi-cluster replication cost),
**routes** each closed batch to the least-loaded cluster holding a
replica (so the batch skips its B staging entirely), and **demotes**
cold replicas LRU-first when a cluster's replica memory budget is
exceeded.

Contracts:

* ``replicate_b="off"`` constructs no manager at all — the serve loop is
  bit-identical to the pre-placement engine, knobs and all.
* Replication changes *where* batches run and what staging they pay,
  never the served bits: results are computed functionally per batch and
  verified against standalone ``ftimm_gemm`` regardless of placement.
* Every promotion, staging copy and demotion lands on the placement
  event timeline (:class:`PlacementReport`), in the metrics
  (``serve/placement/*``) and, under tracing, as ``placement`` instants.
* All decisions are made inside engine event processing — batch close
  and backend binding — which the gateway drives in ``offer()`` order,
  so a live async run replays bit-identical to the pre-drawn stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.blocking import DTYPE_SIZES
from ..errors import PlanError
from ..obs import current
from ..obs.trace import current_tracer
from .batcher import BucketKey, bucket_label

#: the three replication modes ``ServeConfig.replicate_b`` accepts.
REPLICATE_MODES = ("off", "static", "adaptive")


def bucket_b_bytes(key: BucketKey) -> int:
    """Size of the bucket's shared B matrix in bytes."""
    n, k, dtype, _digest = key
    return n * k * DTYPE_SIZES[dtype]


@dataclass
class ReplicaSet:
    """One B content's replica state: where it lives and how hot it is."""

    digest: object                 # B content digest (or id with by_digest=False)
    label: str                     # human-readable bucket label
    bytes: int                     # size of one replica
    seq: int                       # creation order (deterministic LRU ties)
    clusters: list[int] = field(default_factory=list)
    batches: int = 0               # batches closed on this digest (traffic)
    hits: int = 0                  # batches that skipped B staging
    last_used_s: float = 0.0
    #: traffic count at which (re-)promotion may fire; bumped after a
    #: full demotion so a just-evicted digest cannot thrash straight back
    promotable_at: int = 1

    @property
    def replicated(self) -> bool:
        return bool(self.clusters)


@dataclass
class PlacementEvent:
    """One promotion/staging/demotion on the simulated timeline."""

    at_s: float
    kind: str                      # promote | stage | demote
    label: str
    cluster: int | None = None
    detail: str = ""

    def describe(self) -> str:
        line = f"t={self.at_s * 1e3:8.3f} ms  {self.kind:<7} {self.label}"
        if self.cluster is not None:
            line += f"  cluster {self.cluster}"
        if self.detail:
            line += f"  ({self.detail})"
        return line


@dataclass
class PlacementReport:
    """What the replication manager did during one serve run."""

    mode: str
    budget_bytes: int
    promotions: int = 0
    demotions: int = 0
    hits: int = 0                  # batches served from a resident replica
    restages: int = 0              # replicated digests run off-holder
    staged_bytes: int = 0
    staged_s: float = 0.0          # total replica-staging time charged
    peak_bytes: list[int] = field(default_factory=list)   # per cluster
    replica_sets: int = 0          # digests ever promoted
    events: list[PlacementEvent] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"placement [{self.mode}]: {self.replica_sets} replica set(s), "
            f"{self.promotions} promotion(s), {self.demotions} demotion(s)",
            f"  {self.hits} batch(es) skipped B staging, "
            f"{self.restages} re-stage(s) off-holder, "
            f"{self.staged_bytes / 1024:.0f} KiB replicated "
            f"({self.staged_s * 1e6:.1f} us of cluster time)",
            "  peak replica residency per cluster: "
            + ", ".join(
                f"{b / 1024:.0f} KiB" for b in self.peak_bytes
            )
            + f" (budget {self.budget_bytes / 1024:.0f} KiB)",
        ]
        if self.events:
            lines.append("  timeline:")
            lines.extend(f"    {e.describe()}" for e in self.events)
        return "\n".join(lines)


class PlacementManager:
    """Traffic-driven B replication: promote, route, demote.

    One instance per serve run, owned by the engine and consulted by the
    scheduler's binding paths.  Every method is a pure function of the
    deterministic event stream — no wall clock, no randomness — so a
    placement-enabled run replays bit for bit.
    """

    def __init__(
        self,
        *,
        mode: str,
        n_clusters: int,
        budget_bytes: int,
        max_replicas: int,
        promote_after: int,
        cpu_bw: float,
    ) -> None:
        if mode not in ("static", "adaptive"):
            raise PlanError(
                f"placement mode must be 'static' or 'adaptive', got {mode!r}"
            )
        self.mode = mode
        self.n_clusters = n_clusters
        self.budget_bytes = budget_bytes
        self.max_replicas = max_replicas
        self.promote_after = promote_after
        self.cpu_bw = cpu_bw
        self.sets: dict[object, ReplicaSet] = {}
        self.bytes_used = [0] * n_clusters
        self.peak_bytes = [0] * n_clusters
        self.events: list[PlacementEvent] = []
        self._ever_promoted: set[object] = set()
        self.promotions = 0
        self.demotions = 0
        self.hits = 0
        self.restages = 0
        self.staged_bytes = 0
        self.staged_s = 0.0

    # -- event plumbing ----------------------------------------------------

    def _event(
        self,
        at_s: float,
        kind: str,
        label: str,
        cluster: int | None = None,
        detail: str = "",
    ) -> None:
        self.events.append(PlacementEvent(
            at_s=at_s, kind=kind, label=label, cluster=cluster,
            detail=detail,
        ))
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"{kind} {label}" + (
                    f" -> cluster {cluster}" if cluster is not None else ""
                ),
                at_s=at_s,
                category="placement",
                track="placement",
                pid=0,
                args={"kind": kind, "bucket": label, "cluster": cluster,
                      "detail": detail},
            )

    # -- promotion / demotion ----------------------------------------------

    def on_close(
        self, key: BucketKey, sched, now: float
    ) -> list[tuple[int, float, float]]:
        """Account one closed batch; maybe promote its digest.

        Called by the engine at every batch close (the deterministic
        decision point shared by replay and gateway).  Returns the
        replica-staging charges placed on cluster timelines as
        ``(cluster, start_s, end_s)`` tuples so the engine can arm EDF
        free events at the staging ends.
        """
        digest = key[3]
        st = self.sets.get(digest)
        if st is None:
            st = ReplicaSet(
                digest=digest,
                label=bucket_label(key),
                bytes=bucket_b_bytes(key),
                seq=len(self.sets),
                promotable_at=(
                    1 if self.mode == "static" else self.promote_after
                ),
            )
            self.sets[digest] = st
        st.batches += 1
        if st.replicated or st.bytes > self.budget_bytes:
            return []
        if st.batches < st.promotable_at:
            return []
        return self._promote(st, sched, now)

    def _promote(
        self, st: ReplicaSet, sched, now: float
    ) -> list[tuple[int, float, float]]:
        """Stage ``st``'s B onto the least-loaded clusters."""
        n_targets = max(1, min(self.max_replicas, self.n_clusters))
        targets = sorted(
            sched.backends, key=lambda b: (b.busy_until_s, b.idx)
        )[:n_targets]
        staged: list[tuple[int, float, float]] = []
        stage_s = st.bytes / self.cpu_bw
        for backend in targets:
            self._evict_for(backend.idx, st.bytes, now, keep=st.digest)
            start = max(now, backend.busy_until_s)
            end = backend.occupy(start, stage_s)
            self.bytes_used[backend.idx] += st.bytes
            self.peak_bytes[backend.idx] = max(
                self.peak_bytes[backend.idx], self.bytes_used[backend.idx]
            )
            st.clusters.append(backend.idx)
            self.staged_bytes += st.bytes
            self.staged_s += stage_s
            staged.append((backend.idx, start, end))
            self._event(
                now, "stage", st.label, backend.idx,
                f"{st.bytes / 1024:.0f} KiB in {stage_s * 1e6:.1f} us",
            )
        st.last_used_s = now
        self._ever_promoted.add(st.digest)
        self.promotions += 1
        self._event(
            now, "promote", st.label,
            detail=(
                f"{st.batches} batch(es) -> clusters "
                f"{','.join(str(c) for c in st.clusters)}"
            ),
        )
        m = current()
        if m is not None:
            m.counter("serve/placement/promotions").inc()
            m.counter("serve/placement/staged_bytes").inc(
                st.bytes * len(targets)
            )
        return staged

    def _evict_for(
        self, cluster: int, need_bytes: int, now: float, *, keep: object
    ) -> None:
        """LRU-demote replicas on ``cluster`` until ``need_bytes`` fits."""
        while self.bytes_used[cluster] + need_bytes > self.budget_bytes:
            victims = [
                s for s in self.sets.values()
                if cluster in s.clusters and s.digest != keep
            ]
            if not victims:  # pragma: no cover - budget >= need_bytes guard
                raise PlanError(
                    f"cluster {cluster}: replica budget cannot fit "
                    f"{need_bytes} bytes"
                )
            victim = min(victims, key=lambda s: (s.last_used_s, s.seq))
            self._demote(victim, cluster, now, "LRU under budget pressure")

    def _demote(
        self, st: ReplicaSet, cluster: int, now: float, why: str
    ) -> None:
        st.clusters.remove(cluster)
        self.bytes_used[cluster] -= st.bytes
        self.demotions += 1
        if not st.clusters:
            # fully evicted: require fresh traffic before re-promotion,
            # so a borderline-hot digest cannot thrash promote/demote
            st.promotable_at = st.batches + self.promote_after
        self._event(now, "demote", st.label, cluster, why)
        m = current()
        if m is not None:
            m.counter("serve/placement/demotions").inc()

    # -- routing -----------------------------------------------------------

    def holder_in(self, key: BucketKey, pool):
        """Least-loaded backend in ``pool`` holding ``key``'s replica.

        ``pool`` is the scheduler's routable set (health-filtered), so a
        replica whose only holder is quarantined yields None here and the
        caller falls back to normal binding plus a re-stage.
        """
        st = self.sets.get(key[3])
        if st is None or not st.clusters:
            return None
        holders = [b for b in pool if b.idx in st.clusters]
        if not holders:
            return None
        return min(holders, key=lambda b: (b.busy_until_s, b.idx))

    def use_replica(self, key: BucketKey, cluster: int, now: float) -> bool:
        """Is B resident on ``cluster``?  Called once per bound batch.

        A hit refreshes the replica's LRU stamp and lets the batch skip
        its B staging; a replicated digest bound off-holder (quarantined
        holders, or an EDF pull with no idle holder) counts as a
        re-stage — the batch pays B staging as if unreplicated.
        """
        st = self.sets.get(key[3])
        if st is None or not st.clusters:
            return False
        m = current()
        if cluster in st.clusters:
            st.last_used_s = now
            st.hits += 1
            self.hits += 1
            if m is not None:
                m.counter("serve/placement/hits").inc()
            return True
        self.restages += 1
        if m is not None:
            m.counter("serve/placement/restages").inc()
        return False

    # -- reporting ---------------------------------------------------------

    def report(self) -> PlacementReport:
        return PlacementReport(
            mode=self.mode,
            budget_bytes=self.budget_bytes,
            promotions=self.promotions,
            demotions=self.demotions,
            hits=self.hits,
            restages=self.restages,
            staged_bytes=self.staged_bytes,
            staged_s=self.staged_s,
            peak_bytes=list(self.peak_bytes),
            replica_sets=len(self._ever_promoted),
            events=sorted(self.events, key=lambda e: e.at_s),
        )
