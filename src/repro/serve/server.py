"""The simulated-time serve engine: admit → batch → schedule → execute.

:class:`ServeEngine` is a small discrete-event simulation (arrival,
batch-timeout, batch-start and cluster-free events on one heap),
entirely driven by simulated seconds, with **streaming admission**:
requests enter via :meth:`ServeEngine.offer` at call time — there is no
pre-drawn request list inside the engine.  Two clients ride on top:

* :func:`serve` — the replay client: offers a pre-drawn open-loop
  stream in arrival order, runs the engine to completion and returns a
  :class:`ServeReport` with one record per request.  Same seed + config
  replays the identical request-level latency table, bit for bit.
* :class:`~repro.serve.gateway.Gateway` — the live asyncio client:
  callers ``await submit(...)`` and the virtual-clock bridge advances
  the engine only as far as the oldest outstanding await requires.

Events at equal simulated time are ordered arrivals-first, then by push
order — a rule that does not depend on *when* an event was pushed, so a
live caller interleaving offers with awaits produces records
bit-identical to the equivalent pre-drawn replay.

Contracts, enforced rather than hoped for:

* **No silent drops.** Every request ends ``completed``, ``shed`` (typed
  :class:`~repro.errors.OverloadError`, counted) or ``failed`` (typed
  ``FaultError`` after the re-dispatch budget, counted).
* **Bit-exact responses.** With ``verify=True`` (default) every
  completed response is compared against a standalone
  :func:`~repro.core.ftimm.ftimm_gemm` of the request's own shape.  A
  coalesced member whose stacked execution picked a different blocked
  summation order is *repaired* to the standalone bits and counted in
  ``verify_repaired`` — served bits are standalone bits, always.
* **Honest accounting.** Failed fault-injection attempts charge their
  modeled time to the cluster (``lost_s``), cold tunes are charged to
  the batch that hit them, and shed requests stay in the tables.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace as dc_replace

import numpy as np

from ..analysis.tables import format_table
from ..core.batched import GroupedGemmResult, grouped_gemm
from ..core.ftimm import ftimm_gemm
from ..core.shapes import GemmShape
from ..errors import FaultError, OverloadError, PlanError
from ..faults.plan import FaultPlan
from ..hw.config import MachineConfig, default_machine
from ..obs import current
from ..obs.trace import current_tracer, head_sample, maybe_scope
from .batcher import Batch, ShapeBucketBatcher, bucket_key, bucket_label, dtype_tag
from .degrade import DegradePolicy, DegradeReport, OnlineBurn
from .placement import REPLICATE_MODES, PlacementManager, PlacementReport
from .request import (
    COMPLETED,
    FAILED,
    LATENCY_TABLE_HEADERS,
    SHED,
    BatchRecord,
    GemmRequest,
    RequestRecord,
)
from .scheduler import Scheduler, StackHints, WarmKey, WarmupReport

FP32 = 4


def expected_stack_hints(
    requests: list[GemmRequest], max_batch: int
) -> StackHints:
    """Expected stacked M per bucket class, from the request stream.

    For each (N, K, dtype) class, the batcher will split the class's
    requests into stacks of at most ``max_batch``; the expected stacked M
    is total M over the expected batch count.  Purely a function of the
    request list and ``max_batch`` — deterministic, so hinted warmup
    keeps the replay contract.
    """
    per: dict[WarmKey, list[int]] = {}
    for req in requests:
        key: WarmKey = (req.shape.n, req.shape.k, dtype_tag(req.b.dtype))
        per.setdefault(key, []).append(req.shape.m)
    hints: StackHints = {}
    for key, ms in per.items():
        n_batches = max(1, -(-len(ms) // max(1, max_batch)))
        hints[key] = max(1, round(sum(ms) / n_batches))
    return hints


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes a serve run (hashable, replayable)."""

    policy: str = "least_loaded"
    #: four clusters make coarse batches pack badly; stacking gains
    #: saturate early, so a small cap wins at saturation (see harness)
    max_batch: int = 4
    max_wait_s: float = 5e-4
    queue_cap: int = 64            # admitted requests not yet started
    by_digest: bool = True         # shared-B detection via content digest
    warmup: bool = True
    #: warmup tuner: "rule" (rule-based, the deterministic default) or
    #: "search" (real pruned plan search with cross-shape transfer)
    warmup_tune: str = "rule"
    #: warm each bucket at its expected *stacked* M from the request
    #: stream instead of the first request's M (batch-aware tuning);
    #: ``"observed"`` additionally seeds warmup from the stack heights a
    #: *previous* session actually observed (persisted alongside the
    #: plan database) and persists this run's observed stacks for the
    #: next one.  Affects only which plans/kernels are pre-cached,
    #: never results.
    stack_hints: bool | str = True
    #: modeled un-warmed plan-search penalty; None = charge the measured
    #: warmup tune wall instead (machine-dependent — replay determinism
    #: holds only for explicit constants)
    cold_tune_s: float | None = 5e-4
    verify: bool = True
    timing: str = "analytic"
    faults: FaultPlan | None = None
    max_redispatch: int = 2
    n_clusters: int | None = None  # default: all the machine has
    #: graceful degradation: priority classes, burn-driven shedding,
    #: cluster quarantine.  None (default) keeps the loop bit-identical
    #: to the policy-free baseline.
    degrade: DegradePolicy | None = None
    #: per-cluster multiplier on the fault plan's bitflip/DMA rates —
    #: models one sick cluster in an otherwise healthy pool.  When set,
    #: fault attempts are seeded per cluster too (so moving a batch off
    #: a sick cluster actually changes its fate); length must equal the
    #: number of clusters.
    cluster_fault_scale: tuple[float, ...] | None = None
    #: deterministic head-based trace sampling rate for per-request
    #: spans (1.0 = keep everything).  Shed, failed and SLO-violating
    #: requests are always retained; only clean completions are sampled.
    trace_sample: float = 1.0
    #: replicated-B placement: "off" (bit-identical to the pre-placement
    #: engine), "static" (promote every digest on first traffic) or
    #: "adaptive" (promote after ``promote_after`` batches).  Replication
    #: changes where batches run and what staging they pay, never the
    #: served bits.
    replicate_b: str = "off"
    #: per-cluster replica memory budget; cold replicas are LRU-demoted
    #: to stay under it
    replica_budget_bytes: int = 8 << 20
    #: clusters each hot B is replicated across (capped at the pool size)
    max_replicas: int = 4
    #: batches a digest must attract before adaptive promotion fires
    promote_after: int = 2

    def __post_init__(self) -> None:
        if self.queue_cap < 1:
            raise PlanError("queue_cap must be >= 1")
        if self.max_redispatch < 0:
            raise PlanError("max_redispatch must be >= 0")
        if self.warmup_tune not in ("rule", "search"):
            raise PlanError(
                f"warmup_tune must be 'rule' or 'search', "
                f"got {self.warmup_tune!r}"
            )
        if not isinstance(self.stack_hints, bool) and (
            self.stack_hints != "observed"
        ):
            raise PlanError(
                f"stack_hints must be True, False or 'observed', "
                f"got {self.stack_hints!r}"
            )
        if not 0.0 <= self.trace_sample <= 1.0:
            raise PlanError("trace_sample must be in [0, 1]")
        if self.cluster_fault_scale is not None:
            if any(s < 0 for s in self.cluster_fault_scale):
                raise PlanError("cluster_fault_scale entries must be >= 0")
        if self.replicate_b not in REPLICATE_MODES:
            raise PlanError(
                f"replicate_b must be one of {REPLICATE_MODES}, "
                f"got {self.replicate_b!r}"
            )
        if self.replica_budget_bytes < 1:
            raise PlanError("replica_budget_bytes must be >= 1")
        if self.max_replicas < 1:
            raise PlanError("max_replicas must be >= 1")
        if self.promote_after < 1:
            raise PlanError("promote_after must be >= 1")


@dataclass
class ServeReport:
    """Outcome of one serve run."""

    policy: str
    config: ServeConfig
    records: list[RequestRecord]
    batches: list[BatchRecord]
    warmup: WarmupReport
    makespan_s: float
    offered_rps: float
    #: verification bookkeeping (None counts when verify was off)
    verify_repaired: int = 0
    redispatches: int = 0
    #: degradation outcome (None when no degrade policy was configured)
    degrade: DegradeReport | None = None
    #: replicated-B placement outcome (None when ``replicate_b="off"``)
    placement: PlacementReport | None = None

    # -- aggregates --------------------------------------------------------

    def _count(self, status: str) -> int:
        return sum(1 for r in self.records if r.status == status)

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return self._count(COMPLETED)

    @property
    def shed(self) -> int:
        return self._count(SHED)

    @property
    def failed(self) -> int:
        return self._count(FAILED)

    @property
    def deadline_met(self) -> int:
        return sum(1 for r in self.records if r.deadline_met is True)

    @property
    def deadline_missed(self) -> int:
        return sum(
            1 for r in self.records
            if r.deadline_met is False or r.status in (SHED, FAILED)
        )

    @property
    def goodput_rps(self) -> float:
        """Completed requests that met their SLO (or had none), per second."""
        if self.makespan_s <= 0:
            return 0.0
        good = sum(
            1 for r in self.records
            if r.status == COMPLETED and r.deadline_met is not False
        )
        return good / self.makespan_s

    @property
    def completed_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def throughput_gflops(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        flops = sum(
            GemmShape(*map(int, r.shape.split("x"))).flops
            for r in self.records if r.status == COMPLETED
        )
        return flops / self.makespan_s / 1e9

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return sum(b.n_items for b in self.batches) / len(self.batches)

    def stack_hints(self) -> StackHints:
        """Observed mean stacked M per bucket class.

        Deterministic (a pure function of the batch records), so a later
        run — e.g. the next point of a load sweep — can warm with the
        stack heights this run actually saw instead of the a-priori
        estimate of :func:`expected_stack_hints`.
        """
        per: dict[WarmKey, list[int]] = {}
        for b in self.batches:
            head, dtype, _tag = b.bucket.split("/")
            _star, n, k = head.split("x")
            per.setdefault((int(n), int(k), dtype), []).append(b.stacked_m)
        return {
            key: max(1, round(sum(ms) / len(ms))) for key, ms in per.items()
        }

    def latency_quantile(self, q: float) -> float:
        """Exact q-quantile of completed-request latency (seconds)."""
        lats = sorted(
            r.latency_s for r in self.records
            if r.status == COMPLETED and r.latency_s is not None
        )
        if not lats:
            return 0.0
        idx = min(len(lats) - 1, max(0, int(np.ceil(q * len(lats))) - 1))
        return lats[idx]

    # -- rendering ---------------------------------------------------------

    def latency_table(self, limit: int | None = None) -> str:
        """The deterministic request-level table (the replay contract)."""
        rows = [r.as_row() for r in self.records[:limit]]
        return format_table(LATENCY_TABLE_HEADERS, rows)

    def describe(self) -> str:
        parts = [
            f"policy {self.policy}: {self.n_requests} requests, "
            f"{self.completed} completed, {self.shed} shed, "
            f"{self.failed} failed",
            f"  offered {self.offered_rps:.0f} rps -> goodput "
            f"{self.goodput_rps:.0f} rps "
            f"({self.throughput_gflops:.2f} GFLOPS sustained)",
            f"  SLO: {self.deadline_met} met / {self.deadline_missed} missed",
            f"  latency p50/p95/p99: "
            f"{self.latency_quantile(0.50) * 1e3:.3f} / "
            f"{self.latency_quantile(0.95) * 1e3:.3f} / "
            f"{self.latency_quantile(0.99) * 1e3:.3f} ms",
            f"  batches: {len(self.batches)} "
            f"(mean size {self.mean_batch_size:.2f}), "
            f"verify repaired {self.verify_repaired}, "
            f"re-dispatches {self.redispatches}, "
            f"warmed buckets {self.warmup.n_buckets}",
        ]
        if self.degrade is not None:
            parts.append(self.degrade.describe())
        if self.placement is not None:
            parts.append(self.placement.describe())
        return "\n".join(parts)


@dataclass
class _Execution:
    """What executing one batch cost and produced."""

    ok: bool
    gemm_s: float = 0.0
    tune_s: float = 0.0
    stage_s: float = 0.0
    #: staging with the shared B excluded — precomputed so a replica hit
    #: swaps ``stage_s`` for this value without re-deriving floats (the
    #: full-staging expression stays byte-for-byte what the pre-placement
    #: engine computed, preserving off-mode bit identity)
    stage_nob_s: float = 0.0
    #: did the batch run on a cluster already holding its B replica?
    b_resident: bool = False
    lost_s: float = 0.0
    redispatches: int = 0
    repaired: int = 0
    error: str | None = None
    result: GroupedGemmResult | None = None
    attempt_errors: list[str] = field(default_factory=list)
    #: the backend the final attempt ran on (health-aware re-routing may
    #: move a batch off the cluster it was first bound to); None for EDF
    backend: object | None = None
    #: clusters whose attempt faulted (feeds quarantine + re-routing)
    failed_on: list[int] = field(default_factory=list)

    @property
    def span_s(self) -> float:
        return self.tune_s + self.stage_s + self.gemm_s + self.lost_s


#: heap tie-break rank at equal simulated time: arrivals first, then
#: everything else in push order.  In a replay all arrivals are pushed
#: before the run starts (smallest sequence numbers), so this rule is
#: exactly the order the pre-rank loop already produced — but unlike raw
#: push order it also holds when arrivals stream in live, which is what
#: makes gateway records bit-identical to the replay's.
_RANK_ARRIVE = 0
_RANK_OTHER = 1


class ServeEngine:
    """The streaming serve engine: one run's mutable DES state.

    Requests are *offered* (streaming admission at call time), events are
    advanced explicitly, and every offered request deterministically ends
    in :attr:`records` — completed, typed-shed or typed-failed.  The
    engine never looks at a request list: :func:`serve` replays a
    pre-drawn stream through it, and the asyncio
    :class:`~repro.serve.gateway.Gateway` feeds it live submissions.
    """

    def __init__(
        self,
        config: ServeConfig,
        machine: MachineConfig,
    ) -> None:
        self.config = config
        self.machine = machine
        self.batcher = ShapeBucketBatcher(
            max_batch=config.max_batch,
            max_wait_s=config.max_wait_s,
            by_digest=config.by_digest,
        )
        n_clusters = config.n_clusters or machine.n_clusters
        if (
            config.cluster_fault_scale is not None
            and len(config.cluster_fault_scale) != n_clusters
        ):
            raise PlanError(
                f"cluster_fault_scale has {len(config.cluster_fault_scale)} "
                f"entries for {n_clusters} clusters"
            )
        #: replicated-B placement manager; None keeps the binding paths
        #: (and the records) bit-identical to the pre-placement engine
        self.placement: PlacementManager | None = None
        if config.replicate_b != "off":
            self.placement = PlacementManager(
                mode=config.replicate_b,
                n_clusters=n_clusters,
                budget_bytes=config.replica_budget_bytes,
                max_replicas=config.max_replicas,
                promote_after=config.promote_after,
                cpu_bw=machine.cpu.ddr_bandwidth,
            )
        self.sched = Scheduler(
            n_clusters=n_clusters,
            policy=config.policy,
            cold_tune_s=config.cold_tune_s,
            machine=machine,
            health=(config.degrade.health
                    if config.degrade is not None else None),
            placement=self.placement,
        )
        #: online burn estimator feeding proactive shedding (degrade only)
        self.burn: OnlineBurn | None = None
        if config.degrade is not None:
            self.burn = OnlineBurn(
                objective=config.degrade.burn_objective,
                window_s=config.degrade.burn_window_s,
                min_events=config.degrade.burn_min_events,
            )
        self.shed_reasons: dict[str, int] = {}
        self.shed_by_class: dict[str, int] = {}
        self.records: dict[int, RequestRecord] = {}
        self.batch_records: list[BatchRecord] = []
        self.pending = 0               # admitted, not yet started
        self.verify_repaired = 0
        self.redispatches = 0
        self.last_finish_s = 0.0
        self.last_arrival_s = 0.0
        self.n_offered = 0
        #: the engine's virtual clock: the latest simulated instant any
        #: event or offer has been processed at (monotone)
        self.now_s = 0.0
        self._events: list[tuple[float, int, int, str, object]] = []
        self._seq = 0
        self._finished = False
        #: EDF central queue: (deadline, close_s, batch_id, batch, execution)
        self._ready: list[tuple[float, float, int, Batch, _Execution]] = []
        #: trace display lanes for request spans: lane index -> last end
        self._lanes: list[float] = []

    # -- event plumbing ----------------------------------------------------

    def _push(self, at_s: float, kind: str, payload: object) -> None:
        rank = _RANK_ARRIVE if kind == "arrive" else _RANK_OTHER
        heapq.heappush(self._events, (at_s, rank, self._seq, kind, payload))
        self._seq += 1

    def _step(self) -> None:
        """Pop and process exactly one event."""
        now, _rank, _seq, kind, payload = heapq.heappop(self._events)
        if now > self.now_s:
            self.now_s = now
        if kind == "arrive":
            self._on_arrive(payload, now)
        elif kind == "timeout":
            batch = self.batcher.close_due(payload, now)
            if batch is not None:
                self._on_close(batch, now)
        elif kind == "start":
            self.pending -= payload
            self._gauge_queue()
        elif kind == "free":
            self._edf_pull(now)
        else:  # pragma: no cover - defensive
            raise PlanError(f"unknown event {kind!r}")

    # -- streaming admission ----------------------------------------------

    def offer(self, req: GemmRequest, *, arrival_s: float | None = None) -> None:
        """Admit (or typed-shed) one request at its arrival instant.

        The engine first advances through every event strictly earlier
        than the arrival (events *at* the arrival instant stay queued —
        arrivals win ties, the replay rule), then runs admission: shed
        decisions, bucket coalescing and batch closes happen right here,
        so a full bucket executes synchronously and
        ``records[req.req_id]`` may already exist when this returns.
        """
        at = req.arrival_s if arrival_s is None else arrival_s
        if self._finished:
            raise PlanError("engine already finished")
        if at < self.last_arrival_s:
            raise PlanError(
                f"request {req.req_id} arrives at {at} before the "
                f"previous offer at {self.last_arrival_s} — offers must "
                "be in non-decreasing arrival order"
            )
        if req.req_id in self.records:
            raise PlanError(f"duplicate request id {req.req_id}")
        self.advance_to(at)
        self.last_arrival_s = at
        if at > self.now_s:
            self.now_s = at
        self.n_offered += 1
        self._on_arrive(req, at)

    def advance_to(self, t_s: float) -> None:
        """Process every queued event strictly earlier than ``t_s``."""
        while self._events and self._events[0][0] < t_s:
            self._step()

    def resolved(self, req_id: int) -> bool:
        return req_id in self.records

    def advance_until(self, req_id: int) -> RequestRecord:
        """Advance the DES just far enough to resolve ``req_id``.

        This is the virtual-clock bridge's workhorse: it pops events in
        deterministic order until the request's record exists, falling
        back to the EDF ready-queue drain when the heap runs dry (a
        quarantined backend is not "free" until its cooldown expires —
        ``next_ready_s`` covers it).  The clock never moves further than
        the awaited request requires.
        """
        while req_id not in self.records:
            if self._events:
                self._step()
            elif self._ready:
                now = max(self.now_s, self.sched.next_ready_s())
                self.now_s = now
                self._edf_pull(now)
            else:  # pragma: no cover - contract guard
                raise PlanError(
                    f"request {req_id} cannot resolve: no pending events"
                )
        return self.records[req_id]

    def finish(self) -> None:
        """End of stream: run every event, close stragglers, drain EDF."""
        if self._finished:
            return
        while self._events:
            self._step()
        t_end = max(self.last_arrival_s, self.last_finish_s)
        for batch in self.batcher.drain(t_end):
            self._on_close(batch, t_end)
        # EDF queue drains against future frees (a quarantined backend is
        # not "free" until its cooldown expires — next_ready_s covers it)
        while self._ready:
            now = max(t_end, self.sched.next_ready_s())
            self._edf_pull(now)
        self.now_s = max(self.now_s, t_end, self.last_finish_s)
        self._finished = True

    # -- handlers ----------------------------------------------------------

    def _on_arrive(self, req: GemmRequest, now: float) -> None:
        m = current()
        if m is not None:
            m.counter("serve/requests/offered").inc()
        pol = self.config.degrade
        pcls = pol.classify(req) if pol is not None else None
        reason = None
        if self.pending >= self.config.queue_cap:
            reason = "queue_full"
        elif pcls is not None:
            # proactive, class-aware admission: loose classes lose their
            # queue headroom first, then their burn budget
            if (
                pcls.admit_above < 1.0
                and self.pending >= pcls.admit_above * self.config.queue_cap
            ):
                reason = "class_shed"
            elif (
                pcls.burn_shed
                and self.burn is not None
                and self.burn.burn_at(now) >= pol.burn_threshold
            ):
                reason = "burn_shed"
        if reason is not None:
            self._shed(req, now, reason, pcls)
            return
        self.pending += 1
        self._gauge_queue()
        if m is not None:
            m.counter("serve/requests/admitted").inc()
        batch = self.batcher.add(req, now)
        if batch is not None:
            self._on_close(batch, now)
        else:
            key = bucket_key(req, by_digest=self.config.by_digest)
            due = self.batcher.due_at(key)
            # only the request that *opened* the bucket arms its timer;
            # a bucket re-opened after a close gets a fresh event
            if due is not None and due == req.arrival_s + self.batcher.max_wait_s:
                self._push(due, "timeout", key)

    def _shed(
        self,
        req: GemmRequest,
        now: float,
        reason: str,
        pcls,
    ) -> None:
        m = current()
        err = OverloadError(req.req_id, self.config.queue_cap, reason=reason)
        self.records[req.req_id] = RequestRecord(
            req_id=req.req_id,
            klass=req.klass,
            shape=str(req.shape),
            arrival_s=req.arrival_s,
            status=SHED,
            deadline_s=req.deadline_s,
            deadline_met=False if req.deadline_s is not None else None,
            error=str(err),
            priority=pcls.name if pcls is not None else None,
            shed_reason=reason,
        )
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
        if pcls is not None:
            self.shed_by_class[pcls.name] = (
                self.shed_by_class.get(pcls.name, 0) + 1
            )
        if self.burn is not None and reason == "queue_full":
            # a reactive drop is genuine badness; deliberate class/burn
            # sheds are excluded or the monitor would latch itself on
            self.burn.add(now, True)
        if m is not None:
            m.counter("serve/requests/shed").inc()
            if reason == "class_shed":
                m.counter("serve/degrade/shed_class").inc()
            elif reason == "burn_shed":
                m.counter("serve/degrade/shed_burn").inc()
        tracer = current_tracer()
        if tracer is not None:
            args = {"req_id": req.req_id, "klass": req.klass,
                    "queue_cap": self.config.queue_cap, "reason": reason}
            if pcls is not None:
                args["priority"] = pcls.name
            tracer.instant(
                f"shed req {req.req_id}",
                at_s=now,
                category="admission",
                track="admission",
                pid=0,
                args=args,
            )

    def _on_close(self, batch: Batch, now: float) -> None:
        if self.placement is not None:
            # batch close is the deterministic promotion point shared by
            # replay and gateway; staging charges land on cluster
            # timelines, so EDF needs a pull opportunity at each end
            staged = self.placement.on_close(batch.key, self.sched, now)
            if self.config.policy == "edf":
                for _cluster, _start, end in staged:
                    self._push(end, "free", None)
        if self.config.policy == "edf":
            execution = self._execute(batch, now, None)
            deadline = batch.deadline_s
            heapq.heappush(self._ready, (
                deadline if deadline is not None else float("inf"),
                batch.close_s, batch.batch_id, batch, execution,
            ))
            self._edf_pull(now)
            return
        # eager policies bind the backend first so fault attempts can be
        # attributed to (and re-routed off) a concrete cluster
        backend = self.sched.pick_backend(
            now, key=batch.key if self.placement is not None else None
        )
        execution = self._execute(batch, now, backend)
        if execution.backend is not None:
            backend = execution.backend
        self._apply_residency(batch, execution, backend, now)
        start = max(now, backend.busy_until_s)
        if start > now:
            self._push(start, "start", batch.n_items)
        else:
            self.pending -= batch.n_items
            self._gauge_queue()
        self._finalize(batch, execution, backend, start)

    def _apply_residency(
        self, batch: Batch, execution: _Execution, backend, now: float
    ) -> None:
        """Let a batch bound to a replica holder skip its B staging.

        Residency is decided against the *final* backend (after any
        health-aware fault re-route), so a batch moved off a holder
        honestly pays its re-stage.
        """
        if self.placement is not None and self.placement.use_replica(
            batch.key, backend.idx, now
        ):
            execution.stage_s = execution.stage_nob_s
            execution.b_resident = True

    def _edf_pull(self, now: float) -> None:
        while self._ready:
            # the head batch is the one an idle backend would pull, so
            # its key steers the idle-holder preference
            key = self._ready[0][3].key if self.placement is not None else None
            backend = self.sched.idle_backend(now, key=key)
            if backend is None:
                return
            _dl, _cs, _bid, batch, execution = heapq.heappop(self._ready)
            self._apply_residency(batch, execution, backend, now)
            self.pending -= batch.n_items
            self._gauge_queue()
            self._finalize(batch, execution, backend, now)

    # -- execution ---------------------------------------------------------

    def _execute(
        self,
        batch: Batch,
        now: float,
        backend,
    ) -> _Execution:
        """Run the batch functionally + under the cost model.

        Results do not depend on *when* the batch runs, so execution
        happens at close time; only the accounting is placed on the
        simulated timeline by :meth:`_finalize`.  ``backend`` is the
        cluster the batch is bound to (None for EDF, which binds at pull
        time): fault attempts are attributed to it, and with a health
        policy a faulted attempt re-routes to another eligible cluster.
        For EDF an attribution-only route is chosen here when faults
        need a cluster identity (scaling/health); the time accounting
        still lands on whichever backend pulls the batch — a documented
        simplification.
        """
        cfg = self.config
        m = current()
        route = backend
        if route is None and (
            cfg.cluster_fault_scale is not None
            or self.sched.health is not None
        ):
            route = self.sched.route_retry(now, set())
        n, k, dtype, _b = batch.key
        tune_s = self.sched.tune_penalty((n, k, dtype))
        a_blocks = [r.a for r in batch.requests]
        c_blocks = [r.c for r in batch.requests]
        b = batch.requests[0].b
        c_before = [r.c.copy() for r in batch.requests] if cfg.verify else None

        # staging through the host into the cluster's memory partition:
        # A blocks + one shared B in, C in and out
        cpu_bw = self.machine.cpu.ddr_bandwidth
        a_bytes = sum(r.shape.m * r.shape.k for r in batch.requests) * FP32
        c_bytes = sum(r.shape.m * r.shape.n for r in batch.requests) * FP32
        b_bytes = k * n * FP32
        stage_s = (a_bytes + b_bytes + 2 * c_bytes) / cpu_bw
        stage_nob_s = (a_bytes + 2 * c_bytes) / cpu_bw

        lost_s = 0.0
        redispatches = 0
        attempt = 0
        attempt_errors: list[str] = []
        failed_on: list[int] = []
        while True:
            faults = None
            if cfg.faults is not None:
                seed = (
                    cfg.faults.seed + 1_000 * attempt + 7 * batch.batch_id
                )
                overrides: dict[str, object] = {}
                if cfg.cluster_fault_scale is not None and route is not None:
                    # per-cluster fault attribution: rates scale with the
                    # cluster's sickness and the seed depends on *which*
                    # cluster runs the attempt, so re-routing a batch off
                    # a sick cluster genuinely changes its fate
                    scale = cfg.cluster_fault_scale[route.idx]
                    seed += 13_001 * route.idx
                    overrides["bitflip_rate"] = min(
                        1.0, cfg.faults.bitflip_rate * scale
                    )
                    overrides["dma_fail_rate"] = min(
                        1.0, cfg.faults.dma_fail_rate * scale
                    )
                faults = dc_replace(cfg.faults, seed=seed, **overrides)
            try:
                result = grouped_gemm(
                    a_blocks, b, c_blocks,
                    machine=self.machine, timing=cfg.timing, faults=faults,
                )
                break
            except FaultError as exc:
                # the failed attempt's modeled time is honestly lost
                lost_s += grouped_gemm(
                    None, None, None,
                    m_blocks=[r.shape.m for r in batch.requests],
                    n=n, k=k,
                    machine=self.machine, timing="analytic",
                ).seconds
                attempt += 1
                redispatches += 1
                attempt_errors.append(f"{type(exc).__name__}: {exc}")
                if m is not None:
                    m.counter("serve/redispatches").inc()
                if route is not None:
                    failed_on.append(route.idx)
                    self.sched.note_fault(
                        route.idx, now, f"{type(exc).__name__}: {exc}"
                    )
                    if self.sched.health is not None:
                        route = self.sched.route_retry(now, set(failed_on))
                if attempt > cfg.max_redispatch:
                    return _Execution(
                        ok=False,
                        tune_s=tune_s,
                        stage_s=stage_s,
                        stage_nob_s=stage_nob_s,
                        lost_s=lost_s,
                        redispatches=redispatches,
                        error=f"{type(exc).__name__}: {exc}",
                        attempt_errors=attempt_errors,
                        backend=route if backend is not None else None,
                        failed_on=failed_on,
                    )

        repaired = 0
        if cfg.verify:
            # verification is host work off the simulated timeline, so its
            # span carries wall time only
            with maybe_scope(
                "verify", category="verify", track="verifier", pid=0,
                args={"batch_id": batch.batch_id, "n_items": batch.n_items},
            ) as vscope:
                for req, c0 in zip(batch.requests, c_before):
                    standalone = c0.copy()
                    ftimm_gemm(
                        req.shape.m, req.shape.n, req.shape.k,
                        a=req.a, b=req.b, c=standalone,
                        machine=self.machine, timing="none",
                    )
                    if not np.array_equal(standalone, req.c):
                        # stacked blocking summed in a different order; the
                        # served bits must be the standalone bits — repair
                        req.c[...] = standalone
                        repaired += 1
                if vscope is not None:
                    vscope.args["repaired"] = repaired
            if repaired and m is not None:
                m.counter("serve/verify/repaired").inc(repaired)

        return _Execution(
            ok=True,
            gemm_s=result.seconds,
            tune_s=tune_s,
            stage_s=stage_s,
            stage_nob_s=stage_nob_s,
            lost_s=lost_s,
            redispatches=redispatches,
            repaired=repaired,
            result=result,
            attempt_errors=attempt_errors,
            backend=route if backend is not None else None,
            failed_on=failed_on,
        )

    def _finalize(
        self,
        batch: Batch,
        execution: _Execution,
        backend,
        start_s: float,
    ) -> None:
        m = current()
        finish = backend.charge(start_s, execution.span_s)
        if self.config.policy == "edf":
            # a pull opportunity the moment this backend frees up
            self._push(finish, "free", None)
        if execution.ok:
            self.sched.note_success(backend.idx, finish)
        self.last_finish_s = max(self.last_finish_s, finish)
        self.verify_repaired += execution.repaired
        self.redispatches += execution.redispatches
        self.batch_records.append(BatchRecord(
            batch_id=batch.batch_id,
            bucket=bucket_label(batch.key),
            n_items=batch.n_items,
            close_s=batch.close_s,
            start_s=start_s,
            finish_s=finish,
            cluster=backend.idx,
            stacked_m=batch.stacked_m,
            tune_s=execution.tune_s,
            stage_s=execution.stage_s,
            gemm_s=execution.gemm_s,
            lost_s=execution.lost_s,
            redispatches=execution.redispatches,
            request_ids=[r.req_id for r in batch.requests],
            b_resident=execution.b_resident,
        ))
        if m is not None:
            m.counter("serve/batches").inc()
            m.distribution("serve/batch/size").add(batch.n_items)
        for req in batch.requests:
            queue_s = batch.close_s - req.arrival_s
            batch_s = start_s - batch.close_s
            met = None
            if req.deadline_s is not None:
                met = execution.ok and finish <= req.deadline_s
            status = COMPLETED if execution.ok else FAILED
            pcls = (
                self.config.degrade.classify(req)
                if self.config.degrade is not None else None
            )
            if self.burn is not None:
                # outcome feeds the online burn estimate at its finish
                # time — causal for every later admission decision
                self.burn.add(finish, (not execution.ok) or met is False)
            self.records[req.req_id] = RequestRecord(
                req_id=req.req_id,
                klass=req.klass,
                shape=str(req.shape),
                arrival_s=req.arrival_s,
                status=status,
                queue_s=queue_s,
                batch_s=batch_s,
                compute_s=execution.span_s,
                finish_s=finish,
                deadline_s=req.deadline_s,
                deadline_met=met,
                batch_id=batch.batch_id,
                batch_size=batch.n_items,
                cluster=backend.idx,
                bit_exact=(True if (execution.ok and self.config.verify)
                           else None),
                error=execution.error,
                priority=pcls.name if pcls is not None else None,
            )
            if m is not None:
                m.counter(f"serve/requests/{status}").inc()
                if met is True:
                    m.counter("serve/deadline/met").inc()
                elif met is False:
                    m.counter("serve/deadline/missed").inc()
                if execution.ok:
                    lat = finish - req.arrival_s
                    m.histogram("serve/latency/total_s").add(lat)
                    m.histogram("serve/latency/queue_s").add(queue_s)
                    m.histogram("serve/latency/batch_s").add(batch_s)
                    m.histogram("serve/latency/compute_s").add(
                        execution.span_s
                    )
        if current_tracer() is not None:
            self._trace_finalize(batch, execution, backend, start_s, finish)

    def _trace_finalize(
        self,
        batch: Batch,
        execution: _Execution,
        backend,
        start_s: float,
        finish_s: float,
    ) -> None:
        """Emit the request/batch span tree, retroactively.

        All simulated times are known only once the batch is placed, so
        spans are recorded here in one go: the batch span (pid = cluster
        + 1) with its sequential tune → stage → retry → gemm children,
        a dispatch instant on the scheduler track, and one root span per
        member request (pid 0, non-overlapping display lanes) with
        queue / batch-wait / compute children — the exact decomposition
        the critical-path analyzer reconstructs.
        """
        tracer = current_tracer()
        pid = backend.idx + 1
        tracer.instant(
            f"dispatch b{batch.batch_id}",
            at_s=start_s,
            category="dispatch",
            track="scheduler",
            pid=0,
            args={"batch_id": batch.batch_id, "policy": self.config.policy,
                  "cluster": backend.idx, "n_items": batch.n_items},
        )
        batch_sid = tracer.record(
            f"batch {batch.batch_id} {bucket_label(batch.key)}",
            category="batch",
            start_s=start_s,
            end_s=finish_s,
            track="batch",
            pid=pid,
            parent=None,
            args={
                "batch_id": batch.batch_id,
                "cluster": backend.idx,
                "n_items": batch.n_items,
                "stacked_m": batch.stacked_m,
                "close_reason": batch.reason,
                "redispatches": execution.redispatches,
                "ok": execution.ok,
            },
        )
        # segment layout convention: phases are charged sequentially in
        # the order the execution model charges them
        t = start_s
        for seg, dur in (
            ("tune", execution.tune_s),
            ("stage", execution.stage_s),
            ("retry", execution.lost_s),
            ("gemm", execution.gemm_s),
        ):
            if dur <= 0.0:
                continue
            sid = tracer.record(
                seg,
                category=seg,
                start_s=t,
                end_s=t + dur,
                track="batch",
                pid=pid,
                parent=batch_sid,
                args={"batch_id": batch.batch_id},
            )
            if seg == "retry":
                # one mark per failed dispatch attempt, spread evenly
                n = max(1, execution.redispatches)
                for i, err in enumerate(execution.attempt_errors):
                    tracer.instant(
                        f"re-dispatch #{i + 1}",
                        at_s=t + dur * (i + 1) / n,
                        category="redispatch",
                        track="batch",
                        pid=pid,
                        parent=sid,
                        args={"batch_id": batch.batch_id, "error": err},
                    )
            t += dur
        for req in batch.requests:
            met = None
            if req.deadline_s is not None:
                met = execution.ok and finish_s <= req.deadline_s
            # head-based sampling: failures and SLO misses are always
            # traced; only clean completions are down-sampled (and the
            # keep/drop decision is a pure hash of req_id, so a sampled
            # trace replays identically)
            if (
                execution.ok
                and met is not False
                and not head_sample(req.req_id, self.config.trace_sample)
            ):
                continue
            lane = None
            for i, end in enumerate(self._lanes):
                if end <= req.arrival_s:
                    lane = i
                    break
            if lane is None:
                lane = len(self._lanes)
                self._lanes.append(0.0)
            self._lanes[lane] = finish_s
            req_sid = tracer.record(
                f"req {req.req_id} {req.klass}",
                category="request",
                start_s=req.arrival_s,
                end_s=finish_s,
                track=f"req-lane{lane}",
                pid=0,
                parent=None,
                args={
                    "req_id": req.req_id,
                    "klass": req.klass,
                    "shape": str(req.shape),
                    "batch_id": batch.batch_id,
                    "cluster": backend.idx,
                    "status": COMPLETED if execution.ok else FAILED,
                },
            )
            for seg, s0, s1 in (
                ("queue", req.arrival_s, batch.close_s),
                ("batch-wait", batch.close_s, start_s),
                ("compute", start_s, finish_s),
            ):
                tracer.record(
                    seg,
                    category=seg,
                    start_s=s0,
                    end_s=s1,
                    track=f"req-lane{lane}",
                    pid=0,
                    parent=req_sid,
                    args={"req_id": req.req_id, "batch_id": batch.batch_id},
                )

    def _gauge_queue(self) -> None:
        m = current()
        if m is not None:
            m.gauge("serve/queue/depth").set(self.pending)


def warm_engine(
    engine: ServeEngine,
    requests: list[GemmRequest],
    *,
    stack_hints: StackHints | None = None,
    warm_jobs: int | None = None,
) -> WarmupReport:
    """Pre-tune every distinct bucket class the request stream will hit.

    Shared by the replay client (:func:`serve`) and the asyncio
    :class:`~repro.serve.gateway.Gateway`, so both paths pre-populate the
    same plan/kernel caches and charge identical cold-tune penalties —
    part of the gateway-vs-replay bit-identity contract.  Explicit
    ``stack_hints`` win; otherwise the expected-stacked-M estimate is
    used, overlaid (``stack_hints="observed"``) with the stacks a
    previous session persisted alongside the plan database.  Hints only
    steer which shapes get pre-cached, never results.
    """
    config = engine.config
    if not config.warmup:
        return WarmupReport(mode=config.warmup_tune)
    seen: dict[WarmKey, GemmShape] = {}
    for req in requests:
        key = (req.shape.n, req.shape.k, dtype_tag(req.b.dtype))
        seen.setdefault(key, req.shape)
    hints: StackHints | None = stack_hints
    if hints is None and config.stack_hints:
        hints = expected_stack_hints(requests, config.max_batch)
        if config.stack_hints == "observed":
            from .hints import load_stack_hints

            hints = {**hints, **load_stack_hints()}
    return engine.sched.warm(
        [(s, key[2]) for key, s in seen.items()],
        stack_hints=hints,
        tune=config.warmup_tune,
        jobs=warm_jobs,
    )


def assemble_report(
    engine: ServeEngine, warmup: WarmupReport
) -> ServeReport:
    """Build the :class:`ServeReport` from a finished (or closed) engine."""
    config = engine.config
    records = [engine.records[rid] for rid in sorted(engine.records)]
    last_arrival = engine.last_arrival_s
    makespan = max(engine.last_finish_s, last_arrival)
    degrade_report = None
    if config.degrade is not None:
        health = engine.sched.health or []
        events = engine.sched.degrade_events
        degrade_report = DegradeReport(
            shed_queue_full=engine.shed_reasons.get("queue_full", 0),
            shed_class=engine.shed_reasons.get("class_shed", 0),
            shed_burn=engine.shed_reasons.get("burn_shed", 0),
            peak_burn=engine.burn.peak if engine.burn is not None else 0.0,
            burn_threshold=config.degrade.burn_threshold,
            faults=sum(h.faults for h in health),
            quarantines=sum(h.quarantines for h in health),
            probes=sum(1 for e in events if e.kind == "probe"),
            recoveries=sum(1 for e in events if e.kind == "recover"),
            shed_by_class=dict(engine.shed_by_class),
            # faults are noted at batch close, successes at finish, so
            # the raw append order is not the timeline order
            events=sorted(events, key=lambda e: e.at_s),
        )
    return ServeReport(
        policy=config.policy,
        config=config,
        records=records,
        batches=sorted(engine.batch_records, key=lambda b: b.batch_id),
        warmup=warmup,
        makespan_s=makespan,
        offered_rps=(
            len(records) / last_arrival if last_arrival > 0 else 0.0
        ),
        verify_repaired=engine.verify_repaired,
        redispatches=engine.redispatches,
        degrade=degrade_report,
        placement=(
            engine.placement.report()
            if engine.placement is not None else None
        ),
    )


def persist_observed_hints(report: ServeReport) -> None:
    """Fold this run's observed stacks into the persistent hint store."""
    if report.config.stack_hints != "observed":
        return
    from .hints import save_stack_hints

    save_stack_hints(report.stack_hints())


def serve(
    requests: list[GemmRequest],
    config: ServeConfig | None = None,
    *,
    machine: MachineConfig | None = None,
    stack_hints: StackHints | None = None,
    warm_jobs: int | None = None,
) -> ServeReport:
    """Serve an open-loop request stream; returns one record per request.

    A thin replay client of :class:`ServeEngine`: every request is
    offered in arrival order and the engine runs to completion.
    ``stack_hints`` overrides the expected-stacked-M estimate the warmup
    tunes at (e.g. an earlier run's :meth:`ServeReport.stack_hints`);
    ``warm_jobs`` fans a ``warmup_tune="search"`` warmup across worker
    processes.  Neither affects the simulated results — warmup only
    pre-populates plan/kernel caches.
    """
    config = config or ServeConfig()
    machine = machine or default_machine()
    if not requests:
        raise PlanError("empty request stream")
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))

    engine = ServeEngine(config, machine)
    warmup = warm_engine(
        engine, ordered, stack_hints=stack_hints, warm_jobs=warm_jobs
    )
    for req in ordered:
        engine.offer(req)
    engine.finish()

    if len(engine.records) != len(ordered):  # pragma: no cover - guard
        raise PlanError("a request was dropped silently")
    report = assemble_report(engine, warmup)
    persist_observed_hints(report)
    return report
