"""Graceful degradation: priority classes, proactive shedding, quarantine.

The serve loop's baseline admission control is a single bounded queue —
under overload it sheds whatever arrives at a full queue, regardless of
how much that request mattered.  This module adds the policy layer that
decides *what to lose first* when the world goes wrong, plus the chaos
harness that proves the answer is still correct:

* :class:`PriorityClass` / :class:`DegradePolicy` — weighted admission
  classes (``interactive`` / ``bulk`` by default).  Each class carries a
  per-class admission threshold (``admit_above``: the queue-fill
  fraction above which this class is shed while higher classes still
  get in) and a ``burn_shed`` flag marking it sheddable under SLO
  pressure.  Unlabeled requests are classified by their deadline budget.
* **Online burn estimation** (:class:`OnlineBurn`) — the post-hoc
  burn-rate monitor of :mod:`repro.serve.slo`, lifted online: outcome
  events feed a causal sliding window, and the admission controller
  reads the live fast-window burn to shed sheddable classes *before*
  the error budget is gone.  Deliberate (class/burn) sheds are excluded
  from the estimate — feeding them back would latch shedding on forever;
  only genuine badness (late completions, failures, queue-full drops)
  counts.
* :class:`HealthPolicy` — the per-cluster breaker the scheduler runs:
  ``fault_threshold`` consecutive faulted attempts quarantine a cluster
  for ``cooldown_s`` (exponential backoff up to ``max_cooldown_s``);
  after the cooldown the next routing decision *probes* it — a clean
  batch recovers it, another fault re-quarantines it.
* :func:`chaos_serve` — faults *under load*.  Composes any seeded
  :class:`~repro.faults.plan.FaultPlan` with a request stream and
  asserts the end-to-end contract independently of the server's own
  verification: every completed response bit-identical to a standalone
  ``ftimm_gemm``, every loss carrying a typed reason, and the whole run
  reproducible from the seed.

Everything here is deterministic in simulated time: the burn estimator
and the breaker are pure functions of the (seeded) event stream, so a
degraded run replays bit-for-bit like a healthy one.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanError
from .request import COMPLETED, GemmRequest

# ---------------------------------------------------------------------------
# priority classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PriorityClass:
    """One weighted admission class.

    ``admit_above`` is the queue-fill fraction at which this class stops
    being admitted (1.0 = only shed at a genuinely full queue, i.e. the
    legacy behavior).  ``burn_shed`` marks the class sheddable when the
    online burn estimate crosses the policy threshold.  ``max_budget_s``
    classifies unlabeled requests: a request whose relative deadline is
    at most this budget belongs to the class (``None`` = catch-all).
    """

    name: str
    weight: float = 1.0
    admit_above: float = 1.0
    burn_shed: bool = False
    max_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise PlanError(f"class {self.name}: weight must be > 0")
        if not 0.0 < self.admit_above <= 1.0:
            raise PlanError(
                f"class {self.name}: admit_above must be in (0, 1]"
            )
        if self.max_budget_s is not None and self.max_budget_s <= 0:
            raise PlanError(f"class {self.name}: max_budget_s must be > 0")


#: tight-SLO work: admitted while the queue has any room, never
#: proactively shed — the class the degradation machinery protects.
INTERACTIVE = PriorityClass(
    "interactive", weight=2.0, admit_above=1.0, burn_shed=False,
    max_budget_s=4e-3,
)

#: loose-SLO bulk work: shed first — above 75% queue fill and whenever
#: the burn estimate says the error budget is on fire.
BULK = PriorityClass(
    "bulk", weight=1.0, admit_above=0.75, burn_shed=True,
    max_budget_s=None,
)


@dataclass(frozen=True)
class HealthPolicy:
    """Per-cluster breaker: quarantine after faults, probe back after."""

    fault_threshold: int = 2       # consecutive faulted attempts to trip
    cooldown_s: float = 2e-3       # first quarantine duration
    backoff: float = 2.0           # cooldown multiplier per re-quarantine
    max_cooldown_s: float = 1.6e-2

    def __post_init__(self) -> None:
        if self.fault_threshold < 1:
            raise PlanError("fault_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise PlanError("cooldown_s must be > 0")
        if self.backoff < 1.0:
            raise PlanError("backoff must be >= 1")
        if self.max_cooldown_s < self.cooldown_s:
            raise PlanError("max_cooldown_s must be >= cooldown_s")


@dataclass(frozen=True)
class DegradePolicy:
    """The whole graceful-degradation configuration (hashable).

    ``ServeConfig(degrade=DegradePolicy())`` turns on class-aware
    admission, burn-driven proactive shedding and (unless ``health`` is
    None) cluster quarantine; ``degrade=None`` keeps the serve loop
    bit-identical to the policy-free baseline.
    """

    classes: tuple[PriorityClass, ...] = (INTERACTIVE, BULK)
    #: online burn estimation (mirrors SloPolicy's fast window)
    burn_objective: float = 0.99
    burn_window_s: float = 5e-3
    burn_threshold: float = 8.0
    burn_min_events: int = 8
    health: HealthPolicy | None = HealthPolicy()

    def __post_init__(self) -> None:
        if not self.classes:
            raise PlanError("degrade policy needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate class names: {names}")
        if not 0.0 < self.burn_objective < 1.0:
            raise PlanError("burn_objective must be in (0, 1)")
        if self.burn_window_s <= 0:
            raise PlanError("burn_window_s must be > 0")
        if self.burn_threshold <= 0:
            raise PlanError("burn_threshold must be > 0")
        if self.burn_min_events < 1:
            raise PlanError("burn_min_events must be >= 1")

    def classify(self, req: GemmRequest) -> PriorityClass:
        """The class a request belongs to.

        An explicit ``req.priority`` label wins; otherwise the request's
        relative deadline budget is matched against the classes'
        ``max_budget_s`` in declaration order, falling through to the
        last class (the catch-all — no deadline means bulk).
        """
        if req.priority is not None:
            for cls in self.classes:
                if cls.name == req.priority:
                    return cls
            raise PlanError(
                f"request {req.req_id}: unknown priority "
                f"{req.priority!r} (have "
                f"{', '.join(c.name for c in self.classes)})"
            )
        budget = (
            req.deadline_s - req.arrival_s
            if req.deadline_s is not None else None
        )
        for cls in self.classes:
            if (
                cls.max_budget_s is not None
                and budget is not None
                and budget <= cls.max_budget_s
            ):
                return cls
        return self.classes[-1]


# ---------------------------------------------------------------------------
# online burn estimation
# ---------------------------------------------------------------------------


class OnlineBurn:
    """Causal sliding-window burn-rate estimator.

    The post-hoc monitor (:func:`repro.serve.slo.monitor`) replays
    finished records; this one is fed outcome events *as the simulated
    run produces them* (finish times arrive out of order relative to
    admissions) and answers "what is the burn right now" using only
    events at or before ``now`` — admission decisions never see the
    future.  ``burn = bad_fraction_in_window / (1 - objective)``, with
    a ``min_events`` guard so one early failure cannot trip shedding.
    """

    def __init__(
        self, *, objective: float, window_s: float, min_events: int
    ) -> None:
        self.budget = 1.0 - objective
        self.window_s = window_s
        self.min_events = min_events
        self._times: list[float] = []      # all outcome events, sorted
        self._bad: list[float] = []        # bad outcome events, sorted
        self.peak = 0.0

    @property
    def n_events(self) -> int:
        return len(self._times)

    def add(self, at_s: float, bad: bool) -> None:
        insort(self._times, at_s)
        if bad:
            insort(self._bad, at_s)
            self.peak = max(self.peak, self.burn_at(at_s))

    def burn_at(self, now: float) -> float:
        """The live burn estimate over ``(now - window, now]``."""
        lo = now - self.window_s
        total = bisect_right(self._times, now) - bisect_right(self._times, lo)
        if total < self.min_events:
            return 0.0
        bad = bisect_right(self._bad, now) - bisect_right(self._bad, lo)
        return (bad / total) / self.budget


# ---------------------------------------------------------------------------
# degradation reporting
# ---------------------------------------------------------------------------


@dataclass
class DegradeEvent:
    """One cluster-health transition on the simulated timeline."""

    at_s: float
    cluster: int
    kind: str                      # quarantine | probe | recover
    detail: str = ""

    def describe(self) -> str:
        line = (f"t={self.at_s * 1e3:8.3f} ms  cluster {self.cluster}  "
                f"{self.kind}")
        if self.detail:
            line += f"  ({self.detail})"
        return line


@dataclass
class DegradeReport:
    """What the degradation machinery did during one serve run."""

    shed_queue_full: int = 0
    shed_class: int = 0
    shed_burn: int = 0
    peak_burn: float = 0.0
    burn_threshold: float = 0.0
    faults: int = 0                # faulted dispatch attempts observed
    quarantines: int = 0
    probes: int = 0
    recoveries: int = 0
    shed_by_class: dict[str, int] = field(default_factory=dict)
    events: list[DegradeEvent] = field(default_factory=list)

    @property
    def proactive_sheds(self) -> int:
        return self.shed_class + self.shed_burn

    def describe(self) -> str:
        lines = [
            "degradation: "
            f"shed queue_full={self.shed_queue_full} "
            f"class={self.shed_class} burn={self.shed_burn}"
            + (
                " ("
                + ", ".join(
                    f"{name}={n}"
                    for name, n in sorted(self.shed_by_class.items())
                )
                + ")"
                if self.shed_by_class else ""
            ),
            f"  peak online burn {self.peak_burn:.1f}x "
            f"(shed threshold {self.burn_threshold:g}x)",
            f"  cluster health: {self.faults} faulted attempt(s), "
            f"{self.quarantines} quarantine(s), {self.probes} probe(s), "
            f"{self.recoveries} recover(y/ies)",
        ]
        if self.events:
            lines.append("  timeline:")
            lines.extend(f"    {e.describe()}" for e in self.events)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# serve-level chaos harness
# ---------------------------------------------------------------------------


@dataclass
class ServeChaosReport:
    """Outcome of one chaos serve run against the end-to-end contract."""

    report: object                 # the first run's ServeReport
    silent: list[int] = field(default_factory=list)   # corrupted req ids
    untyped: list[int] = field(default_factory=list)  # losses w/o reason
    deterministic: bool | None = None                 # None = not checked

    @property
    def ok(self) -> bool:
        return (
            not self.silent
            and not self.untyped
            and self.deterministic is not False
        )

    def describe(self) -> str:
        rep = self.report
        lines = [
            f"chaos serve: {rep.n_requests} requests -> "
            f"{rep.completed} completed, {rep.shed} shed, "
            f"{rep.failed} failed ({rep.redispatches} re-dispatches)",
            f"  silent corruptions: {len(self.silent)}"
            + (f" {self.silent}" if self.silent else ""),
            f"  untyped losses: {len(self.untyped)}"
            + (f" {self.untyped}" if self.untyped else ""),
            "  deterministic replay: "
            + {True: "yes", False: "NO", None: "not checked"}[
                self.deterministic
            ],
        ]
        if rep.degrade is not None:
            lines.append(rep.degrade.describe())
        lines.append("  contract: " + ("OK" if self.ok else "VIOLATED"))
        return "\n".join(lines)


def _clone_requests(requests: list[GemmRequest]) -> list[GemmRequest]:
    """Fresh request objects with copied operands (serve mutates C)."""
    return [
        GemmRequest(
            req_id=r.req_id,
            arrival_s=r.arrival_s,
            shape=r.shape,
            a=r.a.copy(),
            b=r.b.copy(),
            c=r.c.copy(),
            klass=r.klass,
            deadline_s=r.deadline_s,
            priority=r.priority,
        )
        for r in requests
    ]


def chaos_serve(
    requests: list[GemmRequest],
    config=None,
    *,
    machine=None,
    replay: bool = True,
) -> ServeChaosReport:
    """Run a request stream under faults and audit the contract itself.

    The server already verifies-and-repairs; this harness does not trust
    it.  It keeps pristine copies of every operand, serves clones, then
    independently recomputes each completed response with a standalone
    :func:`~repro.core.ftimm.ftimm_gemm` — a mismatch is a **silent
    corruption** (the one outcome the whole fault lineage forbids).
    Every non-completed request must carry a typed error reason, and
    with ``replay=True`` the run is repeated from scratch and the two
    latency tables compared bit-for-bit.

    Compose any :class:`~repro.faults.plan.FaultPlan` via
    ``config.faults`` (bit-flip / DMA rates under any timing mode; DDR
    degradation windows and timed core faults need ``timing="des"``),
    and any load mix via ``requests`` — the harness is policy-agnostic.
    """
    from ..core.ftimm import ftimm_gemm
    from .server import ServeConfig, serve

    config = config or ServeConfig()
    if not requests:
        raise PlanError("empty request stream")
    originals = {
        r.req_id: (r.a.copy(), r.b.copy(), r.c.copy()) for r in requests
    }

    served = _clone_requests(requests)
    report = serve(served, config, machine=machine)
    by_id = {r.req_id: r for r in served}

    silent: list[int] = []
    untyped: list[int] = []
    for rec in report.records:
        if rec.status == COMPLETED:
            a, b, c0 = originals[rec.req_id]
            ref = c0.copy()
            ftimm_gemm(
                by_id[rec.req_id].shape.m,
                by_id[rec.req_id].shape.n,
                by_id[rec.req_id].shape.k,
                a=a, b=b, c=ref, machine=machine, timing="none",
            )
            if not np.array_equal(ref, by_id[rec.req_id].c):
                silent.append(rec.req_id)
        elif not rec.error:
            untyped.append(rec.req_id)

    deterministic: bool | None = None
    if replay:
        second = serve(_clone_requests(requests), config, machine=machine)
        deterministic = (
            report.latency_table() == second.latency_table()
        )

    return ServeChaosReport(
        report=report,
        silent=sorted(silent),
        untyped=sorted(untyped),
        deterministic=deterministic,
    )
