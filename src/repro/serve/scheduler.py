"""Dispatch of closed batches onto the four GPDSP clusters.

Each cluster is an independent backend — the FT-m7032 gives every GPDSP
cluster a private DDR port, so clusters serve concurrent batches without
contending (the same observation :mod:`repro.core.multi_cluster` scales a
*single* GEMM on; here it scales a *request stream*).  Operand staging
into a cluster's memory partition is host-mediated and costed at the
CPU's DDR bandwidth, exactly like multi-cluster B replication.

Three pluggable policies:

* ``fifo``         — batches are bound round-robin to clusters in close
  order (static partitioning; a hot bucket can queue behind a busy
  cluster while another sits idle — the honest baseline);
* ``least_loaded`` — close order, but each batch goes to the cluster
  that frees up earliest (greedy work-conserving list scheduling);
* ``edf``          — batches wait in a central earliest-deadline-first
  queue and clusters *pull* from it as they free, so a late-closing but
  urgent batch overtakes patient bulk work.

Warmup: steady-state serving must never pay plan search or kernel
generation on the critical path, so the scheduler pre-tunes every
distinct bucket shape class (populating the tuner and kernel caches)
before the stream starts.  A batch whose bucket was *not* warmed is
charged a modeled ``cold_tune_s`` penalty once per bucket — visible in
the latency histograms, which is the point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.ftimm import ftimm_gemm
from ..core.shapes import GemmShape
from ..errors import PlanError
from ..hw.config import MachineConfig
from ..obs import current
from ..obs.trace import current_tracer, maybe_scope

POLICIES = ("fifo", "least_loaded", "edf")

#: warmup granularity: one tuning decision + kernel set per (N, K, dtype).
WarmKey = tuple[int, int, str]


@dataclass
class ClusterBackend:
    """One GPDSP cluster acting as an independent serving backend."""

    idx: int
    busy_until_s: float = 0.0
    batches: int = 0
    busy_s: float = 0.0

    def charge(self, start_s: float, span_s: float) -> float:
        """Occupy the backend for [start, start+span]; returns the finish."""
        if start_s < self.busy_until_s:
            raise PlanError(
                f"cluster {self.idx}: start {start_s} before busy_until "
                f"{self.busy_until_s}"
            )
        self.busy_until_s = start_s + span_s
        self.batches += 1
        self.busy_s += span_s
        return self.busy_until_s


@dataclass
class WarmupReport:
    """What pre-tuning did before the stream started."""

    n_buckets: int = 0
    wall_s: float = 0.0
    keys: list[WarmKey] = field(default_factory=list)


class Scheduler:
    """Backend pool + policy state shared by the serve event loop."""

    def __init__(
        self,
        *,
        n_clusters: int,
        policy: str,
        cold_tune_s: float,
        machine: MachineConfig,
    ) -> None:
        if policy not in POLICIES:
            raise PlanError(
                f"unknown policy {policy!r} (have {', '.join(POLICIES)})"
            )
        if n_clusters < 1:
            raise PlanError("n_clusters must be >= 1")
        self.policy = policy
        self.cold_tune_s = cold_tune_s
        self.machine = machine
        self.backends = [ClusterBackend(i) for i in range(n_clusters)]
        self._rr = 0
        self._warmed: set[WarmKey] = set()

    # -- cluster selection -------------------------------------------------

    def pick_backend(self) -> ClusterBackend:
        """Eager binding for fifo (round-robin) / least_loaded (greedy)."""
        if self.policy == "fifo":
            backend = self.backends[self._rr % len(self.backends)]
            self._rr += 1
            return backend
        # least_loaded: earliest-free backend, lowest index on ties
        return min(self.backends, key=lambda b: (b.busy_until_s, b.idx))

    def idle_backend(self, now: float) -> ClusterBackend | None:
        """An idle backend at ``now`` (EDF pull), or None."""
        free = [b for b in self.backends if b.busy_until_s <= now]
        return min(free, key=lambda b: b.idx) if free else None

    def next_free_s(self) -> float:
        return min(b.busy_until_s for b in self.backends)

    # -- warmup ------------------------------------------------------------

    def warm(self, shapes: list[tuple[GemmShape, str]]) -> WarmupReport:
        """Pre-tune every distinct bucket class, off the critical path.

        Runs a timing-only ftIMM call per distinct (N, K, dtype) — at a
        representative M — which populates the tuner decision cache and
        generates/caches the micro-kernels the steady state will reuse.
        """
        report = WarmupReport()
        t0 = time.perf_counter()
        with maybe_scope(
            "warmup", category="warmup", track="scheduler", pid=0
        ) as scope:
            for shape, dtype in shapes:
                key: WarmKey = (shape.n, shape.k, dtype)
                if key in self._warmed:
                    continue
                ftimm_gemm(
                    shape.m, shape.n, shape.k,
                    machine=self.machine, timing="analytic",
                )
                self._warmed.add(key)
                report.keys.append(key)
                report.n_buckets += 1
            if scope is not None:
                scope.args["n_buckets"] = report.n_buckets
        report.wall_s = time.perf_counter() - t0
        m = current()
        if m is not None:
            m.counter("serve/warmup/buckets").inc(report.n_buckets)
        return report

    def tune_penalty(self, key: WarmKey) -> float:
        """Modeled cold-tuning cost; zero once the bucket class is warm."""
        if key in self._warmed:
            return 0.0
        self._warmed.add(key)
        m = current()
        if m is not None:
            m.counter("serve/tune/cold").inc()
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"cold-tune {key[0]}x{key[1]}/{key[2]}",
                category="tune",
                track="scheduler",
                pid=0,
                args={"n": key[0], "k": key[1], "dtype": key[2],
                      "penalty_s": self.cold_tune_s},
            )
        return self.cold_tune_s

    # -- accounting --------------------------------------------------------

    def utilization(self, makespan_s: float) -> float:
        if makespan_s <= 0:
            return 0.0
        busy = sum(b.busy_s for b in self.backends)
        return busy / (makespan_s * len(self.backends))
