"""Dispatch of closed batches onto the four GPDSP clusters.

Each cluster is an independent backend — the FT-m7032 gives every GPDSP
cluster a private DDR port, so clusters serve concurrent batches without
contending (the same observation :mod:`repro.core.multi_cluster` scales a
*single* GEMM on; here it scales a *request stream*).  Operand staging
into a cluster's memory partition is host-mediated and costed at the
CPU's DDR bandwidth, exactly like multi-cluster B replication.

Three pluggable policies:

* ``fifo``         — batches are bound round-robin to clusters in close
  order (static partitioning; a hot bucket can queue behind a busy
  cluster while another sits idle — the honest baseline);
* ``least_loaded`` — close order, but each batch goes to the cluster
  that frees up earliest (greedy work-conserving list scheduling);
* ``edf``          — batches wait in a central earliest-deadline-first
  queue and clusters *pull* from it as they free, so a late-closing but
  urgent batch overtakes patient bulk work.

Warmup: steady-state serving must never pay plan search or kernel
generation on the critical path, so the scheduler pre-tunes every
distinct bucket shape class (populating the tuner and kernel caches)
before the stream starts.  Warmup is *batch-aware*: given stack hints
(the expected stacked M per bucket, derived from the request stream),
each bucket is tuned at its expected batch shape instead of the first
request's M, so the kernels cached up front are the ones the stacked
steady state actually runs.  ``tune="search"`` upgrades warmup from the
rule-based tuner to the real pruned plan search
(:func:`~repro.core.autotune.autotune` with cross-shape transfer), whose
per-bucket wall times the report keeps.

A batch whose bucket was *not* warmed is charged a ``cold_tune_s``
penalty once per bucket — visible in the latency histograms, which is
the point.  ``cold_tune_s=None`` re-costs that penalty from the measured
warmup tune walls (their mean) instead of the fixed modeled constant;
note measured walls are machine-dependent, so the deterministic-replay
contract holds only for explicit (constant) values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.ftimm import ftimm_gemm
from ..core.shapes import GemmShape
from ..errors import PlanError
from ..hw.config import MachineConfig
from ..obs import current
from ..obs.trace import current_tracer, maybe_scope
from .degrade import DegradeEvent, HealthPolicy

POLICIES = ("fifo", "least_loaded", "edf")

#: warmup granularity: one tuning decision + kernel set per (N, K, dtype).
WarmKey = tuple[int, int, str]

#: the modeled un-warmed plan-search penalty, used when ``cold_tune_s``
#: is None and no warmup has measured real tune walls yet.
DEFAULT_COLD_TUNE_S = 5e-4

#: stack hints: expected stacked M per bucket class.
StackHints = dict[WarmKey, int]


@dataclass
class ClusterBackend:
    """One GPDSP cluster acting as an independent serving backend."""

    idx: int
    busy_until_s: float = 0.0
    batches: int = 0
    busy_s: float = 0.0

    def charge(self, start_s: float, span_s: float) -> float:
        """Occupy the backend for [start, start+span]; returns the finish."""
        if start_s < self.busy_until_s:
            raise PlanError(
                f"cluster {self.idx}: start {start_s} before busy_until "
                f"{self.busy_until_s}"
            )
        self.busy_until_s = start_s + span_s
        self.batches += 1
        self.busy_s += span_s
        return self.busy_until_s

    def occupy(self, start_s: float, span_s: float) -> float:
        """Occupy the backend without counting a batch.

        Used for replica staging (:mod:`repro.serve.placement`): the
        host copies a B matrix into this cluster's memory partition,
        which blocks the cluster's timeline but is not a served batch.
        """
        if start_s < self.busy_until_s:
            raise PlanError(
                f"cluster {self.idx}: occupy at {start_s} before "
                f"busy_until {self.busy_until_s}"
            )
        self.busy_until_s = start_s + span_s
        self.busy_s += span_s
        return self.busy_until_s


@dataclass
class ClusterHealth:
    """Breaker state for one backend (only with a health policy)."""

    state: str = "healthy"         # healthy | quarantined | probing
    consecutive_faults: int = 0
    until_s: float = 0.0           # quarantine expiry (when quarantined)
    cooldown_s: float = 0.0        # current (backed-off) cooldown
    faults: int = 0
    quarantines: int = 0


@dataclass
class WarmupReport:
    """What pre-tuning did before the stream started."""

    n_buckets: int = 0
    wall_s: float = 0.0
    keys: list[WarmKey] = field(default_factory=list)
    mode: str = "rule"                  # "rule" | "search"
    hinted: int = 0                     # buckets warmed at a hinted M
    tune_wall_s: list[float] = field(default_factory=list)
    transfer_hits: int = 0
    short_circuits: int = 0

    @property
    def measured_tune_s(self) -> float | None:
        """Mean per-bucket tune wall, when any bucket was warmed.

        **Machine-dependent, not replayable.**  The walls in
        ``tune_wall_s`` are ``time.perf_counter`` measurements of real
        plan-search work, so they vary run to run and host to host.
        They feed :meth:`Scheduler.tune_penalty` only when
        ``cold_tune_s=None`` — which therefore trades the deterministic
        replay contract for a realistic cold-tune cost.  Any explicit
        (constant) ``cold_tune_s`` keeps replays bit-identical across
        runs and machines; the regression test in
        ``tests/test_serve_invariants.py`` holds that contract.
        """
        if not self.tune_wall_s:
            return None
        return sum(self.tune_wall_s) / len(self.tune_wall_s)


class Scheduler:
    """Backend pool + policy state shared by the serve event loop."""

    def __init__(
        self,
        *,
        n_clusters: int,
        policy: str,
        cold_tune_s: float | None,
        machine: MachineConfig,
        health: HealthPolicy | None = None,
        placement=None,
    ) -> None:
        if policy not in POLICIES:
            raise PlanError(
                f"unknown policy {policy!r} (have {', '.join(POLICIES)})"
            )
        if n_clusters < 1:
            raise PlanError("n_clusters must be >= 1")
        self.policy = policy
        self.cold_tune_s = cold_tune_s
        self.machine = machine
        self.backends = [ClusterBackend(i) for i in range(n_clusters)]
        self._rr = 0
        self._warmed: set[WarmKey] = set()
        self._measured_tune_s: float | None = None
        self.health_policy = health
        self.health = (
            [ClusterHealth() for _ in range(n_clusters)]
            if health is not None else None
        )
        #: replicated-B placement map (None = placement off); binding
        #: consults it so batches run where their B is already resident
        self.placement = placement
        self.degrade_events: list[DegradeEvent] = []

    # -- cluster selection -------------------------------------------------

    def _eligible(self, now: float) -> list[ClusterBackend]:
        """Backends a batch may be routed to at ``now``.

        Quarantined backends are excluded until their cooldown expires
        (the first post-expiry selection is the probe).  When *every*
        backend is quarantined the full pool is returned — the server
        must never deadlock on an all-sick cluster set, it just keeps
        probing.
        """
        if self.health is None:
            return self.backends
        ok = [
            b for b in self.backends
            if self.health[b.idx].state != "quarantined"
            or self.health[b.idx].until_s <= now
        ]
        return ok or self.backends

    def _note_selected(self, backend: ClusterBackend, now: float) -> None:
        """Selecting a quarantine-expired backend turns it into a probe."""
        if self.health is None:
            return
        h = self.health[backend.idx]
        if h.state == "quarantined" and h.until_s <= now:
            h.state = "probing"
            self._health_event(backend.idx, now, "probe",
                               f"cooldown {h.cooldown_s * 1e3:g} ms over")
            m = current()
            if m is not None:
                m.counter("serve/degrade/probes").inc()

    def pick_backend(
        self, now: float | None = None, key=None
    ) -> ClusterBackend:
        """Eager binding for fifo (round-robin) / least_loaded (greedy).

        With a placement map, a batch whose B is replicated binds to the
        least-loaded *routable* replica holder regardless of policy —
        replication exists to buy that freedom.  When no holder is
        routable (e.g. every holder quarantined) the batch falls back to
        the policy's normal binding and re-stages its B there.
        """
        pool = (
            self.backends if (self.health is None or now is None)
            else self._eligible(now)
        )
        if self.placement is not None and key is not None:
            holder = self.placement.holder_in(key, pool)
            if holder is not None:
                if now is not None:
                    self._note_selected(holder, now)
                return holder
        if self.policy == "fifo":
            backend = pool[self._rr % len(pool)]
            self._rr += 1
        else:
            # least_loaded: earliest-free backend, lowest index on ties
            backend = min(pool, key=lambda b: (b.busy_until_s, b.idx))
        if now is not None:
            self._note_selected(backend, now)
        return backend

    def route_retry(
        self, now: float, exclude: set[int]
    ) -> ClusterBackend:
        """Health-aware re-route of a faulted attempt.

        Prefers eligible backends the batch has not already faulted on
        (``exclude``); falls back to the eligible pool, then the full
        pool — a retry always gets *somewhere* to run.
        """
        eligible = self._eligible(now)
        pool = [b for b in eligible if b.idx not in exclude] or eligible
        backend = min(pool, key=lambda b: (b.busy_until_s, b.idx))
        self._note_selected(backend, now)
        return backend

    def idle_backend(self, now: float, key=None) -> ClusterBackend | None:
        """An idle backend at ``now`` (EDF pull), or None.

        With a placement map and a bucket ``key``, an idle replica
        holder is preferred over the lowest-index idle backend; a pull
        with no idle holder still proceeds (EDF urgency outranks data
        locality) and the batch re-stages its B.
        """
        free = [
            b for b in self._eligible(now) if b.busy_until_s <= now
        ]
        if not free:
            return None
        backend = None
        if self.placement is not None and key is not None:
            backend = self.placement.holder_in(key, free)
        if backend is None:
            backend = min(free, key=lambda b: b.idx)
        self._note_selected(backend, now)
        return backend

    def next_free_s(self) -> float:
        return min(b.busy_until_s for b in self.backends)

    def next_ready_s(self) -> float:
        """Earliest time any backend is both free and routable.

        Equals :meth:`next_free_s` without a health policy; with one, a
        quarantined backend is not ready before its cooldown expires.
        """
        if self.health is None:
            return self.next_free_s()
        times = []
        for b in self.backends:
            t = b.busy_until_s
            h = self.health[b.idx]
            if h.state == "quarantined":
                t = max(t, h.until_s)
            times.append(t)
        return min(times)

    # -- cluster health ----------------------------------------------------

    def _health_event(
        self, cluster: int, at_s: float, kind: str, detail: str = ""
    ) -> None:
        self.degrade_events.append(
            DegradeEvent(at_s=at_s, cluster=cluster, kind=kind,
                         detail=detail)
        )
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"{kind} cluster {cluster}",
                at_s=at_s,
                category="degrade",
                track="scheduler",
                pid=0,
                args={"cluster": cluster, "kind": kind, "detail": detail},
            )

    def note_fault(
        self, idx: int, now: float, error: str = ""
    ) -> None:
        """One faulted dispatch attempt was attributed to backend ``idx``."""
        m = current()
        if m is not None:
            m.counter("serve/degrade/faults").inc()
        if self.health is None:
            return
        pol = self.health_policy
        h = self.health[idx]
        h.faults += 1
        h.consecutive_faults += 1
        if (
            h.state == "probing"
            or h.consecutive_faults >= pol.fault_threshold
        ):
            probe_failed = h.state == "probing"
            h.cooldown_s = (
                pol.cooldown_s if h.cooldown_s <= 0.0
                else min(h.cooldown_s * pol.backoff, pol.max_cooldown_s)
            )
            h.state = "quarantined"
            h.until_s = now + h.cooldown_s
            h.consecutive_faults = 0
            h.quarantines += 1
            detail = (
                f"{'probe faulted' if probe_failed else error or 'faults'}"
                f", cooldown {h.cooldown_s * 1e3:g} ms"
            )
            self._health_event(idx, now, "quarantine", detail)
            if m is not None:
                m.counter("serve/degrade/quarantines").inc()

    def note_success(self, idx: int, now: float) -> None:
        """A batch completed cleanly on backend ``idx``."""
        if self.health is None:
            return
        h = self.health[idx]
        if h.state == "probing":
            h.state = "healthy"
            h.cooldown_s = 0.0
            h.consecutive_faults = 0
            self._health_event(idx, now, "recover", "probe succeeded")
            m = current()
            if m is not None:
                m.counter("serve/degrade/recoveries").inc()
        else:
            h.consecutive_faults = 0

    # -- warmup ------------------------------------------------------------

    def warm(
        self,
        shapes: list[tuple[GemmShape, str]],
        *,
        stack_hints: StackHints | None = None,
        tune: str = "rule",
        jobs: int | None = None,
        transfer_tol: float = 0.25,
    ) -> WarmupReport:
        """Pre-tune every distinct bucket class, off the critical path.

        One tuning pass per distinct (N, K, dtype) at its expected
        *stacked* M (``stack_hints``, falling back to the representative
        request's M) — populating the tuner decision cache and
        generating/caching the micro-kernels the stacked steady state
        will reuse.

        ``tune="rule"`` (default) runs the rule-based tuner via a
        timing-only ftIMM call.  ``tune="search"`` runs the real pruned
        plan search with cross-shape transfer (``transfer_tol`` lets
        later buckets short-circuit from earlier ones); per-bucket walls
        land in ``report.tune_wall_s`` and feed :meth:`tune_penalty` when
        ``cold_tune_s`` is None.  Warming inside a
        :func:`~repro.parallel.worker_pool` lets every search share one
        warm pool.
        """
        if tune not in ("rule", "search"):
            raise PlanError(f"unknown warmup tune mode {tune!r}")
        report = WarmupReport(mode=tune)
        hints = stack_hints or {}
        t0 = time.perf_counter()
        with maybe_scope(
            "warmup", category="warmup", track="scheduler", pid=0
        ) as scope:
            for shape, dtype in shapes:
                key: WarmKey = (shape.n, shape.k, dtype)
                if key in self._warmed:
                    continue
                m_eff = hints.get(key, shape.m)
                if m_eff != shape.m:
                    report.hinted += 1
                t1 = time.perf_counter()
                self._warm_one(
                    GemmShape(max(1, int(m_eff)), shape.n, shape.k),
                    dtype, tune, jobs, transfer_tol, report,
                )
                report.tune_wall_s.append(time.perf_counter() - t1)
                self._warmed.add(key)
                report.keys.append(key)
                report.n_buckets += 1
            if scope is not None:
                scope.args["n_buckets"] = report.n_buckets
                scope.args["mode"] = tune
        report.wall_s = time.perf_counter() - t0
        if report.tune_wall_s:
            self._measured_tune_s = report.measured_tune_s
        m = current()
        if m is not None:
            m.counter("serve/warmup/buckets").inc(report.n_buckets)
            if report.hinted:
                m.counter("serve/warmup/hinted").inc(report.hinted)
        return report

    def _warm_one(
        self,
        shape: GemmShape,
        dtype: str,
        tune: str,
        jobs: int | None,
        transfer_tol: float,
        report: WarmupReport,
    ) -> None:
        if tune == "search" and dtype == "f32":
            from ..core.autotune import autotune

            try:
                result = autotune(
                    shape, self.machine.cluster,
                    validate_top=1, jobs=jobs, transfer_tol=transfer_tol,
                )
                if result.stats is not None:
                    if result.stats.transfer in (
                        "warm", "short_circuit", "replay"
                    ):
                        report.transfer_hits += 1
                    if result.stats.transfer in ("short_circuit", "replay"):
                        report.short_circuits += 1
                return
            except PlanError:
                pass  # outside the search domain: rule-tune below
        ftimm_gemm(
            shape.m, shape.n, shape.k,
            machine=self.machine, timing="analytic", dtype=dtype,
        )

    def tune_penalty(self, key: WarmKey) -> float:
        """Cold-tuning cost; zero once the bucket class is warm.

        An explicit ``cold_tune_s`` is charged as-is (the deterministic
        default); ``cold_tune_s=None`` charges the mean measured warmup
        tune wall (machine-dependent), or :data:`DEFAULT_COLD_TUNE_S`
        when nothing has been measured.
        """
        if key in self._warmed:
            return 0.0
        self._warmed.add(key)
        penalty = self.cold_tune_s
        if penalty is None:
            penalty = (
                self._measured_tune_s
                if self._measured_tune_s is not None
                else DEFAULT_COLD_TUNE_S
            )
        m = current()
        if m is not None:
            m.counter("serve/tune/cold").inc()
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"cold-tune {key[0]}x{key[1]}/{key[2]}",
                category="tune",
                track="scheduler",
                pid=0,
                args={"n": key[0], "k": key[1], "dtype": key[2],
                      "penalty_s": penalty},
            )
        return penalty

    # -- accounting --------------------------------------------------------

    def utilization(self, makespan_s: float) -> float:
        if makespan_s <= 0:
            return 0.0
        busy = sum(b.busy_s for b in self.backends)
        return busy / (makespan_s * len(self.backends))
