"""The closed serving experiment: offered-load sweep → saturation curve.

For each offered load the harness replays the *same-seed* request stream
through :func:`~repro.serve.server.serve` and records goodput, latency
percentiles and shed fraction.  Sweeping load upward traces the classic
saturation curve: goodput tracks offered load until the clusters
saturate, then flattens while tail latency and shedding climb.

Run with ``compare_naive=True`` it repeats the sweep with batching
disabled (``max_batch=1`` — one ``ftimm_gemm`` call per request, B
staged per call), which is the honest baseline the batcher must beat:
at saturation the batched server sustains strictly higher goodput or the
subsystem is not paying for itself.  ``benchmarks/serve_smoke.py`` gates
CI on exactly that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from ..analysis.tables import format_table
from ..errors import PlanError
from ..hw.config import MachineConfig
from .loadgen import ShapeClass, make_requests
from .server import ServeConfig, ServeReport, serve


@dataclass
class SweepPoint:
    """One offered load's outcome."""

    offered_rps: float
    report: ServeReport

    def as_row(self) -> list[object]:
        r = self.report
        return [
            f"{self.offered_rps:.0f}",
            f"{r.goodput_rps:.0f}",
            f"{r.completed_rps:.0f}",
            r.completed,
            r.shed,
            r.failed,
            f"{r.mean_batch_size:.2f}",
            f"{r.latency_quantile(0.50) * 1e3:.3f}",
            f"{r.latency_quantile(0.95) * 1e3:.3f}",
            f"{r.latency_quantile(0.99) * 1e3:.3f}",
            f"{r.throughput_gflops:.2f}",
        ]


SWEEP_HEADERS = [
    "offered (rps)", "goodput (rps)", "completed (rps)",
    "completed", "shed", "failed", "batch",
    "p50 (ms)", "p95 (ms)", "p99 (ms)", "GFLOPS",
]


@dataclass
class SweepResult:
    """A full offered-load sweep (optionally with the naive baseline)."""

    mix_name: str
    policy: str
    seed: int
    n_requests: int
    points: list[SweepPoint]
    naive_points: list[SweepPoint] = field(default_factory=list)

    @property
    def saturated_goodput_rps(self) -> float:
        """Goodput at the highest offered load (the saturation plateau)."""
        return self.points[-1].report.goodput_rps

    @property
    def naive_saturated_goodput_rps(self) -> float:
        if not self.naive_points:
            raise PlanError("sweep ran without the naive baseline")
        return self.naive_points[-1].report.goodput_rps

    @property
    def batching_wins_at_saturation(self) -> bool:
        return self.saturated_goodput_rps > self.naive_saturated_goodput_rps

    def render(self) -> str:
        out = [
            f"serve sweep: mix={self.mix_name} policy={self.policy} "
            f"seed={self.seed} n={self.n_requests}",
            format_table(SWEEP_HEADERS, [p.as_row() for p in self.points]),
        ]
        if self.naive_points:
            out.append("")
            out.append("naive baseline (max_batch=1, one call per request):")
            out.append(format_table(
                SWEEP_HEADERS, [p.as_row() for p in self.naive_points]
            ))
            out.append("")
            out.append(
                f"saturation: batched {self.saturated_goodput_rps:.0f} rps "
                f"vs naive {self.naive_saturated_goodput_rps:.0f} rps -> "
                + ("batching wins" if self.batching_wins_at_saturation
                   else "BATCHING DOES NOT PAY")
            )
        return "\n".join(out)

    def to_record_fields(self) -> dict:
        """Flat fields for the JSONL run-log."""
        return {
            "mix": self.mix_name,
            "policy": self.policy,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "sweep": [
                {
                    "offered_rps": p.offered_rps,
                    "goodput_rps": p.report.goodput_rps,
                    "completed": p.report.completed,
                    "shed": p.report.shed,
                    "failed": p.report.failed,
                    "mean_batch": p.report.mean_batch_size,
                    "p50_s": p.report.latency_quantile(0.50),
                    "p95_s": p.report.latency_quantile(0.95),
                    "p99_s": p.report.latency_quantile(0.99),
                    "gflops": p.report.throughput_gflops,
                }
                for p in self.points
            ],
            "naive_sweep": [
                {
                    "offered_rps": p.offered_rps,
                    "goodput_rps": p.report.goodput_rps,
                    "completed": p.report.completed,
                    "shed": p.report.shed,
                }
                for p in self.naive_points
            ],
        }


def sweep(
    mix: list[ShapeClass] | str,
    loads_rps: list[float],
    *,
    n_requests: int = 200,
    seed: int = 0,
    config: ServeConfig | None = None,
    arrivals: str = "poisson",
    compare_naive: bool = False,
    machine: MachineConfig | None = None,
) -> SweepResult:
    """Replay the same-seed stream at each offered load."""
    if not loads_rps:
        raise PlanError("loads_rps must be non-empty")
    if sorted(loads_rps) != list(loads_rps):
        raise PlanError("loads_rps must be sorted ascending")
    config = config or ServeConfig()
    mix_name = mix if isinstance(mix, str) else "custom"

    def run_at(load: float, cfg: ServeConfig) -> SweepPoint:
        requests = make_requests(
            mix, rate_rps=load, n_requests=n_requests, seed=seed,
            arrivals=arrivals,
        )
        return SweepPoint(load, serve(requests, cfg, machine=machine))

    points = [run_at(load, config) for load in loads_rps]
    naive_points = []
    if compare_naive:
        naive_cfg = dc_replace(config, max_batch=1)
        naive_points = [run_at(load, naive_cfg) for load in loads_rps]
    return SweepResult(
        mix_name=mix_name,
        policy=config.policy,
        seed=seed,
        n_requests=n_requests,
        points=points,
        naive_points=naive_points,
    )
