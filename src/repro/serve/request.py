"""The request/response model of the online serving layer.

A :class:`GemmRequest` is one ``C += A @ B`` a client submitted at a
simulated ``arrival_s``, optionally carrying an absolute latency
``deadline_s`` (its SLO).  The server answers every admitted request with
a :class:`RequestRecord` — a completed result, a typed shed, or a typed
failure; there is no fourth outcome and no silent drop.

Records decompose latency the way a serving stack accumulates it:

* ``queue_s``  — arrival until the request's batch *closed* (batching
  wait under the max-wait/max-batch policy);
* ``batch_s``  — batch close until execution *started* on a cluster
  (scheduling / backend-queue wait);
* ``compute_s`` — execution span on the cluster (staging + any cold-tune
  penalty + the grouped GEMM itself, plus time lost to fault retries).

``latency_s = queue_s + batch_s + compute_s`` for completed requests.
All times are simulated seconds; nothing in a record depends on the wall
clock, which is what makes serve runs replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.shapes import GemmShape
from ..errors import ShapeError

#: the three terminal request states.
COMPLETED = "completed"
SHED = "shed"
FAILED = "failed"


@dataclass(eq=False)
class GemmRequest:
    """One in-flight GEMM with its operands and SLO."""

    req_id: int
    arrival_s: float
    shape: GemmShape
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    klass: str = "gemm"
    deadline_s: float | None = None
    #: explicit priority-class label ("interactive" / "bulk"); ``None``
    #: lets the degradation policy classify by deadline budget
    priority: str | None = None

    def __post_init__(self) -> None:
        if self.a.shape != (self.shape.m, self.shape.k):
            raise ShapeError(f"A {self.a.shape} != {self.shape}")
        if self.b.shape != (self.shape.k, self.shape.n):
            raise ShapeError(f"B {self.b.shape} != {self.shape}")
        if self.c.shape != (self.shape.m, self.shape.n):
            raise ShapeError(f"C {self.c.shape} != {self.shape}")


@dataclass
class RequestRecord:
    """The server's answer for one request (always produced)."""

    req_id: int
    klass: str
    shape: str
    arrival_s: float
    status: str                    # completed | shed | failed
    queue_s: float = 0.0
    batch_s: float = 0.0
    compute_s: float = 0.0
    finish_s: float | None = None
    deadline_s: float | None = None
    deadline_met: bool | None = None
    batch_id: int | None = None
    batch_size: int | None = None
    cluster: int | None = None
    bit_exact: bool | None = None  # verified against standalone ftimm_gemm
    error: str | None = None
    #: priority class the degradation policy assigned (None = no policy)
    priority: str | None = None
    #: typed shed reason: queue_full | class_shed | burn_shed
    shed_reason: str | None = None

    @property
    def latency_s(self) -> float | None:
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    def as_row(self) -> list[object]:
        """One deterministic table row (used by the latency table)."""
        lat = self.latency_s
        return [
            self.req_id,
            self.klass,
            self.shape,
            f"{self.arrival_s * 1e3:.3f}",
            self.status,
            f"{self.queue_s * 1e3:.3f}" if self.status == COMPLETED else "-",
            f"{self.batch_s * 1e3:.3f}" if self.status == COMPLETED else "-",
            f"{self.compute_s * 1e3:.3f}" if self.status == COMPLETED else "-",
            f"{lat * 1e3:.3f}" if lat is not None else "-",
            {True: "yes", False: "MISS", None: "-"}[self.deadline_met],
            self.batch_size if self.batch_size is not None else "-",
            self.cluster if self.cluster is not None else "-",
        ]


LATENCY_TABLE_HEADERS = [
    "req", "class", "shape", "arrive (ms)", "status",
    "queue (ms)", "batch (ms)", "compute (ms)", "latency (ms)",
    "SLO", "batch size", "cluster",
]


@dataclass
class BatchRecord:
    """One dispatched batch (for the report's batch-level view)."""

    batch_id: int
    bucket: str
    n_items: int
    close_s: float
    start_s: float
    finish_s: float
    cluster: int
    stacked_m: int
    tune_s: float = 0.0
    stage_s: float = 0.0
    gemm_s: float = 0.0
    lost_s: float = 0.0            # failed fault attempts, honestly charged
    redispatches: int = 0
    request_ids: list[int] = field(default_factory=list)
    #: ran on a cluster already holding a B replica (skipped B staging)
    b_resident: bool = False
