"""Online GEMM serving: the request-stream layer over the batched core.

The paper's motivating workloads issue *streams* of small irregular
GEMMs; this package turns the repository's building blocks — grouped
batching (:mod:`repro.core.batched`), four independent GPDSP clusters
(:mod:`repro.core.multi_cluster`'s cost model), cached plans/kernels and
seeded fault injection — into a serving subsystem with throughput and
latency numbers:

* :mod:`repro.serve.request`   — requests, per-request records;
* :mod:`repro.serve.loadgen`   — Poisson/bursty open-loop streams over
  transformer / FEM / convnet shape mixes;
* :mod:`repro.serve.batcher`   — shape-bucketed batching (max-wait /
  max-batch, shared-B via content digest);
* :mod:`repro.serve.scheduler` — per-cluster backends, FIFO /
  least-loaded / EDF policies, bucket warmup;
* :mod:`repro.serve.server`    — the simulated-time serve loop with
  admission control, typed shedding and verified bit-exact responses;
* :mod:`repro.serve.harness`   — offered-load sweeps and the
  saturation-curve experiment (``repro serve`` on the CLI);
* :mod:`repro.serve.slo`       — error-budget / burn-rate SLO monitoring
  over serve records, with typed run-log alerts;
* :mod:`repro.serve.degrade`   — graceful degradation: priority classes,
  burn-driven proactive shedding, cluster quarantine, and the
  serve-level chaos harness;
* :mod:`repro.serve.gateway`   — the live asyncio front-end: streaming
  admission over the same engine, ``await submit(...)`` with typed
  outcomes and a virtual-clock bridge;
* :mod:`repro.serve.placement` — replicated-B placement: traffic-driven
  promotion of hot shared-B matrices to multi-cluster replica sets,
  replica-aware routing, LRU demotion under a memory budget;
* :mod:`repro.serve.hints`     — observed stack hints persisted beside
  the plan DB (``ServeConfig(stack_hints="observed")``).
"""

from ..errors import FaultError, OverloadError
from .batcher import Batch, ShapeBucketBatcher, bucket_key, bucket_label
from .degrade import (
    BULK,
    INTERACTIVE,
    DegradeEvent,
    DegradePolicy,
    DegradeReport,
    HealthPolicy,
    OnlineBurn,
    PriorityClass,
    ServeChaosReport,
    chaos_serve,
)
from .gateway import Gateway, gateway_replay
from .harness import SweepPoint, SweepResult, sweep
from .hints import load_stack_hints, save_stack_hints
from .loadgen import (
    MIXES,
    ShapeClass,
    get_mix,
    make_requests,
)
from .placement import (
    REPLICATE_MODES,
    PlacementEvent,
    PlacementManager,
    PlacementReport,
    ReplicaSet,
)
from .request import BatchRecord, GemmRequest, RequestRecord
from .scheduler import POLICIES, ClusterBackend, Scheduler, WarmupReport
from .server import ServeConfig, ServeEngine, ServeReport, serve
from .slo import (
    SLO_SCHEMA,
    BurnWindow,
    SloAlert,
    SloPolicy,
    SloReport,
    monitor,
)

__all__ = [
    "BULK",
    "Batch",
    "BatchRecord",
    "BurnWindow",
    "ClusterBackend",
    "DegradeEvent",
    "DegradePolicy",
    "DegradeReport",
    "FaultError",
    "Gateway",
    "GemmRequest",
    "HealthPolicy",
    "INTERACTIVE",
    "MIXES",
    "OnlineBurn",
    "OverloadError",
    "POLICIES",
    "PlacementEvent",
    "PlacementManager",
    "PlacementReport",
    "PriorityClass",
    "REPLICATE_MODES",
    "ReplicaSet",
    "RequestRecord",
    "SLO_SCHEMA",
    "Scheduler",
    "ServeChaosReport",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "ShapeBucketBatcher",
    "ShapeClass",
    "SloAlert",
    "SloPolicy",
    "SloReport",
    "SweepPoint",
    "SweepResult",
    "WarmupReport",
    "bucket_key",
    "bucket_label",
    "chaos_serve",
    "gateway_replay",
    "get_mix",
    "load_stack_hints",
    "make_requests",
    "monitor",
    "save_stack_hints",
    "serve",
    "sweep",
]
