"""Persistent observed stack hints: close the warmup loop across runs.

Warmup hints normally come a-priori from the pre-drawn stream
(:func:`~repro.serve.server.expected_stack_hints`), but a live workload's
batch shapes drift — the stacked M a bucket *actually* coalesces at is
only known after a run.  This module persists
:meth:`~repro.serve.server.ServeReport.stack_hints` (the observed mean
stacked M per bucket class) alongside the plan database, so the next
session's warmup — ``ServeConfig(stack_hints="observed")`` — pre-tunes
at the stacks the previous run really saw.

Storage follows the plan-database conventions exactly: one JSON file
(``stack-hints-v1.json``) in the same directory as ``plans-v1.json``,
atomic temp-file + rename saves, and corrupt files quarantined to
``*.bad`` (counted as ``serve/hints/quarantined``) instead of crashing.
Hints only steer which plans/kernels get pre-cached — they never change
simulated results, so a missing or stale store is always safe.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from ..errors import PlanError
from ..obs import current
from .scheduler import StackHints

#: bump when the serialization changes; old files are simply ignored
HINTS_VERSION = 1

FILENAME = f"stack-hints-v{HINTS_VERSION}.json"


def default_hints_path() -> Path | None:
    """The store's location: beside the plan DB (``$REPRO_KERNEL_CACHE``).

    ``None`` when caching is disabled — then hints are session-only.
    """
    from ..kernels.registry import default_cache_dir

    root = default_cache_dir()
    return root / "plans" / FILENAME if root is not None else None


def _count(name: str, by: int = 1) -> None:
    m = current()
    if m is not None:
        m.counter(f"serve/hints/{name}").inc(by)


def load_stack_hints(path: Path | str | None = None) -> StackHints:
    """Read the persisted observed hints; `{}` when absent or disabled.

    A corrupt or wrong-version file is quarantined to ``*.bad`` and
    treated as empty — loading hints can never fail a serve run.
    """
    p = Path(path) if path is not None else default_hints_path()
    if p is None or not p.exists():
        return {}
    try:
        blob = json.loads(p.read_text())
        if blob.get("version") != HINTS_VERSION:
            raise PlanError(f"unsupported hints version {blob.get('version')}")
        hints: StackHints = {}
        for key, stack in blob["hints"].items():
            n, k, dtype = key.split(":")
            hints[(int(n), int(k), dtype)] = int(stack)
    except (OSError, ValueError, KeyError, AttributeError, PlanError):
        _count("quarantined")
        try:
            os.replace(p, p.with_name(p.name + ".bad"))
        except OSError:
            pass
        return {}
    _count("loaded", len(hints))
    return hints


def save_stack_hints(
    hints: StackHints, path: Path | str | None = None
) -> Path | None:
    """Merge ``hints`` into the store atomically; returns the path.

    Existing entries for other bucket classes are kept (a run that never
    touched the decode projections must not forget their stacks); entries
    for classes this run observed are overwritten with the fresh value.
    No-op (returns ``None``) when caching is disabled.
    """
    p = Path(path) if path is not None else default_hints_path()
    if p is None:
        return None
    merged = dict(load_stack_hints(p))
    merged.update(hints)
    blob = json.dumps(
        {
            "version": HINTS_VERSION,
            "hints": {
                f"{n}:{k}:{dtype}": int(stack)
                for (n, k, dtype), stack in sorted(merged.items())
            },
        },
        indent=1,
        sort_keys=True,
    )
    try:
        p.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=p.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, p)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return None
    _count("saved", len(hints))
    return p
