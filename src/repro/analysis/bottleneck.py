"""Bottleneck attribution from a profiled timed run.

Turns the per-epoch busy-time accounting of a
:class:`~repro.obs.profile.RunProfile` into the classification the paper
argues by hand: is each phase of the execution limited by the FMAC
pipelines (compute-bound), the shared DDR port (DDR-bound), or barrier /
reduction overhead (sync-bound)?  A roofline summary (following the
"Performance Analysis of Matrix Multiplication for Deep Learning on the
Edge" methodology) states where the shape sits relative to the machine's
ridge point, so per-epoch observations can be checked against the
first-principles ceiling.

Classification per epoch: the mean-over-cores busy fractions for compute,
DMA and barrier wait are compared; the largest wins.  A DMA-dominated
epoch is labeled ``ddr`` when most of its traffic touched DDR and
``memory`` when it stayed on-chip (GSM); an epoch where nothing reaches
``IDLE_THRESHOLD`` is ``idle`` (dependency/latency limited).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..baselines.roofline import RooflinePoint, roofline
from ..core.shapes import GemmShape
from ..errors import ReproError
from ..executor.timed import TimedResult
from ..hw.config import ClusterConfig
from ..obs.profile import EpochProfile
from .tables import format_table

#: below this busy fraction for every category, an epoch is "idle"
#: (dependency latency, not a resource, is the limiter)
IDLE_THRESHOLD = 0.15


@dataclass(frozen=True)
class EpochAttribution:
    """One epoch's busy fractions and its dominant limiter."""

    index: int
    start: float
    end: float
    compute_frac: float
    dma_frac: float
    sync_frac: float
    stall_frac: float
    ddr_bytes: int
    total_bytes: int
    bound: str          # "compute" | "ddr" | "memory" | "sync" | "idle"
    sync_tag: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "compute_frac": self.compute_frac,
            "dma_frac": self.dma_frac,
            "sync_frac": self.sync_frac,
            "stall_frac": self.stall_frac,
            "ddr_bytes": self.ddr_bytes,
            "total_bytes": self.total_bytes,
            "bound": self.bound,
            "sync_tag": self.sync_tag,
        }


def _classify(compute: float, dma: float, sync: float, ddr_share: float) -> str:
    top = max(compute, dma, sync)
    if top < IDLE_THRESHOLD:
        return "idle"
    if top == compute:
        return "compute"
    if top == dma:
        return "ddr" if ddr_share >= 0.5 else "memory"
    return "sync"


def attribute_epoch(ep: EpochProfile) -> EpochAttribution:
    total_bytes = sum(ep.bytes_by_medium.values())
    ddr_bytes = ep.bytes_by_medium.get("ddr", 0)
    ddr_share = ddr_bytes / total_bytes if total_bytes else 0.0
    compute, dma, sync = ep.compute_frac, ep.dma_frac, ep.sync_frac
    return EpochAttribution(
        index=ep.index,
        start=ep.start,
        end=ep.end,
        compute_frac=compute,
        dma_frac=dma,
        sync_frac=sync,
        stall_frac=ep.stall_frac,
        ddr_bytes=ddr_bytes,
        total_bytes=total_bytes,
        bound=_classify(compute, dma, sync, ddr_share),
        sync_tag=ep.sync_tag,
    )


@dataclass
class BottleneckReport:
    """Run-level attribution: per-epoch limits plus the roofline view."""

    shape: GemmShape
    impl: str
    strategy: str
    n_cores: int
    seconds: float
    gflops: float
    efficiency: float
    peak_gflops: float
    roofline: RooflinePoint
    epochs: list[EpochAttribution]

    @property
    def bound(self) -> str:
        """Dominant limiter, weighted by epoch duration."""
        weights: dict[str, float] = {}
        for ep in self.epochs:
            weights[ep.bound] = weights.get(ep.bound, 0.0) + ep.duration
        if not weights:
            return "idle"
        return max(weights.items(), key=lambda kv: kv[1])[0]

    @property
    def roofline_fraction(self) -> float:
        """Achieved GFLOP/s relative to the roofline ceiling."""
        ceiling = self.roofline.max_gflops
        return self.gflops / ceiling if ceiling > 0 else 0.0

    def weighted_fracs(self) -> dict[str, float]:
        """Duration-weighted mean busy fraction per category."""
        total = sum(ep.duration for ep in self.epochs)
        if total <= 0:
            return {"compute": 0.0, "dma": 0.0, "sync": 0.0}
        return {
            "compute": sum(ep.compute_frac * ep.duration for ep in self.epochs) / total,
            "dma": sum(ep.dma_frac * ep.duration for ep in self.epochs) / total,
            "sync": sum(ep.sync_frac * ep.duration for ep in self.epochs) / total,
        }

    def render(self) -> str:
        """Terminal report: header, roofline summary, per-epoch table."""
        rf = self.roofline
        regime = "memory" if rf.memory_bound else "compute"
        lines = [
            f"perf report: {self.impl} {self.shape} "
            f"({self.shape.classify().value}), strategy {self.strategy}, "
            f"{self.n_cores} cores",
            f"  time {self.seconds * 1e6:.1f} us, {self.gflops:.1f} GFLOPS "
            f"({100 * self.efficiency:.1f}% of peak "
            f"{self.peak_gflops:.0f} GFLOPS)",
            f"  roofline: AI {rf.arithmetic_intensity:.2f} flop/B -> "
            f"{regime}-bound ceiling {rf.max_gflops:.1f} GFLOPS; "
            f"achieved {100 * self.roofline_fraction:.1f}% of it",
            f"  verdict: {self.bound}-bound "
            f"({len(self.epochs)} epochs, weighted busy: "
            + ", ".join(
                f"{k} {100 * v:.0f}%" for k, v in self.weighted_fracs().items()
            )
            + ")",
        ]
        rows = []
        for ep in self.epochs:
            rows.append([
                ep.index,
                f"{ep.duration * 1e6:.1f}",
                f"{100 * ep.compute_frac:.0f}%",
                f"{100 * ep.dma_frac:.0f}%",
                f"{100 * ep.sync_frac:.0f}%",
                f"{100 * ep.stall_frac:.0f}%",
                f"{ep.ddr_bytes / 1024:.0f}",
                ep.bound + (f" ({ep.sync_tag})" if ep.sync_tag else ""),
            ])
        lines.append(format_table(
            ["epoch", "dur (us)", "compute", "dma", "sync", "stall",
             "DDR KiB", "bound"],
            rows,
        ))
        return "\n".join(lines)

    def to_record_fields(self) -> dict[str, Any]:
        """The report-derived fields of a run-log record."""
        return {
            "shape": str(self.shape),
            "impl": self.impl,
            "strategy": self.strategy,
            "cores": self.n_cores,
            "seconds": self.seconds,
            "gflops": self.gflops,
            "efficiency": self.efficiency,
            "bound": self.bound,
            "epochs": [ep.to_dict() for ep in self.epochs],
        }


def attribute(
    result: TimedResult,
    shape: GemmShape,
    cluster: ClusterConfig,
    impl: str = "ftimm",
) -> BottleneckReport:
    """Build the bottleneck report for a profiled DES run."""
    if result.profile is None:
        raise ReproError(
            "run was not profiled: call run_timed(..., profile=True) or run "
            "inside repro.obs.collecting()"
        )
    return BottleneckReport(
        shape=shape,
        impl=impl,
        strategy=result.strategy,
        n_cores=result.n_cores,
        seconds=result.seconds,
        gflops=result.gflops,
        efficiency=result.efficiency,
        peak_gflops=result.peak_flops / 1e9,
        roofline=roofline(shape, cluster, n_cores=result.n_cores),
        epochs=[attribute_epoch(ep) for ep in result.profile.epochs],
    )


def diff_records(old: dict[str, Any], new: dict[str, Any]) -> str:
    """Human-readable comparison of two run-log records (old -> new)."""
    def pct(a: float, b: float) -> str:
        if a == 0:
            return "n/a"
        delta = (b - a) / a * 100.0
        return f"{delta:+.1f}%"

    lines = [
        f"compare: {old.get('shape')} {old.get('impl')} "
        f"@{old.get('cores')} cores",
        f"  seconds:    {old['seconds']:.3e} -> {new['seconds']:.3e} "
        f"({pct(old['seconds'], new['seconds'])})",
        f"  GFLOPS:     {old['gflops']:.1f} -> {new['gflops']:.1f} "
        f"({pct(old['gflops'], new['gflops'])})",
        f"  efficiency: {100 * old['efficiency']:.1f}% -> "
        f"{100 * new['efficiency']:.1f}%",
        f"  bound:      {old['bound']} -> {new['bound']}"
        + ("  (changed!)" if old["bound"] != new["bound"] else ""),
    ]
    old_eps, new_eps = old.get("epochs", []), new.get("epochs", [])
    if len(old_eps) != len(new_eps):
        lines.append(
            f"  epochs:     {len(old_eps)} -> {len(new_eps)} (plan changed)"
        )
    else:
        changed = [
            (a["index"], a["bound"], b["bound"])
            for a, b in zip(old_eps, new_eps)
            if a["bound"] != b["bound"]
        ]
        for index, was, now in changed:
            lines.append(f"  epoch {index}: {was} -> {now}")
        if not changed:
            lines.append(f"  epochs:     {len(new_eps)}, all bounds unchanged")
    return "\n".join(lines)
