"""Compare two experiment-data exports (regression diffing).

`python -m repro.experiments.run_all --json data.json` dumps every series
and claim.  This tool diffs two such dumps — e.g. before/after a model
change — and reports:

* claims that flipped (held → failed or vice versa),
* series points whose values moved more than a tolerance,
* experiments added or removed.

CLI: ``python -m repro.analysis.compare old.json new.json [--tol 0.05]``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class SeriesDelta:
    exp_id: str
    label: str
    x: object
    old: float
    new: float

    @property
    def rel_change(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 0.0
        return (self.new - self.old) / abs(self.old)


@dataclass
class ClaimFlip:
    exp_id: str
    name: str
    was_holding: bool
    old_measured: str
    new_measured: str


@dataclass
class ComparisonReport:
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    flips: list[ClaimFlip] = field(default_factory=list)
    deltas: list[SeriesDelta] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.added or self.removed or self.flips or self.deltas)

    def render(self, tol: float) -> str:
        if self.clean:
            return f"no changes beyond {tol:.0%} tolerance"
        lines = []
        for exp in self.removed:
            lines.append(f"REMOVED experiment: {exp}")
        for exp in self.added:
            lines.append(f"added experiment: {exp}")
        for flip in self.flips:
            direction = "now FAILS" if flip.was_holding else "now holds"
            lines.append(
                f"CLAIM FLIP {flip.exp_id}:{flip.name} {direction} "
                f"({flip.old_measured!r} -> {flip.new_measured!r})"
            )
        for delta in sorted(
            self.deltas, key=lambda d: -abs(d.rel_change)
        ):
            lines.append(
                f"moved {delta.exp_id}/{delta.label} @ x={delta.x}: "
                f"{delta.old:.4g} -> {delta.new:.4g} "
                f"({delta.rel_change:+.1%})"
            )
        return "\n".join(lines)


def compare_experiments(
    old: list[dict], new: list[dict], *, tol: float = 0.05
) -> ComparisonReport:
    """Diff two ``run_all --json`` payloads."""
    report = ComparisonReport()
    old_by_id = {e["exp_id"]: e for e in old}
    new_by_id = {e["exp_id"]: e for e in new}
    report.removed = sorted(set(old_by_id) - set(new_by_id))
    report.added = sorted(set(new_by_id) - set(old_by_id))

    for exp_id in sorted(set(old_by_id) & set(new_by_id)):
        o, n = old_by_id[exp_id], new_by_id[exp_id]
        old_claims = {c["name"]: c for c in o.get("claims", [])}
        for claim in n.get("claims", []):
            prev = old_claims.get(claim["name"])
            if prev is not None and prev["holds"] != claim["holds"]:
                report.flips.append(
                    ClaimFlip(
                        exp_id=exp_id,
                        name=claim["name"],
                        was_holding=prev["holds"],
                        old_measured=prev["measured"],
                        new_measured=claim["measured"],
                    )
                )
        old_series = {s["label"]: s for s in o.get("series", [])}
        for series in n.get("series", []):
            prev = old_series.get(series["label"])
            if prev is None:
                continue
            for x, old_y, new_y in zip(prev["x"], prev["y"], series["y"]):
                moved = (
                    abs(new_y - old_y) > tol * abs(old_y)
                    if old_y
                    else new_y != old_y
                )
                if moved:
                    report.deltas.append(
                        SeriesDelta(exp_id, series["label"], x, old_y, new_y)
                    )
    return report


def main(argv: list[str] | None = None) -> int:
    args = list(argv if argv is not None else sys.argv[1:])
    tol = 0.05
    if "--tol" in args:
        i = args.index("--tol")
        tol = float(args[i + 1])
        del args[i : i + 2]
    if len(args) != 2:
        print("usage: python -m repro.analysis.compare old.json new.json "
              "[--tol 0.05]", file=sys.stderr)
        return 2
    old = json.loads(Path(args[0]).read_text())
    new = json.loads(Path(args[1]).read_text())
    report = compare_experiments(old, new, tol=tol)
    print(report.render(tol))
    return 0 if not (report.flips or report.removed) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
