"""Terminal line charts for experiment series.

The paper's figures are line plots; the closest faithful rendering in a
network-less terminal reproduction is an ASCII chart.  One chart shows all
series of an :class:`~repro.analysis.tables.ExperimentResult` on a shared
log-or-linear y axis with per-series glyphs, so crossovers and gaps (the
things the claims are about) are visible at a glance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .tables import Series

#: glyphs assigned to series in order.
GLYPHS = "*o+x#@%&"


@dataclass(frozen=True)
class PlotConfig:
    width: int = 64
    height: int = 16
    log_y: bool = False


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def render_chart(
    series: list[Series],
    *,
    config: PlotConfig | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series as an ASCII chart (x positions are equally spaced)."""
    cfg = config or PlotConfig()
    drawable = [s for s in series if s.y]
    if not drawable:
        return "(no data)"
    n_points = max(len(s.y) for s in drawable)
    if n_points < 2:
        return "(need at least two points to draw)"

    ys = [y for s in drawable for y in s.y]
    lo, hi = min(ys), max(ys)
    if cfg.log_y:
        if lo <= 0:
            raise ValueError("log_y requires positive values")
        lo, hi = math.log10(lo), math.log10(hi)
    if hi == lo:
        hi = lo + 1.0

    def to_row(value: float) -> int:
        v = math.log10(value) if cfg.log_y else value
        frac = (v - lo) / (hi - lo)
        return min(cfg.height - 1, max(0, round(frac * (cfg.height - 1))))

    def to_col(index: int, count: int) -> int:
        if count == 1:
            return 0
        return round(index * (cfg.width - 1) / (count - 1))

    grid = [[" "] * cfg.width for _ in range(cfg.height)]
    for s_idx, s in enumerate(drawable):
        glyph = GLYPHS[s_idx % len(GLYPHS)]
        cols_rows = [
            (to_col(i, len(s.y)), to_row(y)) for i, y in enumerate(s.y)
        ]
        # connect consecutive points with interpolated cells
        for (c1, r1), (c2, r2) in zip(cols_rows, cols_rows[1:]):
            steps = max(abs(c2 - c1), abs(r2 - r1), 1)
            for t in range(steps + 1):
                c = round(c1 + (c2 - c1) * t / steps)
                r = round(r1 + (r2 - r1) * t / steps)
                cell = grid[cfg.height - 1 - r][c]
                grid[cfg.height - 1 - r][c] = glyph if cell == " " else "="

    top_tick = _format_tick(10 ** hi if cfg.log_y else hi)
    bottom_tick = _format_tick(10 ** lo if cfg.log_y else lo)
    tick_w = max(len(top_tick), len(bottom_tick))
    lines = []
    if y_label:
        lines.append(f"{'':>{tick_w}}  {y_label}")
    for r, row in enumerate(grid):
        tick = top_tick if r == 0 else bottom_tick if r == cfg.height - 1 else ""
        lines.append(f"{tick:>{tick_w}} |{''.join(row)}|")
    x0 = drawable[0].x[0] if drawable[0].x else ""
    x1 = drawable[0].x[-1] if drawable[0].x else ""
    footer = f"{x0} .. {x1}"
    if x_label:
        footer += f"  ({x_label})"
    lines.append(f"{'':>{tick_w}}  {footer:^{cfg.width}}")
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {s.label}" for i, s in enumerate(drawable)
    )
    lines.append(f"{'':>{tick_w}}  {legend}  (= overlap)")
    return "\n".join(lines)
