"""Metrics and result-table utilities."""

from .ascii_plot import PlotConfig, render_chart
from .metrics import efficiency, gflops, percent, speedup
from .tables import Claim, ExperimentResult, Series, format_table

__all__ = [
    "Claim",
    "PlotConfig",
    "render_chart",
    "ExperimentResult",
    "Series",
    "efficiency",
    "format_table",
    "gflops",
    "percent",
    "speedup",
]
