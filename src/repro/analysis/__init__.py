"""Metrics, result-table, and bottleneck-attribution utilities."""

from .ascii_plot import PlotConfig, render_chart
from .bottleneck import (
    BottleneckReport,
    EpochAttribution,
    attribute,
    diff_records,
)
from .metrics import efficiency, gflops, percent, speedup
from .tables import Claim, ExperimentResult, Series, format_table

__all__ = [
    "BottleneckReport",
    "Claim",
    "EpochAttribution",
    "ExperimentResult",
    "PlotConfig",
    "Series",
    "attribute",
    "diff_records",
    "efficiency",
    "format_table",
    "gflops",
    "percent",
    "render_chart",
    "speedup",
]
