"""Metrics, result-table, bottleneck- and critical-path-attribution."""

from .ascii_plot import PlotConfig, render_chart
from .bottleneck import (
    BottleneckReport,
    EpochAttribution,
    attribute,
    diff_records,
)
from .critical_path import (
    SEGMENTS,
    CriticalPathDiff,
    CriticalPathReport,
    RequestPath,
    critical_path,
    diff_critical_paths,
    from_spans,
)
from .metrics import efficiency, gflops, percent, speedup
from .tables import Claim, ExperimentResult, Series, format_table

__all__ = [
    "BottleneckReport",
    "Claim",
    "CriticalPathDiff",
    "CriticalPathReport",
    "EpochAttribution",
    "ExperimentResult",
    "PlotConfig",
    "RequestPath",
    "SEGMENTS",
    "Series",
    "attribute",
    "critical_path",
    "diff_critical_paths",
    "diff_records",
    "efficiency",
    "format_table",
    "from_spans",
    "gflops",
    "percent",
    "render_chart",
    "speedup",
]
