"""Per-request critical-path attribution over serve records or traces.

Answers the question aggregate histograms cannot: *where did the p99
request's latency actually go?*  Each completed request's recorded
latency is decomposed into named segments —

* ``queue``  — arrival until its bucket closed into a batch;
* ``batch``  — bucket close until the scheduler started the batch;
* ``tune``   — modeled cold plan-search penalty charged to its batch;
* ``stage``  — host-mediated operand staging into the cluster;
* ``retry``  — simulated time lost to failed fault-injected attempts;
* ``gemm``   — the stacked GEMM itself

— and the dominant segment is named per request and for the tail.  The
first two come from the request record; the last four from the batch
record the request was coalesced into (every member experiences the whole
batch span, so segments carry their full values).  By the serve loop's
accounting identity ``latency = queue + batch + compute`` and
``compute = tune + stage + retry + gemm``, coverage is exact up to
float rounding — the acceptance bar is >= 95%.

Inputs are duck-typed (attributes or dict keys), so this module reads
:class:`~repro.serve.request.RequestRecord` /
:class:`~repro.serve.request.BatchRecord` objects, their dict form from
a JSONL run-log, or the span sidecar of a saved trace file
(:func:`from_spans`) interchangeably — and imports nothing from
:mod:`repro.serve`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..errors import InputError
from .tables import format_table

#: segment order: the display / tie-breaking convention everywhere.
SEGMENTS = ("queue", "batch", "tune", "stage", "retry", "gemm")

_COMPLETED = "completed"


def _get(obj: Any, name: str, default: Any = None) -> Any:
    if isinstance(obj, dict):
        return obj.get(name, default)
    return getattr(obj, name, default)


@dataclass
class RequestPath:
    """One completed request's latency, decomposed into segments."""

    req_id: int
    klass: str
    latency_s: float
    segments: dict[str, float]
    batch_id: int | None = None
    cluster: int | None = None

    @property
    def covered_s(self) -> float:
        return sum(self.segments.values())

    @property
    def coverage(self) -> float:
        """Fraction of the recorded latency the named segments explain."""
        if self.latency_s <= 0:
            return 1.0
        return self.covered_s / self.latency_s

    @property
    def dominant(self) -> str:
        """The largest segment (earliest in SEGMENTS order on ties)."""
        return max(
            SEGMENTS, key=lambda s: (self.segments.get(s, 0.0), -SEGMENTS.index(s))
        )


@dataclass
class CriticalPathReport:
    """Critical-path decomposition of a serve run."""

    paths: list[RequestPath]
    quantile: float = 0.99
    #: requests at or above the latency quantile
    tail: list[RequestPath] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.paths)

    @property
    def min_coverage(self) -> float:
        return min((p.coverage for p in self.paths), default=1.0)

    def tail_latency_s(self) -> float:
        if not self.tail:
            return 0.0
        return min(p.latency_s for p in self.tail)

    def tail_segments(self) -> dict[str, float]:
        """Mean seconds per segment across the tail requests."""
        if not self.tail:
            return {s: 0.0 for s in SEGMENTS}
        return {
            s: sum(p.segments.get(s, 0.0) for p in self.tail) / len(self.tail)
            for s in SEGMENTS
        }

    @property
    def tail_dominant(self) -> str:
        """The segment that dominates the tail, on average."""
        segs = self.tail_segments()
        return max(SEGMENTS, key=lambda s: (segs[s], -SEGMENTS.index(s)))

    def render(self) -> str:
        segs = self.tail_segments()
        total = sum(segs.values()) or 1.0
        rows = [
            [s, f"{segs[s] * 1e3:.4f}", f"{100.0 * segs[s] / total:.1f}%"]
            for s in SEGMENTS
        ]
        table = format_table(["segment", "tail mean (ms)", "share"], rows)
        head = (
            f"critical path over {self.n_requests} completed requests "
            f"(tail: {len(self.tail)} at/above "
            f"p{int(self.quantile * 100)} = "
            f"{self.tail_latency_s() * 1e3:.4f} ms)"
        )
        foot = (
            f"dominant tail segment: {self.tail_dominant}  "
            f"(min request coverage {self.min_coverage * 100:.2f}%)"
        )
        return "\n".join([head, table, foot])

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_requests": self.n_requests,
            "quantile": self.quantile,
            "tail_n": len(self.tail),
            "tail_latency_s": self.tail_latency_s(),
            "tail_segments_s": self.tail_segments(),
            "dominant": self.tail_dominant,
            "min_coverage": self.min_coverage,
        }


def critical_path(
    records: list[Any],
    batches: list[Any],
    *,
    quantile: float = 0.99,
) -> CriticalPathReport:
    """Decompose completed requests' latencies into named segments.

    ``records`` / ``batches`` are request and batch records — objects or
    dicts carrying the serve schema's fields.
    """
    if not 0.0 < quantile <= 1.0:
        raise InputError(f"quantile {quantile} outside (0, 1]")
    by_batch = {_get(b, "batch_id"): b for b in batches}
    paths = []
    for rec in records:
        if _get(rec, "status") != _COMPLETED:
            continue
        finish = _get(rec, "finish_s")
        arrival = _get(rec, "arrival_s")
        if finish is None or arrival is None:
            raise InputError(
                f"request {_get(rec, 'req_id')!r}: missing arrival/finish"
            )
        segments = {
            "queue": float(_get(rec, "queue_s") or 0.0),
            "batch": float(_get(rec, "batch_s") or 0.0),
            "tune": 0.0,
            "stage": 0.0,
            "retry": 0.0,
            "gemm": 0.0,
        }
        batch_id = _get(rec, "batch_id")
        batch = by_batch.get(batch_id)
        if batch is not None:
            segments["tune"] = float(_get(batch, "tune_s") or 0.0)
            segments["stage"] = float(_get(batch, "stage_s") or 0.0)
            segments["retry"] = float(_get(batch, "lost_s") or 0.0)
            segments["gemm"] = float(_get(batch, "gemm_s") or 0.0)
        else:
            # no batch row (older record): the lump-sum compute segment
            # still covers the latency, attributed to gemm
            segments["gemm"] = float(_get(rec, "compute_s") or 0.0)
        paths.append(RequestPath(
            req_id=int(_get(rec, "req_id")),
            klass=str(_get(rec, "klass", "")),
            latency_s=float(finish) - float(arrival),
            segments=segments,
            batch_id=batch_id,
            cluster=_get(rec, "cluster"),
        ))
    paths.sort(key=lambda p: p.req_id)
    return CriticalPathReport(
        paths=paths, quantile=quantile, tail=_tail(paths, quantile)
    )


def _tail(paths: list[RequestPath], quantile: float) -> list[RequestPath]:
    """Requests at/above the exact latency quantile (ServeReport's rule)."""
    if not paths:
        return []
    by_lat = sorted(paths, key=lambda p: p.latency_s)
    idx = min(
        len(by_lat) - 1, max(0, math.ceil(quantile * len(by_lat)) - 1)
    )
    cut = by_lat[idx].latency_s
    return [p for p in paths if p.latency_s >= cut]


def _mean_segments(tail: list[RequestPath]) -> dict[str, float]:
    if not tail:
        return {s: 0.0 for s in SEGMENTS}
    return {
        s: sum(p.segments.get(s, 0.0) for p in tail) / len(tail)
        for s in SEGMENTS
    }


@dataclass
class CriticalPathDiff:
    """Two runs' tail decompositions, segment by segment.

    The cross-run counterpart of :meth:`CriticalPathReport.render`: for
    each requested quantile, the mean per-segment seconds across run A's
    and run B's latency tails, and their delta (B minus A) — so a
    scheduler change reads as "batch-wait p99 shrank, gemm unchanged"
    instead of two opaque latency numbers.
    """

    quantiles: tuple[float, ...]
    n_requests: tuple[int, int]
    #: per quantile: {segment: mean tail seconds} for each run
    tails_a: dict[float, dict[str, float]]
    tails_b: dict[float, dict[str, float]]
    tail_latency_a: dict[float, float]
    tail_latency_b: dict[float, float]

    def delta(self, quantile: float) -> dict[str, float]:
        """Per-segment B - A at ``quantile`` (negative = B got faster)."""
        a, b = self.tails_a[quantile], self.tails_b[quantile]
        return {s: b[s] - a[s] for s in SEGMENTS}

    @property
    def dominant_shift(self) -> str:
        """The segment whose tail changed most at the highest quantile."""
        d = self.delta(max(self.quantiles))
        return max(SEGMENTS, key=lambda s: (abs(d[s]), -SEGMENTS.index(s)))

    def verdict(self) -> str:
        q = max(self.quantiles)
        seg = self.dominant_shift
        d = self.delta(q)[seg]
        if d == 0.0:
            return f"p{int(q * 100)} tail unchanged"
        direction = "grew" if d > 0 else "shrank"
        return (
            f"{seg} p{int(q * 100)} {direction} by {abs(d) * 1e3:.4f} ms "
            f"(A {self.tails_a[q][seg] * 1e3:.4f} -> "
            f"B {self.tails_b[q][seg] * 1e3:.4f})"
        )

    def render(self) -> str:
        headers = ["segment"]
        for q in self.quantiles:
            p = f"p{int(q * 100)}"
            headers += [f"A {p} (ms)", f"B {p} (ms)", f"d{p} (ms)"]
        rows = []
        for s in SEGMENTS:
            row = [s]
            for q in self.quantiles:
                a = self.tails_a[q][s]
                b = self.tails_b[q][s]
                row += [
                    f"{a * 1e3:.4f}", f"{b * 1e3:.4f}",
                    f"{(b - a) * 1e3:+.4f}",
                ]
            rows.append(row)
        head = (
            f"critical-path diff: A={self.n_requests[0]} vs "
            f"B={self.n_requests[1]} completed requests; tail latency "
            + ", ".join(
                f"p{int(q * 100)} {self.tail_latency_a[q] * 1e3:.4f} -> "
                f"{self.tail_latency_b[q] * 1e3:.4f} ms"
                for q in self.quantiles
            )
        )
        return "\n".join([head, format_table(headers, rows),
                          f"verdict: {self.verdict()}"])

    def to_dict(self) -> dict[str, Any]:
        return {
            "quantiles": list(self.quantiles),
            "n_requests": list(self.n_requests),
            "tails_a": {str(q): self.tails_a[q] for q in self.quantiles},
            "tails_b": {str(q): self.tails_b[q] for q in self.quantiles},
            "tail_latency_a": {
                str(q): self.tail_latency_a[q] for q in self.quantiles
            },
            "tail_latency_b": {
                str(q): self.tail_latency_b[q] for q in self.quantiles
            },
            "deltas": {
                str(q): self.delta(q) for q in self.quantiles
            },
            "dominant_shift": self.dominant_shift,
            "verdict": self.verdict(),
        }


def diff_critical_paths(
    a: CriticalPathReport,
    b: CriticalPathReport,
    *,
    quantiles: tuple[float, ...] = (0.50, 0.99),
) -> CriticalPathDiff:
    """Diff two runs' critical-path tail decompositions.

    Tails are recomputed from each report's paths at every requested
    quantile (the reports' own construction quantile is irrelevant), so
    one report diffs at p50 and p99 in a single call.
    """
    if not quantiles:
        raise InputError("need at least one quantile to diff at")
    for q in quantiles:
        if not 0.0 < q <= 1.0:
            raise InputError(f"quantile {q} outside (0, 1]")
    quantiles = tuple(sorted(quantiles))
    tails_a: dict[float, dict[str, float]] = {}
    tails_b: dict[float, dict[str, float]] = {}
    lat_a: dict[float, float] = {}
    lat_b: dict[float, float] = {}
    for q in quantiles:
        ta, tb = _tail(a.paths, q), _tail(b.paths, q)
        tails_a[q] = _mean_segments(ta)
        tails_b[q] = _mean_segments(tb)
        lat_a[q] = min((p.latency_s for p in ta), default=0.0)
        lat_b[q] = min((p.latency_s for p in tb), default=0.0)
    return CriticalPathDiff(
        quantiles=quantiles,
        n_requests=(a.n_requests, b.n_requests),
        tails_a=tails_a,
        tails_b=tails_b,
        tail_latency_a=lat_a,
        tail_latency_b=lat_b,
    )


def from_spans(spans: list[Any], *, quantile: float = 0.99) -> CriticalPathReport:
    """Reconstruct the decomposition from a trace's span sidecar.

    Request root spans (category ``"request"``) provide latency and the
    queue / batch-wait children; batch spans (category ``"batch"``)
    provide tune/stage/retry/gemm via their children, joined on the
    ``batch_id`` arg.
    """
    batch_segs: dict[int, dict[str, float]] = {}
    for s in spans:
        if _get(s, "category") == "batch":
            bid = _get(s, "args", {}).get("batch_id")
            if bid is not None:
                batch_segs[int(bid)] = {}
    for s in spans:
        cat = _get(s, "category")
        if cat in ("tune", "stage", "retry", "gemm"):
            bid = _get(s, "args", {}).get("batch_id")
            if bid is not None and int(bid) in batch_segs:
                seg = batch_segs[int(bid)]
                dur = float(_get(s, "end_s")) - float(_get(s, "start_s"))
                seg[cat] = seg.get(cat, 0.0) + dur

    req_children: dict[int, dict[str, float]] = {}
    for s in spans:
        if _get(s, "category") in ("queue", "batch-wait"):
            rid = _get(s, "args", {}).get("req_id")
            if rid is None:
                continue
            name = "queue" if _get(s, "category") == "queue" else "batch"
            dur = float(_get(s, "end_s")) - float(_get(s, "start_s"))
            req_children.setdefault(int(rid), {})[name] = dur

    paths = []
    for s in spans:
        if _get(s, "category") != "request":
            continue
        args = _get(s, "args", {})
        if args.get("status") != _COMPLETED:
            continue
        rid = int(args["req_id"])
        bid = args.get("batch_id")
        segments = {name: 0.0 for name in SEGMENTS}
        segments.update(req_children.get(rid, {}))
        if bid is not None:
            segments.update(batch_segs.get(int(bid), {}))
        paths.append(RequestPath(
            req_id=rid,
            klass=str(args.get("klass", "")),
            latency_s=float(_get(s, "end_s")) - float(_get(s, "start_s")),
            segments=segments,
            batch_id=bid,
            cluster=args.get("cluster"),
        ))
    if not paths:
        raise InputError("trace contains no completed request spans")
    paths.sort(key=lambda p: p.req_id)
    return CriticalPathReport(
        paths=paths, quantile=quantile, tail=_tail(paths, quantile)
    )
