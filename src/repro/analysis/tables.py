"""Experiment result containers and plain-text rendering.

Every experiment produces an :class:`ExperimentResult`: a set of labeled
series (the lines of the paper's figure, or the rows of its table), the
paper's headline claims for that experiment, and the values this
reproduction measured — rendered identically on the console and into
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class Series:
    """One line of a figure: y over x."""

    label: str
    x: list
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: x/y length mismatch")

    @property
    def peak(self) -> float:
        return max(self.y) if self.y else float("nan")


@dataclass
class Claim:
    """One paper claim vs this reproduction's measurement."""

    name: str
    paper: str
    measured: str
    holds: bool


@dataclass
class ExperimentResult:
    exp_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    claims: list[Claim] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self, *, chart: bool = False) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        if chart and self.series and len(self.series[0].x) >= 2:
            from .ascii_plot import render_chart

            try:
                lines.append(
                    render_chart(
                        self.series, x_label=self.x_label, y_label=self.y_label
                    )
                )
            except ValueError:
                pass  # non-plottable data falls back to the table alone
        if self.series:
            headers = [self.x_label] + [s.label for s in self.series]
            xs = self.series[0].x
            rows = []
            for i, x in enumerate(xs):
                rows.append([x] + [s.y[i] if i < len(s.y) else "" for s in self.series])
            lines.append(format_table(headers, rows))
            lines.append(f"(y = {self.y_label})")
        if self.claims:
            lines.append("")
            lines.append("paper vs measured:")
            rows = [
                [c.name, c.paper, c.measured, "yes" if c.holds else "NO"]
                for c in self.claims
            ]
            lines.append(format_table(["claim", "paper", "measured", "holds"], rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form (for downstream plotting tools)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {"label": s.label, "x": list(s.x), "y": list(s.y)}
                for s in self.series
            ],
            "claims": [
                {
                    "name": c.name,
                    "paper": c.paper,
                    "measured": c.measured,
                    "holds": c.holds,
                }
                for c in self.claims
            ],
            "notes": list(self.notes),
        }

    def to_markdown(self) -> str:
        lines = [f"### {self.exp_id}: {self.title}", ""]
        if self.series:
            headers = [self.x_label] + [s.label for s in self.series]
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("|" + "---|" * len(headers))
            xs = self.series[0].x
            for i, x in enumerate(xs):
                row = [str(x)] + [
                    _fmt(s.y[i]) if i < len(s.y) else "" for s in self.series
                ]
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
            lines.append(f"*y = {self.y_label}*")
            lines.append("")
        if self.claims:
            lines.append("| claim | paper | measured | holds |")
            lines.append("|---|---|---|---|")
            for c in self.claims:
                lines.append(
                    f"| {c.name} | {c.paper} | {c.measured} | "
                    f"{'yes' if c.holds else '**no**'} |"
                )
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        return "\n".join(lines)
