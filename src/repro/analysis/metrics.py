"""Performance metrics shared by experiments and reports."""

from __future__ import annotations

from ..core.shapes import GemmShape


def gflops(shape: GemmShape, seconds: float) -> float:
    """Useful GFLOP/s of a GEMM completed in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"non-positive duration {seconds}")
    return shape.flops / seconds / 1e9


def efficiency(achieved_flops: float, peak_flops: float) -> float:
    """Achieved / peak, the metric of the paper's Fig. 7.

    Both arguments are in FLOP/s (the historical signature mixed GFLOP/s
    and FLOP/s, a unit asymmetry that silently produced 1e9-off results
    for callers passing consistent units).
    """
    if peak_flops <= 0:
        raise ValueError("peak must be positive")
    return achieved_flops / peak_flops


def speedup(base_seconds: float, new_seconds: float) -> float:
    if new_seconds <= 0:
        raise ValueError("non-positive duration")
    return base_seconds / new_seconds


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
