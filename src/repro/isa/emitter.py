"""Rendering of generated kernels: assembly listings and pipeline tables.

:func:`render_pipeline_table` reproduces the presentation of the paper's
Tables I–III: one row per functional-unit instance, one column per cycle of
the steady-state loop body (II columns), each cell naming the instruction
issued on that unit in that cycle.
"""

from __future__ import annotations

from .instructions import Instr
from .scheduler import Schedule
from .units import TABLE_ROW_ORDER, UNIT_DISPLAY_NAMES, UnitClass


def render_assembly(instrs: list[Instr], indent: str = "  ") -> str:
    return "\n".join(f"{indent}{instr.render()}" for instr in instrs)


def render_schedule_listing(sched: Schedule) -> str:
    """Cycle-annotated listing, sorted by issue time."""
    rows = sorted(
        zip(sched.times, sched.assignments, sched.instrs),
        key=lambda r: (r[0], r[1][0].value, r[1][1]),
    )
    lines = []
    for t, (cls, inst), instr in rows:
        unit = UNIT_DISPLAY_NAMES.get((cls, inst), f"{cls.value}#{inst}")
        lines.append(f"  c{t:03d}  {unit:<20} {instr.render()}")
    return "\n".join(lines)


def pipeline_grid(sched: Schedule) -> dict[tuple[UnitClass, int], list[str]]:
    """Steady-state reservation grid: unit instance -> II cell labels."""
    ii = sched.ii if sched.is_loop else sched.span
    grid: dict[tuple[UnitClass, int], list[str]] = {
        key: [""] * max(ii, 1) for key in TABLE_ROW_ORDER
    }
    for t, (cls, inst), instr in zip(sched.times, sched.assignments, sched.instrs):
        slot = t % ii if sched.is_loop else t
        cell = instr.op.value
        key = (cls, inst)
        if key not in grid:  # pragma: no cover - all units in row order
            grid[key] = [""] * max(ii, 1)
        if grid[key][slot]:
            grid[key][slot] += "/" + cell
        else:
            grid[key][slot] = cell
    return grid


def render_pipeline_table(sched: Schedule, title: str = "") -> str:
    """ASCII pipeline table in the style of the paper's Tables I–III."""
    grid = pipeline_grid(sched)
    n_cols = len(next(iter(grid.values())))
    name_w = max(len(UNIT_DISPLAY_NAMES[key]) for key in grid)
    col_w = max(
        [len("Cycle %d" % n_cols)]
        + [len(cell) for cells in grid.values() for cell in cells]
    )
    header = ["Cycle".ljust(name_w)] + [
        str(c + 1).center(col_w) for c in range(n_cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header))
    lines.append("-" * len(lines[-1]))
    for key in TABLE_ROW_ORDER:
        cells = grid[key]
        if not any(cells):
            continue
        row = [UNIT_DISPLAY_NAMES[key].ljust(name_w)] + [
            cell.center(col_w) for cell in cells
        ]
        lines.append(" | ".join(row))
    return "\n".join(lines)


def fmac_occupancy(sched: Schedule) -> float:
    """Fraction of vector-FMAC issue slots filled in the steady state.

    This is the quantity the paper's "upper bound performance" discussion
    (Section IV-A3) reasons about: 1.0 when all FMAC pipes issue every
    cycle, 2/3 at the broadcast-limited bound for n_a <= 32.
    """
    if not sched.times:
        return 0.0
    ii = sched.ii if sched.is_loop else sched.span
    fmacs = sum(
        1
        for instr, (cls, _i) in zip(sched.instrs, sched.assignments)
        if cls is UnitClass.VFMAC
    )
    return fmacs / (sched.units.count(UnitClass.VFMAC) * ii)
