"""Trace compilation of kernel programs to vectorized NumPy closures.

The reference interpreter (:mod:`repro.isa.interp`) executes a loop body
``trip`` times, one dict-dispatched :meth:`MachineState.execute` call per
instruction — faithful, but the dominant cost of every correctness run.
This module compiles each :class:`~repro.isa.program.LoopProgram` body
*once* into a short list of batched NumPy steps: because every memory
operand is affine in the loop counter (``addr(i) = base + i * step``), the
loads of all ``trip`` iterations collapse into one fancy-indexed gather,
and every FMA lattice point into one ``(trip, lanes)`` multiply plus one
sequential accumulation.

Bit-identical semantics are the contract, not a best effort:

* products are computed elementwise exactly as the interpreter computes
  them (IEEE multiplication is deterministic per element, so batching the
  multiplies cannot change a single bit);
* accumulator recurrences (``vc += va * vb`` with the FMA reading and
  writing the same register) are folded with ``np.add.accumulate``, whose
  definition ``r[i] = r[i-1] + x[i]`` is the interpreter's sequential
  order — *not* ``np.sum``, whose pairwise summation would reassociate;
* setup and teardown are straight-line code executed once, so they run on
  the interpreter unchanged.

Any body the compiler cannot prove safe (cross-iteration register
rotation, stores aliasing loads, an opcode outside the supported set)
falls back to the interpreter for that block, so ``mode="compiled"`` is
always available.  The equivalence test suite sweeps the kernel spec grid
asserting byte equality between the two paths.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import IsaError
from ..obs.registry import current as _obs_current
from .instructions import Affine, Instr, MemRef, Opcode
from .program import KernelProgram, LoopProgram

__all__ = [
    "CompiledBlock",
    "CompiledProgram",
    "compile_block",
    "compile_program",
    "compiled_for",
]


# ---------------------------------------------------------------------------
# symbolic values (compile-time placeholders for per-iteration data)
# ---------------------------------------------------------------------------


class _Val:
    """Compile-time handle for a register's per-iteration value.

    At run time each handle resolves to an ndarray whose leading axis is
    the iteration index: ``(trip,)`` for scalars, ``(trip, 2)`` for pair
    registers, ``(trip, lanes)`` for vectors.  ``kind`` distinguishes the
    shapes so compile-time checks can reject ill-typed programs early
    (falling back to the interpreter, which raises the reference error).
    """

    __slots__ = ("kind", "slot")

    def __init__(self, kind: str, slot: int) -> None:
        self.kind = kind  # "scalar" | "pair" | "bcast" | "vector"
        self.slot = slot  # index into the run-time value table


class _Compiler:
    """Symbolically executes one loop body, emitting batched steps."""

    def __init__(self, block: LoopProgram) -> None:
        self.block = block
        self.steps: list[Callable] = []
        self.n_slots = 0
        self.sregs: dict[str, _Val] = {}
        self.vregs: dict[str, _Val] = {}
        #: registers whose entry value is read before any body write.
        self.entry_sregs: dict[str, int] = {}
        self.entry_vregs: dict[str, int] = {}
        #: accumulator registers: reg -> (entry slot, final slot).
        self.accumulators: dict[str, tuple[int, int]] = {}
        self.acc_written: set[str] = set()

    # -- slot helpers ------------------------------------------------------

    def _new_slot(self) -> int:
        self.n_slots += 1
        return self.n_slots - 1

    def _val(self, kind: str) -> _Val:
        return _Val(kind, self._new_slot())

    # -- reads -------------------------------------------------------------

    def _read_sreg(self, name: str) -> _Val:
        val = self.sregs.get(name)
        if val is None:
            # entry value: loop-invariant scalar taken from machine state.
            slot = self._new_slot()
            self.entry_sregs[name] = slot
            val = _Val("entry_scalar", slot)
            self.sregs[name] = val
        return val

    def _read_vreg(self, name: str) -> _Val:
        val = self.vregs.get(name)
        if val is None:
            slot = self._new_slot()
            self.entry_vregs[name] = slot
            val = _Val("entry_vector", slot)
            self.vregs[name] = val
        return val

    # -- memory ------------------------------------------------------------

    def _gather(self, mem: MemRef, width: int | str) -> int:
        """Emit a batched load of ``width`` consecutive elements per
        iteration; returns the slot holding the ``(trip, width)`` gather.

        ``width`` is an int for scalar/pair loads, or ``"lanes"`` /
        ``"2lanes"`` for vector loads (the lane count depends on the tile
        dtype and is only known at run time).
        """
        slot = self._new_slot()
        array, row, col = mem.array, mem.row, mem.col

        def step(ctx: "_RunContext", *, array=array, row=row, col=col,
                 width=width, slot=slot) -> None:
            tile = ctx.tile(array)
            trip = ctx.trip
            if width == "lanes":
                width = ctx.lanes
            elif width == "2lanes":
                width = 2 * ctx.lanes
            lo_r, hi_r = row.base, row.at(trip - 1)
            if lo_r > hi_r:
                lo_r, hi_r = hi_r, lo_r
            lo_c, hi_c = col.base, col.at(trip - 1)
            if lo_c > hi_c:
                lo_c, hi_c = hi_c, lo_c
            if not (0 <= lo_r and hi_r < tile.shape[0]
                    and 0 <= lo_c and hi_c + width <= tile.shape[1]):
                raise IsaError(
                    f"compiled load from {array}: rows {lo_r}..{hi_r}, "
                    f"cols {lo_c}..{hi_c + width} outside tile {tile.shape}"
                )
            rows = row.base + row.step * ctx.iters
            if col.step == 0:
                if row.step == 0:
                    data = np.broadcast_to(
                        tile[row.base, col.base : col.base + width],
                        (trip, width),
                    )
                else:
                    data = tile[rows, col.base : col.base + width]
            else:
                cols = col.base + col.step * ctx.iters
                data = tile[
                    rows[:, None], cols[:, None] + np.arange(width)[None, :]
                ]
            ctx.values[slot] = data

        self.steps.append(step)
        return slot

    # -- per-opcode compilation -------------------------------------------

    def compile(self) -> "CompiledBlock | None":
        try:
            for instr in self.block.body:
                if not self._compile_instr(instr):
                    return None
        except _Unsupported:
            return None
        return CompiledBlock(self.block, self)

    def _compile_instr(self, instr: Instr) -> bool:
        op = instr.op
        if op is Opcode.SBR:
            return True
        if op is Opcode.SLDH or op is Opcode.SLDD:
            slot = self._gather(instr.mem, 1)
            out = self._val("scalar")

            def step(ctx, *, src=slot, dst=out.slot) -> None:
                ctx.values[dst] = ctx.values[src][:, 0]

            self.steps.append(step)
            self._write_sreg(instr.dsts[0], out)
            return True
        if op is Opcode.SLDW:
            slot = self._gather(instr.mem, 2)
            self._write_sreg(instr.dsts[0], _Val("pair", slot))
            return True
        if op is Opcode.SFEXTS32L:
            src = self._read_sreg(instr.srcs[0])
            if src.kind == "pair":
                out = self._val("scalar")

                def step(ctx, *, s=src.slot, d=out.slot) -> None:
                    ctx.values[d] = ctx.values[s][:, 0]

                self.steps.append(step)
            elif src.kind == "scalar":
                out = src  # pass-through, as in the interpreter
            else:
                raise _Unsupported  # entry scalar: unseen in generated code
            self._write_sreg(instr.dsts[0], out)
            return True
        if op is Opcode.SBALE2H:
            src = self._read_sreg(instr.srcs[0])
            if src.kind != "pair":
                raise _Unsupported  # interpreter raises the reference error
            out = self._val("scalar")

            def step(ctx, *, s=src.slot, d=out.slot) -> None:
                ctx.values[d] = ctx.values[s][:, 1]

            self.steps.append(step)
            self._write_sreg(instr.dsts[0], out)
            return True
        if op is Opcode.SVBCAST or op is Opcode.SVBCAST2:
            for dst, src_name in zip(instr.dsts, instr.srcs):
                src = self._read_sreg(src_name)
                if src.kind != "scalar":
                    # pair broadcast is an interpreter error; an entry
                    # scalar is loop-invariant and unseen in generated code
                    raise _Unsupported
                self._write_vreg(dst, _Val("bcast", src.slot))
            return True
        if op is Opcode.VLDW:
            slot = self._gather(instr.mem, "lanes")
            self._write_vreg(instr.dsts[0], _Val("vector", slot))
            return True
        if op is Opcode.VLDDW:
            slot = self._gather(instr.mem, "2lanes")
            lo, hi = self._val("vector"), self._val("vector")

            def step(ctx, *, s=slot, dlo=lo.slot, dhi=hi.slot) -> None:
                data = ctx.values[s]
                half = data.shape[1] // 2
                ctx.values[dlo] = data[:, :half]
                ctx.values[dhi] = data[:, half:]

            self.steps.append(step)
            self._write_vreg(instr.dsts[0], lo)
            self._write_vreg(instr.dsts[1], hi)
            return True
        if op is Opcode.VMOVI:
            out = self._val("vector")
            imm = instr.imm

            def step(ctx, *, d=out.slot, imm=imm) -> None:
                ctx.values[d] = np.broadcast_to(
                    np.full(ctx.lanes, imm, dtype=ctx.dtype),
                    (ctx.trip, ctx.lanes),
                )

            self.steps.append(step)
            self._write_vreg(instr.dsts[0], out)
            return True
        if op is Opcode.VFMULAS32:
            return self._compile_fma(instr)
        if op is Opcode.VADDS32:
            return self._compile_vadd(instr)
        if op is Opcode.VSTW or op is Opcode.VSTDW:
            raise _Unsupported  # body stores: leave to the interpreter
        raise _Unsupported

    def _compile_fma(self, instr: Instr) -> bool:
        acc_name, va_name, vb_name = instr.srcs
        dst = instr.dsts[0]
        va = self._read_vreg(va_name)
        vb = self._read_vreg(vb_name)
        if va.kind == "entry_vector" or vb.kind == "entry_vector":
            # loop-invariant multiplicand: legal but unseen in generated
            # code; supportable, yet not worth a bespoke broadcast path.
            raise _Unsupported
        if va.kind == "bcast" and vb.kind == "bcast":
            raise _Unsupported  # full-width result shape would be implicit
        prod = self._val("vector")

        def mul_step(ctx, *, a=va, b=vb, d=prod.slot) -> None:
            ctx.values[d] = ctx.resolve_vec(a) * ctx.resolve_vec(b)

        acc = self.vregs.get(acc_name)
        if acc is None and dst == acc_name:
            # the recurrence: vc += va * vb folding over all iterations.
            if acc_name in self.acc_written:
                raise _Unsupported
            self.steps.append(mul_step)
            entry = self._new_slot()
            final = self._new_slot()
            self.entry_vregs[acc_name] = entry
            self.accumulators[acc_name] = (entry, final)
            self.acc_written.add(acc_name)

            def acc_step(ctx, *, p=prod.slot, entry=entry, final=final) -> None:
                initial = ctx.values[entry]
                stack = np.empty(
                    (ctx.trip + 1, initial.shape[0]), dtype=ctx.dtype
                )
                stack[0] = initial
                stack[1:] = ctx.values[p]  # broadcasts (trip, 1) products
                ctx.values[final] = np.add.accumulate(stack, axis=0)[-1]

            self.steps.append(acc_step)
            # later body reads of the accumulator would need per-iteration
            # prefixes; mark it so any such read falls back.
            self.vregs[acc_name] = _Val("acc_final", final)
            return True
        if acc is not None and acc.kind == "acc_final":
            raise _Unsupported  # re-accumulation or read of a folded acc
        # plain elementwise form: the accumulator was produced earlier in
        # this same iteration (e.g. by VMOVI), so no recurrence exists.
        acc_val = self._read_vreg(acc_name)
        if acc_val.kind == "entry_vector":
            raise _Unsupported  # entry acc with dst != acc: rotation
        self.steps.append(mul_step)
        out = self._val("vector")

        def add_step(ctx, *, a=acc_val, p=prod.slot, d=out.slot) -> None:
            ctx.values[d] = ctx.resolve_vec(a) + ctx.values[p]

        self.steps.append(add_step)
        self._write_vreg(dst, out)
        return True

    def _compile_vadd(self, instr: Instr) -> bool:
        a_name, b_name = instr.srcs
        dst = instr.dsts[0]
        if dst in (a_name, b_name) and self.vregs.get(dst) is None:
            raise _Unsupported  # add-recurrence: unseen in generated code
        va = self._read_vreg(a_name)
        vb = self._read_vreg(b_name)
        if va.kind in ("entry_vector", "acc_final") or vb.kind in (
            "entry_vector", "acc_final",
        ):
            raise _Unsupported
        if va.kind == "bcast" and vb.kind == "bcast":
            raise _Unsupported
        out = self._val("vector")

        def step(ctx, *, a=va, b=vb, d=out.slot) -> None:
            ctx.values[d] = ctx.resolve_vec(a) + ctx.resolve_vec(b)

        self.steps.append(step)
        self._write_vreg(dst, out)
        return True

    # -- writes ------------------------------------------------------------

    def _write_sreg(self, name: str, val: _Val) -> None:
        if name in self.accumulators:
            raise _Unsupported
        self.sregs[name] = val

    def _write_vreg(self, name: str, val: _Val) -> None:
        if name in self.accumulators:
            raise _Unsupported
        if name in self.entry_vregs and name not in self.acc_written:
            # entry value was read earlier, now overwritten: iteration i
            # would see iteration i-1's value — register rotation.
            raise _Unsupported
        self.vregs[name] = val


class _Unsupported(Exception):
    """Internal: this body needs the interpreter."""


# ---------------------------------------------------------------------------
# run-time execution
# ---------------------------------------------------------------------------


class _RunContext:
    """Per-invocation scratch: tiles, iteration index, value table."""

    __slots__ = ("arrays", "trip", "iters", "values", "dtype", "lanes")

    def __init__(self, arrays, trip: int, n_slots: int, dtype, lanes: int):
        self.arrays = arrays
        self.trip = trip
        self.iters = np.arange(trip)
        self.values: list = [None] * n_slots
        self.dtype = dtype
        self.lanes = lanes

    def tile(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise IsaError(f"unknown tile {name!r}") from None

    def resolve_vec(self, val: _Val) -> np.ndarray:
        """Materialize a vector operand as ``(trip, lanes)``-broadcastable."""
        data = self.values[val.slot]
        if val.kind == "bcast":
            return data[:, None]  # (trip, 1) broadcasts against lanes
        return data


class CompiledBlock:
    """One compiled loop body plus its register-interface metadata."""

    __slots__ = (
        "block", "steps", "n_slots",
        "entry_sregs", "entry_vregs", "accumulators",
        "final_sregs", "final_vregs",
    )

    def __init__(self, block: LoopProgram, comp: _Compiler) -> None:
        self.block = block
        self.steps = comp.steps
        self.n_slots = comp.n_slots
        self.entry_sregs = comp.entry_sregs
        self.entry_vregs = {
            n: s for n, s in comp.entry_vregs.items()
            if n not in comp.accumulators
        }
        self.accumulators = comp.accumulators
        # registers whose post-loop value later code may read: everything
        # the body wrote, at its last-iteration value.  A register whose
        # symbolic value is still its entry value was only read, never
        # written, so the machine state already holds it.
        self.final_sregs = {
            n: v for n, v in comp.sregs.items() if v.kind != "entry_scalar"
        }
        self.final_vregs = {
            n: v for n, v in comp.vregs.items() if v.kind != "entry_vector"
        }

    def run(self, state) -> None:
        """Execute all ``trip`` iterations against ``state`` (batched)."""
        block = self.block
        if block.trip <= 0:
            return
        ctx = _RunContext(
            state.arrays, block.trip, self.n_slots, state.dtype, state.vlanes
        )
        # entry values (loop-invariant reads + accumulator initials)
        for name, slot in self.entry_sregs.items():
            value = state.sregs.get(name)
            if value is None:
                raise IsaError(f"read of undefined scalar register {name}")
            ctx.values[slot] = value
        for name, slot in self.entry_vregs.items():
            value = state.vregs.get(name)
            if value is None:
                raise IsaError(f"read of undefined vector register {name}")
            ctx.values[slot] = value
        for name, (entry, _final) in self.accumulators.items():
            value = state.vregs.get(name)
            if value is None:
                raise IsaError(f"read of undefined vector register {name}")
            ctx.values[entry] = value
        for step in self.steps:
            step(ctx)
        # write back final register state (last-iteration values)
        for name, val in self.final_sregs.items():
            data = ctx.values[val.slot]
            if val.kind == "pair":
                state.sregs[name] = data[-1].copy()
            else:
                state.sregs[name] = data[-1]
        for name, val in self.final_vregs.items():
            if val.kind == "acc_final":
                state.vregs[name] = ctx.values[val.slot]
            elif val.kind == "bcast":
                state.vregs[name] = np.full(
                    ctx.lanes, ctx.values[val.slot][-1], dtype=ctx.dtype
                )
            else:
                state.vregs[name] = np.array(
                    ctx.values[val.slot][-1], dtype=ctx.dtype, copy=True
                )
        state.instructions_retired += block.trip * len(block.body)


class CompiledProgram:
    """A kernel program with per-block compiled bodies (or fallbacks)."""

    __slots__ = ("program", "blocks")

    def __init__(
        self, program: KernelProgram, blocks: list[CompiledBlock | None]
    ) -> None:
        self.program = program
        self.blocks = blocks

    @property
    def n_compiled(self) -> int:
        return sum(1 for b in self.blocks if b is not None)

    def run(self, state) -> None:
        from .interp import run_block  # local: avoid import cycle at load

        m = _obs_current()
        for block, compiled in zip(self.program.blocks, self.blocks):
            if compiled is None:
                if m is not None:
                    m.counter("isa/exec/interp_blocks").inc()
                run_block(block, state)
                continue
            if m is not None:
                m.counter("isa/exec/compiled_blocks").inc()
            for instr in block.setup:
                state.execute(instr, 0)
            compiled.run(state)
            for instr in block.teardown:
                state.execute(instr, 0)


def compile_block(block: LoopProgram) -> CompiledBlock | None:
    """Compile one block's body; ``None`` when it needs the interpreter."""
    return _Compiler(block).compile()


def compile_program(program: KernelProgram) -> CompiledProgram:
    """Compile every block of ``program`` (with per-block fallback)."""
    m = _obs_current()
    compiled: list[CompiledBlock | None] = []
    for block in program.blocks:
        cb = compile_block(block)
        compiled.append(cb)
        if m is not None:
            which = "compiled" if cb is not None else "fallback"
            m.counter(f"isa/compile/blocks_{which}").inc()
    return CompiledProgram(program, compiled)


def compiled_for(program: KernelProgram) -> CompiledProgram:
    """Memoized :func:`compile_program`, cached on the program object."""
    cached = getattr(program, "_compiled", None)
    if cached is None or cached.program is not program:
        cached = compile_program(program)
        program._compiled = cached  # type: ignore[attr-defined]
    return cached
