"""Resource- and recurrence-constrained instruction scheduling.

Two schedulers:

* :func:`schedule_loop` — iterative modulo scheduling (software pipelining)
  of a kernel loop body.  This is the machine analogue of what the paper's
  authors do by hand in Tables I–III: pack the body's instructions into the
  core's 11 issue slots so that one iteration starts every II cycles, while
  respecting functional-unit counts, instruction latencies and loop-carried
  dependences (most importantly the FMAC-latency recurrence of the C
  accumulators).  The achieved II directly determines micro-kernel
  efficiency: ``useful FMA issues / (3 * II)``.

* :func:`schedule_straightline` — resource-constrained list scheduling of
  the acyclic setup/teardown code (C init, k_u reduction, C update).

Both produce a :class:`Schedule` whose legality can be re-checked with
:func:`verify_schedule`, which the property tests exercise.

The modulo scheduler follows Rau's iterative scheme: try II starting from
``max(ResMII, RecMII)``; place operations highest-priority-first at their
earliest legal slot within a window of II cycles; on conflict, displace
already-placed successors (bounded by a budget) and retry; failing that,
increase II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ScheduleError
from ..obs.registry import current as _obs_current
from .instructions import Instr
from .program import DepEdge, build_dependences, recurrence_mii
from .units import DEFAULT_UNITS, UnitClass, UnitFile


@dataclass
class Schedule:
    """A legal schedule of ``instrs``.

    ``times[i]`` is the issue cycle of instruction ``i`` (iteration 0 for
    loops).  ``assignments[i]`` is the (unit class, instance) it occupies.
    For loops, the same pattern repeats every ``ii`` cycles.
    """

    instrs: list[Instr]
    times: list[int]
    assignments: list[tuple[UnitClass, int]]
    ii: int                 # initiation interval; 0 for straight-line code
    edges: list[DepEdge]
    units: UnitFile

    @property
    def is_loop(self) -> bool:
        return self.ii > 0

    @property
    def span(self) -> int:
        """Issue-cycle span of one iteration (schedule length)."""
        return max(self.times) + 1 if self.times else 0

    def completion_span(self, latencies) -> int:
        """Cycles from first issue until the last result is available."""
        if not self.times:
            return 0
        return max(
            t + instr.latency(latencies)
            for t, instr in zip(self.times, self.instrs)
        )

    def total_cycles(self, trip: int, latencies) -> int:
        """Total cycles to run ``trip`` iterations (1 for straight-line)."""
        if not self.times:
            return 0
        if not self.is_loop or trip <= 1:
            return self.completion_span(latencies)
        return (trip - 1) * self.ii + self.completion_span(latencies)

    @property
    def stages(self) -> int:
        """Number of pipeline stages (loops only)."""
        if not self.is_loop or not self.times:
            return 0
        return -(-self.span // self.ii)


def resource_mii(instrs: list[Instr], units: UnitFile) -> int:
    """Lower bound on II from functional-unit counts."""
    usage: dict[UnitClass, int] = {}
    for instr in instrs:
        usage[instr.unit] = usage.get(instr.unit, 0) + 1
    mii = 1
    for cls, count in usage.items():
        mii = max(mii, -(-count // units.count(cls)))
    return mii


def _priorities(instrs: list[Instr], edges: list[DepEdge], latencies) -> list[int]:
    """Height-based priority: longest latency path to any sink (dist-0)."""
    n = len(instrs)
    succ: dict[int, list[tuple[int, int]]] = {i: [] for i in range(n)}
    indeg_rev = [0] * n
    for e in edges:
        if e.distance == 0:
            succ[e.src].append((e.dst, e.latency))
    height = [instr.latency(latencies) for instr in instrs]
    # instructions are in program order, dist-0 edges point forward:
    for i in range(n - 1, -1, -1):
        for j, lat in succ[i]:
            height[i] = max(height[i], lat + height[j])
    return height


class _ReservationTable:
    """Tracks (unit class, instance, slot) occupancy, modulo II for loops."""

    def __init__(self, units: UnitFile, ii: int) -> None:
        self.units = units
        self.ii = ii  # 0 => straight-line (slots are absolute cycles)
        self._occ: dict[tuple[UnitClass, int, int], int] = {}

    def _slot(self, t: int) -> int:
        return t % self.ii if self.ii else t

    def find_instance(self, cls: UnitClass, t: int) -> int | None:
        slot = self._slot(t)
        for inst in range(self.units.count(cls)):
            if (cls, inst, slot) not in self._occ:
                return inst
        return None

    def place(self, cls: UnitClass, inst: int, t: int, idx: int) -> None:
        self._occ[(cls, inst, self._slot(t))] = idx

    def remove(self, cls: UnitClass, inst: int, t: int) -> None:
        del self._occ[(cls, inst, self._slot(t))]


def _try_modulo(
    instrs: list[Instr],
    edges: list[DepEdge],
    latencies,
    units: UnitFile,
    ii: int,
    budget: int,
) -> tuple[list[int], list[tuple[UnitClass, int]]] | None:
    n = len(instrs)
    prio = _priorities(instrs, edges, latencies)
    preds: dict[int, list[DepEdge]] = {i: [] for i in range(n)}
    succs: dict[int, list[DepEdge]] = {i: [] for i in range(n)}
    for e in edges:
        preds[e.dst].append(e)
        succs[e.src].append(e)

    times: list[int | None] = [None] * n
    units_of: list[tuple[UnitClass, int] | None] = [None] * n
    table = _ReservationTable(units, ii)
    never_scheduled_before: list[int] = [0] * n  # min retry time per op

    # worklist ordered by (priority desc, program order) for determinism
    order = sorted(range(n), key=lambda i: (-prio[i], i))
    queue = list(order)

    while queue:
        if budget <= 0:
            return None
        budget -= 1
        idx = queue.pop(0)
        estart = never_scheduled_before[idx]
        for e in preds[idx]:
            tp = times[e.src]
            if tp is not None:
                estart = max(estart, tp + e.latency - ii * e.distance)
        estart = max(estart, 0)
        placed = False
        for t in range(estart, estart + ii):
            inst = table.find_instance(instrs[idx].unit, t)
            if inst is not None:
                times[idx] = t
                units_of[idx] = (instrs[idx].unit, inst)
                table.place(instrs[idx].unit, inst, t, idx)
                placed = True
                break
        if not placed:
            # force placement at estart, displacing the occupant
            t = estart
            cls = instrs[idx].unit
            slot = t % ii
            victim = None
            for inst in range(units.count(cls)):
                key = (cls, inst, slot)
                if key in table._occ:
                    victim = table._occ[key]
                    table.remove(cls, inst, times[victim])  # type: ignore[arg-type]
                    times[victim] = None
                    units_of[victim] = None
                    never_scheduled_before[victim] = t + 1
                    queue.append(victim)
                    times[idx] = t
                    units_of[idx] = (cls, inst)
                    table.place(cls, inst, t, idx)
                    break
            if victim is None:  # pragma: no cover - instance must exist
                return None
        # displace already-scheduled successors whose constraint now fails
        for e in succs[idx]:
            tj = times[e.dst]
            if e.dst == idx or tj is None:
                continue
            if tj < times[idx] + e.latency - ii * e.distance:  # type: ignore[operator]
                cls_j, inst_j = units_of[e.dst]  # type: ignore[misc]
                table.remove(cls_j, inst_j, tj)
                times[e.dst] = None
                units_of[e.dst] = None
                never_scheduled_before[e.dst] = tj + 1
                queue.append(e.dst)

    final_times = [t for t in times if t is not None]
    if len(final_times) != n:
        return None
    # normalize so the earliest instruction issues at cycle 0
    t0 = min(final_times)
    norm = [t - t0 for t in times]  # type: ignore[operator]
    return norm, [u for u in units_of]  # type: ignore[list-item]


def schedule_loop(
    body: list[Instr],
    latencies,
    units: UnitFile = DEFAULT_UNITS,
    *,
    max_ii_slack: int = 64,
    budget_factor: int = 16,
) -> Schedule:
    """Software-pipeline ``body``; returns the schedule at the best found II."""
    if not body:
        raise ScheduleError("cannot schedule an empty loop body")
    edges = build_dependences(body, latencies, loop=True)
    mii = max(resource_mii(body, units), recurrence_mii(edges))
    for ii in range(mii, mii + max_ii_slack + 1):
        result = _try_modulo(
            body, edges, latencies, units, ii, budget_factor * len(body)
        )
        if result is None:
            continue
        times, assignments = result
        sched = Schedule(body, times, assignments, ii, edges, units)
        verify_schedule(sched, latencies)
        _record_schedule_metrics(sched, mii)
        return sched
    raise ScheduleError(
        f"no schedule found for {len(body)} instructions within "
        f"II <= {mii + max_ii_slack}"
    )


def _record_schedule_metrics(sched: Schedule, mii: int) -> None:
    """Publish II achieved vs. lower bound and per-unit slot occupancy.

    No-op unless a metrics registry is active (``repro.obs.collecting``).
    """
    m = _obs_current()
    if m is None:
        return
    m.counter("isa/loops_scheduled").inc()
    m.distribution("isa/ii").add(sched.ii)
    m.distribution("isa/ii_slack").add(sched.ii - mii)
    usage: dict[UnitClass, int] = {}
    for instr in sched.instrs:
        usage[instr.unit] = usage.get(instr.unit, 0) + 1
    for cls, count in usage.items():
        slots = sched.ii * sched.units.count(cls)
        m.distribution(f"isa/occupancy/{cls.value}").add(count / slots)


def schedule_straightline(
    instrs: list[Instr],
    latencies,
    units: UnitFile = DEFAULT_UNITS,
) -> Schedule:
    """Resource-constrained list scheduling of acyclic code."""
    if not instrs:
        return Schedule([], [], [], 0, [], units)
    edges = build_dependences(instrs, latencies, loop=False)
    n = len(instrs)
    preds: dict[int, list[DepEdge]] = {i: [] for i in range(n)}
    for e in edges:
        preds[e.dst].append(e)
    table = _ReservationTable(units, 0)
    times: list[int] = [0] * n
    assignments: list[tuple[UnitClass, int]] = [(instrs[0].unit, 0)] * n
    for idx in range(n):  # program order is a topological order
        t = 0
        for e in preds[idx]:
            t = max(t, times[e.src] + e.latency)
        while True:
            inst = table.find_instance(instrs[idx].unit, t)
            if inst is not None:
                break
            t += 1
        times[idx] = t
        assignments[idx] = (instrs[idx].unit, inst)
        table.place(instrs[idx].unit, inst, t, idx)
    sched = Schedule(instrs, times, assignments, 0, edges, units)
    verify_schedule(sched, latencies)
    return sched


def verify_schedule(sched: Schedule, latencies) -> None:
    """Re-check every dependence and resource constraint; raises on failure."""
    ii = sched.ii
    for e in sched.edges:
        lhs = sched.times[e.dst]
        rhs = sched.times[e.src] + e.latency - ii * e.distance
        if lhs < rhs:
            raise ScheduleError(
                f"dependence violated: {e.kind} "
                f"{sched.instrs[e.src]!r} -> {sched.instrs[e.dst]!r} "
                f"(t={sched.times[e.src]} -> t={lhs}, need >= {rhs}, II={ii})"
            )
    seen: dict[tuple[UnitClass, int, int], int] = {}
    for idx, (t, (cls, inst)) in enumerate(zip(sched.times, sched.assignments)):
        if inst >= sched.units.count(cls):
            raise ScheduleError(f"instance {inst} out of range for {cls}")
        if cls is not sched.instrs[idx].unit:
            raise ScheduleError(f"instr {idx} placed on wrong unit class")
        slot = t % ii if ii else t
        key = (cls, inst, slot)
        if key in seen:
            raise ScheduleError(
                f"resource conflict on {cls.value}#{inst} slot {slot}: "
                f"{sched.instrs[seen[key]]!r} vs {sched.instrs[idx]!r}"
            )
        seen[key] = idx
