"""VLIW functional units and issue slots of an FT-m7032 DSP core.

The instruction dispatch unit (IFU) launches up to 11 instructions per
cycle: 5 scalar + 6 vector (Section II).  The unit rows visible in the
paper's pipeline tables (Tables I–III) give the slot structure:

Scalar side (5):

* ``SLS``   — "Scalar Load&Store1": scalar loads (SLDH/SLDW).
* ``SFMAC1`` — scalar FMAC used for extract/extend ops (SFEXTS32L).
* ``SFMAC2`` — scalar FMAC used for SPU→VPU broadcasts.  The SPU can move
  at most **two FP32 scalars per cycle** into vector registers "owing to
  instruction conflicts" (Section IV-A1); modeling the broadcast as a
  single-instance unit (SVBCAST = 1 scalar, SVBCAST2 = 2 scalars per
  instruction) enforces exactly that ceiling.
* ``SIEU``  — fixed-point unit (SBALE2H rearranges the high half of a pair).
* ``CTRL``  — branch unit (SBR).

Vector side (6):

* ``VLS`` ×2 — vector load/store units; together they deliver up to 512 B
  per cycle from AM (VLDDW moves two vector registers per instruction).
* ``VFMAC`` ×3 — the three FMAC pipes of each VPE.
* ``VSHF`` ×1 — shuffle/move unit (register init VMOVI).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError


class UnitClass(enum.Enum):
    """A class of identical, fully-pipelined functional units."""

    SLS = "scalar_ls"
    SFMAC1 = "scalar_fmac1"
    SFMAC2 = "scalar_bcast"
    SIEU = "sieu"
    CTRL = "ctrl"
    VLS = "vector_ls"
    VFMAC = "vector_fmac"
    VSHF = "vector_shuffle"

    @property
    def is_scalar(self) -> bool:
        return self in (
            UnitClass.SLS,
            UnitClass.SFMAC1,
            UnitClass.SFMAC2,
            UnitClass.SIEU,
            UnitClass.CTRL,
        )


#: number of unit instances per class on one DSP core.
DEFAULT_UNIT_COUNTS: dict[UnitClass, int] = {
    UnitClass.SLS: 1,
    UnitClass.SFMAC1: 1,
    UnitClass.SFMAC2: 1,
    UnitClass.SIEU: 1,
    UnitClass.CTRL: 1,
    UnitClass.VLS: 2,
    UnitClass.VFMAC: 3,
    UnitClass.VSHF: 1,
}

#: display names used when rendering pipeline tables like the paper's.
UNIT_DISPLAY_NAMES: dict[tuple[UnitClass, int], str] = {
    (UnitClass.SLS, 0): "Scalar Load&Store1",
    (UnitClass.SFMAC1, 0): "Scalar FMAC1",
    (UnitClass.SFMAC2, 0): "Scalar FMAC2",
    (UnitClass.SIEU, 0): "SIEU",
    (UnitClass.VLS, 0): "Vector Load&Store1",
    (UnitClass.VLS, 1): "Vector Load&Store2",
    (UnitClass.VFMAC, 0): "Vector FMAC1",
    (UnitClass.VFMAC, 1): "Vector FMAC2",
    (UnitClass.VFMAC, 2): "Vector FMAC3",
    (UnitClass.VSHF, 0): "Vector Shuffle",
    (UnitClass.CTRL, 0): "Control unit",
}

#: row order for rendered pipeline tables (matches Tables I–III).
TABLE_ROW_ORDER: list[tuple[UnitClass, int]] = [
    (UnitClass.SLS, 0),
    (UnitClass.SFMAC1, 0),
    (UnitClass.SFMAC2, 0),
    (UnitClass.SIEU, 0),
    (UnitClass.VLS, 0),
    (UnitClass.VLS, 1),
    (UnitClass.VFMAC, 0),
    (UnitClass.VFMAC, 1),
    (UnitClass.VFMAC, 2),
    (UnitClass.VSHF, 0),
    (UnitClass.CTRL, 0),
]


@dataclass(frozen=True)
class UnitFile:
    """The set of functional units available to the scheduler."""

    counts: tuple[tuple[UnitClass, int], ...] = tuple(
        sorted(DEFAULT_UNIT_COUNTS.items(), key=lambda kv: kv[0].value)
    )

    def count(self, cls: UnitClass) -> int:
        for unit, n in self.counts:
            if unit is cls:
                return n
        raise ConfigError(f"unknown unit class {cls}")

    @property
    def issue_width(self) -> int:
        return sum(n for _cls, n in self.counts)

    def as_dict(self) -> dict[UnitClass, int]:
        return dict(self.counts)


DEFAULT_UNITS = UnitFile()


def units_for(core_cfg) -> UnitFile:
    """Unit file matching a :class:`~repro.hw.config.DspCoreConfig`.

    Vector FMAC and load/store counts come from the config so perturbed
    machines (ablations, sensitivity tests) schedule on their actual
    resources; the scalar side follows the paper's fixed slot structure.
    """
    counts = dict(DEFAULT_UNIT_COUNTS)
    counts[UnitClass.VFMAC] = core_cfg.n_vector_fmac
    counts[UnitClass.VLS] = core_cfg.n_vector_ls
    return UnitFile(
        tuple(sorted(counts.items(), key=lambda kv: kv[0].value))
    )
