"""Static validation of kernel programs.

The interpreter catches bad programs *dynamically* — but only along the
executed path and only when a test runs them.  This validator checks a
:class:`~repro.isa.program.KernelProgram` *statically*:

* every register is written before it is read (setup defs carry into the
  body; body defs of iteration ``i`` may satisfy reads of iteration
  ``i+1`` — the steady-state def set is computed as a fixpoint);
* every memory access of every loop iteration stays inside the declared
  tile shapes (affine addressing makes this a closed-form check: only the
  first and last iterations need evaluating);
* stores never target the read-only A and B tiles.

The kernel generator runs this on every program it emits, so a generation
bug surfaces at build time rather than as a wrong number downstream.
"""

from __future__ import annotations

from ..errors import IsaError
from .instructions import Instr, Opcode
from .program import KernelProgram, LoopProgram

_VECTOR_SINGLE = (Opcode.VLDW, Opcode.VSTW)
_VECTOR_DOUBLE = (Opcode.VLDDW, Opcode.VSTDW)


def _mem_lanes(instr: Instr, vlanes: int) -> int:
    """Elements touched, honouring the precision's vector width."""
    if instr.op in _VECTOR_SINGLE:
        return vlanes
    if instr.op in _VECTOR_DOUBLE:
        return 2 * vlanes
    return instr.spec.mem_lanes


def _check_mem(
    instr: Instr, iteration: int, tiles: dict[str, tuple[int, int]],
    vlanes: int,
) -> None:
    assert instr.mem is not None
    lanes = _mem_lanes(instr, vlanes)
    row, col = instr.mem.at(iteration)
    shape = tiles.get(instr.mem.array)
    if shape is None:
        raise IsaError(f"{instr!r}: unknown tile {instr.mem.array!r}")
    rows, cols = shape
    if not (0 <= row < rows and 0 <= col and col + lanes <= cols):
        raise IsaError(
            f"{instr!r} iteration {iteration}: access "
            f"[{row}, {col}:{col + lanes}] outside {instr.mem.array}{shape}"
        )


def _validate_block(
    block: LoopProgram,
    tiles: dict[str, tuple[int, int]],
    defined: set[str],
    *,
    vlanes: int,
) -> set[str]:
    """Check one block; returns the register set defined after it."""

    def check_instr(instr: Instr, defs: set[str], where: str) -> None:
        for reg in instr.reads:
            if reg not in defs:
                raise IsaError(
                    f"{where}: {instr!r} reads {reg!r} before definition"
                )
        defs.update(instr.writes)

    for instr in block.setup:
        if instr.mem is not None:
            _check_mem(instr, 0, tiles, vlanes)
        check_instr(instr, defined, "setup")

    # body def-use fixpoint: one symbolic pass collecting defs, then a
    # second pass in which reads may also be satisfied by body defs
    # (values produced by the previous iteration)
    body_defs = set(defined)
    for instr in block.body:
        body_defs.update(instr.writes)
    steady = set(body_defs)
    for instr in block.body:
        check_instr(instr, steady, "body")

    # memory bounds: affine in the iteration index, so extremes suffice
    for instr in block.body:
        if instr.mem is not None:
            for iteration in (0, max(0, block.trip - 1)):
                _check_mem(instr, iteration, tiles, vlanes)
            if instr.spec.is_store and instr.mem.array in ("A", "B"):
                raise IsaError(f"{instr!r}: store to read-only tile")

    after = set(defined) | {w for i in block.body for w in i.writes}
    for instr in block.teardown:
        if instr.mem is not None:
            _check_mem(instr, 0, tiles, vlanes)
            if instr.spec.is_store and instr.mem.array in ("A", "B"):
                raise IsaError(f"{instr!r}: store to read-only tile")
        check_instr(instr, after, "teardown")
    return after


def validate_program(
    program: KernelProgram,
    *,
    m_s: int,
    k_eff: int,
    padded_n: int,
    vlanes: int = 32,
) -> None:
    """Statically validate a generated micro-kernel program.

    ``m_s``/``k_eff``/``padded_n`` declare the (padded) tile geometry the
    program may touch: A is ``m_s x k_eff``, B ``k_eff x padded_n`` and C
    ``m_s x padded_n``.  Raises :class:`~repro.errors.IsaError` on the
    first violation.
    """
    tiles = {
        "A": (m_s, k_eff),
        "B": (k_eff, padded_n),
        "C": (m_s, padded_n),
    }
    defined: set[str] = set()
    for block in program.blocks:
        defined = _validate_block(block, tiles, defined, vlanes=vlanes)
