"""Functional interpreter for generated micro-kernel programs.

Executes the symbolic instruction stream on a register-machine model
(scalar registers, vector registers, named 2-D tiles).  This is how the
reproduction *proves* the auto-generated "assembly" is correct: tests run
the generated program here and compare against ``A @ B``.

Vector width follows the tile dtype: a vector register holds 32 FP32
lanes (one 64-bit register per VPE, two lanes each) or 16 FP64 lanes.
All arithmetic is done in the tile dtype.

Sequential execution in program order is semantically equivalent to the
scheduled VLIW execution because the schedule preserves all dependences
(verified separately by :func:`repro.isa.scheduler.verify_schedule`).
"""

from __future__ import annotations

import numpy as np

from ..errors import IsaError
from .instructions import Instr, Opcode
from .program import KernelProgram, LoopProgram

LANES = 32          # FP32 lanes per vector register
LANES_F64 = 16      # FP64 lanes per vector register


class MachineState:
    """Register files + named tiles for interpretation."""

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        dtypes = set()
        for name, arr in arrays.items():
            if arr.ndim != 2:
                raise IsaError(f"tile {name!r} must be 2-D, got {arr.shape}")
            if arr.dtype not in (np.float32, np.float64):
                raise IsaError(
                    f"tile {name!r} must be float32/float64, got {arr.dtype}"
                )
            dtypes.add(arr.dtype)
        if len(dtypes) > 1:
            raise IsaError(f"mixed tile dtypes: {sorted(map(str, dtypes))}")
        self.arrays = arrays
        self.dtype = np.dtype(next(iter(dtypes))) if dtypes else np.dtype(np.float32)
        #: lanes per vector register for this dtype (64-bit VPE registers)
        self.vlanes = LANES if self.dtype == np.float32 else LANES_F64
        self.sregs: dict[str, np.ndarray] = {}
        self.vregs: dict[str, np.ndarray] = {}
        self.instructions_retired = 0
        #: reusable product buffer for VFMULAS32 (avoids one allocation
        #: per FMA; the destination buffer is reused across writes too).
        self._scratch = np.empty(self.vlanes, dtype=self.dtype)

    # -- helpers -----------------------------------------------------------

    def _tile(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise IsaError(f"unknown tile {name!r}") from None

    def _load_row(self, instr: Instr, iteration: int, lanes: int) -> np.ndarray:
        assert instr.mem is not None
        row, col = instr.mem.at(iteration)
        tile = self._tile(instr.mem.array)
        if not (0 <= row < tile.shape[0] and 0 <= col and col + lanes <= tile.shape[1]):
            raise IsaError(
                f"{instr!r} iteration {iteration}: access "
                f"[{row}, {col}:{col + lanes}] outside tile "
                f"{instr.mem.array}{tile.shape}"
            )
        return tile[row, col : col + lanes]

    def _sreg_scalar(self, name: str) -> np.float32:
        value = self.sregs.get(name)
        if value is None:
            raise IsaError(f"read of undefined scalar register {name}")
        if isinstance(value, np.ndarray):
            raise IsaError(f"register {name} holds a pair, expected a scalar")
        return value

    def _vreg(self, name: str) -> np.ndarray:
        value = self.vregs.get(name)
        if value is None:
            raise IsaError(f"read of undefined vector register {name}")
        return value

    def _dst_buffer(self, name: str) -> np.ndarray:
        """A writable full-vector buffer for ``name``, reused when possible.

        Register arrays are never shared between names (every producer
        allocates or copies), so writing the existing buffer in place is
        safe; elementwise ufuncs tolerate ``out`` aliasing an input.
        """
        out = self.vregs.get(name)
        if out is None or out.shape != (self.vlanes,) or out.dtype != self.dtype:
            out = np.empty(self.vlanes, dtype=self.dtype)
        return out

    # -- execution ---------------------------------------------------------

    def execute(self, instr: Instr, iteration: int = 0) -> None:
        op = instr.op
        lanes = self.vlanes
        if op is Opcode.SLDH or op is Opcode.SLDD:
            self.sregs[instr.dsts[0]] = self._load_row(instr, iteration, 1)[0]
        elif op is Opcode.SLDW:
            self.sregs[instr.dsts[0]] = self._load_row(instr, iteration, 2).copy()
        elif op is Opcode.SFEXTS32L:
            value = self.sregs.get(instr.srcs[0])
            if value is None:
                raise IsaError(f"read of undefined register {instr.srcs[0]}")
            self.sregs[instr.dsts[0]] = (
                value[0] if isinstance(value, np.ndarray) else value
            )
        elif op is Opcode.SBALE2H:
            value = self.sregs.get(instr.srcs[0])
            if not isinstance(value, np.ndarray) or value.shape != (2,):
                raise IsaError(f"SBALE2H needs a pair register, got {value!r}")
            self.sregs[instr.dsts[0]] = value[1]
        elif op is Opcode.SVBCAST:
            scalar = self._sreg_scalar(instr.srcs[0])
            self.vregs[instr.dsts[0]] = np.full(lanes, scalar, dtype=self.dtype)
        elif op is Opcode.SVBCAST2:
            for dst, src in zip(instr.dsts, instr.srcs):
                scalar = self._sreg_scalar(src)
                self.vregs[dst] = np.full(lanes, scalar, dtype=self.dtype)
        elif op is Opcode.VLDW:
            self.vregs[instr.dsts[0]] = self._load_row(instr, iteration, lanes).copy()
        elif op is Opcode.VLDDW:
            data = self._load_row(instr, iteration, 2 * lanes)
            self.vregs[instr.dsts[0]] = data[:lanes].copy()
            self.vregs[instr.dsts[1]] = data[lanes:].copy()
        elif op is Opcode.VSTW:
            dst = self._load_row(instr, iteration, lanes)
            dst[:] = self._vreg(instr.srcs[0])
        elif op is Opcode.VSTDW:
            dst = self._load_row(instr, iteration, 2 * lanes)
            dst[:lanes] = self._vreg(instr.srcs[0])
            dst[lanes:] = self._vreg(instr.srcs[1])
        elif op is Opcode.VFMULAS32:
            acc, va, vb = (self._vreg(r) for r in instr.srcs)
            out = self._dst_buffer(instr.dsts[0])
            np.multiply(va, vb, out=self._scratch)
            np.add(acc, self._scratch, out=out)
            self.vregs[instr.dsts[0]] = out
        elif op is Opcode.VADDS32:
            va, vb = (self._vreg(r) for r in instr.srcs)
            out = self._dst_buffer(instr.dsts[0])
            np.add(va, vb, out=out)
            self.vregs[instr.dsts[0]] = out
        elif op is Opcode.VMOVI:
            self.vregs[instr.dsts[0]] = np.full(
                lanes, instr.imm, dtype=self.dtype
            )
        elif op is Opcode.SBR:
            pass  # control flow is implicit in the block structure
        else:  # pragma: no cover - all opcodes handled above
            raise IsaError(f"unimplemented opcode {op}")
        self.instructions_retired += 1


def run_block(block: LoopProgram, state: MachineState) -> None:
    """Execute one row-group block: setup, trip x body, teardown."""
    for instr in block.setup:
        state.execute(instr, 0)
    for iteration in range(block.trip):
        for instr in block.body:
            state.execute(instr, iteration)
    for instr in block.teardown:
        state.execute(instr, 0)


def run_program(
    program: KernelProgram,
    arrays: dict[str, np.ndarray],
    mode: str = "compiled",
) -> MachineState:
    """Execute a complete micro-kernel program against named tiles.

    ``arrays`` must contain the (padded) tiles the program references,
    conventionally ``A`` (m_s x k_eff), ``B`` (k_eff x padded n) and ``C``
    (m_s x padded n).  C is updated in place (accumulation semantics).

    ``mode="compiled"`` (default) batches each loop body across all trip
    iterations via :mod:`repro.isa.compile` — bit-identical to the
    interpreter, with automatic per-block fallback for bodies the compiler
    cannot prove safe.  ``mode="interp"`` forces the reference interpreter.
    """
    state = MachineState(arrays)
    if mode == "compiled":
        from .compile import compiled_for  # local: compile imports interp

        compiled_for(program).run(state)
        return state
    if mode != "interp":
        raise IsaError(f"unknown execution mode {mode!r}")
    for block in program.blocks:
        run_block(block, state)
    return state
