"""Kernel program representation and dependence analysis.

A generated micro-kernel is a sequence of :class:`LoopProgram` blocks (one
per ``m_u`` row group, Alg. 3's outer ``mm`` loop).  Each block has:

* ``setup``    — straight-line code run once (C-register init / load),
* ``body``     — one iteration of the software-pipelined ``kk`` loop,
* ``trip``     — number of body iterations (``ceil(k_a / k_u)``),
* ``teardown`` — straight-line code run once (k_u reduction, C update,
  store back to AM).

:func:`build_dependences` derives the register/memory dependence edges the
modulo scheduler needs, including loop-carried (distance-1) edges for
accumulators and register reuse across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IsaError
from .instructions import Instr, Opcode


@dataclass(frozen=True)
class DepEdge:
    """``t[dst] >= t[src] + latency - II * distance`` for modulo schedules."""

    src: int
    dst: int
    latency: int
    distance: int  # 0 = same iteration, 1 = next iteration
    kind: str      # "raw" | "war" | "waw" | "mem"


@dataclass
class LoopProgram:
    """One software-pipelined block of a micro-kernel."""

    setup: list[Instr]
    body: list[Instr]
    trip: int
    teardown: list[Instr]
    #: rows of the C tile this block covers, for documentation/debugging.
    row0: int = 0
    rows: int = 0

    def __post_init__(self) -> None:
        if self.trip < 0:
            raise IsaError(f"negative trip count {self.trip}")

    @property
    def n_instructions(self) -> int:
        return (
            len(self.setup)
            + self.trip * len(self.body)
            + len(self.teardown)
        )


@dataclass
class KernelProgram:
    """A complete micro-kernel: one or more row-group blocks.

    ``meta`` carries generator decisions (m_u, k_u per block, register
    counts) so reports and tests can inspect them.
    """

    blocks: list[LoopProgram]
    meta: dict = field(default_factory=dict)

    @property
    def n_instructions(self) -> int:
        return sum(b.n_instructions for b in self.blocks)

    def registers_used(self) -> tuple[int, int]:
        """Peak (scalar, vector) register pressure.

        Blocks execute sequentially and recycle registers, so pressure is
        the per-block distinct-name count maximized over blocks (the
        union across blocks would overstate it).
        """
        max_s = max_v = 0
        for block in self.blocks:
            sregs: set[str] = set()
            vregs: set[str] = set()
            for instr in [*block.setup, *block.body, *block.teardown]:
                for reg in (*instr.dsts, *instr.srcs):
                    (vregs if reg.startswith("v") else sregs).add(reg)
            max_s = max(max_s, len(sregs))
            max_v = max(max_v, len(vregs))
        return max_s, max_v


def _mem_conflict(a: Instr, b: Instr) -> bool:
    """Conservative may-alias: same array and at least one is a store."""
    if a.mem is None or b.mem is None:
        return False
    if a.mem.array != b.mem.array:
        return False
    return a.spec.is_store or b.spec.is_store


def build_dependences(
    instrs: list[Instr],
    latencies,
    *,
    loop: bool,
) -> list[DepEdge]:
    """Register + memory dependence edges over ``instrs``.

    Same-iteration edges run from earlier to later instructions.  With
    ``loop=True``, distance-1 edges are added from every instruction to each
    program-order-earlier-or-equal instruction it conflicts with in the next
    iteration — this is what creates the FMAC-latency recurrence (an
    accumulator's self-edge) that forces ``II >= t_fma`` and motivates the
    paper's m_u / k_u selection rules.
    """
    edges: list[DepEdge] = []
    n = len(instrs)

    def add(src: int, dst: int, lat: int, dist: int, kind: str) -> None:
        edges.append(DepEdge(src, dst, lat, dist, kind))

    # Registers are read at issue and written at write-back (end of the
    # producing instruction's pipeline), as in an exposed-pipeline VLIW.
    # Hence WAR requires t_writer + lat_writer > t_reader, i.e. an edge of
    # latency ``1 - lat(writer)`` (negative slack is real: the new load may
    # issue *before* the last reader as long as its result lands after).
    # WAW requires write-backs in order: latency ``lat(first) - lat(second)
    # + 1``.
    for j in range(n):
        bj = instrs[j]
        lat_j = bj.latency(latencies)
        for i in range(j):
            ai = instrs[i]
            lat_i = ai.latency(latencies)
            if set(ai.writes) & set(bj.reads):
                add(i, j, lat_i, 0, "raw")
            if set(ai.reads) & set(bj.writes):
                add(i, j, 1 - lat_j, 0, "war")
            if set(ai.writes) & set(bj.writes):
                add(i, j, lat_i - lat_j + 1, 0, "waw")
            if _mem_conflict(ai, bj):
                add(i, j, lat_i if ai.spec.is_store else 1, 0, "mem")

    if loop:
        for i in range(n):
            ai = instrs[i]
            lat_i = ai.latency(latencies)
            for j in range(i + 1):
                bj = instrs[j]
                lat_j = bj.latency(latencies)
                if set(ai.writes) & set(bj.reads):
                    add(i, j, lat_i, 1, "raw")
                if set(ai.reads) & set(bj.writes):
                    add(i, j, 1 - lat_j, 1, "war")
                if set(ai.writes) & set(bj.writes):
                    add(i, j, lat_i - lat_j + 1, 1, "waw")
                if _mem_conflict(ai, bj):
                    add(i, j, 1, 1, "mem")
    return edges


def recurrence_mii(edges: list[DepEdge]) -> int:
    """Lower bound on II from dependence cycles.

    Exact enumeration of all cycles is overkill for kernel-sized bodies;
    self-edges (the accumulators) dominate in practice, and two-node cycles
    cover register-reuse patterns.  Longer cycles are handled by the
    scheduler's retry loop, so this is only a starting point.
    """
    mii = 1
    by_pair: dict[tuple[int, int], list[DepEdge]] = {}
    for e in edges:
        by_pair.setdefault((e.src, e.dst), []).append(e)
    for e in edges:
        if e.src == e.dst and e.distance > 0:
            mii = max(mii, -(-e.latency // e.distance))
    for (a, b), fwd in by_pair.items():
        if a == b:
            continue
        back = by_pair.get((b, a))
        if not back:
            continue
        for e1 in fwd:
            for e2 in back:
                dist = e1.distance + e2.distance
                if dist > 0:
                    mii = max(mii, -(-(e1.latency + e2.latency) // dist))
    return mii


def opcode_histogram(instrs: list[Instr]) -> dict[Opcode, int]:
    hist: dict[Opcode, int] = {}
    for instr in instrs:
        hist[instr.op] = hist.get(instr.op, 0) + 1
    return hist
