"""Symbolic ISA, VLIW scheduling, interpretation and rendering.

The pipeline: the kernel generator (:mod:`repro.kernels`) emits
:class:`~repro.isa.instructions.Instr` sequences; the modulo scheduler
(:mod:`repro.isa.scheduler`) packs loop bodies into the core's issue slots
yielding the initiation interval that drives the cycle model; the
interpreter (:mod:`repro.isa.interp`) executes programs functionally; the
emitter (:mod:`repro.isa.emitter`) renders assembly and the paper-style
pipeline tables.
"""

from .compile import (
    CompiledBlock,
    CompiledProgram,
    compile_block,
    compile_program,
    compiled_for,
)
from .emitter import (
    fmac_occupancy,
    pipeline_grid,
    render_assembly,
    render_pipeline_table,
    render_schedule_listing,
)
from .instructions import Affine, Instr, MemRef, OP_TABLE, Opcode, OpSpec, fma
from .interp import LANES, MachineState, run_block, run_program
from .program import (
    DepEdge,
    KernelProgram,
    LoopProgram,
    build_dependences,
    opcode_histogram,
    recurrence_mii,
)
from .scheduler import (
    Schedule,
    resource_mii,
    schedule_loop,
    schedule_straightline,
    verify_schedule,
)
from .units import (
    DEFAULT_UNITS,
    DEFAULT_UNIT_COUNTS,
    TABLE_ROW_ORDER,
    UNIT_DISPLAY_NAMES,
    UnitClass,
    UnitFile,
)

__all__ = [
    "Affine",
    "CompiledBlock",
    "CompiledProgram",
    "DEFAULT_UNITS",
    "DEFAULT_UNIT_COUNTS",
    "DepEdge",
    "Instr",
    "KernelProgram",
    "LANES",
    "LoopProgram",
    "MachineState",
    "MemRef",
    "OP_TABLE",
    "OpSpec",
    "Opcode",
    "Schedule",
    "TABLE_ROW_ORDER",
    "UNIT_DISPLAY_NAMES",
    "UnitClass",
    "UnitFile",
    "build_dependences",
    "compile_block",
    "compile_program",
    "compiled_for",
    "fma",
    "fmac_occupancy",
    "opcode_histogram",
    "pipeline_grid",
    "recurrence_mii",
    "render_assembly",
    "render_pipeline_table",
    "render_schedule_listing",
    "resource_mii",
    "run_block",
    "run_program",
    "schedule_loop",
    "schedule_straightline",
    "verify_schedule",
]
