"""The symbolic instruction set used by generated micro-kernels.

Only the instructions appearing in the paper's pipeline tables (plus a
handful the algorithms imply: vector stores, adds for the k_u reduction,
register init) are modeled.  Each opcode carries:

* its :class:`~repro.isa.units.UnitClass` (which issue slot it occupies),
* the name of its latency field in :class:`~repro.hw.config.LatencyConfig`,
* lane/operand shape information used by the interpreter.

Memory operands are affine in the software-pipelined loop counter, so one
:class:`Instr` in a loop body describes the access of *every* iteration:
``addr(iter) = base + iter * step`` per axis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import IsaError
from .units import UnitClass


class Opcode(enum.Enum):
    SLDH = "SLDH"            # load one FP32 from SM into a scalar register
    SLDW = "SLDW"            # load an aligned FP32 pair (64-bit) from SM
    SLDD = "SLDD"            # load one FP64 (64-bit) from SM
    SFEXTS32L = "SFEXTS32L"  # extract/extend the low FP32 of a pair
    SBALE2H = "SBALE2H"      # rearrange/extract the high FP32 of a pair
    SVBCAST = "SVBCAST"      # broadcast 1 scalar into a vector register
    SVBCAST2 = "SVBCAST2"    # broadcast 2 scalars into 2 vector registers
    VLDW = "VLDW"            # load 1 vector register (32 FP32) from AM
    VLDDW = "VLDDW"          # load 2 consecutive vector registers from AM
    VSTW = "VSTW"            # store 1 vector register to AM
    VSTDW = "VSTDW"          # store 2 consecutive vector registers to AM
    VFMULAS32 = "VFMULAS32"  # vector FMA: vc += va * vb
    VADDS32 = "VADDS32"      # vector add: vd = va + vb (k_u reduction)
    VMOVI = "VMOVI"          # vector register init to an immediate
    SBR = "SBR"              # loop-closing branch


@dataclass(frozen=True)
class OpSpec:
    unit: UnitClass
    latency_field: str
    n_dst: int
    n_src: int
    is_load: bool = False
    is_store: bool = False
    mem_lanes: int = 0  # FP32 elements touched per instruction


OP_TABLE: dict[Opcode, OpSpec] = {
    Opcode.SLDH: OpSpec(UnitClass.SLS, "t_sld", 1, 0, is_load=True, mem_lanes=1),
    Opcode.SLDW: OpSpec(UnitClass.SLS, "t_sld", 1, 0, is_load=True, mem_lanes=2),
    Opcode.SLDD: OpSpec(UnitClass.SLS, "t_sld", 1, 0, is_load=True, mem_lanes=1),
    Opcode.SFEXTS32L: OpSpec(UnitClass.SFMAC1, "t_sfext", 1, 1),
    Opcode.SBALE2H: OpSpec(UnitClass.SIEU, "t_sieu", 1, 1),
    Opcode.SVBCAST: OpSpec(UnitClass.SFMAC2, "t_bcast", 1, 1),
    Opcode.SVBCAST2: OpSpec(UnitClass.SFMAC2, "t_bcast", 2, 2),
    Opcode.VLDW: OpSpec(UnitClass.VLS, "t_vldw", 1, 0, is_load=True, mem_lanes=32),
    Opcode.VLDDW: OpSpec(UnitClass.VLS, "t_vldw", 2, 0, is_load=True, mem_lanes=64),
    Opcode.VSTW: OpSpec(UnitClass.VLS, "t_vst", 0, 1, is_store=True, mem_lanes=32),
    Opcode.VSTDW: OpSpec(UnitClass.VLS, "t_vst", 0, 2, is_store=True, mem_lanes=64),
    Opcode.VFMULAS32: OpSpec(UnitClass.VFMAC, "t_fma", 1, 3),  # reads vc, va, vb
    Opcode.VADDS32: OpSpec(UnitClass.VFMAC, "t_vadd", 1, 2),
    Opcode.VMOVI: OpSpec(UnitClass.VSHF, "t_vmov", 1, 0),
    Opcode.SBR: OpSpec(UnitClass.CTRL, "t_sbr", 0, 0),
}


@dataclass(frozen=True)
class Affine:
    """``value(iter) = base + iter * step`` — a loop-affine index."""

    base: int
    step: int = 0

    def at(self, iteration: int) -> int:
        return self.base + iteration * self.step

    def __repr__(self) -> str:
        return f"{self.base}" if self.step == 0 else f"{self.base}+{self.step}*i"


@dataclass(frozen=True)
class MemRef:
    """A reference into a named 2-D tile (``A``, ``B`` or ``C``).

    ``row``/``col`` give the FP32 element coordinates of the first lane;
    the instruction's ``mem_lanes`` consecutive elements of that row are
    touched.
    """

    array: str
    row: Affine
    col: Affine

    def at(self, iteration: int) -> tuple[int, int]:
        return self.row.at(iteration), self.col.at(iteration)

    def __repr__(self) -> str:
        return f"{self.array}[{self.row}][{self.col}]"


@dataclass(frozen=True)
class Instr:
    """One instruction: opcode, destination/source registers, memory ref.

    Register names are strings (``r3``, ``v17``); the generator owns the
    naming.  ``imm`` is used by VMOVI.  ``tag`` is a human label surfaced
    in rendered assembly and pipeline tables.
    """

    op: Opcode
    dsts: tuple[str, ...] = ()
    srcs: tuple[str, ...] = ()
    mem: MemRef | None = None
    imm: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        spec = OP_TABLE[self.op]
        if len(self.dsts) != spec.n_dst:
            raise IsaError(
                f"{self.op.value} expects {spec.n_dst} dsts, got {self.dsts}"
            )
        if len(self.srcs) != spec.n_src:
            raise IsaError(
                f"{self.op.value} expects {spec.n_src} srcs, got {self.srcs}"
            )
        if (spec.is_load or spec.is_store) and self.mem is None:
            raise IsaError(f"{self.op.value} requires a memory operand")
        if not (spec.is_load or spec.is_store) and self.mem is not None:
            raise IsaError(f"{self.op.value} takes no memory operand")

    @property
    def spec(self) -> OpSpec:
        return OP_TABLE[self.op]

    @property
    def unit(self) -> UnitClass:
        return self.spec.unit

    def latency(self, latencies) -> int:
        return getattr(latencies, self.spec.latency_field)

    @property
    def reads(self) -> tuple[str, ...]:
        """Registers read: sources, plus the accumulator for FMA."""
        return self.srcs

    @property
    def writes(self) -> tuple[str, ...]:
        return self.dsts

    def render(self) -> str:
        """Assembly-ish text form."""
        parts = [self.op.value]
        ops: list[str] = list(self.dsts)
        ops.extend(self.srcs[len(self.dsts) if self.op is Opcode.VFMULAS32 else 0:])
        if self.op is Opcode.VFMULAS32:
            # conventional FMA rendering: dst, src_a, src_b (dst also read)
            ops = [self.dsts[0], self.srcs[1], self.srcs[2]]
        if self.op is Opcode.VMOVI:
            ops.append(f"#{self.imm:g}")
        if self.mem is not None:
            ops.append(repr(self.mem))
        if ops:
            parts.append(", ".join(ops))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"<{self.render()}>"


def fma(vc: str, va: str, vb: str, tag: str = "") -> Instr:
    """``vc += va * vb`` — the accumulator is both read and written."""
    return Instr(Opcode.VFMULAS32, dsts=(vc,), srcs=(vc, va, vb), tag=tag)
