"""repro — ftIMM on a simulated FT-m7032: irregular-shaped GEMM for
multi-core DSPs (reproduction of Yin et al., IEEE CLUSTER 2022).

Quick start::

    import repro

    # dynamic strategy + block selection, modeled timing
    r = repro.ftimm_gemm(20480, 32, 20480)
    print(r.strategy, r.gflops)

    # with real operands: C += A @ B is computed (and verified in tests)
    import numpy as np
    a = np.random.rand(4096, 256).astype(np.float32)
    b = np.random.rand(256, 32).astype(np.float32)
    c = np.zeros((4096, 32), dtype=np.float32)
    repro.ftimm_gemm(4096, 32, 256, a=a, b=b, c=c)

    # inspect an auto-generated micro-kernel (Tables I-III style)
    print(repro.generate_kernel(6, 64, 512).pipeline_table())

Package map:

* :mod:`repro.hw`        — FT-m7032 machine model + DES substrate
* :mod:`repro.isa`       — symbolic ISA, modulo scheduler, interpreter
* :mod:`repro.kernels`   — micro-kernel auto-generation (Section IV-A)
* :mod:`repro.core`      — ftIMM: blocking, tuning, drivers (IV-B/IV-C)
* :mod:`repro.executor`  — functional / event-driven / analytic execution
* :mod:`repro.baselines` — roofline + OpenBLAS-on-CPU models
* :mod:`repro.obs`       — metrics registry, profiling scopes, run-logs
* :mod:`repro.analysis`  — tables, charts, bottleneck attribution
* :mod:`repro.workloads` — K-means, CNN im2col, FEM generators
* :mod:`repro.experiments` — one driver per table/figure of the paper
"""

from .api import (
    AutotuneResult,
    BatchedGemmResult,
    ChaosSummary,
    CoreFault,
    DegradationWindow,
    FaultPlan,
    FaultReport,
    GemmResult,
    GroupedGemmResult,
    HeteroResult,
    batched_gemm,
    chaos_sweep,
    grouped_gemm,
    hetero_gemm,
    GemmShape,
    MultiClusterResult,
    TuningCache,
    autotune,
    multi_cluster_gemm,
    KernelSpec,
    MachineConfig,
    MetricsRegistry,
    MicroKernel,
    ProfileScope,
    classify,
    collecting,
    default_machine,
    ftimm_gemm,
    gemm,
    generate_kernel,
    tgemm_gemm,
)
from .errors import (
    AllocationError,
    CapacityError,
    ConfigError,
    FaultError,
    IsaError,
    KernelError,
    OverloadError,
    PlanError,
    ReproError,
    ScheduleError,
    ShapeError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "AutotuneResult",
    "BatchedGemmResult",
    "GroupedGemmResult",
    "HeteroResult",
    "batched_gemm",
    "grouped_gemm",
    "hetero_gemm",
    "MultiClusterResult",
    "TuningCache",
    "autotune",
    "multi_cluster_gemm",
    "CapacityError",
    "ConfigError",
    "FaultError",
    "GemmResult",
    "GemmShape",
    "IsaError",
    "KernelError",
    "KernelSpec",
    "MachineConfig",
    "MetricsRegistry",
    "MicroKernel",
    "OverloadError",
    "PlanError",
    "ProfileScope",
    "collecting",
    "ReproError",
    "ScheduleError",
    "ShapeError",
    "SimulationError",
    "__version__",
    "classify",
    "default_machine",
    "ftimm_gemm",
    "gemm",
    "generate_kernel",
    "tgemm_gemm",
]
