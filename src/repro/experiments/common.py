"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from ..core.ftimm import GemmResult, ftimm_gemm, tgemm_gemm
from ..hw.config import MachineConfig, default_machine

#: the N sweep the paper's per-type panels appear to use (N <= 96).
N_SWEEP = [8, 16, 32, 48, 64, 80, 96]
#: the M (or K) sweep of Fig. 5 d/e.
POW2_SWEEP = [2**16, 2**18, 2**20, 2**22]
#: Fig. 5(f)'s M = K sweep.
MK_SWEEP = [4096, 8192, 12288, 16384, 20480]
#: the "large" dimension the paper fixes in several panels.
BIG = 20480
#: Fig. 5(a)'s fixed M ("216" in the extracted text, read as 2^16).
M_FIG5A = 65536


def run_pair(
    m: int,
    n: int,
    k: int,
    machine: MachineConfig | None = None,
    cores: int | None = None,
    timing: str = "auto",
) -> tuple[GemmResult, GemmResult]:
    """(ftIMM, TGEMM) results for one shape."""
    machine = machine or default_machine()
    ft = ftimm_gemm(m, n, k, machine=machine, cores=cores, timing=timing)
    tg = tgemm_gemm(m, n, k, machine=machine, cores=cores, timing=timing)
    return ft, tg
