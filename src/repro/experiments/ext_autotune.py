"""Extension experiment (not in the paper): model-driven vs rule-based
tuning.

The paper's Section IV-C adjusts blocks with fixed rules; the related
work it cites (AutoTSMM) searches with a cost model.  This experiment runs
the grid search of :mod:`repro.core.autotune` — analytic screening plus
event-driven validation of the finalists — against the rule-based tuner
across the paper's shape families and the strategy boundary.

Expected outcome (and the honest punchline): the paper's rules are
already close to model-optimal — the search buys single-digit percent on
most shapes — and DES validation of finalists is what keeps the search
from losing to its own cost-model error.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..core.autotune import autotune
from ..core.shapes import GemmShape
from ..hw.config import MachineConfig, default_machine

SHAPES = [
    (65536, 32, 32),      # type 1
    (65536, 96, 96),      # type 1, wide
    (32, 32, 65536),      # type 2
    (256, 32, 262144),    # near the strategy boundary
    (20480, 16, 20480),   # type 3, narrow
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    cluster = (machine or default_machine()).cluster
    labels, improvements = [], []
    details = []
    for m, n, k in SHAPES:
        result = autotune(GemmShape(m, n, k), cluster)
        labels.append(f"{m}x{n}x{k}")
        improvements.append(result.improvement)
        details.append(result)
    series = Series("search/rule time ratio", labels, improvements)
    claims = [
        Claim(
            name="search never loses",
            paper="(extension) validated search >= rule-based",
            measured=f"min improvement {min(improvements):.3f}x",
            holds=min(improvements) >= 0.999,
        ),
        Claim(
            name="rules are near-optimal",
            paper="(extension) IV-C's rules within ~10% of searched",
            measured=f"max improvement {max(improvements):.3f}x",
            holds=max(improvements) <= 1.15,
        ),
        Claim(
            name="search finds real wins somewhere",
            paper="(extension) grid beats fixed rules on some shape",
            measured=f"max improvement {max(improvements):.3f}x",
            holds=max(improvements) > 1.01,
        ),
    ]
    notes = [
        f"{r.shape}: rule [{r.rule.label}] -> best [{r.best.label}] "
        f"({r.n_candidates} candidates, validated={r.best.validated})"
        for r in details
    ]
    return [
        ExperimentResult(
            exp_id="ext_autotune",
            title="model-driven search vs rule-based dynamic adjusting",
            x_label="shape",
            y_label="rule time / searched time",
            series=[series],
            claims=claims,
            notes=notes,
        )
    ]


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
