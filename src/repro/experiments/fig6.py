"""Fig. 6 — scalability of ftIMM over DSP cores.

Speedup of ftIMM on {1, 2, 4, 8} cores relative to one core, for the three
irregular GEMMs "of 20480": 20480x32x32 (type 1), 32x32x20480 (type 2) and
20480x32x20480 (type 3).  The paper reports sub-linear scaling throughout
(the algorithms are memory-intensive, the shared DDR port saturates) and
the *worst* scaling for the case executed with the K-parallel strategy,
whose cross-core reduction grows with the core count.

The paper is internally ambiguous about 20480x32x20480: Section IV-C
prescribes the M-parallel strategy for type 3, while the Fig. 6 text says
K-parallel was chosen.  We run the tuner's choice (M-parallel) *and* a
forced-K variant, which reproduces the worst-scaling observation.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..core.ftimm import ftimm_gemm
from ..hw.config import MachineConfig, default_machine

CORE_SWEEP = [1, 2, 4, 8]
CASES = [
    ("20480x32x32 (type1)", (20480, 32, 32), None),
    ("32x32x20480 (type2)", (32, 32, 20480), None),
    ("20480x32x20480 (type3)", (20480, 32, 20480), None),
    ("20480x32x20480 (forced K)", (20480, 32, 20480), "k"),
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    series = []
    scaling: dict[str, float] = {}
    for label, (m, n, k), force in CASES:
        seconds = []
        for cores in CORE_SWEEP:
            r = ftimm_gemm(
                m, n, k, machine=machine, cores=cores,
                timing="analytic", force_strategy=force,
            )
            seconds.append(r.seconds)
        speedups = [seconds[0] / s for s in seconds]
        scaling[label] = speedups[-1]
        series.append(Series(label, list(CORE_SWEEP), speedups))

    k_worst = scaling["20480x32x20480 (forced K)"]
    others = [
        scaling["20480x32x32 (type1)"],
        scaling["20480x32x20480 (type3)"],
    ]
    claims = [
        Claim(
            name="speedup grows with cores",
            paper="performance increases with the number of cores",
            measured="; ".join(
                f"{s.label}: {s.y[-1]:.2f}x@8" for s in series
            ),
            holds=all(
                all(b >= 0.97 * a for a, b in zip(s.y, s.y[1:])) for s in series
            ),
        ),
        Claim(
            name="scaling efficiency is not high",
            paper="memory-intensive: well below 8x on 8 cores",
            measured=f"max {max(scaling.values()):.2f}x of 8",
            holds=max(scaling.values()) < 7.0,
        ),
        Claim(
            name="K-parallel case scales worst",
            paper="20480x32x20480 under K-parallel scales worst (reduction)",
            measured=(
                f"forced-K: {k_worst:.2f}x vs M-parallel cases "
                f"{', '.join(f'{v:.2f}x' for v in others)}"
            ),
            holds=k_worst <= min(others),
        ),
    ]
    return [
        ExperimentResult(
            exp_id="fig6",
            title="scalability over DSP cores",
            x_label="cores",
            y_label="speedup vs 1 core",
            series=series,
            claims=claims,
        )
    ]


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
