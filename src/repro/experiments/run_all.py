"""Run every experiment and regenerate EXPERIMENTS.md.

Usage::

    python -m repro.experiments.run_all [output.md] [--json data.json] [--jobs N]

Writes the paper-vs-measured record for Tables I-III and Figures 3-7
(plus the ext_* extensions); ``--json`` additionally dumps every series
and claim as machine-readable data for external plotting.  ``--jobs``
(default ``$REPRO_JOBS``, then the CPU count) fans the experiment modules
out across worker processes; results are collected in module order, so
the generated markdown is identical for every job count.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from ..analysis.tables import ExperimentResult
from ..parallel import parallel_map, resolve_jobs
from . import (
    ext_autotune,
    ext_bandwidth,
    ext_fp64,
    ext_hetero,
    ext_multicluster,
    ext_sensitivity,
    ext_workloads,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    tables123,
)

MODULES = [
    tables123, fig3, fig4, fig5, fig6, fig7,
    ext_fp64, ext_multicluster, ext_autotune, ext_workloads,
    ext_sensitivity, ext_hetero, ext_bandwidth,
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of every table and figure in the evaluation of
*"Optimizing Irregular-Shaped Matrix-Matrix Multiplication on Multi-Core
DSPs"* (CLUSTER 2022), measured on the simulated FT-m7032 GPDSP cluster of
this repository (see DESIGN.md for the substitution rationale).  Absolute
GFLOPS are modeled, not silicon measurements; the claims tables record
whether each of the paper's qualitative/quantitative observations holds.

The ``ext_*`` experiments at the end are extensions beyond the paper's
evaluation (FP64 kernels, multi-cluster scaling, model-driven tuning);
their "paper" column records the extension's stated expectation.

Regenerate with `python -m repro.experiments.run_all`.
"""


def _run_module(name: str) -> list[ExperimentResult]:
    """Picklable work unit: run one experiment module by name."""
    module = next(m for m in MODULES if m.__name__ == name)
    return module.run()


def run_everything(jobs: int | None = None) -> list[ExperimentResult]:
    jobs = resolve_jobs(jobs, len(MODULES))
    results: list[ExperimentResult] = []
    if jobs > 1:
        t0 = time.perf_counter()
        # module *names* are the work items: modules themselves pickle by
        # reference anyway, and names keep the journal human-readable
        per_module = parallel_map(
            _run_module, [m.__name__ for m in MODULES], jobs
        )
        dt = time.perf_counter() - t0
        for module, module_results in zip(MODULES, per_module):
            print(f"[{module.__name__}] {len(module_results)} experiments")
            results.extend(module_results)
        print(f"ran {len(MODULES)} experiment modules on {jobs} workers in {dt:.1f}s")
        return results
    for module in MODULES:
        t0 = time.perf_counter()
        module_results = module.run()
        dt = time.perf_counter() - t0
        print(f"[{module.__name__}] {len(module_results)} experiments in {dt:.1f}s")
        results.extend(module_results)
    return results


def write_markdown(results: list[ExperimentResult], path: Path) -> None:
    total = sum(len(r.claims) for r in results)
    held = sum(sum(c.holds for c in r.claims) for r in results)
    parts = [HEADER]
    parts.append(f"**Claims held: {held} / {total}.**\n")
    for result in results:
        parts.append(result.to_markdown())
    path.write_text("\n".join(parts))
    print(f"wrote {path} ({held}/{total} claims hold)")


def write_json(results: list[ExperimentResult], path: Path) -> None:
    path.write_text(json.dumps([r.to_dict() for r in results], indent=1))
    print(f"wrote {path}")


def main(argv: list[str] | None = None) -> None:
    args = list(argv if argv is not None else sys.argv[1:])
    json_path: Path | None = None
    if "--json" in args:
        i = args.index("--json")
        json_path = Path(args[i + 1])
        del args[i : i + 2]
    jobs: int | None = None
    if "--jobs" in args:
        i = args.index("--jobs")
        jobs = int(args[i + 1])
        del args[i : i + 2]
    out = Path(args[0]) if args else Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    results = run_everything(jobs)
    for result in results:
        print()
        print(result.render(chart=True))
    write_markdown(results, out)
    if json_path is not None:
        write_json(results, json_path)


if __name__ == "__main__":
    main()
