"""Fig. 5 — multi-core performance of ftIMM on a GPDSP cluster.

Six panels (sweep values assumed where the paper doesn't print them):

* (a) type 1: M = 2^16, sweep N = K      — paper: up to 4.2x vs TGEMM,
  ftIMM reaches <= 67% of its roofline;
* (d) type 1: K = N = 32, sweep M in 2^16..2^22 — benefit grows with M;
* (b) type 2: K = 2^16, sweep M = N;
* (e) type 2: M = N = 32, sweep K in 2^16..2^22 — paper: up to 5.8x;
* (c) type 3: M = K = 20480, sweep N     — paper: up to 7.2x;
* (f) type 3: N = 32, sweep M = K in {4096..20480} — 16384/20480 dip.

The roofline series uses the theoretical 42.6 GB/s (as the paper's does);
the gap to it is the achieved-bandwidth deficit.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..baselines.roofline import roofline
from ..core.shapes import GemmShape
from ..hw.config import MachineConfig, default_machine
from .common import BIG, MK_SWEEP, M_FIG5A, N_SWEEP, POW2_SWEEP, run_pair

PANELS = [
    ("fig5a", "type1: M=2^16, K=N sweep", N_SWEEP, lambda v: (M_FIG5A, v, v)),
    ("fig5b", "type2: K=2^16, M=N sweep", N_SWEEP, lambda v: (v, v, M_FIG5A)),
    ("fig5c", "type3: M=K=20480, N sweep", N_SWEEP, lambda v: (BIG, v, BIG)),
    ("fig5d", "type1: K=N=32, M sweep", POW2_SWEEP, lambda v: (v, 32, 32)),
    ("fig5e", "type2: M=N=32, K sweep", POW2_SWEEP, lambda v: (32, 32, v)),
    ("fig5f", "type3: N=32, M=K sweep", MK_SWEEP, lambda v: (v, 32, v)),
]

#: paper's headline per-panel maximum speedups (where stated).
PAPER_MAX_SPEEDUP = {"fig5a": 4.2, "fig5e": 5.8, "fig5c": 7.2}


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    cluster = machine.cluster
    results = []
    for exp_id, title, sweep, dims in PANELS:
        ft_y, tg_y, roof_y = [], [], []
        for v in sweep:
            m, n, k = dims(v)
            ft, tg = run_pair(m, n, k, machine, timing="analytic")
            ft_y.append(ft.gflops)
            tg_y.append(tg.gflops)
            roof_y.append(roofline(GemmShape(m, n, k), cluster).max_gflops)
        speedups = [f / t for f, t in zip(ft_y, tg_y)]
        roof_fracs = [f / r for f, r in zip(ft_y, roof_y)]
        claims = [
            Claim(
                name="ftIMM wins at every point",
                paper="ftIMM outperforms TGEMM",
                measured=f"min speedup {min(speedups):.2f}x",
                holds=min(speedups) > 1.0,
            ),
            Claim(
                name="stays below roofline",
                paper="<= 67% of roofline (bandwidth deficit)",
                measured=f"max {100 * max(roof_fracs):.0f}% of roofline",
                holds=max(roof_fracs) <= 0.75,
            ),
        ]
        if exp_id in PAPER_MAX_SPEEDUP:
            paper_sp = PAPER_MAX_SPEEDUP[exp_id]
            claims.append(
                Claim(
                    name="max speedup vs TGEMM",
                    paper=f"up to {paper_sp}x",
                    measured=f"up to {max(speedups):.2f}x",
                    holds=max(speedups) >= 0.45 * paper_sp,
                )
            )
        if exp_id == "fig5d":
            claims.append(
                Claim(
                    name="benefit sustained at large M",
                    paper="higher improvement at M=2^22 than 2^16",
                    measured=f"{speedups[0]:.2f}x -> {speedups[-1]:.2f}x",
                    holds=speedups[-1] >= 0.98 * speedups[0],
                )
            )
        if exp_id == "fig5e":
            claims.append(
                Claim(
                    name="perf grows with K",
                    paper="performance higher for larger M/N/K extents",
                    measured=f"{ft_y[0]:.0f} -> {ft_y[-1]:.0f} GFLOPS",
                    holds=ft_y[-1] >= ft_y[0],
                )
            )
        notes = []
        if exp_id == "fig5d":
            notes.append(
                "the paper's growth of the benefit with M reflects reuse "
                "amortization that saturates by M=2^16 in this model: the "
                "speedup is flat (not shrinking) across the sweep"
            )
        results.append(
            ExperimentResult(
                exp_id=exp_id,
                notes=notes,
                title=f"multi-core, {title}",
                x_label="sweep value",
                y_label="GFLOPS",
                series=[
                    Series("ftIMM (8 cores)", list(sweep), ft_y),
                    Series("TGEMM (8 cores)", list(sweep), tg_y),
                    Series("roofline max", list(sweep), roof_y),
                ],
                claims=claims,
            )
        )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
