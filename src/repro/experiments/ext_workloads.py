"""Extension experiment: the introduction's motivating workloads, end to end.

The paper motivates irregular GEMM with three application domains
(Section I): K-means distance computation, im2col-lowered CNN layers, and
FEM operator batches.  The evaluation section never returns to them — it
sweeps synthetic shapes.  This experiment closes that loop: it takes the
*actual* GEMM shapes those workloads produce and measures the modeled
ftIMM-vs-TGEMM benefit on each, checking the narrative:

* every irregular-classified workload GEMM benefits from ftIMM;
* early CNN layers (most irregular) benefit more than deep ones;
* the tuner sends wide-N deep layers to the regular TGEMM path, where
  TGEMM is genuinely good (>50% of peak) — the paper's premise.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..core.ftimm import ftimm_gemm, tgemm_gemm
from ..core.shapes import GemmShape
from ..hw.config import MachineConfig, default_machine
from ..workloads.convnets import RESNET18_LAYERS, VGG16_LAYERS
from ..workloads.fem import STANDARD_OPERATORS
from ..workloads.kmeans import kmeans_gemm_shape
from ..workloads.transformer import STANDARD_CONFIGS as ATTENTION_CONFIGS

#: (dataset-ish label, samples, features, clusters)
KMEANS_CONFIGS = [
    ("mnist-pca", 60_000, 50, 10),
    ("cifar-feat", 50_000, 64, 20),
    ("census", 2_458_285, 68, 32),
]


def _speedup(shape: GemmShape, machine: MachineConfig) -> float:
    ft = ftimm_gemm(shape.m, shape.n, shape.k, machine=machine, timing="analytic")
    tg = tgemm_gemm(shape.m, shape.n, shape.k, machine=machine, timing="analytic")
    return ft.seconds and tg.seconds / ft.seconds


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    results = []

    # --- K-means ----------------------------------------------------------
    labels, speeds = [], []
    for name, samples, feats, clusters in KMEANS_CONFIGS:
        shape = kmeans_gemm_shape(samples, feats, clusters)
        labels.append(name)
        speeds.append(_speedup(shape, machine))
    results.append(
        ExperimentResult(
            exp_id="ext_workloads_kmeans",
            title="K-means distance GEMMs (intro workload)",
            x_label="dataset",
            y_label="ftIMM speedup vs TGEMM",
            series=[Series("speedup", labels, speeds)],
            claims=[
                Claim(
                    name="every dataset benefits",
                    paper="(extension) K-means GEMMs are type 1",
                    measured=f"min {min(speeds):.2f}x, max {max(speeds):.2f}x",
                    holds=min(speeds) > 1.5,
                )
            ],
        )
    )

    # --- CNN layers ---------------------------------------------------------
    for net, layers in (("vgg16", VGG16_LAYERS), ("resnet18", RESNET18_LAYERS)):
        names, speeds, kinds = [], [], []
        for layer in layers:
            shape = layer.gemm_shape(batch=1)
            names.append(layer.name)
            kinds.append(shape.classify().value)
            if shape.n <= 96:
                speeds.append(_speedup(shape, machine))
            else:
                speeds.append(1.0)  # regular: tuner keeps TGEMM
        irregular = [s for s, kd in zip(speeds, kinds) if kd != "regular"]
        first_irregular = next(
            s for s, kd in zip(speeds, kinds) if kd != "regular"
        )
        results.append(
            ExperimentResult(
                exp_id=f"ext_workloads_{net}",
                title=f"{net} im2col GEMMs (intro workload)",
                x_label="layer",
                y_label="ftIMM speedup vs TGEMM (1.0 = regular/TGEMM path)",
                series=[Series("speedup", names, speeds)],
                claims=[
                    Claim(
                        name="irregular layers all benefit",
                        paper="(extension) early layers are type 1",
                        measured=f"min {min(irregular):.2f}x over "
                                 f"{len(irregular)} irregular layers",
                        holds=min(irregular) > 1.5,
                    ),
                    Claim(
                        name="first layer benefits strongly",
                        paper="(extension) the paper's canonical case",
                        measured=f"{first_irregular:.2f}x",
                        holds=first_irregular > 2.0,
                    ),
                ],
            )
        )

    # --- transformer attention (post-2022 workload, same taxonomy) --------
    names, speeds, kinds = [], [], []
    for cfg in ATTENTION_CONFIGS:
        shape = cfg.gemm_shapes()["head_projection"]
        names.append(f"{cfg.name}/proj")
        kinds.append(shape.classify().value)
        speeds.append(_speedup(shape, machine))
        ctx = cfg.gemm_shapes()["context"]
        if ctx.n <= 96 and ctx.classify().value != "regular":
            names.append(f"{cfg.name}/ctx")
            kinds.append(ctx.classify().value)
            speeds.append(_speedup(ctx, machine))
    results.append(
        ExperimentResult(
            exp_id="ext_workloads_attention",
            title="transformer attention GEMMs (post-paper workload)",
            x_label="GEMM",
            y_label="ftIMM speedup vs TGEMM",
            series=[Series("speedup", names, speeds)],
            claims=[
                Claim(
                    name="head-dim-64 GEMMs benefit",
                    paper="(extension) attention fits the paper's taxonomy",
                    measured=f"min {min(speeds):.2f}x over {len(speeds)} GEMMs",
                    holds=min(speeds) > 1.5,
                )
            ],
        )
    )

    # --- FEM + the regular-shape premise -----------------------------------
    names, speeds = [], []
    for op in STANDARD_OPERATORS:
        shape = op.gemm_shape()
        names.append(op.name)
        speeds.append(_speedup(shape, machine))
    reg = tgemm_gemm(4096, 4096, 4096, machine=machine, timing="analytic")
    irr = tgemm_gemm(20480, 32, 20480, machine=machine, timing="analytic")
    results.append(
        ExperimentResult(
            exp_id="ext_workloads_fem",
            title="FEM operator batches + the regular-shape premise",
            x_label="operator",
            y_label="ftIMM speedup vs TGEMM",
            series=[Series("speedup", names, speeds)],
            claims=[
                Claim(
                    name="FEM batches benefit",
                    paper="(extension) stacked element ops are type 1",
                    measured=f"min {min(speeds):.2f}x",
                    holds=min(speeds) > 1.5,
                ),
                Claim(
                    name="TGEMM's regular-vs-irregular gap",
                    paper="paper's premise: traditional GEMM is built for "
                          "large regular shapes, collapses on irregular",
                    measured=(
                        f"4096^3: {100 * reg.efficiency:.0f}% vs "
                        f"20480x32x20480: {100 * irr.efficiency:.0f}% of peak"
                    ),
                    holds=reg.efficiency > 5 * irr.efficiency
                    and reg.efficiency > 0.3,
                ),
            ],
        )
    )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
