"""Fig. 3 — micro-kernel performance.

Six sweeps of auto-generated kernel efficiency over the kernel row count M
(= m_s), for N in {96, 64, 32} at K = 512 (panels a-c: the deep-K kernels
used by types 2/3) and K = 32 (panels d-f: the shallow-K kernels of
type 1).  The paper reports peak efficiencies 98.2 / 96.4 / 63.0 % for
K = 512 and 77.4 / 65.4 / 46.6 % for K = 32, a dip for M mod 3 != 0 when
32 < N <= 64, and the 66.7% broadcast-bandwidth ceiling for N <= 32.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..hw.config import MachineConfig, default_machine
from ..kernels.registry import registry_for

M_SWEEP = [2, 4, 6, 8, 10, 12, 14, 16]
PANELS = [
    ("fig3a", 96, 512, 98.2),
    ("fig3b", 64, 512, 96.4),
    ("fig3c", 32, 512, 63.0),
    ("fig3d", 96, 32, 77.4),
    ("fig3e", 64, 32, 65.4),
    ("fig3f", 32, 32, 46.6),
]


def kernel_efficiency_sweep(
    n: int, k: int, machine: MachineConfig | None = None, m_values=M_SWEEP
) -> Series:
    """Generated-kernel efficiency (percent of core peak) over m_s."""
    core = (machine or default_machine()).cluster.core
    registry = registry_for(core)
    ys = [100.0 * registry.ftimm(m, n, k).efficiency for m in m_values]
    return Series(label=f"N={n},K={k}", x=list(m_values), y=ys)


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    results = []
    for exp_id, n, k, paper_peak in PANELS:
        series = kernel_efficiency_sweep(n, k, machine)
        measured_peak = series.peak
        claims = [
            Claim(
                name="peak efficiency",
                paper=f"{paper_peak:.1f}%",
                measured=f"{measured_peak:.1f}%",
                holds=abs(measured_peak - paper_peak) <= 8.0,
            )
        ]
        notes = []
        if n == 32:
            bound = 100.0 * 2 / 3
            claims.append(
                Claim(
                    name="broadcast ceiling (66.7%)",
                    paper="efficiency <= 66.7%",
                    measured=f"max {measured_peak:.1f}%",
                    holds=measured_peak <= bound + 0.5,
                )
            )
        if n == 64 and k == 512:
            by_m = dict(zip(series.x, series.y))
            dips = by_m[8] < by_m[6] and by_m[10] < by_m[9] if 9 in by_m else (
                by_m[8] < by_m[6]
            )
            claims.append(
                Claim(
                    name="M mod 3 != 0 dip",
                    paper="M=8,10 below M=6; M=14 below M=12",
                    measured=(
                        f"M=8:{by_m[8]:.1f} vs M=6:{by_m[6]:.1f}; "
                        f"M=14:{by_m[14]:.1f} vs M=12:{by_m[12]:.1f}"
                    ),
                    holds=by_m[8] < by_m[6] and by_m[14] < by_m[12],
                )
            )
        results.append(
            ExperimentResult(
                exp_id=exp_id,
                title=f"micro-kernel efficiency, N={n}, K={k}",
                x_label="M (kernel rows)",
                y_label="% of single-core peak",
                series=[series],
                claims=claims,
                notes=notes,
            )
        )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
