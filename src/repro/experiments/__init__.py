"""Experiment drivers, one per table/figure of the paper's evaluation.

Each module exposes ``run(machine=None) -> list[ExperimentResult]`` and a
``main()`` CLI; :mod:`~repro.experiments.run_all` regenerates
``EXPERIMENTS.md`` from all of them.
"""

from . import (
    ext_autotune,
    ext_bandwidth,
    ext_fp64,
    ext_hetero,
    ext_multicluster,
    ext_sensitivity,
    ext_workloads,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    tables123,
)

__all__ = [
    "ext_autotune",
    "ext_bandwidth",
    "ext_fp64",
    "ext_hetero",
    "ext_multicluster",
    "ext_sensitivity",
    "ext_workloads",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "tables123",
]
