"""Extension experiment: CPU + DSP co-execution of irregular GEMMs.

The FT-m7032 CPU idles while the paper's ftIMM runs; a static M split can
recruit it.  The expected (and measured) punchline: because the CPU's
achievable irregular-GEMM rate is a small fraction of the cluster's
(exactly Fig. 7's observation), co-execution buys only single-digit
percent — quantitative support for the paper's implicit design choice of
offloading GEMMs entirely to the DSPs.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..core.hetero import hetero_gemm
from ..hw.config import MachineConfig, default_machine

SHAPES = [
    ("2^20x32x32", (2**20, 32, 32)),
    ("2^16x96x96", (65536, 96, 96)),
    ("20480x32x20480", (20480, 32, 20480)),
    ("2^18x48x256", (2**18, 48, 256)),
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    labels, gains, shares = [], [], []
    for label, (m, n, k) in SHAPES:
        result = hetero_gemm(m, n, k, machine=machine)
        labels.append(label)
        gains.append(result.gain_vs_dsp_only)
        shares.append(result.cpu_share)
    claims = [
        Claim(
            name="co-execution never loses",
            paper="(extension) optimal split includes the DSP-only point",
            measured=f"min gain {min(gains):.3f}x",
            holds=min(gains) >= 1.0 - 1e-9,
        ),
        Claim(
            name="gain is single-digit percent",
            paper="(extension) the CPU's irregular rate is small (Fig. 7)",
            measured=f"max gain {max(gains):.3f}x at CPU share "
                     f"{max(shares):.1%}",
            holds=max(gains) < 1.2,
        ),
        Claim(
            name="CPU share stays small",
            paper="(extension) offload-everything is nearly optimal",
            measured=f"CPU shares {', '.join(f'{s:.1%}' for s in shares)}",
            holds=max(shares) < 0.2,
        ),
    ]
    return [
        ExperimentResult(
            exp_id="ext_hetero",
            title="CPU + DSP co-execution of irregular GEMMs",
            x_label="shape",
            y_label="speedup vs DSP-only",
            series=[
                Series("co-execution gain", labels, gains),
                Series("CPU share of M", labels, shares),
            ],
            claims=claims,
        )
    ]


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
