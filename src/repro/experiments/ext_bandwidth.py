"""Extension experiment: achieved DDR bandwidth during GEMM execution.

The paper explains ftIMM's distance from its roofline with one sentence:
"the actual bandwidth cannot reach the theoretical bandwidth".  This
experiment *measures* that inside the simulator: the DDR channel's
aggregate draw is sampled through event-driven runs of representative
shapes, and its time-average is reported as a fraction of the theoretical
42.6 GB/s port.

Expected structure:

* memory-bound multi-core shapes approach (but cannot exceed) the
  sustain ceiling ``ddr_efficiency = 0.72`` — the residual gap is DMA
  startup and ping-pong ramp time;
* a single core is further limited by its engine's channel draw;
* compute-bound kernels leave the port mostly idle.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..core.parallel_m import build_parallel_m
from ..core.shapes import GemmShape
from ..executor.timed import run_timed
from ..hw.config import MachineConfig, default_machine
from ..kernels.registry import registry_for

CASES = [
    ("memory-bound, 8 cores (16384x32x64)", (16384, 32, 64), 8),
    ("memory-bound, 1 core (4096x32x64)", (4096, 32, 64), 1),
    ("balanced, 8 cores (8192x96x512)", (8192, 96, 512), 8),
    ("compute-heavy, 1 core (2048x96x2048)", (2048, 96, 2048), 1),
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    labels, utils = [], []
    by_label = {}
    for label, (m, n, k), cores in CASES:
        cluster = machine.cluster.with_cores(cores)
        result = run_timed(
            build_parallel_m(
                GemmShape(m, n, k), cluster,
                registry=registry_for(cluster.core),
            ),
            record_bandwidth=True,
        )
        labels.append(label)
        utils.append(result.ddr_utilization)
        by_label[label] = result.ddr_utilization
    ceiling = machine.cluster.dma.ddr_efficiency
    mem8 = by_label[labels[0]]
    mem1 = by_label[labels[1]]
    compute1 = by_label[labels[3]]
    claims = [
        Claim(
            name="never exceeds the sustain ceiling",
            paper=f"model: sustained DDR <= {ceiling:.0%} of theoretical",
            measured=f"max {max(utils):.1%}",
            holds=max(utils) <= ceiling + 1e-6,
        ),
        Claim(
            name="memory-bound multi-core approaches the ceiling",
            paper='the paper: "actual bandwidth cannot reach theoretical"',
            measured=f"{mem8:.1%} of the 42.6 GB/s port",
            holds=0.55 <= mem8 <= ceiling,
        ),
        Claim(
            name="one engine cannot saturate the port",
            paper="model: per-channel draw caps a single core",
            measured=f"1 core: {mem1:.1%} vs 8 cores: {mem8:.1%}",
            holds=mem1 < mem8,
        ),
        Claim(
            name="compute-bound shapes idle the port",
            paper="(extension) sanity: the port is not the bottleneck",
            measured=f"{compute1:.1%}",
            holds=compute1 < 0.5 * mem8,
        ),
    ]
    return [
        ExperimentResult(
            exp_id="ext_bandwidth",
            title="achieved DDR bandwidth (fraction of theoretical port)",
            x_label="case",
            y_label="mean utilization of 42.6 GB/s",
            series=[Series("utilization", labels, utils)],
            claims=claims,
        )
    ]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
