"""Generate KERNELS.md — a gallery of auto-generated micro-kernels.

For a representative grid of kernel shapes (both precisions), renders the
generator's decisions, the modulo-scheduled pipeline table (the paper's
Tables I-III view), register pressure, and the modeled efficiency — the
artifact a kernel engineer would review before trusting generated code.

Usage::

    python -m repro.experiments.kernel_gallery [KERNELS.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..hw.config import MachineConfig, default_machine
from ..kernels.registry import registry_for

#: the FP32 gallery grid: the paper's table kernels + sweep corners.
F32_SPECS = [
    (8, 96, 512), (12, 96, 512), (2, 96, 512),
    (6, 64, 512), (9, 64, 512),
    (6, 32, 512), (14, 32, 512),
    (6, 96, 32), (8, 32, 32),
]
F64_SPECS = [(8, 48, 512), (6, 32, 512), (8, 16, 512)]

HEADER = """\
# Auto-generated micro-kernel gallery

Regenerate with `python -m repro.experiments.kernel_gallery`.

Every kernel below was emitted by `repro.kernels.generator`, software-
pipelined by the modulo scheduler, and is executable on the ISA
interpreter (the test suite proves each equals `C += A @ B`).  `II` is the
steady-state initiation interval; efficiency is useful FLOPs against the
core's per-precision peak.
"""


def gallery_markdown(machine: MachineConfig | None = None) -> str:
    registry = registry_for((machine or default_machine()).cluster.core)
    parts = [HEADER]

    def add(kern) -> None:
        info = kern.blocks[0]
        sregs, vregs = kern.registers_used()
        parts.append(
            f"## {kern.spec}\n\n"
            f"- tiling: m_u={info.m_u}, k_u={info.k_u}; blocks "
            f"{[(b.m_u, b.k_u, b.ii) for b in kern.blocks]}\n"
            f"- II={kern.ii}, cycles={kern.cycles}, "
            f"efficiency={100 * kern.efficiency:.1f}%, "
            f"{kern.gflops:.1f} GFLOPS/core\n"
            f"- registers: {vregs} vector, {sregs} scalar\n\n"
            "```\n" + kern.pipeline_table() + "\n```\n"
        )

    parts.append("\n# FP32 kernels\n")
    for m, n, k in F32_SPECS:
        add(registry.ftimm(m, n, k))
    parts.append("\n# FP64 kernels (extension)\n")
    for m, n, k in F64_SPECS:
        add(registry.ftimm(m, n, k, dtype="f64"))
    parts.append("\n# TGEMM's fixed kernel, for contrast\n")
    add(registry.tgemm(6, 32, 512))
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> None:
    args = argv if argv is not None else sys.argv[1:]
    out = Path(args[0]) if args else Path(__file__).resolve().parents[3] / "KERNELS.md"
    out.write_text(gallery_markdown())
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
