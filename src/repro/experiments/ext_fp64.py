"""Extension experiment (not in the paper): double-precision micro-kernels.

The paper evaluates single precision only.  The same generation machinery
produces FP64 kernels: a 64-bit VPE register holds 16 doubles (vs 32
floats), and — decisively — the SPU broadcast bus moves only **one**
double per cycle where it moves two floats.  The broadcast-bandwidth
ceiling therefore shifts:

* FP32: 100% possible for ``n_a > 32``, 66.7% ceiling for ``n_a <= 32``;
* FP64: 100% possible only at ``n_a > 32`` (three vectors), 66.7% ceiling
  at ``16 < n_a <= 32`` and a 33.3% ceiling at ``n_a <= 16``.

The experiment sweeps generated FP64 kernels over M and N and verifies the
ceilings emerge from the scheduler, exactly as the FP32 ceilings do.  A
final panel runs *full-stack* FP64 GEMMs (drivers, blocking and timing all
at 8 B/element) against their FP32 twins: compute-bound shapes land near
the 2x peak ratio, memory-bound shapes near 2x as well (same bytes per
second, half the elements).
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..hw.config import MachineConfig, default_machine
from ..kernels.registry import registry_for

M_SWEEP = [2, 4, 6, 8, 10, 12, 14]
PANELS = [
    ("ext_fp64_a", 48, 512, 1.0),       # 3 vector registers: full rate
    ("ext_fp64_b", 32, 512, 2.0 / 3.0), # 2 vectors: broadcast-limited
    ("ext_fp64_c", 16, 512, 1.0 / 3.0), # 1 vector: hard broadcast wall
]


GEMM_SHAPES = [
    ("type1 2^18x32x32", (2**18, 32, 32)),
    ("type1 2^16x48x48", (2**16, 48, 48)),
    ("type2 32x32x2^18", (32, 32, 2**18)),
    ("type3 20480x32x20480", (20480, 32, 20480)),
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    core = machine.cluster.core
    registry = registry_for(core)
    results = []
    for exp_id, n, k, ceiling in PANELS:
        ys = [
            100.0 * registry.ftimm(m, n, k, dtype="f64").efficiency
            for m in M_SWEEP
        ]
        series = Series(f"FP64 N={n},K={k}", list(M_SWEEP), ys)
        peak = series.peak
        results.append(
            ExperimentResult(
                exp_id=exp_id,
                title=f"FP64 micro-kernel efficiency, N={n}, K={k}",
                x_label="M (kernel rows)",
                y_label="% of single-core FP64 peak (172.8 GFLOPS)",
                series=[series],
                claims=[
                    Claim(
                        name="broadcast ceiling",
                        paper=f"(extension) <= {100 * ceiling:.1f}% of FP64 peak",
                        measured=f"max {peak:.1f}%",
                        holds=peak <= 100 * ceiling + 0.5,
                    ),
                    Claim(
                        name="approaches the ceiling",
                        paper="(extension) within 15 points of the bound",
                        measured=f"max {peak:.1f}% vs {100 * ceiling:.1f}%",
                        holds=peak >= 100 * ceiling - 15.0,
                    ),
                ],
            )
        )
    # full-stack FP64 vs FP32 GEMMs
    from ..core.ftimm import ftimm_gemm

    labels, ratios = [], []
    for label, (m, n, k) in GEMM_SHAPES:
        f32 = ftimm_gemm(m, n, k, machine=machine, timing="analytic")
        f64 = ftimm_gemm(m, n, k, machine=machine, timing="analytic",
                         dtype="f64")
        labels.append(label)
        ratios.append(f32.gflops / f64.gflops)
    results.append(
        ExperimentResult(
            exp_id="ext_fp64_gemm",
            title="full-stack FP64 vs FP32 GEMM (extension)",
            x_label="shape",
            y_label="FP32 GFLOPS / FP64 GFLOPS",
            series=[Series("f32/f64 ratio", labels, ratios)],
            claims=[
                Claim(
                    name="ratio near the 2x peak/byte factor",
                    paper="(extension) half the lanes, double the bytes",
                    measured=f"ratios {', '.join(f'{r:.2f}' for r in ratios)}",
                    holds=all(1.5 <= r <= 3.0 for r in ratios),
                ),
            ],
        )
    )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
