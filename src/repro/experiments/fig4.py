"""Fig. 4 — single-core performance of ftIMM vs TGEMM.

Three panels, one per irregular type, on one DSP core (sweep values
assumed; the paper prints only representative points):

* (a) type 1: M = 20480, K = N, sweep N;
* (b) type 2: K = 20480, M = N, sweep N;
* (c) type 3: M = K = 20480, sweep N.

Headline claims: ftIMM wins everywhere; 2.0x at 20480 x 32 x 20480; and in
panels (b)/(c) the N = 80 point falls below N = 64 (three-vector kernels
at 5/6 lane utilization lose to fully-used two-vector kernels).
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..hw.config import MachineConfig, default_machine
from .common import BIG, N_SWEEP, run_pair

PANELS = [
    ("fig4a", "type1: M=20480, K=N", lambda n: (BIG, n, n)),
    ("fig4b", "type2: K=20480, M=N", lambda n: (n, n, BIG)),
    ("fig4c", "type3: M=K=20480", lambda n: (BIG, n, BIG)),
]


def run(machine: MachineConfig | None = None, n_sweep=N_SWEEP) -> list[ExperimentResult]:
    machine = machine or default_machine()
    results = []
    for exp_id, title, dims in PANELS:
        ft_y, tg_y = [], []
        for n in n_sweep:
            m, nn, k = dims(n)
            ft, tg = run_pair(m, nn, k, machine, cores=1, timing="analytic")
            ft_y.append(ft.gflops)
            tg_y.append(tg.gflops)
        ft_series = Series("ftIMM (1 core)", list(n_sweep), ft_y)
        tg_series = Series("TGEMM (1 core)", list(n_sweep), tg_y)
        claims = [
            Claim(
                name="ftIMM wins at every N",
                paper="ftIMM outperforms TGEMM in all cases",
                measured=f"min speedup {min(f / t for f, t in zip(ft_y, tg_y)):.2f}x",
                holds=all(f > t for f, t in zip(ft_y, tg_y)),
            )
        ]
        if exp_id == "fig4c" and 32 in n_sweep:
            i32 = n_sweep.index(32)
            sp = ft_y[i32] / tg_y[i32]
            claims.append(
                Claim(
                    name="speedup at 20480x32x20480",
                    paper="2.0x",
                    measured=f"{sp:.2f}x",
                    holds=1.4 <= sp <= 2.8,
                )
            )
        if exp_id in ("fig4b", "fig4c") and 80 in n_sweep and 64 in n_sweep:
            i80, i64 = n_sweep.index(80), n_sweep.index(64)
            claims.append(
                Claim(
                    name="N=80 below N=64 (ftIMM)",
                    paper="lower performance at N=80 than N=64",
                    measured=f"N=80: {ft_y[i80]:.1f}, N=64: {ft_y[i64]:.1f} GFLOPS",
                    holds=ft_y[i80] < ft_y[i64],
                )
            )
        results.append(
            ExperimentResult(
                exp_id=exp_id,
                title=f"single-core, {title}",
                x_label="N",
                y_label="GFLOPS",
                series=[ft_series, tg_series],
                claims=claims,
            )
        )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
