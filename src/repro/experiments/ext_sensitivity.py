"""Extension experiment: sensitivity of the conclusions to model assumptions.

Several constants of the machine model are *assumptions* (documented in
``repro.hw.config``): instruction latencies, DMA startup and per-row
overhead, the DDR sustain efficiency, the per-channel DMA bandwidth.
They were calibrated once against Fig. 3's micro-kernel efficiencies.

A reproduction is only credible if the paper's *qualitative* claims do
not hinge on those specific values.  This experiment perturbs each
assumption across a generous range and re-derives three headline
conclusions at every point:

* ftIMM beats TGEMM on the canonical type-3 shape (20480x32x20480);
* the tall-and-skinny kernel keeps its ~2/3 broadcast ceiling ordering
  (N=96 kernel above N=32 kernel);
* multi-core ftIMM stays below the theoretical roofline.

Each claim must hold at *every* sweep point for the sensitivity check to
pass — i.e., the paper's story survives the uncertainty in the constants.
"""

from __future__ import annotations

import dataclasses

from ..analysis.tables import Claim, ExperimentResult, Series
from ..baselines.roofline import roofline
from ..core.ftimm import ftimm_gemm, tgemm_gemm
from ..core.shapes import GemmShape
from ..hw.config import DmaConfig, LatencyConfig, MachineConfig, default_machine
from ..kernels.registry import KernelRegistry

CANONICAL = (20480, 32, 20480)


def _perturbed(name: str, value) -> MachineConfig:
    base = default_machine()
    cluster = base.cluster
    if name in ("t_fma", "t_vldw", "t_bcast"):
        lat = dataclasses.replace(LatencyConfig(), **{name: value})
        core = dataclasses.replace(cluster.core, latencies=lat)
        cluster = dataclasses.replace(cluster, core=core)
    elif name in ("ddr_efficiency", "row_overhead_bytes", "startup_cycles",
                  "channel_bandwidth"):
        dma = dataclasses.replace(DmaConfig(), **{name: value})
        cluster = dataclasses.replace(cluster, dma=dma)
    elif name == "gsm_bandwidth":
        cluster = dataclasses.replace(cluster, gsm_bandwidth=value)
    elif name == "barrier_cycles":
        cluster = dataclasses.replace(cluster, barrier_cycles=value)
    else:  # pragma: no cover
        raise ValueError(name)
    return MachineConfig(cluster=cluster).validate()


SWEEPS: list[tuple[str, list]] = [
    ("t_fma", [2, 4, 6, 8]),
    ("t_vldw", [1, 3, 6]),
    ("t_bcast", [1, 2, 4]),
    ("ddr_efficiency", [0.5, 0.72, 0.9, 1.0]),
    ("row_overhead_bytes", [0, 64, 256]),
    ("startup_cycles", [0, 200, 1000]),
    ("channel_bandwidth", [5e9, 10.65e9, 21.3e9]),
    ("gsm_bandwidth", [115e9, 460.8e9, 921.6e9]),
    ("barrier_cycles", [50, 400, 2000]),
]


def _headlines(machine: MachineConfig) -> tuple[float, float, float]:
    """(type-3 speedup, kernel ordering margin, roofline fraction)."""
    m, n, k = CANONICAL
    ft = ftimm_gemm(m, n, k, machine=machine, timing="analytic")
    tg = tgemm_gemm(m, n, k, machine=machine, timing="analytic")
    speedup = tg.seconds / ft.seconds
    registry = KernelRegistry(machine.cluster.core)
    wide = registry.ftimm(8, 96, 512).efficiency
    narrow = registry.ftimm(8, 32, 512).efficiency
    frac = ft.gflops / roofline(GemmShape(m, n, k), machine.cluster).max_gflops
    return speedup, wide - narrow, frac


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    del machine  # sensitivity always perturbs the reference machine
    rows_speedup: list[Series] = []
    labels, speedups, margins, fracs = [], [], [], []
    for name, values in SWEEPS:
        for value in values:
            perturbed = _perturbed(name, value)
            speedup, margin, frac = _headlines(perturbed)
            labels.append(f"{name}={value:g}" if isinstance(value, float) else f"{name}={value}")
            speedups.append(speedup)
            margins.append(margin)
            fracs.append(frac)
    rows_speedup.append(Series("type-3 speedup vs TGEMM", labels, speedups))
    rows_speedup.append(Series("roofline fraction", labels, fracs))
    claims = [
        Claim(
            name="ftIMM wins under every perturbation",
            paper="(extension) conclusion robust to assumed constants",
            measured=f"min speedup {min(speedups):.2f}x over "
                     f"{len(labels)} perturbed machines",
            holds=min(speedups) > 1.5,
        ),
        Claim(
            name="broadcast ceiling ordering is invariant",
            paper="(extension) N=96 kernel always above N=32 kernel",
            measured=f"min margin {min(margins):.3f}",
            holds=min(margins) > 0.1,
        ),
        Claim(
            name="never exceeds the theoretical roofline",
            paper="(extension) model physicality check",
            measured=f"max fraction {max(fracs):.2f}",
            holds=max(fracs) <= 1.0,
        ),
    ]
    return [
        ExperimentResult(
            exp_id="ext_sensitivity",
            title="robustness of conclusions to model assumptions",
            x_label="perturbation",
            y_label="headline metric",
            series=rows_speedup,
            claims=claims,
            notes=[
                "each sweep point is a full machine model with one assumed "
                "constant changed; kernels are regenerated and rescheduled "
                "on the perturbed machine",
            ],
        )
    ]


def main() -> None:
    for result in run():
        print(result.render())
        print()


if __name__ == "__main__":
    main()
