"""Fig. 7 — efficiency of irregular GEMMs: GPDSP cluster vs CPU.

Three panels with the same sweeps as Fig. 5(a-c), comparing the
*efficiency* (achieved performance / platform peak) of ftIMM on one GPDSP
cluster (peak 2764.8 GFLOPS) against modeled OpenBLAS 0.3.20 on the
16-core ARMv8 CPU (peak 281.6 GFLOPS), "based on the same bandwidth".
The paper: ftIMM delivers higher efficiency in most cases, up to 3.1x.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..baselines.cpu_openblas import openblas_sgemm
from ..core.ftimm import ftimm_gemm
from ..core.shapes import GemmShape
from ..hw.config import MachineConfig, default_machine
from .common import BIG, M_FIG5A, N_SWEEP

PANELS = [
    ("fig7a", "type1: M=2^16, K=N sweep", lambda v: (M_FIG5A, v, v)),
    ("fig7b", "type2: K=2^16, M=N sweep", lambda v: (v, v, M_FIG5A)),
    ("fig7c", "type3: M=K=20480, N sweep", lambda v: (BIG, v, BIG)),
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    results = []
    overall_max = 0.0
    for exp_id, title, dims in PANELS:
        dsp_y, cpu_y = [], []
        for v in N_SWEEP:
            m, n, k = dims(v)
            ft = ftimm_gemm(m, n, k, machine=machine, timing="analytic")
            cpu = openblas_sgemm(GemmShape(m, n, k), machine.cpu)
            dsp_y.append(100.0 * ft.efficiency)
            cpu_y.append(100.0 * cpu.efficiency)
        ratios = [d / c for d, c in zip(dsp_y, cpu_y)]
        overall_max = max(overall_max, max(ratios))
        wins = sum(r > 1.0 for r in ratios)
        claims = [
            Claim(
                name="higher efficiency in most cases",
                paper="ftIMM higher in most cases",
                measured=f"{wins}/{len(ratios)} sweep points",
                holds=wins >= (len(ratios) + 1) // 2,
            ),
            Claim(
                name="max efficiency ratio",
                paper="up to 3.1x (across all panels)",
                measured=f"up to {max(ratios):.2f}x in this panel",
                holds=max(ratios) > 1.0,
            ),
        ]
        results.append(
            ExperimentResult(
                exp_id=exp_id,
                title=f"efficiency, {title}",
                x_label="sweep value",
                y_label="% of platform peak",
                series=[
                    Series("ftIMM on GPDSP cluster", list(N_SWEEP), dsp_y),
                    Series("OpenBLAS on 16-core CPU", list(N_SWEEP), cpu_y),
                ],
                claims=claims,
            )
        )
    results[-1].claims.append(
        Claim(
            name="overall max efficiency ratio",
            paper="up to 3.1x",
            measured=f"up to {overall_max:.2f}x",
            holds=2.0 <= overall_max <= 4.5,
        )
    )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
