"""Tables I-III — generated assembly pipelines.

The paper's three pipeline tables show the steady-state VLIW reservation
grid of representative micro-kernels.  This experiment generates the same
three kernel classes and renders their modulo-scheduled loop bodies in the
paper's row format, checking the structural properties each table
demonstrates:

* Table I   (m_s >= t_fma, 64 < n_a <= 96): all three FMAC pipes issue
  every cycle, one broadcast chain per cycle, II = m_u;
* Table II  (m_s = 6, 32 < n_a <= 64): II = 8, FMAC pipes full, SVBCAST2
  dual broadcasts, paired SLDW loads;
* Table III (m_s = 6, 0 < n_a <= 32): broadcast-limited, FMAC occupancy
  capped at 2/3.
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult
from ..hw.config import MachineConfig, default_machine
from ..isa.emitter import fmac_occupancy
from ..isa.instructions import Opcode
from ..kernels.registry import registry_for


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    core = (machine or default_machine()).cluster.core
    registry = registry_for(core)
    results = []

    # Table I: m_s = 8 >= t_fma, n_a = 96
    k1 = registry.ftimm(8, 96, 512)
    occ1 = fmac_occupancy(k1.body_schedules[0])
    results.append(
        ExperimentResult(
            exp_id="table1",
            title="pipeline, m_s >= t_fma, 64 < n_a <= 96 (kernel 8x96x512)",
            x_label="", y_label="",
            claims=[
                Claim("II = m_u", "one kk step per m_u cycles",
                      f"II={k1.ii}, m_u={k1.blocks[0].m_u}",
                      k1.ii == k1.blocks[0].m_u),
                Claim("FMAC pipes saturated", "VFMULAS32 in all 3 pipes each cycle",
                      f"occupancy {occ1:.2f}", occ1 > 0.99),
                Claim("k_u = 1", "single accumulator copy",
                      f"k_u={k1.blocks[0].k_u}", k1.blocks[0].k_u == 1),
            ],
            notes=[k1.pipeline_table()],
        )
    )

    # Table II: m_s = 6, n_a = 64
    k2 = registry.ftimm(6, 64, 512)
    occ2 = fmac_occupancy(k2.body_schedules[0])
    ops2 = [i.op for i in k2.program.blocks[0].body]
    results.append(
        ExperimentResult(
            exp_id="table2",
            title="pipeline, m_s = 6, 32 < n_a <= 64 (kernel 6x64x512)",
            x_label="", y_label="",
            claims=[
                Claim("II = 8", "8-cycle steady state", f"II={k2.ii}", k2.ii == 8),
                Claim("FMAC pipes saturated", "VFMULAS32 in all 3 pipes each cycle",
                      f"occupancy {occ2:.2f}", occ2 > 0.99),
                Claim("dual broadcasts", "SVBCAST2 + SBALE2H + paired SLDW",
                      f"{ops2.count(Opcode.SVBCAST2)} SVBCAST2, "
                      f"{ops2.count(Opcode.SBALE2H)} SBALE2H, "
                      f"{ops2.count(Opcode.SLDW)} SLDW",
                      ops2.count(Opcode.SVBCAST2) == 6
                      and ops2.count(Opcode.SLDW) == 6),
            ],
            notes=[k2.pipeline_table()],
        )
    )

    # Table III: m_s = 6, n_a = 32
    k3 = registry.ftimm(6, 32, 512)
    occ3 = fmac_occupancy(k3.body_schedules[0])
    results.append(
        ExperimentResult(
            exp_id="table3",
            title="pipeline, m_s = 6, 0 < n_a <= 32 (kernel 6x32x512)",
            x_label="", y_label="",
            claims=[
                Claim("broadcast-limited occupancy",
                      "at most 2 of 3 FMAC pipes useful (66.7%)",
                      f"occupancy {occ3:.2f}", occ3 <= 2.0 / 3 + 1e-9),
            ],
            notes=[k3.pipeline_table()],
        )
    )
    return results


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
