"""Extension experiment (not in the paper): scaling across GPDSP clusters.

FT-m7032 has four GPDSP clusters with *private* DDR ports; the paper's
evaluation stays within one.  Because the intra-cluster scaling of Fig. 6
is capped by the single shared port, the natural question is what the full
chip buys.  Expectation encoded here:

* M-splittable shapes (types 1/3) scale nearly linearly with clusters —
  adding a cluster adds a memory port, precisely the bottleneck resource;
* the K-split type-2 case *also* scales nearly linearly — a finding that
  contrasts with Alg. 5's intra-cluster reduction (the worst scaler of
  Fig. 6): the cross-cluster reduction happens once per GEMM on a skinny
  C (N <= 96), so its cost is negligible, whereas the in-cluster
  reduction pays GSM traffic and a barrier per C tile.  Only for short K
  does per-cluster amortization start to bite (the 2^14 case).
"""

from __future__ import annotations

from ..analysis.tables import Claim, ExperimentResult, Series
from ..core.multi_cluster import multi_cluster_gemm
from ..hw.config import MachineConfig, default_machine

CLUSTER_SWEEP = [1, 2, 4]
CASES = [
    ("type1: 2^22 x 32 x 32", (2**22, 32, 32), "m"),
    ("type3: 20480 x 32 x 20480", (20480, 32, 20480), "m"),
    ("type2: 32 x 32 x 2^22 (K-split)", (32, 32, 2**22), "k"),
    ("type2: 32 x 32 x 2^14 (K-split, short)", (32, 32, 2**14), "k"),
]


def run(machine: MachineConfig | None = None) -> list[ExperimentResult]:
    machine = machine or default_machine()
    series = []
    final: dict[str, float] = {}
    for label, (m, n, k), split in CASES:
        baseline = None
        speedups = []
        for clusters in CLUSTER_SWEEP:
            r = multi_cluster_gemm(
                m, n, k, machine=machine, n_clusters=clusters, split=split
            )
            if baseline is None:
                baseline = r.seconds
            speedups.append(baseline / r.seconds)
        final[label] = speedups[-1]
        series.append(Series(label, list(CLUSTER_SWEEP), speedups))

    m_cases = [v for key, v in final.items() if "K-split" not in key]
    k_deep = next(v for key, v in final.items() if "2^22 (K" in key)
    k_short = next(v for key, v in final.items() if "short" in key)
    claims = [
        Claim(
            name="M-split scales near-linearly",
            paper="(extension) private DDR ports remove the Fig. 6 cap",
            measured=f"{min(m_cases):.2f}x on 4 clusters",
            holds=min(m_cases) > 3.0,
        ),
        Claim(
            name="K-split scales too (one-shot skinny-C reduction)",
            paper="(extension) unlike Alg. 5's per-tile GSM reduction",
            measured=f"{k_deep:.2f}x on 4 clusters at K=2^22",
            holds=k_deep > 3.5,
        ),
        Claim(
            name="short K pays the amortization",
            paper="(extension) per-cluster K shrinks below efficiency knee",
            measured=f"{k_short:.2f}x at K=2^14 vs {k_deep:.2f}x at 2^22",
            holds=k_short < k_deep,
        ),
        Claim(
            name="beats intra-cluster scaling",
            paper="Fig. 6 tops out near 3.3x on 8 cores of one port",
            measured=f"M-split: {max(m_cases):.2f}x on 4 clusters",
            holds=max(m_cases) > 3.3,
        ),
    ]
    return [
        ExperimentResult(
            exp_id="ext_multicluster",
            title="scaling across GPDSP clusters (extension)",
            x_label="clusters",
            y_label="speedup vs 1 cluster",
            series=series,
            claims=claims,
        )
    ]


def main() -> None:
    for result in run():
        print(result.render(chart=True))
        print()


if __name__ == "__main__":
    main()
