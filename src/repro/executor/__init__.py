"""Executors: three ways to run a lowered plan.

* :func:`~repro.executor.functional.run_functional` — compute the real
  result (correctness).
* :func:`~repro.executor.timed.run_timed` — discrete-event timing with
  DMA/compute overlap and bandwidth contention.
* :mod:`~repro.executor.analytic` — closed-form timing for huge shapes.
"""

from .analytic import (
    analytic_parallel_k,
    analytic_parallel_m,
    analytic_tgemm,
    busiest_core_chunks,
    pingpong_seq,
    pingpong_uniform,
)
from .functional import FunctionalReport, run_functional
from .timed import TimedResult, run_timed
from .trace import RowSummary, Span, TraceRecorder

__all__ = [
    "FunctionalReport",
    "RowSummary",
    "Span",
    "TimedResult",
    "TraceRecorder",
    "analytic_parallel_k",
    "analytic_parallel_m",
    "analytic_tgemm",
    "busiest_core_chunks",
    "pingpong_seq",
    "pingpong_uniform",
    "run_functional",
    "run_timed",
]
