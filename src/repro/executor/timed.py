"""Discrete-event (fine-grained) timing of a lowered plan.

Each core's op stream is walked by a simulation process:

* DMA ops spawn onto the core's DMA engine (FIFO channels), with the data
  movement charged to the contended DDR or GSM channel;
* KERNEL ops spawn onto the core's single compute pipeline;
* both wait first for their explicit ``deps`` (ping-pong buffer reuse);
* SYNC ops make the walk wait until every prior op of this core completed,
  then until all cores arrived, then a barrier delay plus any modeled
  reduction time elapses.

Because processes spawn eagerly inside an epoch, DMA for iteration ``i+1``
naturally overlaps compute for iteration ``i`` exactly where the plan's
dependencies allow — the ping-pong behaviour of Algorithms 1, 4 and 5
emerges rather than being hard-coded.

A sliding window caps in-flight processes per core so multi-hundred-
thousand-op plans simulate in bounded memory.

Observability: when a metrics registry is active (``repro.obs.collecting``)
or ``profile=True``, the run additionally fills a per-epoch
:class:`~repro.obs.profile.RunProfile` (compute/DMA busy, barrier waits,
window stalls, bytes per medium) and publishes simulator/channel/DMA
counters.  All hooks are observation-only: the simulated timeline is
bit-identical with observability on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.plans import GemmExecution, OpKind
from ..errors import SimulationError
from ..hw.cluster import ClusterSim
from ..hw.event_sim import Event, Simulator
from ..obs import MetricsRegistry, RunProfile
from ..obs.registry import current as _obs_current
from ..obs.trace import current_tracer
from .trace import TraceRecorder

#: max op processes spawned ahead of the oldest incomplete one, per core.
_WINDOW = 128


@dataclass
class TimedResult:
    """Timing outcome of one simulated GEMM execution."""

    seconds: float
    shape_flops: int
    executed_flops: int
    strategy: str
    n_cores: int
    peak_flops: float
    events_processed: int
    dma_bytes: int
    core_busy: list[float] = field(default_factory=list)
    ddr_mean_concurrency: float = 0.0
    #: fraction of the *theoretical* DDR port drawn on average (set when
    #: run_timed(record_bandwidth=True)); the paper's "actual bandwidth
    #: below theoretical" quantity
    ddr_utilization: float | None = None
    #: per-epoch busy-time accounting; set when profiling was enabled
    profile: RunProfile | None = None

    @property
    def gflops(self) -> float:
        """Useful-problem GFLOP/s (TGEMM's padding work doesn't count)."""
        return self.shape_flops / self.seconds / 1e9 if self.seconds else 0.0

    @property
    def efficiency(self) -> float:
        return self.shape_flops / (self.seconds * self.peak_flops) if self.seconds else 0.0


def run_timed(
    execution: GemmExecution,
    trace: TraceRecorder | None = None,
    *,
    record_bandwidth: bool = False,
    metrics: MetricsRegistry | None = None,
    profile: bool = False,
    faults=None,
) -> TimedResult:
    """Simulate the plan and return elapsed time + utilization stats.

    Pass a :class:`~repro.executor.trace.TraceRecorder` to capture a span
    per op (kernel spans are exact; DMA spans cover queueing + transfer);
    ``record_bandwidth=True`` additionally samples the DDR channel's
    aggregate draw and reports its time-average against the theoretical
    port.

    ``metrics`` (default: the ambient registry from
    :func:`repro.obs.collecting`, if any) receives simulator, channel and
    DMA-engine counters; ``profile=True`` — implied by an active registry —
    attaches a per-epoch :class:`~repro.obs.profile.RunProfile` to the
    result for bottleneck attribution.

    ``faults`` (a :class:`~repro.faults.inject.FaultInjector`) arms the
    fault model: DMA transfers may fail and retry with backoff (costed in
    simulated time), the DDR port honours the plan's degradation windows,
    and an armed core fault makes that core raise
    :class:`~repro.errors.CoreFailureError` out of :meth:`Simulator.run`
    the first time it issues work past the fault instant — the resilient
    driver catches it and re-dispatches on the surviving cores.
    """
    if metrics is None:
        metrics = _obs_current()
    cluster = ClusterSim(
        execution.cluster, record_bandwidth=record_bandwidth, faults=faults
    )
    sim = cluster.sim
    n_cores = execution.cluster.n_cores
    # an ambient tracer needs the epoch boundaries too (epoch spans)
    prof = (RunProfile(n_cores=n_cores)
            if (profile or metrics is not None or current_tracer() is not None)
            else None)

    # barrier plumbing: per sync id, one arrival event per core and a done
    # event that fires barrier_cycles + sync_seconds after the last arrival
    arrivals: dict[int, list[Event]] = {}
    done: dict[int, Event] = {}
    for sid in range(execution.n_syncs):
        arrivals[sid] = [sim.event(f"arrive{sid}c{c}") for c in range(n_cores)]
        done[sid] = sim.event(f"sync{sid}done")

    barrier_s = execution.cluster.barrier_cycles / execution.cluster.core.clock_hz
    sync_seconds: dict[int, float] = {}
    sync_tags: dict[int, str] = {}
    for core_ops in execution.core_ops:
        for op in core_ops:
            if op.kind is OpKind.SYNC:
                sync_seconds[op.sync_id] = op.sync_seconds
                sync_tags.setdefault(op.sync_id, op.tag)

    for sid in range(execution.n_syncs):
        def _arm(sid: int = sid) -> None:
            gathered = sim.all_of(arrivals[sid])

            def _fire(_ev: Event, sid: int = sid) -> None:
                delay = barrier_s + sync_seconds.get(sid, 0.0)
                sim.timeout(delay).wait(lambda _e: done[sid].succeed())

            gathered.wait(_fire)

        _arm()
        if prof is not None:
            # each sync completion closes an epoch at the global timeline
            done[sid].wait(
                lambda _ev, sid=sid: prof.close_epoch(
                    sid, sim.now, sync_tags.get(sid, "")
                )
            )

    clock = execution.cluster.core.clock_hz

    def dma_proc(core: int, op, dep_events: list[Event], epoch: int):
        if dep_events:
            yield sim.all_of(dep_events)
        if faults is not None:
            faults.check_core_alive_timed(core, sim.now)
        start = sim.now
        yield cluster.cores[core].dma.issue(op.desc)
        if prof is not None:
            prof.add_dma(
                epoch, core, start, sim.now,
                op.desc.medium.value, op.desc.nbytes,
            )
        if trace is not None:
            trace.add(f"core{core}/dma", op.tag or "dma", start, sim.now, "dma")

    def kernel_proc(core: int, op, dep_events: list[Event], epoch: int):
        if dep_events:
            yield sim.all_of(dep_events)
        if faults is not None:
            faults.check_core_alive_timed(core, sim.now)
        yield cluster.cores[core].run_kernel(op.cycles, tag=op.tag)
        duration = op.cycles / clock
        if prof is not None:
            prof.add_compute(epoch, core, duration)
        if trace is not None:
            trace.add(
                f"core{core}/compute", op.tag or "kernel",
                sim.now - duration, sim.now, "kernel",
            )
        tracer = current_tracer()
        if tracer is not None:
            tracer.record(
                op.tag or "kernel",
                category="kernel",
                start_s=sim.now - duration,
                end_s=sim.now,
                track=f"core{core}/compute",
                args={"core": core, "cycles": op.cycles, "epoch": epoch},
            )

    def walk(core: int, ops):
        events: list[Event | None] = [None] * len(ops)
        epoch = 0
        for idx, op in enumerate(ops):
            if idx >= _WINDOW:
                old = events[idx - _WINDOW]
                if old is not None and not old.triggered:
                    if prof is not None:
                        stall_t0 = sim.now
                        yield old
                        prof.add_window_stall(epoch, core, sim.now - stall_t0)
                    else:
                        yield old
            if op.kind is OpKind.SYNC:
                prior = [e for e in events[:idx] if e is not None and not e.triggered]
                if prior:
                    yield sim.all_of(prior)
                arrival_t = sim.now
                arrivals[op.sync_id][core].succeed()
                yield done[op.sync_id]
                if prof is not None:
                    prof.add_sync_wait(epoch, core, sim.now - arrival_t)
                if trace is not None and core == 0:
                    trace.add(
                        "cluster/sync", op.tag or f"sync{op.sync_id}",
                        arrival_t, sim.now, "sync",
                    )
                tracer = current_tracer()
                if tracer is not None and core == 0:
                    tracer.record(
                        op.tag or f"sync{op.sync_id}",
                        category="sync",
                        start_s=arrival_t,
                        end_s=sim.now,
                        track="cluster/sync",
                        args={"sync_id": op.sync_id},
                    )
                events[idx] = done[op.sync_id]
                epoch += 1
                continue
            deps = [events[d] for d in op.deps]
            if any(e is None for e in deps):
                raise SimulationError(f"op {idx} on core {core} has unresolved dep")
            if op.kind is OpKind.DMA:
                events[idx] = sim.process(
                    dma_proc(core, op, deps, epoch), f"dma{core}.{idx}"
                )
            else:
                events[idx] = sim.process(
                    kernel_proc(core, op, deps, epoch), f"k{core}.{idx}"
                )
        remaining = [e for e in events if e is not None and not e.triggered]
        if remaining:
            yield sim.all_of(remaining)

    walkers = [
        sim.process(walk(core, ops), f"walk{core}")
        for core, ops in enumerate(execution.core_ops)
    ]
    sim.all_of(walkers, "plan_done")
    sim.run()
    for w in walkers:
        if not w.triggered:
            raise SimulationError(
                "plan deadlocked: a core never finished its op stream"
            )

    if prof is not None:
        prof.finish(sim.now)
    tracer = current_tracer()
    if tracer is not None and prof is not None:
        for ep in prof.epochs:
            tracer.record(
                ep.sync_tag or f"epoch{ep.index}",
                category="epoch",
                start_s=ep.start,
                end_s=ep.end,
                track="epochs",
                args={
                    "index": ep.index,
                    "compute_frac": ep.compute_frac,
                    "dma_frac": ep.dma_frac,
                    "sync_frac": ep.sync_frac,
                    "stall_frac": ep.stall_frac,
                },
            )
    if metrics is not None:
        _publish_metrics(metrics, sim, cluster, prof)

    # per-precision peak: the plan's dtype sets lanes per register
    plan = execution.meta.get("plan")
    esize = getattr(plan, "esize", 4)
    peak = execution.cluster.peak_flops * 4 / esize
    utilization = None
    if record_bandwidth and cluster.ddr_channel.timeline is not None:
        from ..hw.bandwidth import mean_utilization

        utilization = mean_utilization(
            cluster.ddr_channel.timeline,
            execution.cluster.ddr_bandwidth,
            sim.now,
        )
    return TimedResult(
        seconds=sim.now,
        shape_flops=execution.shape.flops,
        executed_flops=execution.total_flops,
        strategy=execution.strategy,
        n_cores=n_cores,
        peak_flops=peak,
        events_processed=sim.events_processed,
        dma_bytes=sum(c.dma.bytes_moved for c in cluster.cores),
        core_busy=[c.busy_time for c in cluster.cores],
        ddr_mean_concurrency=cluster.ddr_channel.stats.mean_concurrency(),
        ddr_utilization=utilization,
        profile=prof,
    )


def _publish_metrics(
    m: MetricsRegistry,
    sim: Simulator,
    cluster: ClusterSim,
    prof: RunProfile | None,
) -> None:
    """Copy one run's simulator/channel/DMA statistics into the registry.

    Counters accumulate across runs under the same registry (e.g. the DES
    validation passes of the autotuner); gauges keep their high-water mark.
    """
    m.counter("sim/events_processed").inc(sim.events_processed)
    m.counter("sim/process_wakeups").inc(sim.process_wakeups)
    m.gauge("sim/heap_peak").set(sim.heap_peak)

    for name, channel in (("ddr", cluster.ddr_channel), ("gsm", cluster.gsm_channel)):
        stats = channel.stats
        m.counter(f"bw/{name}/bytes_served").inc(stats.bytes_served)
        m.counter(f"bw/{name}/busy_s").inc(stats.busy_time)
        m.counter(f"bw/{name}/contended_s").inc(stats.contended_time)
        m.counter(f"bw/{name}/stall_flow_s").inc(stats.stall_flow_seconds)
        m.gauge(f"bw/{name}/mean_concurrency").set(stats.mean_concurrency())

    queue_depth_peak = 0
    for core in cluster.cores:
        m.distribution("exec/core_busy_s").add(core.busy_time)
        m.counter("exec/compute_cycles").inc(core.compute_cycles)
        engine = core.dma
        m.counter("dma/transfers").inc(engine.transfers)
        m.counter("dma/queue_wait_s").inc(engine.queue_wait_s)
        queue_depth_peak = max(queue_depth_peak, engine.queue_depth_peak)
        for medium, nbytes in engine.bytes_by_medium.items():
            m.counter(f"dma/bytes/{medium}").inc(nbytes)
    m.gauge("dma/queue_depth_peak").set(queue_depth_peak)

    if prof is not None:
        m.gauge("exec/epochs").set(len(prof.epochs))
        m.counter("exec/sync_wait_s").inc(
            sum(sum(ep.sync_wait) for ep in prof.epochs)
        )
        m.counter("exec/window_stall_s").inc(
            sum(sum(ep.window_stall) for ep in prof.epochs)
        )
