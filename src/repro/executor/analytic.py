"""Closed-form timing of the three GEMM algorithms.

The DES executor is exact but walks every op; the paper's largest sweeps
(M up to 2^22 in Fig. 5 d/e) lower to millions of ops.  This module
composes the same quantities analytically:

* micro-kernel times come from the same generated-kernel cycle models;
* DMA times come from the same :class:`~repro.hw.dma.DmaTimingModel`;
* double-buffered loops use the exact two-slot recurrence
  ``finish = load + compute + (n-1) * max(load, compute)``;
* DDR contention is approximated by an even split across the cores active
  in the phase (``bw / n_active``) — the processor-sharing steady state.

The approximations (steady contention, serialized phase boundaries) are
validated against the DES executor on medium shapes by
``tests/test_executors.py`` and quantified by the ablation benchmark.

All functions take the *already adjusted* blocking plan, so the analytic
and event-driven paths are guaranteed to time the same plan.
"""

from __future__ import annotations

import math

from ..core.blocking import DTYPE_SIZES, FP32, KPlan, MPlan, TgemmPlan
from ..core.shapes import GemmShape
from ..hw.cluster import reduction_seconds
from ..hw.config import ClusterConfig
from ..hw.dma import DmaDescriptor, DmaTimingModel
from ..hw.memory import MemKind
from ..kernels.registry import KernelRegistry, registry_for
from .timed import TimedResult


def pingpong_uniform(n: int, load_s: float, compute_s: float) -> float:
    """Finish time of ``n`` double-buffered (load -> compute) iterations."""
    if n <= 0:
        return 0.0
    return load_s + compute_s + (n - 1) * max(load_s, compute_s)


def pingpong_seq(pairs: list[tuple[float, float]]) -> float:
    """Exact two-slot recurrence for heterogeneous iterations.

    ``pairs[i] = (load_i, compute_i)``; load ``i+1`` may start once load
    ``i`` left the engine and compute ``i-1`` freed the slot.
    """
    load_done = 0.0
    comp_done_prev = 0.0
    comp_done = 0.0
    for i, (load, comp) in enumerate(pairs):
        start_load = max(load_done, comp_done_prev)
        load_done = start_load + load
        comp_start = max(load_done, comp_done)
        comp_done_prev = comp_done
        comp_done = comp_start + comp
    return comp_done


def _blocks(total: int, block: int) -> list[tuple[int, int]]:
    """Distinct (extent, count) pairs of blocking ``total`` by ``block``."""
    full, rem = divmod(total, block)
    out = []
    if full:
        out.append((block, full))
    if rem:
        out.append((rem, 1))
    return out


def _busiest(count: int, n_cores: int) -> int:
    return math.ceil(count / n_cores) if count else 0


def busiest_core_chunks(total: int, block: int, n_cores: int) -> list[int]:
    """Chunk extents of the most-loaded core under round-robin assignment.

    Chunks of ``block`` (last one possibly a remainder) are dealt to cores
    by index modulo ``n_cores``; the heaviest core is either core 0 (most
    chunks) or the core owning the remainder chunk.  Returns that core's
    chunk-extent list (empty when ``total == 0``).
    """
    full, rem = divmod(total, block)
    n_chunks = full + (1 if rem else 0)
    if n_chunks == 0:
        return []

    def chunks_of(core: int) -> list[int]:
        out = []
        for idx in range(core, n_chunks, n_cores):
            out.append(rem if (rem and idx == n_chunks - 1) else block)
        return out

    candidates = {0, (n_chunks - 1) % n_cores}
    return max(
        (chunks_of(c) for c in candidates),
        key=lambda ch: (sum(ch), len(ch)),
    )


class _Costs:
    """Shared per-call context: timing model, bandwidths, clock."""

    def __init__(self, cluster: ClusterConfig, registry: KernelRegistry | None):
        self.cluster = cluster
        self.core = cluster.core
        self.tm = DmaTimingModel(cluster.core, cluster.dma)
        self.registry = registry or registry_for(cluster.core)
        self.clock = cluster.core.clock_hz
        self.barrier_s = cluster.barrier_cycles / self.clock
        #: achieved DDR bandwidth (theoretical port * sustain efficiency)
        self.ddr_bw = cluster.ddr_bandwidth * cluster.dma.ddr_efficiency
        #: one DMA channel's own rate ceiling and a core's aggregate
        self.flow_cap = cluster.dma.channel_bandwidth
        self.core_cap = cluster.dma.channel_bandwidth * cluster.dma.channels_per_core

    def ddr_share(self, p_active: int) -> float:
        """Per-transfer DDR bandwidth with ``p_active`` cores streaming."""
        return min(self.ddr_bw / max(1, p_active), self.flow_cap)

    def core_ddr_bw(self, p_active: int) -> float:
        """One core's aggregate DDR draw (all its channels together)."""
        return min(self.ddr_bw / max(1, p_active), self.core_cap)

    esize: int = FP32  # element size of the active plan's precision

    def dma_s(self, src: MemKind, dst: MemKind, rows: int, cols: int, bw: float) -> float:
        return self.tm.seconds(
            DmaDescriptor(src, dst, rows=rows, row_bytes=cols * self.esize), bw
        )

    def ddr_eff_bytes(self, rows: int, cols: int) -> int:
        """Effective DDR bytes of a 2-D transfer (burst overhead included)."""
        return rows * (cols * self.esize + self.cluster.dma.row_overhead_bytes)

    def result(self, shape: GemmShape, seconds: float, strategy: str) -> TimedResult:
        # efficiency is relative to the per-precision peak: FP64 halves the
        # lane count (same 64-bit registers, one double per VPE register)
        peak = self.cluster.peak_flops * FP32 / self.esize
        return TimedResult(
            seconds=seconds,
            shape_flops=shape.flops,
            executed_flops=shape.flops,
            strategy=strategy,
            n_cores=self.cluster.n_cores,
            peak_flops=peak,
            events_processed=0,
            dma_bytes=0,
        )


# ---------------------------------------------------------------------------
# M-parallel (Alg. 4)
# ---------------------------------------------------------------------------


def analytic_parallel_m(
    shape: GemmShape,
    cluster: ClusterConfig,
    plan: MPlan,
    registry: KernelRegistry | None = None,
    *,
    use_gsm: bool = True,
    kernel_style: str = "ftimm",
) -> TimedResult:
    """Two ablation knobs:

    * ``use_gsm=False`` — Alg. 4 without the B-in-GSM cache: every B_a
      tile streams from DDR, so the shared operand is re-read once per
      M chunk over the contended port.
    * ``kernel_style="tgemm"`` — the M-parallel loop structure but with
      TGEMM's fixed, implicitly-padded 6x96 micro-kernel, isolating what
      kernel auto-generation itself contributes (requires ``plan.m_s <=
      6``).
    """
    cs = _Costs(cluster, registry)
    cs.esize = plan.esize
    if kernel_style == "tgemm":
        kernel_cycles = lambda ms, nc, kc: cs.registry.tgemm(ms, nc, kc).cycles
    elif kernel_style == "ftimm":
        kernel_cycles = (
            lambda ms, nc, kc: cs.registry.ftimm(ms, nc, kc, plan.dtype).cycles
        )
    else:
        raise ValueError(f"unknown kernel_style {kernel_style!r}")
    m, n, k = shape.m, shape.n, shape.k
    p = cluster.n_cores
    n_chunks = math.ceil(m / plan.m_a)
    p_active = min(p, n_chunks)
    ddr_share = cs.ddr_share(p_active)
    gsm_share = cluster.gsm_bandwidth / max(1, p_active)

    def chunk_time(mr: int, ncg: int, kcg: int) -> float:
        """One m_a chunk; overlapped DMA streams cannot exceed the core's
        DDR share, so the composed estimate is floored by the byte count."""
        total = 0.0
        for nc, nc_count in _blocks(ncg, plan.n_a):
            c_load = cs.dma_s(MemKind.DDR, MemKind.AM, mr, nc, ddr_share)
            c_store = c_load
            ddr_bytes = 2 * cs.ddr_eff_bytes(mr, nc)
            jj_pairs: list[tuple[float, float]] = []
            for kc, kc_count in _blocks(kcg, plan.k_a):
                if use_gsm:
                    b_load = cs.dma_s(MemKind.GSM, MemKind.AM, kc, nc, gsm_share)
                else:
                    b_load = cs.dma_s(MemKind.DDR, MemKind.AM, kc, nc, ddr_share)
                    ddr_bytes += kc_count * cs.ddr_eff_bytes(kc, nc)
                tt_pairs: list[tuple[float, float]] = []
                for ms, ms_count in _blocks(mr, plan.m_s):
                    a_load = cs.dma_s(MemKind.DDR, MemKind.SM, ms, kc, ddr_share)
                    kern_s = kernel_cycles(ms, nc, kc) / cs.clock
                    tt_pairs.extend([(a_load, kern_s)] * ms_count)
                    ddr_bytes += ms_count * cs.ddr_eff_bytes(ms, kc)
                tt_time = pingpong_seq(tt_pairs)
                jj_pairs.extend([(b_load, tt_time)] * kc_count)
            composed = c_load + pingpong_seq(jj_pairs) + c_store
            total += nc_count * max(
                composed, ddr_bytes / cs.core_ddr_bw(p_active)
            )
        return total

    seconds = 0.0
    for ncg, ncg_count in _blocks(n, plan.n_g):
        j_pairs: list[tuple[float, float]] = []
        for kcg, kcg_count in _blocks(k, plan.k_g):
            # cooperative B_g fill at the full DDR port (skipped entirely
            # in the no-GSM ablation)
            if not use_gsm:
                per_core = sum(
                    chunk_time(mr, ncg, kcg)
                    for mr in busiest_core_chunks(m, plan.m_a, p)
                )
                j_pairs.extend([(0.0, per_core + cs.barrier_s)] * kcg_count)
                continue
            bg_fill = cs.dma_s(
                MemKind.DDR, MemKind.GSM, kcg, ncg,
                min(cs.ddr_bw, p * cs.core_cap),
            )
            # busiest core's chunk list for this panel (C_a is single-
            # buffered, so a core's chunks serialize)
            per_core = sum(
                chunk_time(mr, ncg, kcg)
                for mr in busiest_core_chunks(m, plan.m_a, p)
            )
            compute = per_core + cs.barrier_s
            j_pairs.extend([(bg_fill, compute)] * kcg_count)
        seconds += ncg_count * pingpong_seq(j_pairs)
    return cs.result(shape, seconds, "ftimm-m")


# ---------------------------------------------------------------------------
# K-parallel (Alg. 5)
# ---------------------------------------------------------------------------


def analytic_parallel_k(
    shape: GemmShape,
    cluster: ClusterConfig,
    plan: KPlan,
    registry: KernelRegistry | None = None,
) -> TimedResult:
    cs = _Costs(cluster, registry)
    cs.esize = plan.esize
    m, n, k = shape.m, shape.n, shape.k
    p = cluster.n_cores
    n_chunks = math.ceil(k / plan.k_a)
    p_active = min(p, n_chunks)
    ddr_share = cs.ddr_share(p_active)

    def tile_time(mar: int, nar: int) -> float:
        init_s = (
            max(1, mar * nar * plan.esize // cs.core.am_bytes_per_cycle)
            / cs.clock
        )

        def chunk_pair(kc: int) -> tuple[float, float]:
            b_load = cs.dma_s(MemKind.DDR, MemKind.AM, kc, nar, ddr_share)
            u_pairs: list[tuple[float, float]] = []
            for ms, ms_count in _blocks(mar, plan.m_s):
                a_load = cs.dma_s(MemKind.DDR, MemKind.SM, ms, kc, ddr_share)
                kern_s = cs.registry.ftimm(ms, nar, kc, plan.dtype).cycles / cs.clock
                u_pairs.extend([(a_load, kern_s)] * ms_count)
            return (b_load, pingpong_seq(u_pairs))

        # busiest core's chunks; B_a double-buffers across them, but all
        # of the core's DDR streams (A and B) share its bandwidth slice
        chunks = busiest_core_chunks(k, plan.k_a, p)
        pairs = [chunk_pair(kc) for kc in chunks]
        ddr_bytes = 0
        for kc in chunks:
            ddr_bytes += cs.ddr_eff_bytes(kc, nar)
            for ms, ms_count in _blocks(mar, plan.m_s):
                ddr_bytes += ms_count * cs.ddr_eff_bytes(ms, kc)
        loop_time = max(pingpong_seq(pairs), ddr_bytes / cs.core_ddr_bw(p_active))
        red_s = reduction_seconds(cluster, mar * nar * plan.esize, p_active)
        return init_s + loop_time + cs.barrier_s + red_s

    seconds = 0.0
    for mgr, mgr_count in _blocks(m, plan.m_g):
        for ngr, ngr_count in _blocks(n, plan.n_g):
            tile_total = 0.0
            for mar, mar_count in _blocks(mgr, plan.m_a):
                for nar, nar_count in _blocks(ngr, plan.n_a):
                    tile_total += mar_count * nar_count * tile_time(mar, nar)
            seconds += mgr_count * ngr_count * tile_total
    return cs.result(shape, seconds, "ftimm-k")


# ---------------------------------------------------------------------------
# TGEMM (Alg. 1)
# ---------------------------------------------------------------------------


def analytic_tgemm(
    shape: GemmShape,
    cluster: ClusterConfig,
    plan: TgemmPlan,
    registry: KernelRegistry | None = None,
) -> TimedResult:
    cs = _Costs(cluster, registry)
    m, n, k = shape.m, shape.n, shape.k
    p = cluster.n_cores
    n_strips = math.ceil(n / plan.n_a)
    p_active = min(p, n_strips)
    ddr_share = cs.ddr_share(p_active)
    gsm_share = cluster.gsm_bandwidth / max(1, p_active)

    def strip_time(mr: int, nc: int, kc: int) -> float:
        b_load = cs.dma_s(MemKind.DDR, MemKind.AM, kc, nc, ddr_share)
        c_load = cs.dma_s(MemKind.DDR, MemKind.AM, mr, nc, ddr_share)
        tt_pairs: list[tuple[float, float]] = []
        for ms, ms_count in _blocks(mr, plan.m_s):
            a_load = cs.dma_s(MemKind.GSM, MemKind.SM, ms, kc, gsm_share)
            kern_s = cs.registry.tgemm(ms, nc, kc).cycles / cs.clock
            tt_pairs.extend([(a_load, kern_s)] * ms_count)
        composed = b_load + c_load + pingpong_seq(tt_pairs) + c_load
        ddr_bytes = cs.ddr_eff_bytes(kc, nc) + 2 * cs.ddr_eff_bytes(mr, nc)
        return max(composed, ddr_bytes / cs.core_ddr_bw(p_active))

    seconds = 0.0
    for mr, mr_count in _blocks(m, plan.m_g):
        j_pairs: list[tuple[float, float]] = []
        for kc, kc_count in _blocks(k, plan.k_g):
            ag_fill = cs.dma_s(
                MemKind.DDR, MemKind.GSM, mr, kc,
                min(cs.ddr_bw, p * cs.core_cap),
            )
            # busiest core's N-strips for this panel (strips serialize on
            # a core: B_a/C_a ping-pong gives partial overlap we ignore)
            strips = sum(
                strip_time(mr, nc, kc)
                for nc in busiest_core_chunks(n, plan.n_a, p)
            )
            compute = strips + cs.barrier_s
            j_pairs.extend([(ag_fill, compute)] * kc_count)
        seconds += mr_count * pingpong_seq(j_pairs)
    return cs.result(shape, seconds, "tgemm")
