"""Functional execution of a lowered plan.

Replays every op's closure in global emission order (``Op.seq``).  The
drivers emit in the sequential order of the paper's algorithms, so this
computes the exact blocked result — including TGEMM's implicit padding,
the K-parallel partial-sum reduction, and every edge/remainder tile —
while the capacity checks already happened at lowering time.

This is the path the correctness tests drive: for random shapes,
``run_functional`` must reproduce ``C + A @ B`` to float32 accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.plans import GemmExecution, OpKind


@dataclass
class FunctionalReport:
    """What happened during a functional replay."""

    ops_executed: int
    dma_ops: int
    kernel_ops: int
    sync_ops: int
    bytes_moved: int
    flops: int
    #: how KERNEL closures computed ("numpy", "compiled" or "interp")
    kernel_exec: str = "numpy"


def run_functional(execution: GemmExecution, faults=None) -> FunctionalReport:
    """Run all op closures; the C operand passed at lowering is updated.

    ``faults`` (a :class:`~repro.faults.inject.FaultInjector`) arms the
    core-failure model for this mode: before each op runs, the owning
    core's executed-op count is checked against the armed fault, raising
    :class:`~repro.errors.CoreFailureError` once it trips.  Tile-level
    corruption is injected inside the closures themselves (the lowering
    context routes copies and kernel applications through the injector's
    guards), so a replay either computes the exact blocked result or
    raises — never returns silently wrong data.
    """
    ops = sorted(
        (op for core_ops in execution.core_ops for op in core_ops),
        key=lambda op: op.seq,
    )
    dma = kern = sync = 0
    bytes_moved = 0
    flops = 0
    ops_done: dict[int, int] = {}
    for op in ops:
        if faults is not None:
            done = ops_done.get(op.core, 0)
            faults.check_core_alive_functional(op.core, done)
            ops_done[op.core] = done + 1
        if op.run is not None:
            op.run()
        if op.kind is OpKind.DMA:
            dma += 1
            bytes_moved += op.desc.nbytes if op.desc else 0
        elif op.kind is OpKind.KERNEL:
            kern += 1
            flops += op.flops
        else:
            sync += 1
    return FunctionalReport(
        ops_executed=len(ops),
        dma_ops=dma,
        kernel_ops=kern,
        sync_ops=sync,
        bytes_moved=bytes_moved,
        flops=flops,
        kernel_exec=execution.meta.get("kernel_exec", "numpy"),
    )
