"""Execution traces from the event-driven executor.

A :class:`TraceRecorder` passed to :func:`repro.executor.timed.run_timed`
collects one span per op — kernels on each core's compute row, DMA
transfers on its engine row, syncs on a cluster row — and can

* export Chrome-trace JSON (load in ``chrome://tracing`` / Perfetto),
* compute per-row utilization summaries,
* render a coarse ASCII timeline for terminal inspection.

This is how one *sees* the ping-pong: with double buffering working, the
DMA row of a core stays busy underneath the compute row instead of
alternating with it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import SimulationError


@dataclass(frozen=True)
class Span:
    row: str        # e.g. "core3/compute", "core3/dma", "cluster/sync"
    name: str       # op tag
    start: float    # seconds
    end: float
    category: str   # "kernel" | "dma" | "sync"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RowSummary:
    row: str
    spans: int
    busy: float
    first: float
    last: float

    @property
    def utilization(self) -> float:
        window = self.last - self.first
        return self.busy / window if window > 0 else 0.0


@dataclass
class TraceRecorder:
    """Collects spans during a timed run."""

    spans: list[Span] = field(default_factory=list)

    def add(self, row: str, name: str, start: float, end: float, category: str) -> None:
        if end < start:
            raise SimulationError(f"span {name!r} ends before it starts")
        self.spans.append(Span(row, name, start, end, category))

    # -- outputs -------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome-trace ("trace event format") dict; times in microseconds."""
        rows = sorted({s.row for s in self.spans})
        tids = {row: i for i, row in enumerate(rows)}
        events = [
            {
                "name": row,
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "cat": "__metadata",
                "args": {"name": row},
            }
            for row, tid in tids.items()
        ]
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": 0,
                    "tid": tids[span.row],
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace()))
        return path

    def summarize(self) -> list[RowSummary]:
        """Per-row busy time; overlapping spans on a row are merged."""
        by_row: dict[str, list[Span]] = {}
        for span in self.spans:
            by_row.setdefault(span.row, []).append(span)
        out = []
        for row, spans in sorted(by_row.items()):
            intervals = sorted((s.start, s.end) for s in spans)
            busy = 0.0
            cur_start, cur_end = intervals[0]
            for start, end in intervals[1:]:
                if start > cur_end:
                    busy += cur_end - cur_start
                    cur_start, cur_end = start, end
                else:
                    cur_end = max(cur_end, end)
            busy += cur_end - cur_start
            out.append(
                RowSummary(
                    row=row,
                    spans=len(spans),
                    busy=busy,
                    first=min(s.start for s in spans),
                    last=max(s.end for s in spans),
                )
            )
        return out

    def ascii_timeline(self, width: int = 72) -> str:
        """Coarse terminal Gantt: one line per row, '#' where busy."""
        if not self.spans:
            return "(empty trace)"
        t0 = min(s.start for s in self.spans)
        t1 = max(s.end for s in self.spans)
        scale = (t1 - t0) or 1.0
        lines = []
        name_w = max(len(s.row) for s in self.spans)
        for summary in self.summarize():
            cells = [" "] * width
            for span in self.spans:
                if span.row != summary.row:
                    continue
                lo = int((span.start - t0) / scale * (width - 1))
                hi = max(lo, int((span.end - t0) / scale * (width - 1)))
                for i in range(lo, hi + 1):
                    cells[i] = "#"
            lines.append(
                f"{summary.row.ljust(name_w)} |{''.join(cells)}| "
                f"{100 * summary.utilization:5.1f}%"
            )
        lines.append(f"{'':{name_w}}  span: {scale * 1e6:.1f} us")
        return "\n".join(lines)

    @property
    def n_spans(self) -> int:
        return len(self.spans)
