"""Declarative, seeded fault plans for the simulated FT-m7032.

A :class:`FaultPlan` is a frozen description of *what can go wrong* during
one GEMM: per-transfer DMA failure probability, per-tile bit-flip
probability (SM/AM/GSM upsets), DDR bandwidth degradation windows, and
explicit mid-run core failures.  It carries no state — execution state
lives in :class:`~repro.faults.inject.FaultInjector`, which is derived
from the plan per attempt.

Determinism is the core contract: every injection decision is a pure
function of ``(seed, attempt, site key)``, so two runs with the same plan
inject byte-identical faults regardless of host, process count or wall
clock.  The chaos harness and the determinism tests rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class CoreFault:
    """One core failing mid-run.

    ``after_s`` arms the fault for timed (DES) execution: the core dies
    the first time it tries to issue work at ``sim.now >= after_s``.
    ``after_ops`` arms it for functional execution: the core dies once it
    has executed that many of its ops.  ``None`` leaves the respective
    mode unaffected.
    """

    core: int
    after_s: float | None = None
    after_ops: int | None = None

    def validate(self) -> "CoreFault":
        if self.core < 0:
            raise ConfigError(f"core fault on negative core {self.core}")
        if self.after_s is not None and self.after_s < 0:
            raise ConfigError(f"core fault after_s={self.after_s} < 0")
        if self.after_ops is not None and self.after_ops < 0:
            raise ConfigError(f"core fault after_ops={self.after_ops} < 0")
        return self


@dataclass(frozen=True)
class DegradationWindow:
    """DDR bandwidth scaled by ``factor`` during ``[start_s, end_s)``.

    Models thermal throttling or a co-tenant cluster stealing the port;
    the shared channel integrates piecewise so DES timing stays exact.
    """

    start_s: float
    end_s: float
    factor: float

    def validate(self) -> "DegradationWindow":
        if not 0.0 <= self.start_s < self.end_s:
            raise ConfigError(
                f"degradation window [{self.start_s}, {self.end_s}) is empty"
            )
        if not 0.0 < self.factor <= 1.0:
            raise ConfigError(
                f"degradation factor {self.factor} outside (0, 1]"
            )
        return self


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs to decide *when* faults strike.

    Rates are per-site probabilities in ``[0, 1]``: ``dma_fail_rate`` per
    DMA descriptor attempt (timed mode — a failed transfer is retried
    with exponential backoff, all costed in simulated time), and
    ``bitflip_rate`` per tile move / kernel application (functional mode
    — caught by DMA read-back verification and ABFT checksums).

    ``core_faults`` fire one per re-dispatch attempt, in order: the first
    entry strikes the initial run, the second strikes the first re-run on
    the reduced cluster, and so on.  This keeps multi-failure scenarios
    expressible while guaranteeing the resilient driver terminates.
    """

    seed: int = 0
    dma_fail_rate: float = 0.0
    bitflip_rate: float = 0.0
    ddr_degradation: tuple[DegradationWindow, ...] = ()
    core_faults: tuple[CoreFault, ...] = ()
    max_dma_retries: int = 5
    backoff_base_cycles: int = 2_000
    max_kernel_retries: int = 3
    max_copy_retries: int = 3

    def __post_init__(self) -> None:
        for name in ("dma_fail_rate", "bitflip_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name}={rate} outside [0, 1]")
        for name in (
            "max_dma_retries", "backoff_base_cycles",
            "max_kernel_retries", "max_copy_retries",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        windows = sorted(self.ddr_degradation, key=lambda w: w.start_s)
        for w in windows:
            w.validate()
        for prev, nxt in zip(windows, windows[1:]):
            if nxt.start_s < prev.end_s:
                raise ConfigError(
                    f"degradation windows overlap at {nxt.start_s}"
                )
        object.__setattr__(self, "ddr_degradation", tuple(windows))
        for cf in self.core_faults:
            cf.validate()

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(
            self.dma_fail_rate
            or self.bitflip_rate
            or self.ddr_degradation
            or self.core_faults
        )

    def core_fault_for_attempt(self, attempt: int) -> CoreFault | None:
        if 0 <= attempt < len(self.core_faults):
            return self.core_faults[attempt]
        return None


#: a benign default: nothing ever fails (useful as an explicit "faults
#: wired but quiet" plan in tests).
NO_FAULTS = FaultPlan()
