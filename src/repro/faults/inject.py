"""Deterministic fault injection + the recovery guards that survive it.

One :class:`FaultInjector` accompanies one execution attempt.  It answers
two kinds of questions:

* **injection** — "does fault X strike at site Y?", decided by hashing
  ``(seed, attempt, site key)`` (:meth:`FaultInjector.unit`), so the same
  plan always injects the same faults;
* **recovery** — the guarded operations that keep injected faults from
  corrupting results: read-back-verified tile copies (the DMA engines of
  FT-m7032 can CRC-check transfers) and Huang–Abraham ABFT checksums
  around per-core tile GEMMs (verify-and-recompute).

Bit flips target the *exponent MSB* of one element (bit 30 for float32,
bit 62 for float64).  That is the class of upset ABFT checksums can
always separate from floating-point rounding: the induced change is at
least ``2.0`` in magnitude, while the checksum tolerance is a Higham-style
forward-error bound several orders below it for the tile sizes the
drivers emit.  Low-mantissa flips are numerically indistinguishable from
rounding — the standard ABFT caveat, documented in docs/ROBUSTNESS.md.

Every recovery is counted (``counters``) and mirrored into the ambient
:mod:`repro.obs` registry under ``faults/*`` so ``repro perf`` and the
chaos harness can report the honest cost of surviving.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import CorruptionError, CoreFailureError
from ..obs.registry import current as _obs_current
from ..obs.trace import current_tracer
from .plan import CoreFault, FaultPlan

#: slack multiplier on the Higham rounding bound; keeps false positives
#: impossible in practice while staying far below the >= 2.0 magnitude
#: change an exponent-MSB flip induces.
_ABFT_SLACK = 4.0

#: absolute tolerance floor so all-zero tiles don't demand exact sums.
_ABFT_FLOOR = 1e-30

_EXP_MSB = {4: np.uint32(1 << 30), 8: np.uint64(1 << 62)}


class FaultInjector:
    """Stateful companion of one execution attempt under a fault plan."""

    def __init__(self, plan: FaultPlan, attempt: int = 0) -> None:
        self.plan = plan
        self.attempt = attempt
        self.core_fault: CoreFault | None = plan.core_fault_for_attempt(attempt)
        self.counters: dict[str, float] = {}
        self._kernel_idx = 0
        self._copy_idx = 0

    # -- deterministic decisions -------------------------------------------

    def unit(self, *key) -> float:
        """Uniform [0, 1) value, a pure function of (seed, attempt, key)."""
        blob = repr((self.plan.seed, self.attempt) + key).encode()
        h = hashlib.blake2b(blob, digest_size=8).digest()
        return int.from_bytes(h, "big") / 2.0**64

    def _hit(self, rate: float, *key) -> bool:
        return rate > 0.0 and self.unit(*key) < rate

    # -- counters ----------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        m = _obs_current()
        if m is not None:
            m.counter(f"faults/{name}").inc(value)
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                f"fault/{name}",
                category="fault",
                track="faults",
                args={"value": value, "attempt": self.attempt,
                      "seed": self.plan.seed},
            )

    # -- DMA transfer failures (timed mode) --------------------------------

    def dma_transfer_fails(self, core: int, issue: int, attempt: int) -> bool:
        return self._hit(self.plan.dma_fail_rate, "dma", core, issue, attempt)

    def backoff_s(self, retry: int, clock_hz: float) -> float:
        """Exponential backoff before retry number ``retry`` (1-based)."""
        return self.plan.backoff_base_cycles * 2.0 ** (retry - 1) / clock_hz

    # -- core failures -----------------------------------------------------

    def check_core_alive_timed(self, core: int, now: float) -> None:
        cf = self.core_fault
        if (
            cf is not None
            and cf.core == core
            and cf.after_s is not None
            and now >= cf.after_s
        ):
            self.count("core_failures")
            raise CoreFailureError(core, at_s=now)

    def check_core_alive_functional(self, core: int, ops_done: int) -> None:
        cf = self.core_fault
        if (
            cf is not None
            and cf.core == core
            and cf.after_ops is not None
            and ops_done >= cf.after_ops
        ):
            self.count("core_failures")
            raise CoreFailureError(core, at_op=ops_done)

    # -- bit flips ---------------------------------------------------------

    def _flip(self, arr: np.ndarray, *key) -> None:
        """Flip the exponent MSB of one deterministically chosen element.

        Works on strided views: the element is round-tripped through a
        one-element scratch array rather than bit-cast in place.
        """
        if arr.size == 0:
            return
        flat_idx = int(self.unit("site", *key) * arr.size) % arr.size
        where = np.unravel_index(flat_idx, arr.shape)
        mask = _EXP_MSB[arr.dtype.itemsize]
        scratch = np.array([arr[where]], dtype=arr.dtype)
        scratch.view(mask.dtype)[0] ^= mask
        arr[where] = scratch[0]
        self.count("bitflips_injected")

    # -- guarded tile copy (DMA read-back verification) --------------------

    def guarded_copy(
        self, dst: np.ndarray, src: np.ndarray, core: int
    ) -> None:
        """``dst[...] = src`` surviving injected transfer corruption.

        After every copy the destination is compared against the source
        (modeling the DMA engine's CRC read-back); a mismatch triggers a
        re-copy, up to ``max_copy_retries``.
        """
        idx = self._copy_idx
        self._copy_idx += 1
        for attempt in range(self.plan.max_copy_retries + 1):
            dst[...] = src
            if self._hit(self.plan.bitflip_rate, "copy", core, idx, attempt):
                self._flip(dst, "copy", core, idx, attempt)
            if np.array_equal(dst, src):
                if attempt:
                    self.count("copy_retries", attempt)
                return
        self.count("copy_retries", self.plan.max_copy_retries)
        raise CorruptionError(
            f"tile copy on core {core} stayed corrupt after "
            f"{self.plan.max_copy_retries} re-copies"
        )

    # -- ABFT-guarded tile GEMM -------------------------------------------

    def guarded_gemm(self, kern, a, b, c, mode: str, core: int) -> None:
        """Apply ``c += a @ b`` with checksum verify-and-recompute.

        Row and column sums of the updated C tile are checked against
        their closed-form expectations (Huang–Abraham):

            C' 1 = C 1 + A (B 1)        (row sums)
            1ᵀC' = 1ᵀC + (1ᵀA) B        (column sums)

        at O(mk + kn + mn) cost versus the kernel's O(mnk).  A mismatch
        (or a non-finite checksum) restores the saved C tile and
        recomputes; the retry budget exhausting raises
        :class:`~repro.errors.CorruptionError` — never a silent wrong
        answer.
        """
        idx = self._kernel_idx
        self._kernel_idx += 1
        c_before = c.copy()
        exp_rows, exp_cols, tol_rows, tol_cols = _abft_expect(a, b, c_before)
        for attempt in range(self.plan.max_kernel_retries + 1):
            if attempt:
                c[...] = c_before
                self.count("abft_recomputes")
            kern.apply_exec(a, b, c, mode)
            if self._hit(self.plan.bitflip_rate, "kern", core, idx, attempt):
                self._flip(c, "kern", core, idx, attempt)
            if _abft_ok(c, exp_rows, exp_cols, tol_rows, tol_cols):
                return
            self.count("abft_detected")
        raise CorruptionError(
            f"ABFT checksum on core {core} failed after "
            f"{self.plan.max_kernel_retries} recomputes"
        )


def _abft_expect(a, b, c_before):
    """Expected post-update checksums + rounding tolerances (float64)."""
    a64 = a.astype(np.float64, copy=False)
    b64 = b.astype(np.float64, copy=False)
    c64 = c_before.astype(np.float64, copy=False)
    exp_rows = c64.sum(axis=1) + a64 @ b64.sum(axis=1)
    exp_cols = c64.sum(axis=0) + a64.sum(axis=0) @ b64
    k = a.shape[1]
    gamma = _ABFT_SLACK * np.finfo(a.dtype).eps * (k + 8)
    abs_a, abs_b = np.abs(a64), np.abs(b64)
    row_mag = abs_a @ abs_b.sum(axis=1) + np.abs(c64).sum(axis=1)
    col_mag = abs_a.sum(axis=0) @ abs_b + np.abs(c64).sum(axis=0)
    return exp_rows, exp_cols, gamma * row_mag + _ABFT_FLOOR, gamma * col_mag + _ABFT_FLOOR


def _abft_ok(c, exp_rows, exp_cols, tol_rows, tol_cols) -> bool:
    rows = c.sum(axis=1, dtype=np.float64)
    cols = c.sum(axis=0, dtype=np.float64)
    if not (np.isfinite(rows).all() and np.isfinite(cols).all()):
        return False
    return bool(
        (np.abs(rows - exp_rows) <= tol_rows).all()
        and (np.abs(cols - exp_cols) <= tol_cols).all()
    )


@dataclass
class FaultReport:
    """What one resilient GEMM survived, and what surviving cost.

    Attached to :class:`~repro.core.ftimm.GemmResult` whenever a fault
    plan was supplied — all-zero when the plan injected nothing.
    """

    seed: int
    injected_bitflips: int = 0
    dma_retries: int = 0
    dma_retry_s: float = 0.0
    copy_retries: int = 0
    abft_detected: int = 0
    abft_recomputes: int = 0
    core_failures: int = 0
    redispatches: int = 0
    #: simulated seconds of work discarded by core-failure re-dispatch
    lost_s: float = 0.0
    #: cores the run finished on (< the initial cluster after failures)
    final_cores: int = 0

    @property
    def recovered_faults(self) -> int:
        return (
            self.dma_retries
            + self.copy_retries
            + self.abft_detected
            + self.redispatches
        )

    def absorb(self, counters: dict[str, float]) -> None:
        """Fold one injector's counters into this report."""
        self.injected_bitflips += int(counters.get("bitflips_injected", 0))
        self.dma_retries += int(counters.get("dma_retries", 0))
        self.dma_retry_s += counters.get("dma_retry_s", 0.0)
        self.copy_retries += int(counters.get("copy_retries", 0))
        self.abft_detected += int(counters.get("abft_detected", 0))
        self.abft_recomputes += int(counters.get("abft_recomputes", 0))
        self.core_failures += int(counters.get("core_failures", 0))
