"""Chaos harness: prove faulted GEMMs are bit-correct or fail loudly.

The end-to-end robustness contract of :mod:`repro.faults` is *no silent
wrong answers*: a run under any fault plan either

* completes with a result **bit-identical** to the fault-free run of the
  same configuration (recoveries hidden, their cost reported), or
* raises a typed :class:`~repro.errors.ReproError` (retry budgets
  exhausted, last core lost).

:func:`chaos_sweep` checks that contract over a grid of shapes, fault
rates and seeds.  For core-failure scenarios the baseline is the
fault-free run pinned to the surviving core count and the same strategy —
re-dispatch re-tunes the blocked loop for the reduced cluster, so that is
the configuration whose bits the resilient run must reproduce.

``benchmarks/chaos_smoke.py`` wraps this as the CI gate; the ``repro
chaos`` CLI exposes it interactively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from .inject import FaultReport
from .plan import CoreFault, FaultPlan

#: (m, n, k) grid: one per strategy (M-parallel, K-parallel, TGEMM via
#: impl), K kept moderate so the ABFT tolerance stays far below the
#: smallest injectable corruption.
DEFAULT_SHAPES = ((96, 32, 128), (24, 8, 256), (64, 96, 64))


@dataclass
class ChaosOutcome:
    """One faulted run, classified."""

    shape: tuple[int, int, int]
    impl: str
    seed: int
    scenario: str
    #: "clean" (nothing injected), "recovered" (faults injected, bits
    #: exact), "failed" (typed error — acceptable), or "silent"
    #: (wrong bits returned — the contract violation)
    status: str
    error: str = ""
    report: FaultReport | None = None

    @property
    def ok(self) -> bool:
        return self.status != "silent"


@dataclass
class ChaosSummary:
    """Aggregate of one sweep; ``ok`` is the CI gate."""

    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def silent(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for o in self.outcomes:
            out[o.status] = out.get(o.status, 0) + 1
        return out

    def describe(self) -> str:
        c = self.counts()
        total = len(self.outcomes)
        recovered_faults = sum(
            o.report.recovered_faults for o in self.outcomes if o.report
        )
        line = (
            f"chaos: {total} runs — "
            f"{c.get('clean', 0)} clean, "
            f"{c.get('recovered', 0)} recovered, "
            f"{c.get('failed', 0)} failed loudly, "
            f"{c.get('silent', 0)} SILENT; "
            f"{recovered_faults} individual faults survived"
        )
        for o in self.silent:
            line += (
                f"\n  SILENT CORRUPTION: {o.impl} {o.shape} "
                f"seed={o.seed} scenario={o.scenario}"
            )
        return line


def _operands(shape, dtype, seed):
    m, n, k = shape
    np_dtype = np.float64 if dtype == "f64" else np.float32
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np_dtype)
    b = rng.standard_normal((k, n)).astype(np_dtype)
    c = rng.standard_normal((m, n)).astype(np_dtype)
    return a, b, c


def _gemm(impl, shape, *, a, b, c, dtype, **kw):
    from ..core.ftimm import ftimm_gemm, tgemm_gemm  # lazy: avoids cycle

    m, n, k = shape
    if impl == "tgemm":
        return tgemm_gemm(m, n, k, a=a, b=b, c=c, timing="none", **kw)
    return ftimm_gemm(m, n, k, a=a, b=b, c=c, timing="none", dtype=dtype, **kw)


def _baseline(impl, shape, dtype, seed, *, cores=None, strategy=None):
    """Bits of the fault-free run (optionally on a reduced cluster)."""
    a, b, c = _operands(shape, dtype, seed)
    kw = {}
    if cores is not None:
        kw["cores"] = cores
    if strategy is not None and impl != "tgemm":
        kw["force_strategy"] = strategy
    _gemm(impl, shape, a=a, b=b, c=c, dtype=dtype, **kw)
    return c


def chaos_sweep(
    *,
    shapes=DEFAULT_SHAPES,
    rates=(1e-3, 1e-2),
    seeds=range(4),
    impls=("ftimm", "tgemm"),
    dtype: str = "f32",
    core_failures: bool = True,
    timed_probe: bool = True,
) -> ChaosSummary:
    """Run the sweep; every outcome is classified, none skipped silently.

    Scenarios per (impl, shape, seed): one bit-flip plan per rate, and —
    when ``core_failures`` — a mid-run core loss combined with the
    highest rate.  ``timed_probe`` adds one DES run per impl with DMA
    failures and a DDR degradation window, checking the timed path
    completes (or fails loudly) under injection and costs the retries
    in simulated time.
    """
    summary = ChaosSummary()
    for impl in impls:
        for shape in shapes:
            for seed in seeds:
                ref = _baseline(impl, shape, dtype, seed)
                for rate in rates:
                    plan = FaultPlan(seed=seed, bitflip_rate=rate)
                    summary.outcomes.append(
                        _one_run(impl, shape, dtype, seed, plan, ref,
                                 scenario=f"bitflip@{rate:g}")
                    )
                if core_failures:
                    plan = FaultPlan(
                        seed=seed,
                        bitflip_rate=max(rates),
                        core_faults=(CoreFault(core=0, after_ops=3),),
                    )
                    summary.outcomes.append(
                        _one_run(impl, shape, dtype, seed, plan, None,
                                 scenario="core-loss+bitflips")
                    )
        if timed_probe:
            summary.outcomes.append(_timed_probe(impl, shapes[0], dtype))
    return summary


def _one_run(impl, shape, dtype, seed, plan, ref, scenario) -> ChaosOutcome:
    a, b, c = _operands(shape, dtype, seed)
    try:
        result = _gemm(impl, shape, a=a, b=b, c=c, dtype=dtype, faults=plan)
    except ReproError as exc:
        return ChaosOutcome(
            shape=shape, impl=impl, seed=seed, scenario=scenario,
            status="failed", error=f"{type(exc).__name__}: {exc}",
        )
    report = result.faults
    if ref is None:
        # core-failure scenario: the honest baseline is the fault-free
        # run on the surviving cores with the strategy the run used
        ref = _baseline(
            impl, shape, dtype, seed,
            cores=report.final_cores, strategy=result.strategy,
        )
    if np.array_equal(c, ref):
        status = "recovered" if (report and report.recovered_faults) else "clean"
        return ChaosOutcome(
            shape=shape, impl=impl, seed=seed, scenario=scenario,
            status=status, report=report,
        )
    return ChaosOutcome(
        shape=shape, impl=impl, seed=seed, scenario=scenario,
        status="silent", report=report,
    )


def _timed_probe(impl, shape, dtype) -> ChaosOutcome:
    """DES under DMA failures + a DDR brown-out: completes or fails loudly."""
    from ..core.ftimm import ftimm_gemm, tgemm_gemm  # lazy: avoids cycle
    from .plan import DegradationWindow

    m, n, k = shape
    plan = FaultPlan(
        seed=7,
        dma_fail_rate=5e-3,
        ddr_degradation=(DegradationWindow(0.0, 1e-4, 0.25),),
    )
    fn = tgemm_gemm if impl == "tgemm" else ftimm_gemm
    kw = {} if impl == "tgemm" else {"dtype": dtype}
    try:
        result = fn(m, n, k, timing="des", faults=plan, **kw)
    except ReproError as exc:
        return ChaosOutcome(
            shape=shape, impl=impl, seed=7, scenario="timed-probe",
            status="failed", error=f"{type(exc).__name__}: {exc}",
        )
    report = result.faults
    status = "recovered" if (report and report.recovered_faults) else "clean"
    return ChaosOutcome(
        shape=shape, impl=impl, seed=7, scenario="timed-probe",
        status=status, report=report,
    )
