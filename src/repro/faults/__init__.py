"""Fault injection + resilient execution for the simulated FT-m7032.

Public surface:

* :class:`~repro.faults.plan.FaultPlan` (with :class:`CoreFault` and
  :class:`DegradationWindow`) — the declarative, seeded description of
  what can go wrong during one GEMM;
* :class:`~repro.faults.inject.FaultInjector` — per-attempt execution
  state: deterministic injection decisions plus the recovery guards
  (read-back verified copies, ABFT-checked kernels);
* :class:`~repro.faults.inject.FaultReport` — what a resilient run
  survived and what surviving cost, attached to
  :class:`~repro.core.ftimm.GemmResult`;
* :func:`~repro.faults.chaos.chaos_sweep` — the harness asserting the
  end-to-end contract: every faulted run is bit-correct or raises a
  typed :class:`~repro.errors.ReproError`, never silently wrong.
"""

from .chaos import ChaosOutcome, ChaosSummary, chaos_sweep
from .inject import FaultInjector, FaultReport
from .plan import NO_FAULTS, CoreFault, DegradationWindow, FaultPlan

__all__ = [
    "ChaosOutcome",
    "ChaosSummary",
    "chaos_sweep",
    "CoreFault",
    "DegradationWindow",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "NO_FAULTS",
]
