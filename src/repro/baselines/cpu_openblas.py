"""Analytic model of OpenBLAS SGEMM on the 16-core ARMv8 CPU of FT-m7032.

Fig. 7 of the paper compares ftIMM's *efficiency* (achieved / platform
peak) on a GPDSP cluster against OpenBLAS 0.3.20 on the chip's CPU,
"based on the same bandwidth" (the CPU shares the 42.6 GB/s port figure).

The model is a Goto-algorithm cost decomposition with four loss terms that
hit irregular shapes hardest — the same losses the irregular-GEMM
literature attributes OpenBLAS's weakness to:

1. **Inner-kernel efficiency**: an ``mr x nr`` kernel sustains
   ``kernel_peak_fraction`` only for deep K; short K pays loop setup and
   packing amortization (``K / (K + k_half)``), and M/N that don't fill
   the register tile waste lanes (quantization to mr/nr multiples).
2. **Thread granularity**: OpenBLAS parallelizes the M (and coarse N)
   loops only — never K.  Small M x N yields fewer chunks than cores
   (e.g. 32x32 feeds ~4 of 16 threads), plus per-region fork/join.
3. **Packing traffic**: A and B panels are packed (strided read + write +
   re-read), multiplying compulsory traffic by ``1 + pack_round_trips``.
4. **Achieved bandwidth**: the management-class CPU sustains only
   ``stream_bw_per_core`` per core (ceiling ``stream_bw_cap``) under
   OpenBLAS's strided packing access — a small fraction of the DDR port,
   consistent with published OpenBLAS-on-Phytium measurements
   (LibShalom, SC'21) and with the paper's observed deficit.

``time = max(compute, memory) + fork/join``, reported as GFLOPS and
platform efficiency.  Large regular GEMMs remain compute-bound and reach
~70-85% of CPU peak, which is exactly the regime where the paper concedes
traditional libraries do well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.shapes import GemmShape
from ..hw.config import CpuConfig


@dataclass(frozen=True)
class CpuGemmEstimate:
    """Modeled OpenBLAS execution of one SGEMM on the FT-m7032 CPU."""

    shape: GemmShape
    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    threads_used: int
    kernel_efficiency: float
    peak_flops: float

    @property
    def gflops(self) -> float:
        return self.shape.flops / self.seconds / 1e9

    @property
    def efficiency(self) -> float:
        return self.shape.flops / (self.seconds * self.peak_flops)

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.compute_seconds


def _quantization(extent: int, tile: int) -> float:
    """Useful fraction of register-tile lanes along one dimension."""
    return extent / (math.ceil(extent / tile) * tile)


def threads_used(shape: GemmShape, cpu: CpuConfig) -> int:
    """How many threads OpenBLAS's M/N split can actually feed."""
    m_chunks = max(1, shape.m // cpu.thread_rows_min)
    n_chunks = max(1, shape.n // cpu.nr)
    return max(1, min(cpu.n_cores, m_chunks * n_chunks))


def kernel_efficiency(shape: GemmShape, cpu: CpuConfig) -> float:
    """Sustained fraction of per-core peak inside the inner kernel."""
    kc_eff = min(shape.k, cpu.kc)
    k_term = kc_eff / (kc_eff + cpu.k_half)
    return (
        cpu.kernel_peak_fraction
        * k_term
        * _quantization(shape.m, cpu.mr)
        * _quantization(shape.n, cpu.nr)
    )


def openblas_sgemm(shape: GemmShape, cpu: CpuConfig) -> CpuGemmEstimate:
    """Model one OpenBLAS ``C += A @ B`` call."""
    threads = threads_used(shape, cpu)
    k_eff = kernel_efficiency(shape, cpu)

    per_core_peak = cpu.clock_hz * cpu.flops_per_cycle
    compute_s = shape.flops / (per_core_peak * threads * k_eff)

    pack = 1.0 + cpu.pack_round_trips
    traffic = pack * (shape.a_bytes + shape.b_bytes) + 2.0 * shape.c_bytes
    bw = min(cpu.stream_bw_cap, threads * cpu.stream_bw_per_core)
    memory_s = traffic / bw

    regions = math.ceil(shape.k / cpu.kc) * math.ceil(shape.n / cpu.nc)
    overhead_s = regions * cpu.fork_join_seconds

    seconds = max(compute_s, memory_s) + overhead_s
    return CpuGemmEstimate(
        shape=shape,
        seconds=seconds,
        compute_seconds=compute_s,
        memory_seconds=memory_s,
        overhead_seconds=overhead_s,
        threads_used=threads,
        kernel_efficiency=k_eff,
        peak_flops=cpu.peak_flops,
    )
