"""Roofline model for the GPDSP cluster (the "maximum performance of
ftIMM obtained with the roofline model" line in Fig. 5).

``P_max = min(P_peak, AI * BW)`` with the arithmetic intensity computed
from the compulsory DDR traffic of the GEMM (read A, B and C, write C —
on-chip reuse assumed perfect).  ftIMM lands below this line because the
measured DMA bandwidth stays under the theoretical 42.6 GB/s (burst and
startup overheads), exactly the explanation the paper gives for reaching
up to 67% of the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.shapes import GemmShape
from ..hw.config import ClusterConfig


@dataclass(frozen=True)
class RooflinePoint:
    shape: GemmShape
    arithmetic_intensity: float
    compute_bound_gflops: float
    memory_bound_gflops: float

    @property
    def max_gflops(self) -> float:
        return min(self.compute_bound_gflops, self.memory_bound_gflops)

    @property
    def memory_bound(self) -> bool:
        return self.memory_bound_gflops < self.compute_bound_gflops


def roofline(shape: GemmShape, cluster: ClusterConfig, n_cores: int | None = None) -> RooflinePoint:
    """Roofline ceiling for ``shape`` on ``n_cores`` of the cluster."""
    cores = n_cores if n_cores is not None else cluster.n_cores
    peak = cores * cluster.core.peak_flops / 1e9
    ai = shape.arithmetic_intensity
    mem = ai * cluster.ddr_bandwidth / 1e9
    return RooflinePoint(
        shape=shape,
        arithmetic_intensity=ai,
        compute_bound_gflops=peak,
        memory_bound_gflops=mem,
    )


def ridge_intensity(cluster: ClusterConfig, n_cores: int | None = None) -> float:
    """AI at which the cluster turns compute-bound (FLOPs per byte)."""
    cores = n_cores if n_cores is not None else cluster.n_cores
    return cores * cluster.core.peak_flops / cluster.ddr_bandwidth
