"""Comparators: the roofline ceiling (Fig. 5) and the OpenBLAS-on-CPU
model (Fig. 7)."""

from .cpu_openblas import CpuGemmEstimate, kernel_efficiency, openblas_sgemm, threads_used
from .roofline import RooflinePoint, ridge_intensity, roofline

__all__ = [
    "CpuGemmEstimate",
    "RooflinePoint",
    "kernel_efficiency",
    "openblas_sgemm",
    "ridge_intensity",
    "ridge_intensity",
    "roofline",
    "threads_used",
]
