"""Convenience facade over the library's main entry points.

    >>> import repro
    >>> result = repro.gemm(20480, 32, 20480)         # timing-only ftIMM
    >>> result.gflops, result.strategy
    >>> kernel = repro.generate_kernel(8, 96, 512)     # one micro-kernel
    >>> print(kernel.pipeline_table())
"""

from __future__ import annotations

from .core.autotune import AutotuneResult, autotune
from .core.batched import (
    BatchedGemmResult,
    GroupedGemmResult,
    batched_gemm,
    grouped_gemm,
)
from .core.ftimm import GemmResult, ftimm_gemm, gemm, tgemm_gemm
from .core.hetero import HeteroResult, hetero_gemm
from .core.plan_search import (
    PlanDB,
    SearchStats,
    default_plan_db,
    plan_bound,
)
from .core.multi_cluster import MultiClusterResult, multi_cluster_gemm
from .core.shapes import GemmShape
from .core.tuning_cache import TuningCache
from .faults import (
    ChaosSummary,
    CoreFault,
    DegradationWindow,
    FaultPlan,
    FaultReport,
    chaos_sweep,
)
from .hw.config import MachineConfig, default_machine
from .kernels.generator import MicroKernel
from .kernels.registry import registry_for
from .kernels.spec import KernelSpec
from .parallel import WorkerPool, worker_pool
from .analysis import (
    CriticalPathDiff,
    CriticalPathReport,
    critical_path,
    diff_critical_paths,
)
from .obs import (
    Histogram,
    MetricsRegistry,
    ProfileScope,
    TraceSpan,
    Tracer,
    collecting,
    tracing,
)
from .serve import (
    DegradePolicy,
    DegradeReport,
    Gateway,
    GemmRequest,
    HealthPolicy,
    PlacementManager,
    PlacementReport,
    PriorityClass,
    ServeChaosReport,
    ServeConfig,
    ServeEngine,
    ServeReport,
    SloPolicy,
    SloReport,
    SweepResult,
    chaos_serve,
    gateway_replay,
    make_requests,
    monitor,
    serve,
    sweep,
)


def generate_kernel(
    m_s: int, n_a: int, k_a: int, machine: MachineConfig | None = None
) -> MicroKernel:
    """Generate (or fetch from cache) one ftIMM micro-kernel."""
    core = (machine or default_machine()).cluster.core
    return registry_for(core).ftimm(m_s, n_a, k_a)


def classify(m: int, n: int, k: int) -> str:
    """The paper's irregular-shape taxonomy for an M x N x K GEMM."""
    return GemmShape(m, n, k).classify().value


__all__ = [
    "AutotuneResult",
    "BatchedGemmResult",
    "ChaosSummary",
    "CoreFault",
    "CriticalPathDiff",
    "CriticalPathReport",
    "critical_path",
    "diff_critical_paths",
    "DegradationWindow",
    "DegradePolicy",
    "DegradeReport",
    "HealthPolicy",
    "PriorityClass",
    "ServeChaosReport",
    "chaos_serve",
    "FaultPlan",
    "FaultReport",
    "GroupedGemmResult",
    "batched_gemm",
    "chaos_sweep",
    "grouped_gemm",
    "HeteroResult",
    "hetero_gemm",
    "Gateway",
    "gateway_replay",
    "GemmRequest",
    "GemmResult",
    "GemmShape",
    "Histogram",
    "MultiClusterResult",
    "PlacementManager",
    "PlacementReport",
    "PlanDB",
    "SearchStats",
    "ServeConfig",
    "ServeEngine",
    "ServeReport",
    "SloPolicy",
    "SloReport",
    "SweepResult",
    "TraceSpan",
    "Tracer",
    "TuningCache",
    "WorkerPool",
    "autotune",
    "default_plan_db",
    "multi_cluster_gemm",
    "plan_bound",
    "worker_pool",
    "KernelSpec",
    "MachineConfig",
    "MetricsRegistry",
    "MicroKernel",
    "ProfileScope",
    "classify",
    "collecting",
    "default_machine",
    "ftimm_gemm",
    "gemm",
    "generate_kernel",
    "make_requests",
    "monitor",
    "serve",
    "sweep",
    "tgemm_gemm",
    "tracing",
]
