"""Workloads from the paper's motivation: K-means, CNN im2col, FEM."""

from .convnets import (
    ConvLayer,
    RESNET18_LAYERS,
    VGG16_LAYERS,
    conv2d_direct,
    conv2d_im2col,
    im2col,
)
from .fem import FemOperator, STANDARD_OPERATORS, batched_interpolate, lagrange_basis_1d
from .generators import random_operands, reference_result
from .transformer import AttentionConfig, STANDARD_CONFIGS as ATTENTION_CONFIGS, attention_forward
from .kmeans import (
    KMeansResult,
    blob_dataset,
    kmeans_gemm_shape,
    lloyd_kmeans,
    numpy_gemm,
)

__all__ = [
    "ATTENTION_CONFIGS",
    "AttentionConfig",
    "attention_forward",
    "ConvLayer",
    "FemOperator",
    "KMeansResult",
    "RESNET18_LAYERS",
    "STANDARD_OPERATORS",
    "VGG16_LAYERS",
    "batched_interpolate",
    "blob_dataset",
    "conv2d_direct",
    "conv2d_im2col",
    "im2col",
    "kmeans_gemm_shape",
    "lagrange_basis_1d",
    "lloyd_kmeans",
    "numpy_gemm",
    "random_operands",
    "reference_result",
]
