"""Random operand generation for tests, examples and benchmarks."""

from __future__ import annotations

import numpy as np

from ..core.shapes import GemmShape


def random_operands(
    shape: GemmShape, seed: int = 0, *, c_zero: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Float32 A, B, C with standard-normal entries (C zeros on request)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
    b = rng.standard_normal((shape.k, shape.n)).astype(np.float32)
    if c_zero:
        c = np.zeros((shape.m, shape.n), dtype=np.float32)
    else:
        c = rng.standard_normal((shape.m, shape.n)).astype(np.float32)
    return a, b, c


def reference_result(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """``C + A @ B`` accumulated in float64, cast back to C's precision."""
    return (
        c.astype(np.float64) + a.astype(np.float64) @ b.astype(np.float64)
    ).astype(c.dtype)
