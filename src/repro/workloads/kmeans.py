"""K-means clustering via irregular-shaped GEMM.

The paper's introduction names K-means as a canonical producer of
irregular GEMMs: the distance computation between ``n_samples`` points and
``n_clusters`` centroids is dominated by ``X @ C.T`` — a tall-and-skinny
times small multiplication (type 1: ``M = n_samples >> K = n_features ~
N = n_clusters``) for realistic datasets.

This module implements Lloyd's algorithm with the cross-term computed
through an injectable GEMM callable, so the example can route it through
the simulated ftIMM and verify clustering against a plain NumPy run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..core.shapes import GemmShape

GemmFn = Callable[[np.ndarray, np.ndarray, np.ndarray], None]
"""``gemm(a, b, c)`` computes ``c += a @ b`` in float32."""


def numpy_gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    c += a @ b


@dataclass
class KMeansResult:
    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int
    gemm_shapes: list[GemmShape]


def kmeans_gemm_shape(n_samples: int, n_features: int, n_clusters: int) -> GemmShape:
    """The GEMM shape of one distance evaluation."""
    return GemmShape(n_samples, n_clusters, n_features)


def lloyd_kmeans(
    x: np.ndarray,
    n_clusters: int,
    *,
    gemm: GemmFn = numpy_gemm,
    max_iter: int = 20,
    tol: float = 1e-4,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with GEMM-based distance computation.

    ``||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2``; the ``x.c`` cross term is
    the irregular GEMM (samples x clusters x features).
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    n_samples, n_features = x.shape
    rng = np.random.default_rng(seed)
    centroids = x[rng.choice(n_samples, size=n_clusters, replace=False)].copy()
    x_sq = (x * x).sum(axis=1)
    shapes: list[GemmShape] = []
    labels = np.zeros(n_samples, dtype=np.int64)
    inertia = np.inf

    for iteration in range(1, max_iter + 1):
        cross = np.zeros((n_samples, n_clusters), dtype=np.float32)
        b = np.ascontiguousarray(centroids.T)  # features x clusters
        gemm(x, b, cross)
        shapes.append(kmeans_gemm_shape(n_samples, n_features, n_clusters))
        c_sq = (centroids * centroids).sum(axis=1)
        dist = x_sq[:, None] - 2.0 * cross + c_sq[None, :]
        labels = dist.argmin(axis=1)
        new_inertia = float(dist[np.arange(n_samples), labels].sum())

        new_centroids = centroids.copy()
        for j in range(n_clusters):
            members = x[labels == j]
            if len(members):
                new_centroids[j] = members.mean(axis=0)
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if abs(inertia - new_inertia) <= tol * max(1.0, abs(new_inertia)) or shift <= tol:
            inertia = new_inertia
            break
        inertia = new_inertia

    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=inertia,
        iterations=iteration,
        gemm_shapes=shapes,
    )


def blob_dataset(
    n_samples: int, n_features: int, n_clusters: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs with well-separated centers (returns X, true labels)."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(n_clusters, n_features))
    labels = rng.integers(0, n_clusters, size=n_samples)
    x = centers[labels] + rng.standard_normal((n_samples, n_features)) * 0.5
    return x.astype(np.float32), labels
