"""Transformer attention as irregular GEMMs.

A workload family the 2022 paper predates but that exactly fits its
taxonomy: in multi-head attention with head dimension ``d_h`` (typically
64), the per-head score and value products are

* ``scores = Q_h @ K_h^T`` — an ``(L) x (L) x (d_h)`` GEMM (regular once
  the sequence L is large), but
* ``Q_h / K_h / V_h = X @ W_h`` — ``(B*L) x (d_h) x (d_model)`` — a
  tall-and-skinny times small multiplication (type 1) whenever heads are
  projected separately, and
* ``context_h = P_h @ V_h`` — ``(L) x (d_h) x (L)`` — a large-regular x
  tall-and-skinny product (type 3) for long sequences.

This module enumerates the GEMMs of one attention layer for a given model
configuration, classifies each, and provides a reference implementation
whose matmuls route through an injectable GEMM (so the simulated ftIMM
can run a real attention forward pass in the tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.shapes import GemmShape
from .kmeans import GemmFn, numpy_gemm


@dataclass(frozen=True)
class AttentionConfig:
    """One multi-head attention layer."""

    name: str
    d_model: int
    n_heads: int
    seq_len: int
    batch: int = 1

    @property
    def d_head(self) -> int:
        if self.d_model % self.n_heads:
            raise ValueError(
                f"{self.name}: d_model {self.d_model} not divisible by "
                f"{self.n_heads} heads"
            )
        return self.d_model // self.n_heads

    def gemm_shapes(self) -> dict[str, GemmShape]:
        """The distinct GEMM shapes of one forward attention pass."""
        tokens = self.batch * self.seq_len
        return {
            # one per-head projection (x3 for Q, K, V; x n_heads)
            "head_projection": GemmShape(tokens, self.d_head, self.d_model),
            # attention scores per head
            "scores": GemmShape(self.seq_len, self.seq_len, self.d_head),
            # context per head
            "context": GemmShape(self.seq_len, self.d_head, self.seq_len),
            # output projection (merged heads)
            "output_projection": GemmShape(tokens, self.d_model, self.d_model),
        }


#: representative model configs (head dim 64 throughout — the irregular N).
STANDARD_CONFIGS = [
    AttentionConfig("gpt2-small", d_model=768, n_heads=12, seq_len=1024),
    AttentionConfig("bert-base", d_model=768, n_heads=12, seq_len=512),
    AttentionConfig("long-context", d_model=1024, n_heads=16, seq_len=8192),
]


def attention_forward(
    x: np.ndarray,
    w_q: np.ndarray,
    w_k: np.ndarray,
    w_v: np.ndarray,
    n_heads: int,
    *,
    gemm: GemmFn = numpy_gemm,
) -> np.ndarray:
    """Single-batch multi-head attention with injectable GEMM.

    ``x``: (L, d_model); ``w_*``: (d_model, d_model).  Returns the merged
    head contexts (L, d_model); the output projection is left to the
    caller (it is a regular GEMM).
    """
    seq_len, d_model = x.shape
    d_head = d_model // n_heads

    def mm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.float32)
        gemm(np.ascontiguousarray(a), np.ascontiguousarray(b), out)
        return out

    out = np.empty((seq_len, d_model), dtype=np.float32)
    for h in range(n_heads):
        cols = slice(h * d_head, (h + 1) * d_head)
        q = mm(x, w_q[:, cols])                     # (L, d_h): type 1
        k = mm(x, w_k[:, cols])
        v = mm(x, w_v[:, cols])
        scores = mm(q, k.T) / math.sqrt(d_head)     # (L, L)
        scores -= scores.max(axis=1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=1, keepdims=True)
        out[:, cols] = mm(weights, v)               # (L, d_h): type 3
    return out
