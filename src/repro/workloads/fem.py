"""Finite-element-style batched small GEMMs.

The paper's third motivating domain: FEM assembly in fluid dynamics
produces "many GEMMs working on small matrices" (citing libxsmm).  A
common formulation batches per-element operator applications: with
``n_elements`` elements of ``n_dofs`` local degrees of freedom applying a
``n_dofs x n_quad`` interpolation operator, stacking the per-element
vectors gives one tall-and-skinny GEMM per operator —
``(n_elements) x (n_quad) x (n_dofs)`` with tiny N and K and a huge M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.shapes import GemmShape
from .kmeans import GemmFn, numpy_gemm


@dataclass(frozen=True)
class FemOperator:
    """A batched element-local operator application."""

    name: str
    n_elements: int
    n_dofs: int   # local DoFs per element (K)
    n_quad: int   # quadrature points per element (N)

    def gemm_shape(self) -> GemmShape:
        return GemmShape(self.n_elements, self.n_quad, self.n_dofs)


#: representative low-order operators (hex elements, tensor-product bases).
STANDARD_OPERATORS: list[FemOperator] = [
    FemOperator("p1_tet_interp", 1_000_000, 4, 4),
    FemOperator("p2_tet_interp", 500_000, 10, 15),
    FemOperator("q1_hex_grad", 250_000, 8, 24),
    FemOperator("q2_hex_interp", 100_000, 27, 64),
]


def batched_interpolate(
    element_dofs: np.ndarray, basis: np.ndarray, *, gemm: GemmFn = numpy_gemm
) -> np.ndarray:
    """Interpolate element DoFs to quadrature points for all elements.

    ``element_dofs``: (n_elements, n_dofs); ``basis``: (n_dofs, n_quad);
    returns (n_elements, n_quad) — one irregular GEMM.
    """
    out = np.zeros(
        (element_dofs.shape[0], basis.shape[1]), dtype=np.float32
    )
    gemm(
        np.ascontiguousarray(element_dofs, dtype=np.float32),
        np.ascontiguousarray(basis, dtype=np.float32),
        out,
    )
    return out


def lagrange_basis_1d(order: int, points: np.ndarray) -> np.ndarray:
    """Values of the 1-D Lagrange basis (equispaced nodes) at ``points``."""
    nodes = np.linspace(0.0, 1.0, order + 1)
    out = np.empty((order + 1, len(points)))
    for i, xi in enumerate(nodes):
        li = np.ones_like(points, dtype=np.float64)
        for j, xj in enumerate(nodes):
            if j != i:
                li *= (points - xj) / (xi - xj)
        out[i] = li
    return out.astype(np.float32)
