"""CNN convolution layers as im2col GEMMs.

The paper's second motivating workload: convolutional layers lowered with
image-to-column (im2col) become GEMMs where ``M = batch * H_out * W_out``
(huge for early layers) and ``N = C_out``, ``K = C_in * kh * kw`` (small
for early layers) — type-1 irregular shapes that shift toward regular
shapes deeper in the network as channels grow and images shrink.

Layer tables for VGG-16 and ResNet-18 (the networks the paper cites) are
included, plus an im2col reference implementation so the example can run a
real convolution through the simulated GEMM and check it numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.shapes import GemmShape
from .kmeans import GemmFn, numpy_gemm


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer (square kernels/strides, 'same'-style pad)."""

    name: str
    c_in: int
    c_out: int
    h: int          # input height = width (square images)
    kernel: int
    stride: int = 1
    pad: int = 0

    @property
    def h_out(self) -> int:
        return (self.h + 2 * self.pad - self.kernel) // self.stride + 1

    def gemm_shape(self, batch: int = 1) -> GemmShape:
        """im2col lowering: (B*H_out*W_out) x C_out x (C_in*k*k).

        Note N = C_out here: the output-channel dimension is the "skinny"
        one for early layers, matching the paper's framing.
        """
        m = batch * self.h_out * self.h_out
        n = self.c_out
        k = self.c_in * self.kernel * self.kernel
        return GemmShape(m, n, k)


#: VGG-16 convolution stack at 224x224 (Simonyan & Zisserman).
VGG16_LAYERS: list[ConvLayer] = [
    ConvLayer("conv1_1", 3, 64, 224, 3, 1, 1),
    ConvLayer("conv1_2", 64, 64, 224, 3, 1, 1),
    ConvLayer("conv2_1", 64, 128, 112, 3, 1, 1),
    ConvLayer("conv2_2", 128, 128, 112, 3, 1, 1),
    ConvLayer("conv3_1", 128, 256, 56, 3, 1, 1),
    ConvLayer("conv3_2", 256, 256, 56, 3, 1, 1),
    ConvLayer("conv4_1", 256, 512, 28, 3, 1, 1),
    ConvLayer("conv4_2", 512, 512, 28, 3, 1, 1),
    ConvLayer("conv5_1", 512, 512, 14, 3, 1, 1),
]

#: ResNet-18 representative convolutions at 224x224 (He et al.).
RESNET18_LAYERS: list[ConvLayer] = [
    ConvLayer("conv1", 3, 64, 224, 7, 2, 3),
    ConvLayer("conv2_x", 64, 64, 56, 3, 1, 1),
    ConvLayer("conv3_x", 128, 128, 28, 3, 1, 1),
    ConvLayer("conv4_x", 256, 256, 14, 3, 1, 1),
    ConvLayer("conv5_x", 512, 512, 7, 3, 1, 1),
]


def im2col(x: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Lower NCHW input to the (B*H_out*W_out) x (C_in*k*k) patch matrix."""
    b, c, h, w = x.shape
    if c != layer.c_in or h != layer.h or w != layer.h:
        raise ValueError(f"input {x.shape} does not match layer {layer}")
    kk, st, pd = layer.kernel, layer.stride, layer.pad
    h_out = layer.h_out
    xp = np.pad(x, ((0, 0), (0, 0), (pd, pd), (pd, pd)))
    cols = np.empty((b * h_out * h_out, c * kk * kk), dtype=np.float32)
    idx = 0
    for bi in range(b):
        for i in range(h_out):
            for j in range(h_out):
                patch = xp[bi, :, i * st : i * st + kk, j * st : j * st + kk]
                cols[idx] = patch.reshape(-1)
                idx += 1
    return cols


def conv2d_im2col(
    x: np.ndarray, weights: np.ndarray, layer: ConvLayer, *, gemm: GemmFn = numpy_gemm
) -> np.ndarray:
    """Convolution via im2col + GEMM; returns NCHW output.

    ``weights`` is ``(C_out, C_in, k, k)``.  The GEMM computed is the
    paper's irregular shape: patches (M x K) times filters (K x N).
    """
    b = x.shape[0]
    cols = im2col(x, layer)
    w_mat = np.ascontiguousarray(
        weights.reshape(layer.c_out, -1).T, dtype=np.float32
    )
    out = np.zeros((cols.shape[0], layer.c_out), dtype=np.float32)
    gemm(cols, w_mat, out)
    h_out = layer.h_out
    return (
        out.reshape(b, h_out, h_out, layer.c_out).transpose(0, 3, 1, 2).copy()
    )


def conv2d_direct(x: np.ndarray, weights: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Straightforward reference convolution (for correctness checks)."""
    b = x.shape[0]
    kk, st, pd = layer.kernel, layer.stride, layer.pad
    h_out = layer.h_out
    xp = np.pad(x, ((0, 0), (0, 0), (pd, pd), (pd, pd)))
    out = np.zeros((b, layer.c_out, h_out, h_out), dtype=np.float32)
    for bi in range(b):
        for co in range(layer.c_out):
            for i in range(h_out):
                for j in range(h_out):
                    patch = xp[bi, :, i * st : i * st + kk, j * st : j * st + kk]
                    out[bi, co, i, j] = float((patch * weights[co]).sum())
    return out
