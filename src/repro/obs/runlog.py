"""Structured JSONL run-log.

One line per profiled run, written by ``repro perf`` (and available as a
library API).  Each record is self-contained JSON::

    {"schema": "repro-perf/1", "ts": 1754..., "shape": "64x4096x4096",
     "impl": "ftimm", "strategy": "tgemm", "cores": 8,
     "seconds": ..., "gflops": ..., "efficiency": ...,
     "bound": "ddr", "epochs": [...],      # bottleneck attribution
     "profile": {...},                     # RunProfile.to_dict()
     "metrics": {...}}                     # MetricsRegistry.snapshot()

The schema string is versioned so future layout changes stay detectable;
:func:`read_records` skips records from other schemas rather than failing,
so logs survive upgrades.  See docs/OBSERVABILITY.md for the field-by-field
description.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from ..errors import ReproError

SCHEMA = "repro-perf/1"


def make_record(
    *,
    shape: str,
    impl: str,
    strategy: str,
    cores: int,
    seconds: float,
    gflops: float,
    efficiency: float,
    bound: str,
    epochs: list[dict[str, Any]] | None = None,
    profile: dict[str, Any] | None = None,
    metrics: dict[str, Any] | None = None,
    timestamp: float | None = None,
) -> dict[str, Any]:
    """Assemble one schema-conforming run-log record."""
    return {
        "schema": SCHEMA,
        "ts": time.time() if timestamp is None else timestamp,
        "shape": shape,
        "impl": impl,
        "strategy": strategy,
        "cores": cores,
        "seconds": seconds,
        "gflops": gflops,
        "efficiency": efficiency,
        "bound": bound,
        "epochs": epochs or [],
        "profile": profile or {},
        "metrics": metrics or {},
    }


def append_record(path: str | Path, record: dict[str, Any]) -> Path:
    """Append ``record`` as one JSON line; creates the file if missing.

    The line is serialized up front and written with a single ``write``
    followed by flush + fsync, so a crash mid-append can truncate at most
    the final line — earlier records are never left half-written, and
    concurrent appenders (O_APPEND) never interleave within a record.
    """
    if "schema" not in record:
        raise ReproError("run-log record missing 'schema'")
    path = Path(path)
    line = json.dumps(record, sort_keys=True) + "\n"
    with path.open("a") as fh:
        fh.write(line)
        fh.flush()
        try:
            os.fsync(fh.fileno())
        except OSError:
            pass  # some filesystems (or fds) refuse fsync; best effort
    return path


def read_records(
    path: str | Path,
    schema: str = SCHEMA,
    *,
    skip_invalid: bool = False,
) -> list[dict[str, Any]]:
    """All records in the log matching ``schema``, oldest first.

    Invalid JSON raises :class:`~repro.errors.ReproError` by default —
    a corrupt log should be noticed, not papered over.  Pass
    ``skip_invalid=True`` (the CLI report path does) to drop unparseable
    lines instead, so one torn write can't make history unreadable.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if skip_invalid:
                continue
            raise ReproError(f"{path}:{line_no}: invalid JSON ({exc})") from None
        if record.get("schema") == schema:
            records.append(record)
    return records


def last_matching(
    records: list[dict[str, Any]], *, shape: str, impl: str, cores: int
) -> dict[str, Any] | None:
    """Most recent record for the same (shape, impl, cores) configuration."""
    for record in reversed(records):
        if (record.get("shape") == shape and record.get("impl") == impl
                and record.get("cores") == cores):
            return record
    return None
