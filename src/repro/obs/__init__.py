"""Unified observability layer: metrics, tracing, profiling, run-logs.

Four pieces, deliberately dependency-free (only :mod:`repro.errors`):

* :mod:`repro.obs.registry` — hierarchical :class:`MetricsRegistry`
  (counters, gauges, distributions, timers), the ambient
  :func:`collecting` context that turns instrumentation on, and
  :class:`ProfileScope` wall-clock scopes.
* :mod:`repro.obs.trace` — structured :class:`Tracer` spans (ids, parent
  links, simulated + wall clocks) behind the ambient :func:`tracing`
  context, with a Chrome-trace-event exporter.
* :mod:`repro.obs.profile` — :class:`RunProfile`, the per-epoch busy-time
  accounting the timed executor fills in, consumed by
  :mod:`repro.analysis.bottleneck`.
* :mod:`repro.obs.runlog` — versioned JSONL run-log records.

Everything is off by default: with no ambient registry/tracer the hooks
reduce to one global read, and simulated results are bit-identical with
observability on or off (a test asserts this).
"""

from .profile import EpochProfile, RunProfile
from .registry import (
    Counter,
    Distribution,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProfileScope,
    Timer,
    collecting,
    current,
    set_registry,
)
from .runlog import (
    SCHEMA,
    append_record,
    last_matching,
    make_record,
    read_records,
)
from .trace import (
    TraceSpan,
    Tracer,
    current_tracer,
    load_spans,
    maybe_scope,
    set_tracer,
    spans_to_chrome,
    tracing,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Distribution",
    "EpochProfile",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileScope",
    "RunProfile",
    "SCHEMA",
    "TraceSpan",
    "Tracer",
    "Timer",
    "append_record",
    "collecting",
    "current",
    "current_tracer",
    "last_matching",
    "load_spans",
    "make_record",
    "maybe_scope",
    "read_records",
    "set_registry",
    "set_tracer",
    "spans_to_chrome",
    "tracing",
    "validate_chrome_trace",
]
