"""Per-epoch execution profile of one timed (DES) run.

An *epoch* is the interval between consecutive cluster-wide SYNC points
(epoch ``i`` ends when sync ``i`` completes; the final epoch ends at plan
completion).  Because a SYNC waits for every prior op of every core, no
kernel or DMA op ever crosses an epoch boundary — each op is attributed
wholly to the epoch it runs in.

The timed executor fills a :class:`RunProfile` when profiling is enabled
(``run_timed(..., profile=True)`` or an ambient metrics registry); the
bottleneck report (:mod:`repro.analysis.bottleneck`) consumes it.  All
times are simulated seconds, not wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class EpochProfile:
    """Busy-time accounting for one inter-sync interval."""

    index: int
    n_cores: int
    start: float = 0.0
    end: float = 0.0
    #: per-core seconds the compute pipeline ran kernels this epoch
    compute_busy: list[float] = field(default_factory=list)
    #: per-core seconds spent in DMA ops (engine queue + transfer)
    dma_busy: list[float] = field(default_factory=list)
    #: per-core seconds between barrier arrival and barrier release
    sync_wait: list[float] = field(default_factory=list)
    #: per-core seconds the op walker stalled on the in-flight window
    window_stall: list[float] = field(default_factory=list)
    #: DMA payload bytes moved this epoch, keyed by medium ("ddr", ...)
    bytes_by_medium: dict[str, int] = field(default_factory=dict)
    sync_tag: str = ""

    def __post_init__(self) -> None:
        for lst in (self.compute_busy, self.dma_busy, self.sync_wait,
                    self.window_stall):
            if not lst:
                lst.extend(0.0 for _ in range(self.n_cores))

    @property
    def duration(self) -> float:
        return self.end - self.start

    def mean_frac(self, busy: list[float]) -> float:
        dur = self.duration
        if dur <= 0:
            return 0.0
        return sum(busy) / (self.n_cores * dur)

    @property
    def compute_frac(self) -> float:
        return self.mean_frac(self.compute_busy)

    @property
    def dma_frac(self) -> float:
        return self.mean_frac(self.dma_busy)

    @property
    def sync_frac(self) -> float:
        return self.mean_frac(self.sync_wait)

    @property
    def stall_frac(self) -> float:
        return self.mean_frac(self.window_stall)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "compute_busy": list(self.compute_busy),
            "dma_busy": list(self.dma_busy),
            "sync_wait": list(self.sync_wait),
            "window_stall": list(self.window_stall),
            "bytes_by_medium": dict(self.bytes_by_medium),
            "sync_tag": self.sync_tag,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "EpochProfile":
        return cls(
            index=int(d["index"]),
            n_cores=len(d["compute_busy"]),
            start=float(d["start"]),
            end=float(d["end"]),
            compute_busy=[float(x) for x in d["compute_busy"]],
            dma_busy=[float(x) for x in d["dma_busy"]],
            sync_wait=[float(x) for x in d["sync_wait"]],
            window_stall=[float(x) for x in d["window_stall"]],
            bytes_by_medium={k: int(v) for k, v in d["bytes_by_medium"].items()},
            sync_tag=d.get("sync_tag", ""),
        )


def merge_intervals(intervals: list[tuple[float, float]]) -> float:
    """Total covered length of possibly-overlapping ``(start, end)`` pairs."""
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    busy = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            busy += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return busy + (cur_end - cur_start)


@dataclass
class RunProfile:
    """Ordered epochs of one run, filled in by the timed executor."""

    n_cores: int
    epochs: list[EpochProfile] = field(default_factory=list)
    seconds: float = 0.0
    #: raw (start, end) DMA spans per (epoch, core); several transfers can
    #: be in flight on one engine, so spans overlap — merged at finish()
    #: into ``dma_busy`` ("time at least one transfer outstanding")
    _dma_spans: dict[tuple[int, int], list[tuple[float, float]]] = field(
        default_factory=dict, repr=False
    )

    def epoch(self, index: int) -> EpochProfile:
        """The epoch record for ``index``, growing the list as needed."""
        while len(self.epochs) <= index:
            prev_end = self.epochs[-1].end if self.epochs else 0.0
            self.epochs.append(
                EpochProfile(index=len(self.epochs), n_cores=self.n_cores,
                             start=prev_end, end=prev_end)
            )
        return self.epochs[index]

    def add_compute(self, index: int, core: int, seconds: float) -> None:
        self.epoch(index).compute_busy[core] += seconds

    def add_dma(self, index: int, core: int, start: float, end: float,
                medium: str, nbytes: int) -> None:
        ep = self.epoch(index)
        self._dma_spans.setdefault((index, core), []).append((start, end))
        ep.bytes_by_medium[medium] = ep.bytes_by_medium.get(medium, 0) + nbytes

    def add_sync_wait(self, index: int, core: int, seconds: float) -> None:
        self.epoch(index).sync_wait[core] += seconds

    def add_window_stall(self, index: int, core: int, seconds: float) -> None:
        self.epoch(index).window_stall[core] += seconds

    def close_epoch(self, index: int, end: float, tag: str = "") -> None:
        """Record sync ``index`` completing at ``end`` (epoch boundary)."""
        ep = self.epoch(index)
        ep.end = end
        if tag:
            ep.sync_tag = tag
        nxt = self.epoch(index + 1)
        nxt.start = end
        if nxt.end < end:
            nxt.end = end

    def finish(self, seconds: float) -> None:
        """Close the final epoch at plan completion time."""
        self.seconds = seconds
        for (index, core), spans in self._dma_spans.items():
            self.epoch(index).dma_busy[core] = merge_intervals(spans)
        self._dma_spans.clear()
        if self.epochs:
            self.epochs[-1].end = seconds
            # drop a zero-width trailing epoch (plan ended exactly on a sync)
            last = self.epochs[-1]
            if last.duration <= 0 and not any(
                last.compute_busy + last.dma_busy + last.sync_wait
            ):
                self.epochs.pop()
        else:
            self.epoch(0).end = seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_cores": self.n_cores,
            "seconds": self.seconds,
            "epochs": [ep.to_dict() for ep in self.epochs],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunProfile":
        return cls(
            n_cores=int(d["n_cores"]),
            seconds=float(d["seconds"]),
            epochs=[EpochProfile.from_dict(e) for e in d["epochs"]],
        )
