"""Structured request/execution tracing with an ambient trace context.

The metrics registry answers "how much, in aggregate"; this module
answers "what happened to *this* request, in order, and under what".  A
:class:`Tracer` collects :class:`TraceSpan` records — named intervals
with ids and parent links forming a tree — carrying **both** clocks:

* ``start_s`` / ``end_s``   — simulated (DES) seconds, the timeline the
  serve loop and the event simulator run on;
* ``wall_start`` / ``wall_end`` — host ``perf_counter`` seconds, so
  host-side phases (tuning, lowering, verification) are costed too.

The contract is the same as the metrics registry's, deliberately:
tracing is **off by default**, instrumented code asks the *ambient*
tracer via :func:`current_tracer` (one global read when disabled), and
enabling it never changes what the simulation computes — a test asserts
serve/GEMM results are bit-identical with tracing on or off.

Enable with::

    with tracing() as tracer:
        report = serve(requests, config)
    tracer.save("trace.json")          # Perfetto / chrome://tracing

The exported JSON is Chrome-trace-event format (``traceEvents`` with
``ph: "X"`` duration and ``ph: "i"`` instant events; ``pid`` = cluster,
``tid`` = core/queue track) plus a full-fidelity ``spans`` list that
:func:`load_spans` round-trips for the critical-path analyzer.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import ReproError

#: sentinel: "parent is whatever scope is ambient on the tracer stack".
AMBIENT = -1

#: the Chrome trace-event phases the exporter emits / validator accepts.
_CHROME_PHASES = {"X", "i", "M", "B", "E", "b", "e", "n", "C"}


@dataclass
class TraceSpan:
    """One named interval in the trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    category: str                  # e.g. "request", "queue", "gemm", "dma"
    start_s: float                 # simulated seconds
    end_s: float
    track: str = "host"            # display row (Chrome tid), e.g. "core0/dma"
    pid: int = 0                   # display process (Chrome pid) = cluster
    wall_start: float = 0.0        # host perf_counter seconds
    wall_end: float = 0.0
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ReproError(
                f"span {self.name!r} ends ({self.end_s}) before it starts "
                f"({self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def wall_s(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def is_instant(self) -> bool:
        return self.end_s == self.start_s and self.wall_end == self.wall_start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "track": self.track,
            "pid": self.pid,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TraceSpan":
        return cls(
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            name=str(d["name"]),
            category=str(d["category"]),
            start_s=float(d["start_s"]),
            end_s=float(d["end_s"]),
            track=str(d.get("track", "host")),
            pid=int(d.get("pid", 0)),
            wall_start=float(d.get("wall_start", 0.0)),
            wall_end=float(d.get("wall_end", 0.0)),
            args=dict(d.get("args", {})),
        )


class _Scope:
    """Handle yielded by :meth:`Tracer.scope`; lets the body attach data."""

    __slots__ = ("span_id", "args", "sim_start_s", "sim_end_s")

    def __init__(self, span_id: int) -> None:
        self.span_id = span_id
        self.args: dict[str, Any] = {}
        #: optional simulated-time extent; scopes without one are placed
        #: as zero-width marks at the tracer's current sim offset
        self.sim_start_s: float | None = None
        self.sim_end_s: float | None = None


class Tracer:
    """Span collector with an ambient parent stack and a sim-time offset.

    ``sim_offset`` shifts the simulated times of recorded spans — a
    nested DES run (whose local clock starts at zero) placed at an outer
    timeline position records spans at absolute positions.  ``pid``
    is the default Chrome process id (= cluster index) for new spans.
    """

    def __init__(self) -> None:
        self.spans: list[TraceSpan] = []
        self._next_id = 1
        self._stack: list[int] = []
        self.sim_offset = 0.0
        self.pid = 0

    # -- id / parent plumbing ----------------------------------------------

    def _alloc(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    def _resolve_parent(self, parent: int | None) -> int | None:
        if parent == AMBIENT:
            return self._stack[-1] if self._stack else None
        return parent

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    # -- recording ---------------------------------------------------------

    def record(
        self,
        name: str,
        *,
        category: str = "span",
        start_s: float,
        end_s: float,
        track: str = "host",
        pid: int | None = None,
        parent: int | None = AMBIENT,
        args: dict[str, Any] | None = None,
    ) -> int:
        """Record a completed simulated-time interval; returns its id."""
        sid = self._alloc()
        wall = time.perf_counter()
        self.spans.append(TraceSpan(
            span_id=sid,
            parent_id=self._resolve_parent(parent),
            name=name,
            category=category,
            start_s=self.sim_offset + start_s,
            end_s=self.sim_offset + end_s,
            track=track,
            pid=self.pid if pid is None else pid,
            wall_start=wall,
            wall_end=wall,
            args=dict(args or {}),
        ))
        return sid

    def instant(
        self,
        name: str,
        *,
        at_s: float | None = None,
        category: str = "event",
        track: str = "host",
        pid: int | None = None,
        parent: int | None = AMBIENT,
        args: dict[str, Any] | None = None,
    ) -> int:
        """A zero-width mark (Chrome ``ph: "i"``); ``at_s=None`` places it
        at the tracer's current sim offset."""
        at = 0.0 if at_s is None else at_s
        return self.record(
            name, category=category, start_s=at, end_s=at,
            track=track, pid=pid, parent=parent, args=args,
        )

    @contextmanager
    def scope(
        self,
        name: str,
        *,
        category: str = "phase",
        track: str = "host",
        pid: int | None = None,
        args: dict[str, Any] | None = None,
    ) -> Iterator[_Scope]:
        """Wall-clock scope that becomes the ambient parent of anything
        recorded inside it.  The body may set ``handle.sim_start_s`` /
        ``sim_end_s`` to give the span a simulated-time extent, and add
        to ``handle.args``."""
        sid = self._alloc()
        handle = _Scope(sid)
        parent = self._stack[-1] if self._stack else None
        self._stack.append(sid)
        w0 = time.perf_counter()
        try:
            yield handle
        finally:
            self._stack.pop()
            w1 = time.perf_counter()
            if handle.sim_start_s is not None and handle.sim_end_s is not None:
                s0 = self.sim_offset + handle.sim_start_s
                s1 = self.sim_offset + handle.sim_end_s
            else:
                s0 = s1 = self.sim_offset
            merged = dict(args or {})
            merged.update(handle.args)
            self.spans.append(TraceSpan(
                span_id=sid,
                parent_id=parent,
                name=name,
                category=category,
                start_s=s0,
                end_s=s1,
                track=track,
                pid=self.pid if pid is None else pid,
                wall_start=w0,
                wall_end=w1,
                args=merged,
            ))

    @contextmanager
    def at_offset(self, offset_s: float) -> Iterator[None]:
        """Shift nested sim-time recordings by ``offset_s`` (absolute)."""
        prev = self.sim_offset
        self.sim_offset = offset_s
        try:
            yield
        finally:
            self.sim_offset = prev

    @contextmanager
    def at_pid(self, pid: int) -> Iterator[None]:
        """Default nested recordings to Chrome process ``pid``."""
        prev = self.pid
        self.pid = pid
        try:
            yield
        finally:
            self.pid = prev

    # -- queries -----------------------------------------------------------

    def children(self, span_id: int) -> list[TraceSpan]:
        return [s for s in self.spans if s.parent_id == span_id]

    def by_category(self, category: str) -> list[TraceSpan]:
        return [s for s in self.spans if s.category == category]

    # -- export ------------------------------------------------------------

    def to_chrome(self, clock: str = "sim") -> dict[str, Any]:
        """Chrome-trace-event dict (Perfetto-loadable), microsecond ts.

        ``clock="sim"`` lays spans out on the simulated timeline (the
        default — the one the paper's claims are about); ``"wall"`` uses
        host time instead, for profiling the harness itself.  The full
        span list rides along under ``"spans"`` (viewers ignore unknown
        top-level keys) so :func:`load_spans` round-trips losslessly.
        """
        if clock not in ("sim", "wall"):
            raise ReproError(f"unknown trace clock {clock!r}")
        return spans_to_chrome(self.spans, clock=clock)

    def save(self, path: str | Path, clock: str = "sim") -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(clock=clock)))
        return path


def spans_to_chrome(
    spans: list[TraceSpan], clock: str = "sim"
) -> dict[str, Any]:
    """Build the Chrome-trace-event dict for a span list."""
    tracks = sorted({(s.pid, s.track) for s in spans})
    tids = {key: i for i, key in enumerate(tracks)}
    events: list[dict[str, Any]] = []
    for pid in sorted({p for p, _ in tracks}):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"cluster{pid - 1}" if pid > 0 else "server"},
        })
    for (pid, track), tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
    for s in spans:
        if clock == "sim":
            ts, dur = s.start_s * 1e6, s.duration_s * 1e6
        else:
            ts, dur = s.wall_start * 1e6, s.wall_s * 1e6
        common = {
            "name": s.name,
            "cat": s.category,
            "pid": s.pid,
            "tid": tids[(s.pid, s.track)],
            "ts": ts,
            "args": {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "wall_s": s.wall_s,
                **s.args,
            },
        }
        if s.is_instant or (clock == "sim" and dur == 0.0):
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append({**common, "ph": "X", "dur": dur})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "spans": [s.to_dict() for s in spans],
    }


def validate_chrome_trace(trace: dict[str, Any]) -> None:
    """Raise :class:`~repro.errors.ReproError` unless ``trace`` conforms
    to the Chrome trace-event JSON schema (the subset Perfetto loads)."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ReproError("trace: missing top-level 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ReproError("trace: 'traceEvents' is not a list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ReproError(f"trace: {where} is not an object")
        ph = ev.get("ph")
        if ph not in _CHROME_PHASES:
            raise ReproError(f"trace: {where} has bad phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ReproError(f"trace: {where} missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ReproError(f"trace: {where} missing int {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ReproError(f"trace: {where} missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ReproError(
                    f"trace: {where} 'X' event needs non-negative 'dur'"
                )
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            raise ReproError(f"trace: {where} bad instant scope {ev.get('s')!r}")


def load_spans(path: str | Path) -> list[TraceSpan]:
    """Read the full-fidelity span list back from a saved trace file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: invalid trace JSON ({exc})") from None
    if not isinstance(payload, dict) or "spans" not in payload:
        raise ReproError(
            f"{path}: no 'spans' sidecar — not a trace written by repro"
        )
    return [TraceSpan.from_dict(d) for d in payload["spans"]]


#: the ambient tracer; ``None`` means tracing is disabled (default).
_current: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is off (default)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as ambient; returns the previous one."""
    global _current
    prev = _current
    _current = tracer
    return prev


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable span collection for the dynamic extent of the block."""
    tracer = tracer if tracer is not None else Tracer()
    prev = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(prev)


@contextmanager
def maybe_scope(name: str, **kwargs: Any) -> Iterator[_Scope | None]:
    """A :meth:`Tracer.scope` on the ambient tracer, or a no-op."""
    tracer = current_tracer()
    if tracer is None:
        yield None
    else:
        with tracer.scope(name, **kwargs) as handle:
            yield handle


def head_sample(key: object, rate: float, seed: int = 0) -> bool:
    """Deterministic head-based sampling decision for ``key``.

    Hashes ``key`` (its ``str``) with blake2b and keeps it iff the
    64-bit digest falls below ``rate`` of the hash space — the same key
    yields the same verdict on every host and every run, which is what
    lets a sampled trace replay bit-for-bit.  ``rate >= 1`` keeps
    everything, ``rate <= 0`` drops everything.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        f"{seed}:{key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") < rate * 2**64
