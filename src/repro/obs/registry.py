"""Hierarchical metrics registry with a zero-cost disabled default.

Four instrument kinds, named by "/"-separated hierarchical paths
(``"bw/ddr/bytes_served"``, ``"isa/occupancy/vfmac"``):

* :class:`Counter` — monotonically accumulating value (events, bytes).
* :class:`Gauge` — last-set value plus its high-water mark (heap depth).
* :class:`Distribution` — count/total/min/max of observed samples
  (DMA queue waits, achieved IIs).
* :class:`Timer` — a Distribution of wall-clock durations with a
  ``time()`` context manager.
* :class:`Histogram` — fixed log-spaced bins over a positive range with
  p50/p95/p99 summaries (request latencies, batch sizes).

Instrumented code never checks a flag: it asks the *ambient* registry via
:func:`current`, which is ``None`` unless a collection context is active.
Hooks are written as ``m = current(); if m is not None: ...`` so the
disabled path costs one global read — model outputs are bit-identical
either way (verified by a test).  Collection is opted into with::

    with collecting() as reg:
        result = ftimm_gemm(...)
    print(reg.to_json())

Snapshots round-trip through JSON (:meth:`MetricsRegistry.to_json` /
:meth:`MetricsRegistry.from_json`), which is what the JSONL run-log
stores.
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import ReproError


class Counter:
    """Monotonic accumulator (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-set value; also tracks the high-water mark since creation."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self.high: float = 0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.high:
            self.high = v

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value, "high": self.high}


class Distribution:
    """Streaming count/total/min/max summary of observed samples."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def add(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "distribution",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class Timer(Distribution):
    """Distribution of wall-clock durations, in seconds."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - t0)

    def snapshot(self) -> dict[str, Any]:
        snap = super().snapshot()
        snap["type"] = "timer"
        return snap


class Histogram:
    """Log-spaced-bin histogram of positive samples with quantiles.

    Bin edges are fixed at construction: ``per_decade`` bins per decade
    from ``10**lo_exp`` to ``10**hi_exp``, plus an underflow and an
    overflow bucket, so two histograms with the same parameters are
    mergeable and snapshots are deterministic.  Quantiles are read from
    the bin boundaries (upper edge of the covering bin, clamped to the
    observed min/max), which bounds the error at one bin width — ~6% per
    sample with the default 4 bins/decade.
    """

    __slots__ = (
        "name", "lo_exp", "hi_exp", "per_decade",
        "edges", "counts", "count", "total", "min", "max",
    )

    def __init__(
        self,
        name: str,
        *,
        lo_exp: int = -7,
        hi_exp: int = 3,
        per_decade: int = 4,
    ) -> None:
        if hi_exp <= lo_exp or per_decade < 1:
            raise ReproError(
                f"histogram {name!r}: bad bin spec "
                f"[1e{lo_exp}, 1e{hi_exp}] x {per_decade}/decade"
            )
        self.name = name
        self.lo_exp = lo_exp
        self.hi_exp = hi_exp
        self.per_decade = per_decade
        n_bins = (hi_exp - lo_exp) * per_decade
        self.edges = [
            10.0 ** (lo_exp + i / per_decade) for i in range(n_bins + 1)
        ]
        # counts[0] is underflow, counts[-1] overflow
        self.counts = [0] * (n_bins + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, v: float) -> None:
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self.counts[bisect_right(self.edges, v)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1) read off the bin edges."""
        if not 0.0 < q <= 1.0:
            raise ReproError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                if i == 0:                      # underflow bucket
                    return self.min
                if i == len(self.counts) - 1:   # overflow bucket
                    return self.max
                return min(max(self.edges[i], self.min), self.max)
        return self.max  # pragma: no cover - unreachable

    def percentiles(self) -> dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "lo_exp": self.lo_exp,
            "hi_exp": self.hi_exp,
            "per_decade": self.per_decade,
            "counts": list(self.counts),
            **self.percentiles(),
        }


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "distribution": Distribution,
    "timer": Timer,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Name -> instrument map; instruments are created on first use.

    A name is bound to exactly one instrument kind for the registry's
    lifetime; asking for the same name with a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[
            str, Counter | Gauge | Distribution | Timer | Histogram
        ] = {}

    def _get(self, name: str, cls):
        inst = self._metrics.get(name)
        if inst is None:
            inst = cls(name)
            self._metrics[name] = inst
        elif type(inst) is not cls:
            raise ReproError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, requested {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def distribution(self, name: str) -> Distribution:
        return self._get(name, Distribution)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def histogram(
        self,
        name: str,
        *,
        lo_exp: int = -7,
        hi_exp: int = 3,
        per_decade: int = 4,
    ) -> Histogram:
        """A histogram; bin parameters apply only on first creation."""
        inst = self._metrics.get(name)
        if inst is None:
            inst = Histogram(
                name, lo_exp=lo_exp, hi_exp=hi_exp, per_decade=per_decade
            )
            self._metrics[name] = inst
        elif type(inst) is not Histogram:
            raise ReproError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, requested Histogram"
            )
        return inst

    def histograms(self, prefix: str = "") -> list[Histogram]:
        """All histograms under ``prefix``, sorted by name."""
        return [
            inst
            for name in self.names(prefix)
            if type(inst := self._metrics[name]) is Histogram
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    # -- merging -----------------------------------------------------------

    def merge(
        self,
        other: "MetricsRegistry",
        *,
        baseline: "MetricsRegistry | None" = None,
    ) -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry, in place.

        Kind-aware: counters add; gauges keep the *other* registry's
        last-set value (last-write-wins, the merge being "other happened
        after/elsewhere") and the max of the high-water marks;
        distributions and timers combine count/total and take the
        min/max extremes; histograms require identical bin parameters
        and add bin counts elementwise.  A name bound to different
        instrument kinds in the two registries raises
        :class:`~repro.errors.ReproError`.  Returns ``self`` so worker
        snapshots fold in a loop.

        ``baseline`` makes the merge *delta-aware*: pass the snapshot of
        ``other`` that was already folded in earlier (e.g. a live
        gateway's in-flight stats snapshot) and only the additive growth
        since then — counter increments, new histogram/distribution
        samples and bin counts — is applied, so re-merging a registry
        that kept accumulating never double-counts.  Gauge values and
        min/max extremes are idempotent under re-merge and are taken
        from ``other`` as usual.
        """
        for name in other.names():
            theirs = other._metrics[name]
            base = baseline._metrics.get(name) if baseline is not None else None
            if base is not None and type(base) is not type(theirs):
                raise ReproError(
                    f"cannot merge metric {name!r}: baseline is "
                    f"{type(base).__name__}, other is {type(theirs).__name__}"
                )
            mine = self._metrics.get(name)
            if mine is None:
                if type(theirs) is Histogram:
                    mine = self.histogram(
                        name,
                        lo_exp=theirs.lo_exp,
                        hi_exp=theirs.hi_exp,
                        per_decade=theirs.per_decade,
                    )
                else:
                    mine = self._get(name, type(theirs))
            elif type(mine) is not type(theirs):
                raise ReproError(
                    f"cannot merge metric {name!r}: "
                    f"{type(mine).__name__} vs {type(theirs).__name__}"
                )
            if type(mine) is Counter:
                mine.value += theirs.value - (base.value if base else 0)
            elif type(mine) is Gauge:
                mine.high = max(mine.high, theirs.high)
                mine.value = theirs.value
            elif type(mine) is Histogram:
                if (
                    mine.lo_exp != theirs.lo_exp
                    or mine.hi_exp != theirs.hi_exp
                    or mine.per_decade != theirs.per_decade
                ):
                    raise ReproError(
                        f"cannot merge histogram {name!r}: bin spec "
                        f"[1e{mine.lo_exp}, 1e{mine.hi_exp}] x "
                        f"{mine.per_decade}/decade vs "
                        f"[1e{theirs.lo_exp}, 1e{theirs.hi_exp}] x "
                        f"{theirs.per_decade}/decade"
                    )
                if base is not None and (
                    base.lo_exp != theirs.lo_exp
                    or base.hi_exp != theirs.hi_exp
                    or base.per_decade != theirs.per_decade
                ):
                    raise ReproError(
                        f"cannot merge histogram {name!r}: baseline bin "
                        f"spec differs from other's"
                    )
                base_counts = base.counts if base is not None else None
                mine.counts = [
                    a + b - (base_counts[i] if base_counts else 0)
                    for i, (a, b) in enumerate(zip(mine.counts, theirs.counts))
                ]
                mine.count += theirs.count - (base.count if base else 0)
                mine.total += theirs.total - (base.total if base else 0.0)
                mine.min = min(mine.min, theirs.min)
                mine.max = max(mine.max, theirs.max)
            else:  # Distribution / Timer
                mine.count += theirs.count - (base.count if base else 0)
                mine.total += theirs.total - (base.total if base else 0.0)
                mine.min = min(mine.min, theirs.min)
                mine.max = max(mine.max, theirs.max)
        return self

    # -- serialization -----------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-able ``{name: {"type": ..., ...}}``, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_snapshot(cls, snap: dict[str, dict[str, Any]]) -> "MetricsRegistry":
        reg = cls()
        for name, payload in snap.items():
            kind = payload.get("type")
            if kind not in _KINDS:
                raise ReproError(f"unknown metric type {kind!r} for {name!r}")
            if kind == "histogram":
                inst = reg.histogram(
                    name,
                    lo_exp=int(payload["lo_exp"]),
                    hi_exp=int(payload["hi_exp"]),
                    per_decade=int(payload["per_decade"]),
                )
                counts = [int(c) for c in payload["counts"]]
                if len(counts) != len(inst.counts):
                    raise ReproError(
                        f"histogram {name!r}: {len(counts)} bin counts for "
                        f"{len(inst.counts)} bins"
                    )
                inst.counts = counts
                inst.count = int(payload["count"])
                inst.total = float(payload["total"])
                inst.min = payload["min"] if payload["min"] is not None else math.inf
                inst.max = payload["max"] if payload["max"] is not None else -math.inf
                continue
            inst = reg._get(name, _KINDS[kind])
            if kind == "counter":
                inst.inc(payload["value"])
            elif kind == "gauge":
                inst.set(payload["high"])
                inst.set(payload["value"])
            else:
                inst.count = int(payload["count"])
                inst.total = float(payload["total"])
                inst.min = payload["min"] if payload["min"] is not None else math.inf
                inst.max = payload["max"] if payload["max"] is not None else -math.inf
        return reg

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_snapshot(json.loads(text))


#: the ambient registry; ``None`` means observability is disabled.
_current: MetricsRegistry | None = None


def current() -> MetricsRegistry | None:
    """The active registry, or ``None`` when collection is off (default)."""
    return _current


def set_registry(reg: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``reg`` as the ambient registry; returns the previous one."""
    global _current
    prev = _current
    _current = reg
    return prev


@contextmanager
def collecting(reg: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Enable metrics collection for the dynamic extent of the block."""
    reg = reg if reg is not None else MetricsRegistry()
    prev = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(prev)


class ProfileScope:
    """Wall-clock timer scope: records into ``<name>`` on the registry.

    No-op (and allocation-free beyond the object) when no registry is
    active and none is given::

        with ProfileScope("tuner/search_wall_s"):
            candidates = enumerate_and_score(...)
    """

    __slots__ = ("name", "_reg", "_t0", "elapsed")

    def __init__(self, name: str, registry: MetricsRegistry | None = None) -> None:
        self.name = name
        self._reg = registry
        self._t0 = 0.0
        self.elapsed: float | None = None

    def __enter__(self) -> "ProfileScope":
        if self._reg is None:
            self._reg = current()
        if self._reg is not None:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._reg is not None:
            self.elapsed = time.perf_counter() - self._t0
            self._reg.timer(self.name).add(self.elapsed)
