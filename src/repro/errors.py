"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single except clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A machine configuration is inconsistent or out of range."""


class CapacityError(ReproError):
    """An on-chip memory allocation exceeded the space's capacity."""


class AllocationError(ReproError):
    """A buffer operation (free, view) was used incorrectly."""


class ScheduleError(ReproError):
    """The modulo scheduler could not produce a legal schedule."""


class IsaError(ReproError):
    """An instruction is malformed or used an unknown register/operand."""


class KernelError(ReproError):
    """A micro-kernel specification is unsupported by the generator."""


class PlanError(ReproError):
    """A GEMM execution plan is malformed or violates hardware limits."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ShapeError(ReproError):
    """A GEMM problem shape is invalid (non-positive or overflowing)."""
