"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single except clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A machine configuration is inconsistent or out of range."""


class CapacityError(ReproError):
    """An on-chip memory allocation exceeded the space's capacity."""


class AllocationError(ReproError):
    """A buffer operation (free, view) was used incorrectly."""


class ScheduleError(ReproError):
    """The modulo scheduler could not produce a legal schedule."""


class IsaError(ReproError):
    """An instruction is malformed or used an unknown register/operand."""


class KernelError(ReproError):
    """A micro-kernel specification is unsupported by the generator."""


class PlanError(ReproError):
    """A GEMM execution plan is malformed or violates hardware limits."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ShapeError(ReproError):
    """A GEMM problem shape is invalid (non-positive or overflowing)."""


class InputError(PlanError):
    """Operands handed to the API boundary are unusable (wrong rank,
    dtype, shape mismatch, or non-finite entries).

    Subclasses :class:`PlanError` so existing ``except PlanError`` callers
    keep working; new code should catch :class:`InputError` directly.
    """


class FaultError(ReproError):
    """Base class for errors raised while handling *injected* faults.

    Raised only when a recovery mechanism exhausted its retries — a fault
    that was recovered (DMA retry, ABFT recompute, core re-dispatch) never
    surfaces as an exception.
    """


class DmaTransferError(FaultError):
    """A DMA transfer kept failing after every retry-with-backoff."""


class CorruptionError(FaultError):
    """Tile data stayed corrupt after the ABFT/readback retry budget."""


class CoreFailureError(FaultError):
    """A DSP core failed mid-run.

    Carries which ``core`` died and where (simulated ``at_s`` seconds for
    timed runs, ``at_op`` op index for functional runs) so the resilient
    driver can account the lost work before re-dispatching.
    """

    def __init__(self, core: int, at_s: float = 0.0, at_op: int = 0) -> None:
        super().__init__(
            f"core {core} failed (t={at_s:.3e}s, op={at_op})"
        )
        self.core = core
        self.at_s = at_s
        self.at_op = at_op


class WorkerError(ReproError):
    """A process-pool worker crashed or hung beyond the retry budget."""


class OverloadError(ReproError):
    """The serving layer shed a request.

    Carries the request id, the queue capacity and a typed ``reason`` so
    shed responses are attributable:

    * ``queue_full`` — the admission queue was at capacity (the classic
      bounded-queue backpressure);
    * ``class_shed`` — the request's priority class hit its per-class
      admission threshold while the queue still had room (loose-SLO bulk
      is dropped before tight-SLO interactive);
    * ``burn_shed``  — the online SLO burn-rate estimate crossed the
      degradation policy's threshold, so low-priority work is shed
      *before* the error budget is gone;
    * ``shutdown``   — the gateway was closed without draining while the
      request was still in flight (the awaited future resolves with this
      error instead of being cancelled silently).

    Shedding is always *loud* — a shed request gets a response carrying
    this error and is counted, never dropped silently.
    """

    REASONS = ("queue_full", "class_shed", "burn_shed", "shutdown")

    def __init__(
        self, req_id: int, capacity: int, reason: str = "queue_full"
    ) -> None:
        if reason not in self.REASONS:
            raise ValueError(f"unknown shed reason {reason!r}")
        detail = {
            "queue_full": f"admission queue full (capacity {capacity})",
            "class_shed": "priority-class admission threshold "
                          f"(capacity {capacity})",
            "burn_shed": "SLO burn-rate protection "
                         f"(capacity {capacity})",
            "shutdown": "gateway closed before the request resolved",
        }[reason]
        super().__init__(f"request {req_id} shed: {detail}")
        self.req_id = req_id
        self.capacity = capacity
        self.reason = reason
