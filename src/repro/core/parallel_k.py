"""ftIMM's K-dimension parallelization (Alg. 5).

For GEMMs where both M and N are small and K is huge (the skinny-tall x
tall-skinny case), neither the N loop (TGEMM) nor the M loop can feed
eight cores.  Alg. 5 splits K instead: each core accumulates a *partial*
``C_a`` over its ``k_a`` chunks, and partials are reduced across cores
through GSM — data reuse is preserved at the price of a per-tile reduction,
which is why this strategy is reserved for small-M/N shapes and why its
scaling is the weakest in Fig. 6.

Two ping-pong levels overlap DMA and compute within a core: B_a tiles
across the core's K chunks and A_s row groups within a tile.  A cluster
SYNC implements the reduction (modeled cost from
:func:`repro.hw.cluster.reduction_seconds`; functional mode sums the
per-core partial buffers and accumulates into C).
"""

from __future__ import annotations

import numpy as np

from ..hw.cluster import reduction_seconds
from ..hw.config import ClusterConfig
from ..hw.memory import MemKind
from ..kernels.registry import KernelRegistry
from .blocking import FP32, KPlan, adjust_k_plan
from .lowering import GemmOperands, LoweringContext, block_ranges
from .plans import GemmExecution, OpStreamBuilder
from .shapes import GemmShape


def build_parallel_k(
    shape: GemmShape,
    cluster: ClusterConfig,
    plan: KPlan | None = None,
    data: GemmOperands | None = None,
    registry: KernelRegistry | None = None,
    *,
    adjust: bool = True,
    pingpong: bool = True,
    kernel_exec: str = "numpy",
    faults=None,
) -> GemmExecution:
    """Lower a GEMM to the K-parallel strategy's op streams.

    ``pingpong=False`` single-buffers B_a and A_s (double-buffering
    ablation).  ``kernel_exec`` selects how KERNEL closures compute (see
    :class:`~repro.core.lowering.LoweringContext`).  ``faults`` routes
    tile stores and kernel applications through the injector's guards.
    """
    if plan is None:
        plan = KPlan()
    if adjust:
        plan = adjust_k_plan(plan, shape, cluster)
    else:
        plan = plan.validate(cluster)
    ctx = LoweringContext(
        cluster, shape, data, registry, dtype=plan.dtype,
        kernel_exec=kernel_exec, faults=faults,
    )
    n_cores = cluster.n_cores
    builder = OpStreamBuilder(n_cores)
    m, n, k = shape.m, shape.n, shape.k
    core_cfg = cluster.core

    n_slots = 2 if pingpong else 1
    b_a = [
        ctx.alloc(MemKind.AM, c, plan.k_a, plan.n_a, "B_a", slots=n_slots)
        for c in range(n_cores)
    ]
    c_a = [
        ctx.alloc(MemKind.AM, c, plan.m_a, plan.n_a, "C_a", slots=1)
        for c in range(n_cores)
    ]
    a_s = [
        ctx.alloc(MemKind.SM, c, plan.m_s, plan.k_a, "A_s", slots=n_slots)
        for c in range(n_cores)
    ]
    # C_g staging in GSM for the reduction (capacity accounting; the
    # functional reduction reads/writes DDR C directly, which is
    # numerically identical)
    gsm_rows = min(plan.m_g, max(m, 1))
    gsm_cols = min(plan.n_g, max(n, 1))
    ctx.alloc(MemKind.GSM, 0, gsm_rows, gsm_cols, "C_g", slots=1)

    k_chunks = list(block_ranges(k, plan.k_a))
    n_active = min(n_cores, len(k_chunks))

    for _i_idx, i0, mgr in block_ranges(m, plan.m_g):
        for _j_idx, j0, ngr in block_ranges(n, plan.n_g):
            for _ii_idx, ii0, mar in block_ranges(mgr, plan.m_a):
                for _jj_idx, jj0, nar in block_ranges(ngr, plan.n_a):
                    # zero the per-core C_a partials (VPU store pass in AM)
                    init_cycles = max(
                        1, mar * nar * plan.esize // core_cfg.am_bytes_per_cycle
                    )
                    for core in range(n_cores):
                        zrun = None
                        if ctx.backed:
                            ca_arr = c_a[core][0].array()

                            def zrun(ca_arr=ca_arr) -> None:
                                ca_arr[:] = 0.0

                        idx = builder.kernel(
                            core,
                            init_cycles,
                            0,
                            extra_deps=(),
                            run=zrun,
                            tag="C_a=0",
                        )
                        builder.consume(core, "C_a", 0, idx)  # placeholder
                    # each core accumulates its round-robin K chunks
                    local_counts = [0] * n_cores
                    for t_idx, t0, kc in k_chunks:
                        core = t_idx % n_cores
                        bslot = local_counts[core] % n_slots
                        local_counts[core] += 1
                        ba_buf = b_a[core][bslot]
                        builder.dma(
                            core,
                            ctx.desc(MemKind.DDR, MemKind.AM, kc, nar, "B->B_a"),
                            buffer="B_a",
                            slot=bslot,
                            run=ctx.copy_in(
                                ba_buf,
                                ctx.data.b[
                                    t0 : t0 + kc, j0 + jj0 : j0 + jj0 + nar
                                ],
                                kc,
                                nar,
                                core,
                            )
                            if ctx.backed
                            else None,
                            tag="B->B_a",
                        )
                        for u_idx, u0, ms_r in block_ranges(mar, plan.m_s):
                            aslot = u_idx % n_slots
                            as_buf = a_s[core][aslot]
                            builder.dma(
                                core,
                                ctx.desc(
                                    MemKind.DDR, MemKind.SM, ms_r, kc, "A->A_s"
                                ),
                                buffer="A_s",
                                slot=aslot,
                                run=ctx.copy_in(
                                    as_buf,
                                    ctx.data.a[
                                        i0 + ii0 + u0 : i0 + ii0 + u0 + ms_r,
                                        t0 : t0 + kc,
                                    ],
                                    ms_r,
                                    kc,
                                    core,
                                )
                                if ctx.backed
                                else None,
                                tag="A->A_s",
                            )
                            kern = ctx.registry.ftimm(ms_r, nar, kc, plan.dtype)
                            krun = None
                            if ctx.backed:
                                as_arr = as_buf.array()
                                ba_arr = ba_buf.array()
                                ca_arr = c_a[core][0].array()

                                def krun(
                                    kern=kern,
                                    as_arr=as_arr,
                                    ba_arr=ba_arr,
                                    ca_arr=ca_arr,
                                    u0=u0,
                                    ms_r=ms_r,
                                    kc=kc,
                                    nar=nar,
                                    core=core,
                                ) -> None:
                                    ctx.apply_kernel(
                                        kern,
                                        as_arr[:ms_r, :kc],
                                        ba_arr[:kc, :nar],
                                        ca_arr[u0 : u0 + ms_r, :nar],
                                        core,
                                    )

                            kidx = builder.kernel(
                                core,
                                kern.cycles,
                                kern.flops,
                                reads=(("A_s", aslot), ("B_a", bslot)),
                                run=krun,
                                tag=f"mk{ms_r}x{nar}x{kc}",
                            )
                            builder.consume(core, "B_a", bslot, kidx)
                            builder.consume(core, "C_a", 0, kidx)
                    # GSM reduction of the partials + accumulate into C
                    red_s = reduction_seconds(
                        cluster, mar * nar * plan.esize, n_active
                    )
                    runs = None
                    if ctx.backed:
                        c_view = ctx.data.c[
                            i0 + ii0 : i0 + ii0 + mar,
                            j0 + jj0 : j0 + jj0 + nar,
                        ]
                        partials = [c_a[core][0].array() for core in range(n_cores)]

                        def reduce_run(
                            c_view=c_view, partials=partials, mar=mar, nar=nar
                        ) -> None:
                            total = np.zeros((mar, nar), dtype=c_view.dtype)
                            for p in partials:
                                total += p[:mar, :nar]
                            c_view += total

                        runs = {0: reduce_run}
                    builder.sync(
                        seconds=red_s, runs=runs, tag=f"reduce[{ii0},{jj0}]"
                    )

    return builder.finish(
        shape,
        "ftimm-k",
        cluster,
        plan=plan,
        kernel_exec=ctx.kernel_exec,
        n_active=n_active,
        peak_am=max(s.peak_used for s in ctx.spaces.am),
        peak_sm=max(s.peak_used for s in ctx.spaces.sm),
        peak_gsm=ctx.spaces.gsm.peak_used,
    )
