"""Model-driven auto-tuning (extension; cf. AutoTSMM in the related work).

The paper's dynamic adjusting (Section IV-C) is *rule-based*: fixed
thresholds pick the strategy, and block sizes are derived by shrinking the
CMR-optimal initial blocks.  The related work the paper cites (AutoTSMM,
Li et al. 2021) instead *searches* a candidate space with a cost model.
This module implements that alternative on top of this reproduction's
analytic executor:

1. enumerate candidate plans for both strategies — a grid over the
   kernel rows ``m_s`` and the K block ``k_a`` with the remaining blocks
   derived to fill the scratchpads and deal chunks evenly;
2. score every candidate with the closed-form timing model (the same one
   validated against the DES executor);
3. pick the fastest, and report it against the rule-based decision;
4. optionally re-score the top analytic candidates (plus the rule-based
   plan) with the event-driven simulator before the final ranking —
   screening with the cheap model and validating with the expensive one.
   This step exists because of a measured pitfall: the closed-form model
   is optimistic for degenerate plans (e.g. M-parallel with m_a = m_s = 6
   on a type-2 shape looks 16% faster analytically but loses under DES),
   and a pure analytic search would pick them.

The ``ext_autotune`` experiment quantifies the comparison: the rules are
near-optimal across the paper's shape families (the search mostly
confirms them, within a few percent), and the search never does worse
once DES validation is on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import PlanError
from ..executor.analytic import analytic_parallel_k, analytic_parallel_m
from ..executor.timed import run_timed
from ..hw.config import ClusterConfig
from ..obs.registry import ProfileScope, current as _obs_current
from ..kernels.registry import KernelRegistry, registry_for
from ..parallel import parallel_map, resolve_jobs
from .blocking import FP32, KPlan, MPlan, MIN_GOOD_M_S, N_MAX
from .shapes import GemmShape
from .tuner import tune

#: m_s candidates: the paper keeps 6 <= m_s <= 14.
M_S_GRID = (6, 8, 10, 12, 14)
#: k_a seeds; each is clamped to K, SM capacity and AM capacity.
K_A_GRID = (32, 64, 128, 256, 512, 864, 1024, 2048)


@dataclass(frozen=True)
class Candidate:
    strategy: str                 # "m" | "k"
    plan: MPlan | KPlan
    seconds: float
    validated: bool = False       # True when the score came from the DES

    @property
    def label(self) -> str:
        p = self.plan
        return f"{self.strategy}: m_s={p.m_s} k_a={p.k_a} m_a={p.m_a} n_a={p.n_a}"


@dataclass
class AutotuneResult:
    shape: GemmShape
    best: Candidate
    rule: Candidate
    n_candidates: int

    @property
    def improvement(self) -> float:
        """Rule time / searched time (1.0 = rules were already optimal)."""
        return self.rule.seconds / self.best.seconds


def _balanced_chunks(total: int, chunk_max: int, quantum: int, n_cores: int) -> int:
    """Largest chunk <= chunk_max (multiple of quantum) dealing evenly."""
    chunk_max = max(quantum, chunk_max // quantum * quantum)
    n_chunks = math.ceil(total / chunk_max)
    n_chunks = math.ceil(n_chunks / n_cores) * n_cores
    chunk = min(chunk_max, math.ceil(total / n_chunks / quantum) * quantum)
    return max(chunk, quantum)


def m_plan_candidates(shape: GemmShape, cluster: ClusterConfig) -> list[MPlan]:
    core = cluster.core
    n_a = min(N_MAX, shape.n)
    plans: set[MPlan] = set()
    for m_s in M_S_GRID:
        if m_s > shape.m and shape.m >= MIN_GOOD_M_S:
            continue
        m_s_eff = min(m_s, shape.m)
        for k_a_seed in K_A_GRID:
            k_a = min(k_a_seed, shape.k, core.sm_bytes // (2 * m_s_eff * FP32))
            if k_a < 1:
                continue
            am_left = core.am_bytes - 2 * k_a * n_a * FP32
            m_a_max = am_left // (n_a * FP32)
            if m_a_max < m_s_eff:
                continue
            m_a = _balanced_chunks(shape.m, m_a_max, m_s_eff, cluster.n_cores)
            k_g_cap = cluster.gsm_bytes // (2 * n_a * FP32)
            k_g = max(k_a, min(k_g_cap, shape.k))
            try:
                plans.add(
                    MPlan(
                        k_g=k_g, n_g=n_a, m_a=m_a, n_a=n_a, k_a=k_a, m_s=m_s_eff
                    ).validate(cluster)
                )
            except PlanError:
                continue
    return sorted(plans, key=lambda p: (p.m_s, p.k_a))


def k_plan_candidates(shape: GemmShape, cluster: ClusterConfig) -> list[KPlan]:
    core = cluster.core
    n_a = min(N_MAX, shape.n)
    plans: set[KPlan] = set()
    for m_s in M_S_GRID:
        m_s_eff = min(m_s, shape.m)
        m_a = math.ceil(shape.m / m_s_eff) * m_s_eff
        am_c = m_a * n_a * FP32
        if am_c > core.am_bytes // 2:
            continue  # the partial C must leave room for B_a ping-pong
        for k_a_seed in K_A_GRID:
            k_a_max = min(
                k_a_seed,
                shape.k,
                core.sm_bytes // (2 * m_s_eff * FP32),
                (core.am_bytes - am_c) // (2 * n_a * FP32),
            )
            if k_a_max < 1:
                continue
            k_a = _balanced_chunks(shape.k, k_a_max, 1, cluster.n_cores)
            try:
                plans.add(
                    KPlan(
                        m_g=max(m_a, shape.m), n_g=n_a, m_a=m_a,
                        n_a=n_a, k_a=k_a, m_s=m_s_eff,
                    ).validate(cluster)
                )
            except PlanError:
                continue
    return sorted(plans, key=lambda p: (p.m_s, p.k_a))


def _score(
    shape: GemmShape,
    cluster: ClusterConfig,
    strategy: str,
    plan,
    registry: KernelRegistry,
) -> Candidate:
    if strategy == "m":
        t = analytic_parallel_m(shape, cluster, plan, registry)
    else:
        t = analytic_parallel_k(shape, cluster, plan, registry)
    return Candidate(strategy, plan, t.seconds)


def _estimate_ops(shape: GemmShape, cand: Candidate) -> int:
    plan = cand.plan
    kernels = math.ceil(shape.m / plan.m_s) * math.ceil(shape.k / plan.k_a)
    return 2 * kernels + 16


def _des_score(
    shape: GemmShape,
    cluster: ClusterConfig,
    cand: Candidate,
    registry: KernelRegistry,
) -> Candidate:
    from .parallel_k import build_parallel_k
    from .parallel_m import build_parallel_m

    builder = build_parallel_m if cand.strategy == "m" else build_parallel_k
    timed = run_timed(
        builder(shape, cluster, plan=cand.plan, adjust=False, registry=registry)
    )
    return replace(cand, seconds=timed.seconds, validated=True)


def _score_unit(args: tuple) -> Candidate:
    """Picklable analytic-scoring work unit for pool workers.

    Workers resolve their own registry from the core config: kernels are
    not shipped through the pipe, and the persistent disk cache keeps the
    workers from repeating the parent's modulo scheduling.
    """
    shape, cluster, strategy, plan = args
    return _score(shape, cluster, strategy, plan, registry_for(cluster.core))


def _des_unit(args: tuple) -> Candidate:
    """Picklable DES-validation work unit for pool workers."""
    shape, cluster, cand = args
    return _des_score(shape, cluster, cand, registry_for(cluster.core))


def autotune(
    shape: GemmShape,
    cluster: ClusterConfig,
    registry: KernelRegistry | None = None,
    *,
    validate_top: int = 3,
    validate_op_limit: int = 60_000,
    jobs: int | None = None,
) -> AutotuneResult:
    """Search both strategies' candidate grids.

    Candidates are screened with the analytic model; the best
    ``validate_top`` of them (plus the rule-based plan) are re-scored with
    the event-driven simulator when the lowered plan is small enough, and
    the final ranking uses the validated scores.  ``validate_top=0``
    disables validation (pure analytic search — the ablation showing why
    validation matters).

    ``jobs`` fans scoring and validation across worker processes
    (default: ``$REPRO_JOBS``, then the CPU count).  Work units are mapped
    in candidate order and results collected in input order, so the result
    is identical for every job count (tested).
    """
    if shape.n > N_MAX:
        raise PlanError(
            f"autotune targets the irregular domain (N <= {N_MAX}), "
            f"got N={shape.n}"
        )
    registry = registry or registry_for(cluster.core)
    m = _obs_current()
    jobs = resolve_jobs(jobs)
    with ProfileScope("tuner/search_wall_s"):
        work = [
            (shape, cluster, "m", plan)
            for plan in m_plan_candidates(shape, cluster)
        ] + [
            (shape, cluster, "k", plan)
            for plan in k_plan_candidates(shape, cluster)
        ]
        if jobs > 1:
            candidates = parallel_map(_score_unit, work, jobs, chunksize=8)
        else:
            candidates = [
                _score(shape, cluster, strategy, plan, registry)
                for _shape, _cluster, strategy, plan in work
            ]
        if not candidates:
            raise PlanError(f"no feasible candidate plans for {shape}")

        decision = tune(shape, cluster)
        if decision.strategy == "tgemm":  # pragma: no cover - guarded above
            raise PlanError("rule-based tuner fell back to TGEMM")
        rule = _score(shape, cluster, decision.strategy, decision.plan, registry)
        if m is not None:
            m.counter("tuner/searches").inc()
            m.counter("tuner/candidates_evaluated").inc(len(candidates) + 1)

        candidates.sort(key=lambda c: c.seconds)
        if validate_top > 0:
            finalists = candidates[:validate_top]
            if all(_estimate_ops(shape, c) <= validate_op_limit for c in finalists)                 and _estimate_ops(shape, rule) <= validate_op_limit:
                with ProfileScope("tuner/des_validate_wall_s"):
                    if jobs > 1:
                        validated = parallel_map(
                            _des_unit,
                            [(shape, cluster, c) for c in [*finalists, rule]],
                            jobs,
                        )
                        finalists, rule = validated[:-1], validated[-1]
                    else:
                        finalists = [
                            _des_score(shape, cluster, c, registry)
                            for c in finalists
                        ]
                        rule = _des_score(shape, cluster, rule, registry)
                if m is not None:
                    m.counter("tuner/des_validated").inc(len(finalists) + 1)
                best = min([*finalists, rule], key=lambda c: c.seconds)
                return AutotuneResult(
                    shape=shape, best=best, rule=rule,
                    n_candidates=len(candidates),
                )
        best = candidates[0]
        return AutotuneResult(
            shape=shape, best=best, rule=rule, n_candidates=len(candidates)
        )
