"""Model-driven auto-tuning (extension; cf. AutoTSMM in the related work).

The paper's dynamic adjusting (Section IV-C) is *rule-based*: fixed
thresholds pick the strategy, and block sizes are derived by shrinking the
CMR-optimal initial blocks.  The related work the paper cites (AutoTSMM,
Li et al. 2021) instead *searches* a candidate space with a cost model.
This module implements that alternative on top of this reproduction's
analytic executor:

1. enumerate candidate plans for both strategies — a grid over the
   kernel rows ``m_s`` and the K block ``k_a`` with the remaining blocks
   derived to fill the scratchpads and deal chunks evenly;
2. score every candidate with the closed-form timing model (the same one
   validated against the DES executor);
3. pick the fastest, and report it against the rule-based decision;
4. optionally re-score the top analytic candidates (plus the rule-based
   plan) with the event-driven simulator before the final ranking —
   screening with the cheap model and validating with the expensive one.
   This step exists because of a measured pitfall: the closed-form model
   is optimistic for degenerate plans (e.g. M-parallel with m_a = m_s = 6
   on a type-2 shape looks 16% faster analytically but loses under DES),
   and a pure analytic search would pick them.

The ``ext_autotune`` experiment quantifies the comparison: the rules are
near-optimal across the paper's shape families (the search mostly
confirms them, within a few percent), and the search never does worse
once DES validation is on.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from dataclasses import dataclass, replace

from ..errors import PlanError
from ..executor.analytic import analytic_parallel_k, analytic_parallel_m
from ..executor.timed import run_timed
from ..hw.config import ClusterConfig
from ..obs.registry import ProfileScope, current as _obs_current
from ..kernels.registry import KernelRegistry, registry_for
from ..parallel import POOL_MIN_UNITS, active_pool, parallel_map, resolve_jobs
from .blocking import FP32, KPlan, MPlan, MIN_GOOD_M_S, N_MAX
from .plan_search import (
    PlanDB,
    PlanRecord,
    SearchStats,
    ShapeClass,
    default_plan_db,
    plan_bound,
)
from .shapes import GemmShape
from .tuner import tune

#: m_s candidates: the paper keeps 6 <= m_s <= 14.
M_S_GRID = (6, 8, 10, 12, 14)
#: k_a seeds; each is clamped to K, SM capacity and AM capacity.
K_A_GRID = (32, 64, 128, 256, 512, 864, 1024, 2048)


@dataclass(frozen=True)
class Candidate:
    strategy: str                 # "m" | "k"
    plan: MPlan | KPlan
    seconds: float
    validated: bool = False       # True when the score came from the DES
    transferred: bool = False     # True when adopted from the plan DB

    @property
    def label(self) -> str:
        p = self.plan
        return f"{self.strategy}: m_s={p.m_s} k_a={p.k_a} m_a={p.m_a} n_a={p.n_a}"


@dataclass
class AutotuneResult:
    shape: GemmShape
    best: Candidate
    rule: Candidate
    n_candidates: int
    stats: SearchStats | None = None

    @property
    def improvement(self) -> float:
        """Rule time / searched time (1.0 = rules were already optimal)."""
        return self.rule.seconds / self.best.seconds


def _balanced_chunks(total: int, chunk_max: int, quantum: int, n_cores: int) -> int:
    """Largest chunk <= chunk_max (multiple of quantum) dealing evenly."""
    chunk_max = max(quantum, chunk_max // quantum * quantum)
    n_chunks = math.ceil(total / chunk_max)
    n_chunks = math.ceil(n_chunks / n_cores) * n_cores
    chunk = min(chunk_max, math.ceil(total / n_chunks / quantum) * quantum)
    return max(chunk, quantum)


def m_plan_candidates(shape: GemmShape, cluster: ClusterConfig) -> list[MPlan]:
    core = cluster.core
    n_a = min(N_MAX, shape.n)
    plans: set[MPlan] = set()
    for m_s in M_S_GRID:
        if m_s > shape.m and shape.m >= MIN_GOOD_M_S:
            continue
        m_s_eff = min(m_s, shape.m)
        for k_a_seed in K_A_GRID:
            k_a = min(k_a_seed, shape.k, core.sm_bytes // (2 * m_s_eff * FP32))
            if k_a < 1:
                continue
            am_left = core.am_bytes - 2 * k_a * n_a * FP32
            m_a_max = am_left // (n_a * FP32)
            if m_a_max < m_s_eff:
                continue
            m_a = _balanced_chunks(shape.m, m_a_max, m_s_eff, cluster.n_cores)
            k_g_cap = cluster.gsm_bytes // (2 * n_a * FP32)
            k_g = max(k_a, min(k_g_cap, shape.k))
            try:
                plans.add(
                    MPlan(
                        k_g=k_g, n_g=n_a, m_a=m_a, n_a=n_a, k_a=k_a, m_s=m_s_eff
                    ).validate(cluster)
                )
            except PlanError:
                continue
    return sorted(plans, key=lambda p: (p.m_s, p.k_a))


def k_plan_candidates(shape: GemmShape, cluster: ClusterConfig) -> list[KPlan]:
    core = cluster.core
    n_a = min(N_MAX, shape.n)
    plans: set[KPlan] = set()
    for m_s in M_S_GRID:
        m_s_eff = min(m_s, shape.m)
        m_a = math.ceil(shape.m / m_s_eff) * m_s_eff
        am_c = m_a * n_a * FP32
        if am_c > core.am_bytes // 2:
            continue  # the partial C must leave room for B_a ping-pong
        for k_a_seed in K_A_GRID:
            k_a_max = min(
                k_a_seed,
                shape.k,
                core.sm_bytes // (2 * m_s_eff * FP32),
                (core.am_bytes - am_c) // (2 * n_a * FP32),
            )
            if k_a_max < 1:
                continue
            k_a = _balanced_chunks(shape.k, k_a_max, 1, cluster.n_cores)
            try:
                plans.add(
                    KPlan(
                        m_g=max(m_a, shape.m), n_g=n_a, m_a=m_a,
                        n_a=n_a, k_a=k_a, m_s=m_s_eff,
                    ).validate(cluster)
                )
            except PlanError:
                continue
    return sorted(plans, key=lambda p: (p.m_s, p.k_a))


def _score(
    shape: GemmShape,
    cluster: ClusterConfig,
    strategy: str,
    plan,
    registry: KernelRegistry,
) -> Candidate:
    if strategy == "m":
        t = analytic_parallel_m(shape, cluster, plan, registry)
    else:
        t = analytic_parallel_k(shape, cluster, plan, registry)
    return Candidate(strategy, plan, t.seconds)


def _estimate_ops(shape: GemmShape, cand: Candidate) -> int:
    plan = cand.plan
    kernels = math.ceil(shape.m / plan.m_s) * math.ceil(shape.k / plan.k_a)
    return 2 * kernels + 16


def _des_score(
    shape: GemmShape,
    cluster: ClusterConfig,
    cand: Candidate,
    registry: KernelRegistry,
) -> Candidate:
    from .parallel_k import build_parallel_k
    from .parallel_m import build_parallel_m

    builder = build_parallel_m if cand.strategy == "m" else build_parallel_k
    timed = run_timed(
        builder(shape, cluster, plan=cand.plan, adjust=False, registry=registry)
    )
    return replace(cand, seconds=timed.seconds, validated=True)


def _score_unit(args: tuple) -> Candidate:
    """Picklable analytic-scoring work unit for pool workers.

    Workers resolve their own registry from the core config: kernels are
    not shipped through the pipe, and the persistent disk cache keeps the
    workers from repeating the parent's modulo scheduling.
    """
    shape, cluster, strategy, plan = args
    return _score(shape, cluster, strategy, plan, registry_for(cluster.core))


def _des_unit(args: tuple) -> Candidate:
    """Picklable DES-validation work unit for pool workers."""
    shape, cluster, cand = args
    return _des_score(shape, cluster, cand, registry_for(cluster.core))


def _nearest_grid_index(
    work: list[tuple[str, MPlan | KPlan]], strategy: str, plan
) -> int | None:
    """The grid candidate most like a transferred plan (log-block distance)."""
    best: tuple[float, int] | None = None
    for i, (s, p) in enumerate(work):
        if s != strategy:
            continue
        d = (
            abs(math.log2(p.k_a / plan.k_a))
            + abs(math.log2(p.m_s / plan.m_s))
            + abs(math.log2(p.m_a / plan.m_a))
        )
        if best is None or d < best[0]:
            best = (d, i)
    return best[1] if best is not None else None


def _exhaustive_scores(
    shape: GemmShape,
    cluster: ClusterConfig,
    work: list[tuple[str, MPlan | KPlan]],
    registry: KernelRegistry,
    effective_jobs: int,
    stats: SearchStats,
) -> list[Candidate]:
    """Score the whole grid (the ablation baseline): no bounds, no pruning."""
    if effective_jobs > 1:
        candidates = parallel_map(
            _score_unit,
            [(shape, cluster, s, p) for s, p in work],
            effective_jobs,
            chunksize=8,
        )
    else:
        candidates = [
            _score(shape, cluster, s, p, registry) for s, p in work
        ]
    stats.scored = len(candidates)
    best_t = math.inf
    for i, cand in enumerate(candidates):
        if cand.seconds < best_t:
            best_t = cand.seconds
            stats.trajectory.append((i + 1, cand.label, cand.seconds))
    return candidates


def _pruned_scores(
    shape: GemmShape,
    cluster: ClusterConfig,
    work: list[tuple[str, MPlan | KPlan]],
    bounds: list[float],
    registry: KernelRegistry,
    effective_jobs: int,
    k_keep: int,
    first: int | None,
    stats: SearchStats,
) -> list[Candidate]:
    """Best-first scoring with bound pruning.

    Candidates are visited in ascending bound order (``first``, when
    given, is promoted to the front — the transfer warm start).  Scoring
    stops once the next candidate's *lower bound* exceeds the ``k_keep``-th
    best scored time: every skipped candidate is then provably slower than
    all ``k_keep`` finalists, so the finalist set — and therefore the
    selected plan — is bit-identical to scoring the whole grid.  Returned
    in generation order (the scored subset), preserving the exhaustive
    path's stable tie-breaking.
    """
    order = sorted(range(len(work)), key=lambda i: (bounds[i], i))
    if first is not None:
        order.remove(first)
        order.insert(0, first)
    scored: dict[int, Candidate] = {}
    times: list[float] = []  # sorted scored seconds
    best_t = math.inf
    wave = 1 if effective_jobs == 1 else effective_jobs * 4
    pos = 0
    while pos < len(order):
        if len(times) >= k_keep and bounds[order[pos]] > times[k_keep - 1]:
            break  # everything after pos has a bound at least this large
        take = order[pos : pos + wave]
        if effective_jobs > 1:
            cands = parallel_map(
                _score_unit,
                [(shape, cluster, *work[i]) for i in take],
                effective_jobs,
            )
        else:
            cands = [
                _score(shape, cluster, work[i][0], work[i][1], registry)
                for i in take
            ]
        for i, cand in zip(take, cands):
            scored[i] = cand
            bisect.insort(times, cand.seconds)
            if cand.seconds < best_t:
                best_t = cand.seconds
                stats.trajectory.append((len(scored), cand.label, cand.seconds))
        pos += len(take)
    stats.scored = len(scored)
    stats.pruned = len(work) - len(scored)
    return [scored[i] for i in sorted(scored)]


def autotune(
    shape: GemmShape,
    cluster: ClusterConfig,
    registry: KernelRegistry | None = None,
    *,
    validate_top: int = 3,
    validate_op_limit: int = 60_000,
    jobs: int | None = None,
    mode: str = "pruned",
    transfer: bool = True,
    transfer_tol: float | None = None,
    plan_db: PlanDB | bool | None = None,
    stack_hint: int | None = None,
) -> AutotuneResult:
    """Search both strategies' candidate grids.

    Candidates are screened with the analytic model; the best
    ``validate_top`` of them (plus the rule-based plan) are re-scored with
    the event-driven simulator when the lowered plan is small enough, and
    the final ranking uses the validated scores.  ``validate_top=0``
    disables validation (pure analytic search — the ablation showing why
    validation matters).

    ``mode="pruned"`` (default) orders candidates by a kernel-free
    analytic lower bound (:func:`~repro.core.plan_search.plan_bound`) and
    stops scoring once the next bound exceeds the running finalist set —
    typically well under half the grid is ever scored, and the selected
    plan is **bit-identical** to ``mode="exhaustive"`` (tested; see the
    docstring of ``_pruned_scores`` for why).  Search outcomes are stored
    in a persistent plan database keyed by shape class; ``transfer=True``
    warm-starts the next search from the nearest tuned neighbor.  Passing
    an explicit ``transfer_tol`` additionally allows the search to
    *short-circuit* — adopt the neighbor's adapted plan without searching
    when its analytic time is within ``tol`` of the whole grid's lower
    bound; and a record stored for this *exact* shape replays outright
    (``transfer == "replay"`` — the deterministic search's own prior
    answer, no bounds computed).  These are the only modes that may
    return a non-exhaustive-optimal plan, and both are flagged
    (``Candidate.transferred``, ``SearchStats.transfer``).  ``plan_db=False``
    disables the database entirely; ``stack_hint`` tunes for an expected
    *stacked* M (the serve batcher's expected stack height) instead of
    ``shape.m``.

    ``jobs`` fans scoring and validation across worker processes
    (default: ``$REPRO_JOBS``, then the CPU count) — but only when a
    persistent :func:`~repro.parallel.worker_pool` is already active or
    the grid is large enough to amortize a pool spawn; single-shape
    searches otherwise run serially (the BENCH_PR2 regression fix),
    recorded as ``tuner/search_serial`` vs ``tuner/search_pooled``.  Work
    units are mapped in candidate order and results collected in input
    order, and any extra candidates a parallel wave scores are strictly
    worse than the finalists, so the result is identical for every job
    count (tested).
    """
    if mode not in ("pruned", "exhaustive"):
        raise PlanError(f"unknown autotune mode {mode!r}")
    if stack_hint is not None:
        if stack_hint < 1:
            raise PlanError(f"stack_hint must be >= 1, got {stack_hint}")
        shape = GemmShape(int(stack_hint), shape.n, shape.k)
    if shape.n > N_MAX:
        raise PlanError(
            f"autotune targets the irregular domain (N <= {N_MAX}), "
            f"got N={shape.n}"
        )
    registry = registry or registry_for(cluster.core)
    m = _obs_current()
    jobs = resolve_jobs(jobs)
    stats = SearchStats(mode=mode, transfer_tol=transfer_tol)
    with ProfileScope("tuner/search_wall_s"):
        work = [
            ("m", plan) for plan in m_plan_candidates(shape, cluster)
        ] + [
            ("k", plan) for plan in k_plan_candidates(shape, cluster)
        ]
        stats.generated = len(work)
        if not work:
            raise PlanError(f"no feasible candidate plans for {shape}")

        # pool amortization: fan out only when the spawn is already paid
        # for (ambient worker_pool) or the grid can earn it back
        pooled = jobs > 1 and (
            active_pool() is not None or len(work) >= POOL_MIN_UNITS
        )
        effective_jobs = jobs if pooled else 1
        stats.pooled = pooled
        if m is not None and jobs > 1:
            m.counter(
                "tuner/search_pooled" if pooled else "tuner/search_serial"
            ).inc()

        decision = tune(shape, cluster)
        if decision.strategy == "tgemm":  # pragma: no cover - guarded above
            raise PlanError("rule-based tuner fell back to TGEMM")
        rule = _score(shape, cluster, decision.strategy, decision.plan, registry)

        # cross-shape transfer: look up the nearest tuned neighbor
        db: PlanDB | None = None
        sig: ShapeClass | None = None
        neighbor: Candidate | None = None
        if mode == "pruned" and transfer and plan_db is not False:
            db = default_plan_db() if plan_db in (None, True) else plan_db
            sig = ShapeClass.of(shape, cluster)
            # exact-shape replay: under an explicit tolerance, a stored
            # record for this very shape is this deterministic search's
            # own prior answer — adopt it without touching the grid (a
            # restarted serve warmup pays rule-tune prices)
            if transfer_tol is not None:
                exact = db.get(sig)
                if (
                    exact is not None
                    and tuple(exact.shape) == (shape.m, shape.n, shape.k)
                    and exact.strategy in ("m", "k")
                ):
                    stats.transfer = "replay"
                    stats.neighbor = sig.key()
                    stats.neighbor_distance = 0.0
                    if m is not None:
                        m.counter("tuner/transfer_hits").inc()
                        m.counter("tuner/transfer_short_circuits").inc()
                        m.counter("tuner/searches").inc()
                        m.counter("tuner/candidates_evaluated").inc(1)
                    best = Candidate(
                        exact.strategy, exact.plan, exact.seconds,
                        validated=exact.validated, transferred=True,
                    )
                    return AutotuneResult(
                        shape=shape, best=best, rule=rule,
                        n_candidates=len(work), stats=stats,
                    )
            found = db.nearest(sig)
            if found is not None:
                nsig, record, distance = found
                try:
                    nplan = record.adapted(shape, cluster)
                    neighbor = _score(
                        shape, cluster, record.strategy, nplan, registry
                    )
                    stats.transfer = "warm"
                    stats.neighbor = nsig.key()
                    stats.neighbor_distance = distance
                    if m is not None:
                        m.counter("tuner/transfer_hits").inc()
                except PlanError:
                    stats.transfer = "miss"
            else:
                stats.transfer = "miss"
            if stats.transfer == "miss" and m is not None:
                m.counter("tuner/transfer_misses").inc()

        if mode == "pruned":
            bounds = [plan_bound(shape, cluster, s, p) for s, p in work]
            stats.bound_evals = len(bounds)
            if m is not None:
                m.counter("tuner/bound_evals").inc(len(bounds))

            # explicit-tolerance short-circuit: adopt the transferred plan
            # outright when it provably sits within tol of the best any
            # grid candidate could possibly achieve
            if neighbor is not None and transfer_tol is not None:
                floor = min(bounds)
                if neighbor.seconds <= (1.0 + transfer_tol) * floor:
                    stats.transfer = "short_circuit"
                    if m is not None:
                        m.counter("tuner/transfer_short_circuits").inc()
                        m.counter("tuner/searches").inc()
                        m.counter("tuner/candidates_evaluated").inc(2)
                    best = replace(neighbor, transferred=True)
                    return AutotuneResult(
                        shape=shape, best=best, rule=rule,
                        n_candidates=len(work), stats=stats,
                    )

            first = None
            if neighbor is not None:
                first = _nearest_grid_index(
                    work, neighbor.strategy, neighbor.plan
                )
            candidates = _pruned_scores(
                shape, cluster, work, bounds, registry, effective_jobs,
                max(1, validate_top), first, stats,
            )
            if m is not None and stats.pruned:
                m.counter("tuner/pruned").inc(stats.pruned)
        else:
            candidates = _exhaustive_scores(
                shape, cluster, work, registry, effective_jobs, stats
            )

        if m is not None:
            m.counter("tuner/searches").inc()
            m.counter("tuner/candidates_evaluated").inc(stats.scored + 1)

        candidates.sort(key=lambda c: c.seconds)
        best = candidates[0]
        if validate_top > 0:
            finalists = candidates[:validate_top]
            if all(_estimate_ops(shape, c) <= validate_op_limit for c in finalists)                 and _estimate_ops(shape, rule) <= validate_op_limit:
                with ProfileScope("tuner/des_validate_wall_s"):
                    if effective_jobs > 1:
                        validated = parallel_map(
                            _des_unit,
                            [(shape, cluster, c) for c in [*finalists, rule]],
                            effective_jobs,
                        )
                        finalists, rule = validated[:-1], validated[-1]
                    else:
                        finalists = [
                            _des_score(shape, cluster, c, registry)
                            for c in finalists
                        ]
                        rule = _des_score(shape, cluster, rule, registry)
                stats.des_validated = len(finalists) + 1
                if m is not None:
                    m.counter("tuner/des_validated").inc(len(finalists) + 1)
                best = min([*finalists, rule], key=lambda c: c.seconds)
        result = AutotuneResult(
            shape=shape, best=best, rule=rule,
            n_candidates=len(work), stats=stats,
        )
        if db is not None and sig is not None and best.strategy in ("m", "k"):
            db.put(
                sig,
                PlanRecord(
                    strategy=best.strategy,
                    plan_fields=dataclasses.asdict(best.plan),
                    shape=(shape.m, shape.n, shape.k),
                    seconds=best.seconds,
                    validated=best.validated,
                    scored=stats.scored,
                ),
            )
        return result
