"""ftIMM's M-dimension parallelization (Alg. 4).

The roles of GSM and the parallel loop are inverted relative to TGEMM:
the *shared* operand B (small, since ``N <= 96``) is cached in GSM, and the
abundant M dimension is split across cores in ``m_a`` chunks — every core
computes on its own private rows of A and C streamed straight from DDR, so
all eight cores are busy regardless of N.  Three ping-pong levels overlap
DMA with compute: B_g panels across ``k_g`` chunks, B_a tiles across
``k_a`` chunks, and A_s row-groups across ``m_s`` steps.  C_a stays
resident in AM for a whole ``(t, ii)`` tile (single-buffered — with the
paper's blocks, B_a double + C_a single fill AM to the exact byte).
"""

from __future__ import annotations

from ..hw.config import ClusterConfig
from ..hw.memory import MemKind
from ..kernels.registry import KernelRegistry
from .blocking import MPlan, adjust_m_plan
from .lowering import GemmOperands, LoweringContext, block_ranges
from .plans import GemmExecution, OpStreamBuilder
from .shapes import GemmShape


def build_parallel_m(
    shape: GemmShape,
    cluster: ClusterConfig,
    plan: MPlan | None = None,
    data: GemmOperands | None = None,
    registry: KernelRegistry | None = None,
    *,
    adjust: bool = True,
    pingpong: bool = True,
    kernel_exec: str = "numpy",
    faults=None,
) -> GemmExecution:
    """Lower a GEMM to the M-parallel strategy's op streams.

    ``pingpong=False`` single-buffers every tile (the ablation of the
    paper's double-buffering scheme): each DMA then serializes against the
    compute consuming its buffer.  ``kernel_exec`` selects how KERNEL
    closures compute (see :class:`~repro.core.lowering.LoweringContext`).
    ``faults`` routes tile stores and kernel applications through the
    injector's recovery guards.
    """
    if plan is None:
        plan = MPlan()
    if adjust:
        plan = adjust_m_plan(plan, shape, cluster)
    else:
        plan = plan.validate(cluster)
    ctx = LoweringContext(
        cluster, shape, data, registry, dtype=plan.dtype,
        kernel_exec=kernel_exec, faults=faults,
    )
    n_cores = cluster.n_cores
    builder = OpStreamBuilder(n_cores)
    m, n, k = shape.m, shape.n, shape.k

    n_slots = 2 if pingpong else 1
    b_g = ctx.alloc(MemKind.GSM, 0, plan.k_g, plan.n_g, "B_g", slots=n_slots)
    b_a = [
        ctx.alloc(MemKind.AM, c, plan.k_a, plan.n_a, "B_a", slots=n_slots)
        for c in range(n_cores)
    ]
    c_a = [
        ctx.alloc(MemKind.AM, c, plan.m_a, plan.n_a, "C_a", slots=1)
        for c in range(n_cores)
    ]
    a_s = [
        ctx.alloc(MemKind.SM, c, plan.m_s, plan.k_a, "A_s", slots=n_slots)
        for c in range(n_cores)
    ]

    for _i_idx, i0, ncg in block_ranges(n, plan.n_g):
        for j_idx, j0, kcg in block_ranges(k, plan.k_g):
            jslot = j_idx % n_slots
            # cooperative fill of the shared B_g panel (DDR -> GSM)
            for core, rs, re in ctx.split_rows(kcg):
                run = None
                if ctx.backed:
                    bg_arr = b_g[jslot].array()
                    src = ctx.data.b[j0 + rs : j0 + rs + re, i0 : i0 + ncg]

                    def run(
                        bg_arr=bg_arr, rs=rs, re=re, ncg=ncg, src=src, core=core
                    ) -> None:
                        ctx.store(bg_arr[rs : rs + re, :ncg], src, core)

                builder.dma(
                    core,
                    ctx.desc(MemKind.DDR, MemKind.GSM, re, ncg, "B->B_g"),
                    run=run,
                    tag="B->B_g",
                )
            builder.sync(tag=f"B_g[{j0},{i0}] ready")

            # the parallel loop: m_a chunks of M round-robin across cores
            for t_idx, t0, mr in block_ranges(m, plan.m_a):
                core = t_idx % n_cores
                ca_buf = c_a[core][0]
                for _ii_idx, ii0, nc in block_ranges(ncg, plan.n_a):
                    builder.dma(
                        core,
                        ctx.desc(MemKind.DDR, MemKind.AM, mr, nc, "C->C_a"),
                        buffer="C_a",
                        slot=0,
                        run=ctx.copy_in(
                            ca_buf,
                            ctx.data.c[t0 : t0 + mr, i0 + ii0 : i0 + ii0 + nc],
                            mr,
                            nc,
                            core,
                        )
                        if ctx.backed
                        else None,
                        tag="C->C_a",
                    )
                    last_kernel = -1
                    for jj_idx, jj0, kc in block_ranges(kcg, plan.k_a):
                        bslot = jj_idx % n_slots
                        ba_buf = b_a[core][bslot]
                        run = None
                        if ctx.backed:
                            bg_arr = b_g[jslot].array()
                            ba_arr = ba_buf.array()

                            def run(
                                ba_arr=ba_arr, bg_arr=bg_arr, jj0=jj0, ii0=ii0,
                                kc=kc, nc=nc, core=core
                            ) -> None:
                                ctx.store(
                                    ba_arr[:kc, :nc],
                                    bg_arr[jj0 : jj0 + kc, ii0 : ii0 + nc],
                                    core,
                                )

                        builder.dma(
                            core,
                            ctx.desc(MemKind.GSM, MemKind.AM, kc, nc, "B_g->B_a"),
                            buffer="B_a",
                            slot=bslot,
                            run=run,
                            tag="B_g->B_a",
                        )
                        for tt_idx, tt0, ms_r in block_ranges(mr, plan.m_s):
                            aslot = tt_idx % n_slots
                            as_buf = a_s[core][aslot]
                            builder.dma(
                                core,
                                ctx.desc(MemKind.DDR, MemKind.SM, ms_r, kc, "A->A_s"),
                                buffer="A_s",
                                slot=aslot,
                                run=ctx.copy_in(
                                    as_buf,
                                    ctx.data.a[
                                        t0 + tt0 : t0 + tt0 + ms_r,
                                        j0 + jj0 : j0 + jj0 + kc,
                                    ],
                                    ms_r,
                                    kc,
                                    core,
                                )
                                if ctx.backed
                                else None,
                                tag="A->A_s",
                            )
                            kern = ctx.registry.ftimm(ms_r, nc, kc, plan.dtype)
                            krun = None
                            if ctx.backed:
                                as_arr = as_buf.array()
                                ba_arr = ba_buf.array()
                                ca_arr = ca_buf.array()

                                def krun(
                                    kern=kern,
                                    as_arr=as_arr,
                                    ba_arr=ba_arr,
                                    ca_arr=ca_arr,
                                    tt0=tt0,
                                    ms_r=ms_r,
                                    kc=kc,
                                    nc=nc,
                                    core=core,
                                ) -> None:
                                    ctx.apply_kernel(
                                        kern,
                                        as_arr[:ms_r, :kc],
                                        ba_arr[:kc, :nc],
                                        ca_arr[tt0 : tt0 + ms_r, :nc],
                                        core,
                                    )

                            last_kernel = builder.kernel(
                                core,
                                kern.cycles,
                                kern.flops,
                                reads=(("A_s", aslot), ("B_a", bslot), ("C_a", 0)),
                                run=krun,
                                tag=f"mk{ms_r}x{nc}x{kc}",
                            )
                    out_idx = builder.dma(
                        core,
                        ctx.desc(MemKind.AM, MemKind.DDR, mr, nc, "C_a->C"),
                        extra_deps=(last_kernel,) if last_kernel >= 0 else (),
                        run=ctx.copy_out(
                            ctx.data.c[t0 : t0 + mr, i0 + ii0 : i0 + ii0 + nc],
                            ca_buf,
                            mr,
                            nc,
                            core,
                        )
                        if ctx.backed
                        else None,
                        tag="C_a->C",
                    )
                    builder.consume(core, "C_a", 0, out_idx)

    return builder.finish(
        shape,
        "ftimm-m",
        cluster,
        plan=plan,
        kernel_exec=ctx.kernel_exec,
        peak_am=max(s.peak_used for s in ctx.spaces.am),
        peak_sm=max(s.peak_used for s in ctx.spaces.sm),
        peak_gsm=ctx.spaces.gsm.peak_used,
    )
