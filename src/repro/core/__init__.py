"""ftIMM — the paper's primary contribution.

Shape taxonomy (:mod:`~repro.core.shapes`), CMR-driven blocking
(:mod:`~repro.core.blocking`), dynamic adjusting (:mod:`~repro.core.tuner`),
the three algorithm drivers (:mod:`~repro.core.tgemm`,
:mod:`~repro.core.parallel_m`, :mod:`~repro.core.parallel_k`) lowering to
the op-stream IR (:mod:`~repro.core.plans`), and the public entry points
(:mod:`~repro.core.ftimm`).
"""

from .blocking import (
    KPlan,
    MPlan,
    TgemmPlan,
    adjust_k_plan,
    adjust_m_plan,
    cmr_f1,
    cmr_f2,
    cmr_f3,
    cmr_f4,
    solve_k_plan,
    solve_m_plan,
)
from .ftimm import GemmResult, ftimm_gemm, gemm, tgemm_gemm
from .lowering import GemmOperands
from .parallel_k import build_parallel_k
from .parallel_m import build_parallel_m
from .plans import GemmExecution, Op, OpKind, OpStreamBuilder
from .shapes import GemmShape, GemmType, IRREGULAR_N_MAX
from .tgemm import build_tgemm
from .tuner import TuningDecision, choose_strategy, tune

__all__ = [
    "GemmExecution",
    "GemmOperands",
    "GemmResult",
    "GemmShape",
    "GemmType",
    "IRREGULAR_N_MAX",
    "KPlan",
    "MPlan",
    "Op",
    "OpKind",
    "OpStreamBuilder",
    "TgemmPlan",
    "TuningDecision",
    "adjust_k_plan",
    "adjust_m_plan",
    "build_parallel_k",
    "build_parallel_m",
    "build_tgemm",
    "choose_strategy",
    "cmr_f1",
    "cmr_f2",
    "cmr_f3",
    "cmr_f4",
    "ftimm_gemm",
    "gemm",
    "solve_k_plan",
    "solve_m_plan",
    "tgemm_gemm",
    "tune",
]
