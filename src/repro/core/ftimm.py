"""ftIMM's top-level entry points.

:func:`ftimm_gemm` reproduces the library call the paper describes: given
an irregular-shaped single-precision GEMM, dynamically choose the
parallelization strategy and block sizes, generate/select micro-kernels,
and execute — here on the simulated FT-m7032 cluster, returning both the
numerical result (when operands are supplied) and the modeled performance.

:func:`tgemm_gemm` is the traditional baseline under the identical
interface, and :func:`gemm` dispatches between them.

Timing modes:

* ``"des"``      — discrete-event simulation (exact overlap/contention);
* ``"analytic"`` — closed-form composition (for huge shapes);
* ``"auto"``     — DES when the lowered plan is small enough, else
  analytic (the two agree within tolerance on their overlap domain).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Literal

import numpy as np

from ..errors import CoreFailureError, PlanError
from ..executor.analytic import (
    analytic_parallel_k,
    analytic_parallel_m,
    analytic_tgemm,
)
from ..executor.functional import FunctionalReport, run_functional
from ..executor.timed import TimedResult, run_timed
from ..faults.inject import FaultInjector, FaultReport
from ..faults.plan import FaultPlan
from ..hw.config import ClusterConfig, MachineConfig, default_machine
from ..kernels.registry import KernelRegistry, registry_for
from ..obs.trace import current_tracer, maybe_scope
from .blocking import KPlan, MPlan, TgemmPlan
from .lowering import GemmOperands
from .parallel_k import build_parallel_k
from .parallel_m import build_parallel_m
from .plans import GemmExecution
from .shapes import GemmShape
from .tgemm import build_tgemm
from .tuner import Strategy, TuningDecision, tune

TimingMode = Literal["auto", "des", "analytic", "none"]

#: above roughly this many ops, "auto" switches from DES to analytic.
_DES_OP_LIMIT = 60_000


@dataclass
class GemmResult:
    """Outcome of one (simulated) GEMM call."""

    shape: GemmShape
    strategy: str
    decision: TuningDecision | None
    timing: TimedResult | None
    functional: FunctionalReport | None
    timing_mode: str
    n_cores: int
    #: set whenever a fault plan was supplied — what the run survived and
    #: what surviving cost (all-zero when the plan injected nothing)
    faults: FaultReport | None = None

    @property
    def seconds(self) -> float:
        if self.timing is None:
            raise PlanError("no timing was requested (timing_mode='none')")
        return self.timing.seconds

    @property
    def gflops(self) -> float:
        return self.timing.gflops if self.timing else 0.0

    @property
    def efficiency(self) -> float:
        return self.timing.efficiency if self.timing else 0.0


def _estimate_ops(shape: GemmShape, decision: TuningDecision) -> int:
    """Rough lowered-op count, to pick DES vs analytic in auto mode."""
    if decision.strategy == "m":
        p = decision.m_plan
        kernels = (
            math.ceil(shape.m / p.m_s)
            * math.ceil(shape.k / p.k_a)
            * math.ceil(shape.n / p.n_a)
        )
    elif decision.strategy == "k":
        p = decision.k_plan
        kernels = math.ceil(shape.m / p.m_s) * math.ceil(shape.k / p.k_a)
    else:
        p = decision.tgemm_plan
        kernels = (
            math.ceil(shape.m / p.m_s)
            * math.ceil(shape.k / p.k_g)
            * math.ceil(shape.n / p.n_a)
        )
    return 2 * kernels + 16


def _lower(
    shape: GemmShape,
    cluster: ClusterConfig,
    decision: TuningDecision,
    data: GemmOperands | None,
    registry: KernelRegistry,
    kernel_exec: str = "numpy",
    faults: FaultInjector | None = None,
) -> GemmExecution:
    if decision.strategy == "m":
        return build_parallel_m(
            shape, cluster, plan=decision.m_plan, data=data,
            registry=registry, adjust=False, kernel_exec=kernel_exec,
            faults=faults,
        )
    if decision.strategy == "k":
        return build_parallel_k(
            shape, cluster, plan=decision.k_plan, data=data,
            registry=registry, adjust=False, kernel_exec=kernel_exec,
            faults=faults,
        )
    return build_tgemm(
        shape, cluster, plan=decision.tgemm_plan, data=data,
        registry=registry, kernel_exec=kernel_exec, faults=faults,
    )


def _retune(
    shape: GemmShape,
    cluster: ClusterConfig,
    decision: TuningDecision,
    dtype: str,
) -> TuningDecision:
    """Re-plan the same strategy for a reduced (post-failure) cluster."""
    return tune(
        shape, cluster, force_strategy=decision.strategy, adjust=True,
        dtype=dtype,
    )


def _analytic(
    shape: GemmShape,
    cluster: ClusterConfig,
    decision: TuningDecision,
    registry: KernelRegistry,
) -> TimedResult:
    if decision.strategy == "m":
        return analytic_parallel_m(shape, cluster, decision.m_plan, registry)
    if decision.strategy == "k":
        return analytic_parallel_k(shape, cluster, decision.k_plan, registry)
    return analytic_tgemm(shape, cluster, decision.tgemm_plan, registry)


def _run(
    shape: GemmShape,
    cluster: ClusterConfig,
    decision: TuningDecision,
    *,
    a: np.ndarray | None,
    b: np.ndarray | None,
    c: np.ndarray | None,
    timing: TimingMode,
    dtype: str = "f32",
    kernel_exec: str = "numpy",
    faults: FaultPlan | None = None,
) -> GemmResult:
    registry = registry_for(cluster.core)
    data = None
    if a is not None or b is not None or c is not None:
        if a is None or b is None or c is None:
            raise PlanError("provide all of a, b, c or none of them")
        data = GemmOperands.check(shape, a, b, c, dtype=dtype)

    if faults is not None:
        return _run_resilient(
            shape, cluster, decision, data=data, timing=timing, dtype=dtype,
            kernel_exec=kernel_exec, plan=faults, registry=registry,
        )

    with maybe_scope(
        f"gemm {shape.m}x{shape.n}x{shape.k}",
        category="gemm",
        track="gemm",
        args={"strategy": decision.strategy},
    ) as gscope:
        func_report = None
        if data is not None:
            with maybe_scope("functional", category="phase", track="gemm"):
                func_report = run_functional(
                    _lower(shape, cluster, decision, data, registry,
                           kernel_exec)
                )

        mode = timing
        if mode == "auto":
            mode = ("des" if _estimate_ops(shape, decision) <= _DES_OP_LIMIT
                    else "analytic")
        timed: TimedResult | None = None
        if mode == "des":
            with maybe_scope("timed/des", category="phase", track="gemm"):
                timed = run_timed(
                    _lower(shape, cluster, decision, None, registry)
                )
        elif mode == "analytic":
            with maybe_scope("timed/analytic", category="phase",
                             track="gemm"):
                timed = _analytic(shape, cluster, decision, registry)
        elif mode != "none":
            raise PlanError(f"unknown timing mode {timing!r}")

        if gscope is not None:
            gscope.args["timing_mode"] = mode
            if timed is not None:
                # modeled extent, anchored at the tracer's sim offset
                gscope.sim_start_s = 0.0
                gscope.sim_end_s = timed.seconds
                gscope.args["modeled_s"] = timed.seconds

    return GemmResult(
        shape=shape,
        strategy=decision.strategy,
        decision=decision,
        timing=timed,
        functional=func_report,
        timing_mode=mode,
        n_cores=cluster.n_cores,
    )


def _run_resilient(
    shape: GemmShape,
    cluster: ClusterConfig,
    decision: TuningDecision,
    *,
    data: GemmOperands | None,
    timing: TimingMode,
    dtype: str,
    kernel_exec: str,
    plan: FaultPlan,
    registry: KernelRegistry,
) -> GemmResult:
    """The fault-plan execution path: inject, recover, account honestly.

    Functional and timed execution each run a re-dispatch loop: a
    :class:`~repro.errors.CoreFailureError` restores the C snapshot
    (functional) or accounts the lost simulated time (timed), shrinks the
    cluster by the failed core, re-tunes the *same* strategy for the
    survivors and retries with the next attempt's injector.  A plan's
    ``core_faults`` arm one failure per attempt, so the loop always
    terminates.  Unrecoverable faults (retry budgets exhausted, last core
    lost) propagate as typed :class:`~repro.errors.FaultError`\\ s.

    Timing ``"auto"`` forces DES: injection acts on simulated transfers
    and cores, which the analytic closed forms cannot see.
    """
    report = FaultReport(seed=plan.seed)
    final_cores = cluster.n_cores

    func_report = None
    if data is not None:
        c_snapshot = data.c.copy()
        cluster_f, decision_f = cluster, decision
        attempt = 0
        while True:
            inj = FaultInjector(plan, attempt)
            try:
                ex = _lower(
                    shape, cluster_f, decision_f, data, registry,
                    kernel_exec, faults=inj,
                )
                func_report = run_functional(ex, faults=inj)
                report.absorb(inj.counters)
                break
            except CoreFailureError as exc:
                report.absorb(inj.counters)
                if cluster_f.n_cores <= 1:
                    raise
                report.redispatches += 1
                tracer = current_tracer()
                if tracer is not None:
                    tracer.instant(
                        "re-dispatch (functional)",
                        category="redispatch",
                        track="gemm",
                        args={"attempt": attempt, "error": str(exc)},
                    )
                data.c[...] = c_snapshot
                cluster_f = cluster_f.with_cores(cluster_f.n_cores - 1)
                decision_f = _retune(shape, cluster_f, decision, dtype)
                attempt += 1
        final_cores = min(final_cores, cluster_f.n_cores)

    mode = timing
    if mode == "auto":
        mode = "des"  # injection needs the discrete-event timeline
    timed: TimedResult | None = None
    if mode == "des":
        cluster_t, decision_t = cluster, decision
        attempt = 0
        lost_s = 0.0
        while True:
            inj = FaultInjector(plan, attempt)
            try:
                timed = run_timed(
                    _lower(shape, cluster_t, decision_t, None, registry),
                    faults=inj,
                )
                report.absorb(inj.counters)
                break
            except CoreFailureError as exc:
                report.absorb(inj.counters)
                if cluster_t.n_cores <= 1:
                    raise
                report.redispatches += 1
                tracer = current_tracer()
                if tracer is not None:
                    tracer.instant(
                        "re-dispatch (timed)",
                        at_s=lost_s + exc.at_s,
                        category="redispatch",
                        track="gemm",
                        args={"attempt": attempt, "lost_s": exc.at_s,
                              "error": str(exc)},
                    )
                lost_s += exc.at_s
                cluster_t = cluster_t.with_cores(cluster_t.n_cores - 1)
                decision_t = _retune(shape, cluster_t, decision, dtype)
                attempt += 1
        if lost_s:
            # the honest wall clock: work thrown away before each failure
            # plus the completed run on the survivors
            timed = replace(timed, seconds=timed.seconds + lost_s)
        report.lost_s = lost_s
        final_cores = min(final_cores, cluster_t.n_cores)
    elif mode == "analytic":
        timed = _analytic(shape, cluster, decision, registry)
    elif mode != "none":
        raise PlanError(f"unknown timing mode {timing!r}")

    report.final_cores = final_cores
    return GemmResult(
        shape=shape,
        strategy=decision.strategy,
        decision=decision,
        timing=timed,
        functional=func_report,
        timing_mode=mode,
        n_cores=final_cores,
        faults=report,
    )


def ftimm_gemm(
    m: int,
    n: int,
    k: int,
    *,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    c: np.ndarray | None = None,
    machine: MachineConfig | None = None,
    cores: int | None = None,
    timing: TimingMode = "auto",
    force_strategy: Strategy | None = None,
    adjust: bool = True,
    dtype: str = "f32",
    kernel_exec: str = "numpy",
    faults: FaultPlan | None = None,
) -> GemmResult:
    """Run ``C += A @ B`` with ftIMM on the simulated GPDSP cluster.

    With operands the numerical result is computed in ``c`` (in place);
    timing is always modeled unless ``timing='none'``.  ``cores`` restricts
    the cluster (scalability experiments); ``adjust=False`` disables the
    dynamic block adjusting (ablation); ``force_strategy`` pins the
    parallelization strategy; ``dtype="f64"`` runs the double-precision
    extension (N <= 48, float64 operands).  ``kernel_exec`` selects how
    functional kernels compute: ``"numpy"`` (fast), or
    ``"compiled"``/``"interp"`` for ISA-fidelity execution of the
    generated instruction streams.

    ``faults`` arms seeded fault injection with resilient execution: the
    run either completes with the exact blocked result (recoveries and
    their cost reported in ``result.faults``) or raises a typed
    :class:`~repro.errors.FaultError` — never a silent wrong answer.
    """
    shape = GemmShape(m, n, k)
    cluster = (machine or default_machine()).cluster
    if cores is not None:
        cluster = cluster.with_cores(cores)
    decision = tune(
        shape, cluster, force_strategy=force_strategy, adjust=adjust,
        dtype=dtype,
    )
    return _run(
        shape, cluster, decision, a=a, b=b, c=c, timing=timing, dtype=dtype,
        kernel_exec=kernel_exec, faults=faults,
    )


def tgemm_gemm(
    m: int,
    n: int,
    k: int,
    *,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    c: np.ndarray | None = None,
    machine: MachineConfig | None = None,
    cores: int | None = None,
    timing: TimingMode = "auto",
    kernel_exec: str = "numpy",
    faults: FaultPlan | None = None,
) -> GemmResult:
    """Run ``C += A @ B`` with the traditional TGEMM implementation."""
    shape = GemmShape(m, n, k)
    cluster = (machine or default_machine()).cluster
    if cores is not None:
        cluster = cluster.with_cores(cores)
    decision = TuningDecision(
        strategy="tgemm",
        tgemm_plan=TgemmPlan().validate(cluster),
        reason="baseline",
    )
    return _run(
        shape, cluster, decision, a=a, b=b, c=c, timing=timing,
        kernel_exec=kernel_exec, faults=faults,
    )


def gemm(
    m: int,
    n: int,
    k: int,
    *,
    impl: Literal["ftimm", "tgemm"] = "ftimm",
    **kwargs,
) -> GemmResult:
    """Dispatch to :func:`ftimm_gemm` or :func:`tgemm_gemm`."""
    if impl == "ftimm":
        return ftimm_gemm(m, n, k, **kwargs)
    if impl == "tgemm":
        return tgemm_gemm(m, n, k, **kwargs)
    raise PlanError(f"unknown impl {impl!r}")
