"""Multi-cluster GEMM across the four GPDSP clusters of FT-m7032.

The paper evaluates a single GPDSP cluster; the chip has four, each with
its **own** DDR port (Section II: "each GPDSP cluster can only access its
own corresponding part" of main memory).  This extension scales ftIMM
across clusters:

* **M-split** (types 1 and 3, and any M large enough): each cluster runs
  ftIMM on a contiguous M-slice.  Operand A and the C rows are private
  per cluster; B must be replicated into every cluster's memory partition
  once (host-mediated copy, costed at the CPU's DDR bandwidth).  Since
  the ports are private, memory-bound shapes scale nearly linearly —
  unlike the intra-cluster scaling of Fig. 6 where eight cores fight over
  one port.

* **K-split** (type 2): each cluster computes a partial C over a K-slice;
  the host CPU reduces the partials ((n_clusters + 2) x C traffic).  For
  the irregular domain C is skinny, so — unlike Alg. 5's per-tile GSM
  reduction inside a cluster — the one-shot reduction is cheap and
  K-split also scales nearly linearly; only short K (poor per-cluster
  amortization) erodes it.  The ``ext_multicluster`` experiment
  quantifies both effects.

Functional execution composes the per-cluster functional runs (slices of
the same operands), so correctness is testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlanError, ShapeError
from ..hw.config import MachineConfig, default_machine
from ..obs.trace import current_tracer
from .ftimm import GemmResult, ftimm_gemm
from .shapes import GemmShape
from .tuner import choose_strategy

FP32 = 4


@dataclass
class MultiClusterResult:
    """Outcome of a GEMM spread over several GPDSP clusters."""

    shape: GemmShape
    n_clusters: int
    split: str                     # "m" | "k" | "single"
    seconds: float
    cluster_results: list[GemmResult]
    replicate_seconds: float       # B replication (m-split)
    reduce_seconds: float          # host reduction (k-split)

    @property
    def gflops(self) -> float:
        if self.seconds <= 0:
            raise PlanError("no timing was requested (timing='none')")
        return self.shape.flops / self.seconds / 1e9

    @property
    def efficiency(self) -> float:
        peak = sum(
            r.timing.peak_flops for r in self.cluster_results if r.timing
        )
        if self.seconds <= 0 or peak <= 0:
            raise PlanError("no timing was requested (timing='none')")
        return self.shape.flops / (self.seconds * peak)


def _split_extents(total: int, parts: int) -> list[int]:
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts) if base + (1 if i < rem else 0) > 0]


def choose_split(shape: GemmShape, machine: MachineConfig) -> str:
    """M-split whenever each cluster keeps a worthwhile M share."""
    per_cluster_m = shape.m // machine.n_clusters
    if choose_strategy(shape, machine.cluster) == "k" and per_cluster_m < 256:
        return "k"
    return "m"


def multi_cluster_gemm(
    m: int,
    n: int,
    k: int,
    *,
    machine: MachineConfig | None = None,
    n_clusters: int | None = None,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    c: np.ndarray | None = None,
    split: str | None = None,
    timing: str = "analytic",
) -> MultiClusterResult:
    """Run ``C += A @ B`` across up to four GPDSP clusters."""
    machine = machine or default_machine()
    shape = GemmShape(m, n, k)
    clusters = n_clusters if n_clusters is not None else machine.n_clusters
    if not 1 <= clusters <= machine.n_clusters:
        raise ShapeError(
            f"n_clusters={clusters} outside 1..{machine.n_clusters}"
        )
    mode = split or choose_split(shape, machine)
    if mode not in ("m", "k"):
        raise PlanError(f"unknown split {mode!r}")

    have_data = a is not None
    cpu_bw = machine.cpu.ddr_bandwidth

    def _secs(result: GemmResult) -> float:
        return result.seconds if result.timing is not None else 0.0

    if clusters == 1:
        result = ftimm_gemm(m, n, k, a=a, b=b, c=c, machine=machine, timing=timing)
        return MultiClusterResult(
            shape, 1, "single", _secs(result), [result], 0.0, 0.0
        )

    if mode == "m":
        extents = _split_extents(m, clusters)
        results = []
        row = 0
        for extent in extents:
            kwargs = {}
            if have_data:
                kwargs = dict(
                    a=a[row : row + extent], b=b, c=c[row : row + extent]
                )
            results.append(
                ftimm_gemm(extent, n, k, machine=machine, timing=timing, **kwargs)
            )
            row += extent
        # replicate B into each cluster's memory partition (host copy)
        replicate_s = (len(extents) - 1) * shape.b_bytes / cpu_bw
        seconds = replicate_s + max(_secs(r) for r in results)
        tracer = current_tracer()
        if tracer is not None:
            if replicate_s > 0:
                tracer.record(
                    "replicate B", category="replicate",
                    start_s=0.0, end_s=replicate_s,
                    track="host-copy", pid=0,
                    args={"bytes": shape.b_bytes * (len(extents) - 1)},
                )
            for i, r in enumerate(results):
                tracer.record(
                    f"cluster{i} m-slice", category="epoch",
                    start_s=replicate_s, end_s=replicate_s + _secs(r),
                    track="gemm", pid=i + 1,
                    args={"split": "m", "m": extents[i],
                          "strategy": r.strategy},
                )
        return MultiClusterResult(
            shape, len(extents), "m", seconds, results, replicate_s, 0.0
        )

    # K-split: per-cluster partials + host reduction
    extents = _split_extents(k, clusters)
    results = []
    partials: list[np.ndarray] = []
    col = 0
    for extent in extents:
        kwargs = {}
        if have_data:
            partial = np.zeros((m, n), dtype=np.float32)
            partials.append(partial)
            kwargs = dict(a=a[:, col : col + extent], b=b[col : col + extent], c=partial)
        results.append(
            ftimm_gemm(m, n, extent, machine=machine, timing=timing, **kwargs)
        )
        col += extent
    if have_data:
        for partial in partials:
            c += partial
    # host reads all partials and the original C, writes C back
    reduce_s = (len(extents) + 2) * shape.c_bytes / cpu_bw
    longest = max(_secs(r) for r in results)
    seconds = longest + reduce_s
    tracer = current_tracer()
    if tracer is not None:
        for i, r in enumerate(results):
            tracer.record(
                f"cluster{i} k-slice", category="epoch",
                start_s=0.0, end_s=_secs(r),
                track="gemm", pid=i + 1,
                args={"split": "k", "k": extents[i], "strategy": r.strategy},
            )
        if reduce_s > 0:
            tracer.record(
                "reduce partials", category="reduce",
                start_s=longest, end_s=longest + reduce_s,
                track="host-copy", pid=0,
                args={"bytes": shape.c_bytes * (len(extents) + 2)},
            )
    return MultiClusterResult(
        shape, len(extents), "k", seconds, results, 0.0, reduce_s
    )
