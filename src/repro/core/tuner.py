"""Dynamic adjusting: strategy selection + block-size adaptation (IV-C).

The decision procedure the paper describes:

* ``N <= n_a`` and M "large sufficiently"  →  **M-parallel** (Alg. 4) —
  covers type 1 (tall-skinny x small) and type 3 (regular x tall-skinny);
* ``N <= n_a``, M small, K "large sufficiently"  →  **K-parallel**
  (Alg. 5) — covers type 2 (skinny-tall x tall-skinny), where only the K
  loop can feed all cores;
* otherwise the shape is regular and TGEMM's classic blocking applies.

"Large sufficiently" is not quantified in the paper; here M counts as
small when it cannot give every core a few kernel row-blocks
(``M < n_cores * m_s_min * CHUNK_FACTOR``).  Note the paper is internally
ambiguous for type 3 (Section IV-C prescribes M-parallel; the Fig. 6
discussion says K-parallel was chosen for 20480x32x20480) — we follow the
prescription of IV-C and expose ``force_strategy`` so the Fig. 6
experiment can reproduce the other reading.

Block sizes are then adjusted by :func:`~repro.core.blocking.adjust_m_plan`
/ :func:`~repro.core.blocking.adjust_k_plan`: shrink to the matrix, regrow
the parallelized dimension, keep ``m_s >= 6``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..hw.config import ClusterConfig
from ..obs.registry import current as _obs_current
from .blocking import KPlan, MPlan, TgemmPlan, adjust_k_plan, adjust_m_plan
from .shapes import GemmShape, IRREGULAR_N_MAX, LARGE_DIM

Strategy = Literal["m", "k", "tgemm"]

#: how many m_s row-blocks per core M must supply to count as "large".
CHUNK_FACTOR = 4
#: minimum useful kernel rows (paper: kernels with m_s < 6 underperform).
M_S_MIN = 6


@dataclass(frozen=True)
class TuningDecision:
    """The tuner's output: which algorithm and which blocks."""

    strategy: Strategy
    m_plan: MPlan | None = None
    k_plan: KPlan | None = None
    tgemm_plan: TgemmPlan | None = None
    reason: str = ""

    @property
    def plan(self):
        return {
            "m": self.m_plan,
            "k": self.k_plan,
            "tgemm": self.tgemm_plan,
        }[self.strategy]


def m_small_threshold(cluster: ClusterConfig) -> int:
    return cluster.n_cores * M_S_MIN * CHUNK_FACTOR


def choose_strategy(shape: GemmShape, cluster: ClusterConfig) -> Strategy:
    """Pick the parallelization strategy per Section IV-C."""
    if shape.n > IRREGULAR_N_MAX:
        return "tgemm"
    m_small = shape.m < m_small_threshold(cluster)
    k_large = shape.k >= LARGE_DIM
    if m_small and k_large and shape.k > shape.m:
        return "k"
    return "m"


def tune(
    shape: GemmShape,
    cluster: ClusterConfig,
    *,
    force_strategy: Strategy | None = None,
    adjust: bool = True,
    dtype: str = "f32",
) -> TuningDecision:
    """Full dynamic adjusting: strategy + adapted block sizes.

    ``adjust=False`` keeps the paper's initial block sizes (the ablation
    quantifying what dynamic adjusting contributes); ``force_strategy``
    overrides selection (used by Fig. 6's K-parallel scalability case).
    ``dtype="f64"`` tunes for the double-precision extension (N <= 48;
    all footprints at 8 B/element).
    """
    from ..errors import ShapeError
    from .blocking import DTYPE_N_MAX

    if dtype != "f32" and shape.n > DTYPE_N_MAX[dtype]:
        raise ShapeError(
            f"N={shape.n} exceeds {DTYPE_N_MAX[dtype]}, the widest "
            f"{dtype} kernel (3 vector registers)"
        )
    strategy = force_strategy or choose_strategy(shape, cluster)
    m = _obs_current()
    if m is not None:
        m.counter("tuner/decisions").inc()
        m.counter(f"tuner/strategy/{strategy}").inc()
        if force_strategy is not None:
            m.counter("tuner/forced").inc()
    if strategy == "tgemm":
        if dtype != "f32":
            raise ShapeError(
                "the TGEMM baseline is single-precision only (as in the "
                "paper); FP64 covers the irregular domain"
            )
        return TuningDecision(
            strategy="tgemm",
            tgemm_plan=TgemmPlan().validate(cluster),
            reason=f"N={shape.n} > {IRREGULAR_N_MAX}: regular shape",
        )
    if strategy == "k":
        plan = KPlan(dtype=dtype) if dtype == "f32" else KPlan(
            n_a=48, m_s=8, k_a=448, m_g=512, m_a=512, dtype=dtype
        )
        if adjust:
            plan = adjust_k_plan(plan, shape, cluster)
        else:
            plan = plan.validate(cluster)
        return TuningDecision(
            strategy="k",
            k_plan=plan,
            reason=(
                f"M={shape.m} < {m_small_threshold(cluster)} and "
                f"K={shape.k} large: only the K loop can feed "
                f"{cluster.n_cores} cores"
            ),
        )
    plan = MPlan(dtype=dtype) if dtype == "f32" else MPlan(
        k_g=5888, n_g=48, m_a=320, n_a=48, k_a=864, m_s=8, dtype=dtype
    )
    if adjust:
        plan = adjust_m_plan(plan, shape, cluster)
    else:
        plan = plan.validate(cluster)
    return TuningDecision(
        strategy="m",
        m_plan=plan,
        reason=f"M={shape.m} large enough to split across cores",
    )


def _tune_unit(args: tuple) -> TuningDecision:
    """Picklable work unit for :func:`tune_many`."""
    shape, cluster, dtype = args
    return tune(shape, cluster, dtype=dtype)


def tune_many(
    shapes: list[GemmShape],
    cluster: ClusterConfig,
    *,
    dtype: str = "f32",
    jobs: int | None = None,
) -> list[TuningDecision]:
    """Tune a batch of shapes, fanned across worker processes.

    Returns one decision per shape, in input order; identical to calling
    :func:`tune` serially for every job count (each decision is a pure
    function of its shape).  Used by experiment sweeps that classify and
    plan hundreds of shapes.

    Small batches stay serial (rule-based tuning is microseconds per
    shape — a pool spawn would dominate; see
    :data:`~repro.parallel.POOL_MIN_UNITS`) unless a persistent
    :func:`~repro.parallel.worker_pool` is already active.
    """
    from ..parallel import POOL_MIN_UNITS, parallel_map

    return parallel_map(
        _tune_unit,
        [(s, cluster, dtype) for s in shapes],
        jobs,
        chunksize=16,
        min_units=POOL_MIN_UNITS,
    )
