"""Batched and grouped GEMM (the FEM / libxsmm use case of the intro).

The paper motivates irregular GEMM with workloads that issue *many* small
multiplications — FEM operator application, per-layer CNN lowering.
Issuing them one `ftimm_gemm` at a time repays the fixed costs (panel
fills, barriers, strategy setup) per call.  Two batching tools:

* :func:`grouped_gemm` — many A/C pairs sharing one B (exactly FEM's
  per-element operator): the A blocks are a *logical* vertical stack, so
  the whole group runs as one tall-and-skinny GEMM; the shared B is cached
  in GSM once instead of once per element block.

* :func:`batched_gemm` — arbitrary ``(a, b, c)`` triples: greedily groups
  items that share the same B, runs each group with :func:`grouped_gemm`,
  and reports the aggregate alongside the modeled time of the naive
  one-call-per-item loop so the grouping win is visible.

Sharing is decided by **content digest** by default (:func:`b_digest`):
two B arrays that are equal but distinct objects — the normal case for
requests deserialized from a stream — still coalesce.  Pass
``group_by="identity"`` to opt back into the old ``id(b)`` behaviour
(e.g. when the caller guarantees object sharing and B is huge enough
that hashing it matters).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import PlanError, ShapeError
from ..faults.plan import FaultPlan
from ..hw.config import MachineConfig, default_machine
from .ftimm import GemmResult, ftimm_gemm
from .shapes import GemmShape


def b_digest(b: np.ndarray) -> str:
    """Content digest of an operand: dtype + shape + bytes, blake2b-16.

    Equal arrays (same dtype, shape and element bytes) digest equally even
    when they are distinct objects or non-contiguous views.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(b.dtype).encode())
    h.update(str(b.shape).encode())
    h.update(np.ascontiguousarray(b).tobytes())
    return h.hexdigest()


@dataclass
class GroupedGemmResult:
    """One grouped call: many (A_i, C_i) against a shared B."""

    shape: GemmShape          # the stacked (sum M_i) x N x K problem
    n_items: int
    result: GemmResult

    @property
    def seconds(self) -> float:
        return self.result.seconds

    @property
    def gflops(self) -> float:
        return self.result.gflops


@dataclass
class BatchedGemmResult:
    """Aggregate of a heterogeneous batch."""

    groups: list[GroupedGemmResult] = field(default_factory=list)

    @property
    def n_items(self) -> int:
        return sum(g.n_items for g in self.groups)

    @property
    def seconds(self) -> float:
        return sum(g.seconds for g in self.groups)

    @property
    def total_flops(self) -> int:
        return sum(g.shape.flops for g in self.groups)

    @property
    def gflops(self) -> float:
        return self.total_flops / self.seconds / 1e9 if self.seconds else 0.0


def grouped_gemm(
    a_blocks: list[np.ndarray] | None,
    b: np.ndarray | None,
    c_blocks: list[np.ndarray] | None,
    *,
    m_blocks: list[int] | None = None,
    n: int | None = None,
    k: int | None = None,
    machine: MachineConfig | None = None,
    timing: str = "auto",
    faults: FaultPlan | None = None,
) -> GroupedGemmResult:
    """Run ``C_i += A_i @ B`` for all i as one stacked GEMM.

    Either pass real operands (``a_blocks``/``b``/``c_blocks``) or, for a
    timing-only estimate, pass ``m_blocks``/``n``/``k``.  ``faults`` arms
    seeded fault injection on the stacked run (see :mod:`repro.faults`):
    the group either completes exactly or raises a typed ``FaultError``
    before any ``c_blocks`` entry is written back.
    """
    machine = machine or default_machine()
    if a_blocks is not None:
        if b is None or c_blocks is None or len(a_blocks) != len(c_blocks):
            raise PlanError("grouped_gemm needs matching a_blocks/c_blocks and b")
        if not a_blocks:
            raise ShapeError("empty group")
        k_, n_ = b.shape
        for a_i, c_i in zip(a_blocks, c_blocks):
            if a_i.shape[1] != k_ or c_i.shape[1] != n_ or a_i.shape[0] != c_i.shape[0]:
                raise PlanError(
                    f"group member shapes A{a_i.shape} C{c_i.shape} do not "
                    f"match B{b.shape}"
                )
        stacked_a = np.ascontiguousarray(np.vstack(a_blocks))
        stacked_c = np.ascontiguousarray(np.vstack(c_blocks))
        total_m = stacked_a.shape[0]
        result = ftimm_gemm(
            total_m, n_, k_, a=stacked_a, b=b, c=stacked_c,
            machine=machine, timing=timing, faults=faults,
        )
        row = 0
        for c_i in c_blocks:
            rows = c_i.shape[0]
            c_i[:, :] = stacked_c[row : row + rows]
            row += rows
        return GroupedGemmResult(
            shape=GemmShape(total_m, n_, k_), n_items=len(a_blocks), result=result
        )

    if m_blocks is None or n is None or k is None:
        raise PlanError("pass operands, or m_blocks + n + k for timing-only")
    if not m_blocks:
        raise ShapeError("empty group")
    total_m = sum(m_blocks)
    result = ftimm_gemm(
        total_m, n, k, machine=machine, timing=timing, faults=faults
    )
    return GroupedGemmResult(
        shape=GemmShape(total_m, n, k), n_items=len(m_blocks), result=result
    )


def batched_gemm(
    items: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    *,
    machine: MachineConfig | None = None,
    timing: str = "auto",
    group_by: str = "digest",
) -> BatchedGemmResult:
    """Run a heterogeneous batch, grouping items that share a B operand.

    ``group_by="digest"`` (default) treats equal-but-distinct B arrays as
    shared; ``group_by="identity"`` requires the same object.
    """
    machine = machine or default_machine()
    if not items:
        raise ShapeError("empty batch")
    if group_by not in ("digest", "identity"):
        raise PlanError(f"unknown group_by {group_by!r}")
    groups: dict[tuple[object, tuple[int, int]], list[int]] = {}
    for idx, (a, b, c) in enumerate(items):
        key = b_digest(b) if group_by == "digest" else id(b)
        groups.setdefault((key, b.shape), []).append(idx)
    out = BatchedGemmResult()
    for (_bkey, _bshape), indices in groups.items():
        a_blocks = [items[i][0] for i in indices]
        c_blocks = [items[i][2] for i in indices]
        out.groups.append(
            grouped_gemm(
                a_blocks, items[indices[0]][1], c_blocks,
                machine=machine, timing=timing,
            )
        )
    return out


def naive_batch_seconds(
    shapes: list[GemmShape],
    *,
    machine: MachineConfig | None = None,
) -> float:
    """Modeled time of issuing the batch one GEMM call at a time."""
    machine = machine or default_machine()
    return sum(
        ftimm_gemm(s.m, s.n, s.k, machine=machine, timing="analytic").seconds
        for s in shapes
    )
