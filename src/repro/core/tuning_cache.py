"""Persistent tuning cache.

Auto-tuning with DES validation costs seconds per shape; production BLAS
libraries persist tuned configurations and reuse them across runs (the
approach of ATLAS and of AutoTSMM's offline stage).  This module stores
:func:`repro.core.autotune.autotune` outcomes keyed by (shape, cores,
dtype), round-trips them through JSON, and rebuilds the winning plan on
load.

    cache = TuningCache.load("tuned.json")
    entry = cache.get_or_tune(GemmShape(65536, 32, 32), cluster)
    build_parallel_m(shape, cluster, plan=entry.plan, adjust=False)
    cache.save("tuned.json")
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import PlanError
from ..hw.config import ClusterConfig
from ..obs.registry import current as _obs_current
from .autotune import AutotuneResult, autotune
from .blocking import KPlan, MPlan
from .shapes import GemmShape

_PLAN_TYPES = {"m": MPlan, "k": KPlan}


@dataclass(frozen=True)
class CacheKey:
    m: int
    n: int
    k: int
    n_cores: int
    dtype: str = "f32"

    @classmethod
    def of(cls, shape: GemmShape, cluster: ClusterConfig, dtype: str = "f32"):
        return cls(shape.m, shape.n, shape.k, cluster.n_cores, dtype)

    def to_str(self) -> str:
        return f"{self.m}x{self.n}x{self.k}@{self.n_cores}c/{self.dtype}"

    @classmethod
    def from_str(cls, text: str) -> "CacheKey":
        dims, rest = text.split("@")
        cores, dtype = rest.split("/")
        m, n, k = (int(x) for x in dims.split("x"))
        return cls(m, n, k, int(cores[:-1]), dtype)


@dataclass
class CacheEntry:
    strategy: str            # "m" | "k"
    plan_fields: dict
    seconds: float
    validated: bool

    @property
    def plan(self):
        return _PLAN_TYPES[self.strategy](**self.plan_fields)

    @classmethod
    def from_result(cls, result: AutotuneResult) -> "CacheEntry":
        best = result.best
        return cls(
            strategy=best.strategy,
            plan_fields=dataclasses.asdict(best.plan),
            seconds=best.seconds,
            validated=best.validated,
        )


@dataclass
class TuningCache:
    """In-memory map of tuned plans with JSON persistence."""

    entries: dict[CacheKey, CacheEntry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, key: CacheKey) -> CacheEntry | None:
        entry = self.entries.get(key)
        if entry is not None:
            self.hits += 1
            m = _obs_current()
            if m is not None:
                m.counter("tuner/cache/hits").inc()
        return entry

    def get_or_tune(
        self,
        shape: GemmShape,
        cluster: ClusterConfig,
        *,
        dtype: str = "f32",
        **autotune_kwargs,
    ) -> CacheEntry:
        key = CacheKey.of(shape, cluster, dtype)
        entry = self.get(key)
        if entry is not None:
            return entry
        self.misses += 1
        m = _obs_current()
        if m is not None:
            m.counter("tuner/cache/misses").inc()
        if dtype != "f32":
            raise PlanError("the autotuner currently searches f32 plans only")
        result = autotune(shape, cluster, **autotune_kwargs)
        entry = CacheEntry.from_result(result)
        self.entries[key] = entry
        return entry

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                key.to_str(): {
                    "strategy": e.strategy,
                    "plan": e.plan_fields,
                    "seconds": e.seconds,
                    "validated": e.validated,
                }
                for key, e in self.entries.items()
            },
            indent=1,
            sort_keys=True,
        )

    def save(self, path: str | Path) -> Path:
        """Write atomically (temp file + rename in the same directory).

        A crash mid-save leaves the previous cache intact instead of a
        truncated JSON file that would poison every later load.
        """
        path = Path(path)
        blob = self.to_json()
        fd, tmp = tempfile.mkstemp(
            dir=path.parent or Path("."), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def from_json(cls, text: str) -> "TuningCache":
        raw = json.loads(text)
        cache = cls()
        for key_text, payload in raw.items():
            strategy = payload["strategy"]
            if strategy not in _PLAN_TYPES:
                raise PlanError(f"unknown strategy {strategy!r} in cache")
            cache.entries[CacheKey.from_str(key_text)] = CacheEntry(
                strategy=strategy,
                plan_fields=dict(payload["plan"]),
                seconds=float(payload["seconds"]),
                validated=bool(payload["validated"]),
            )
        return cache

    @classmethod
    def load(cls, path: str | Path) -> "TuningCache":
        """Load a cache; a corrupt file is quarantined, not fatal.

        Unparseable JSON (e.g. a file torn by an old non-atomic writer)
        is renamed to ``<path>.bad`` and an empty cache returned, so
        tuning falls back to re-searching instead of crashing — the
        quarantine shows up as a ``tuner/cache/quarantined`` counter.
        """
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            return cls.from_json(path.read_text())
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            m = _obs_current()
            if m is not None:
                m.counter("tuner/cache/quarantined").inc()
            try:
                os.replace(path, path.with_name(path.name + ".bad"))
            except OSError:
                pass
            return cls()

    def __len__(self) -> int:
        return len(self.entries)
