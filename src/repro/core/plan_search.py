"""Adaptive plan search: analytic lower bounds + cross-shape plan transfer.

The exhaustive autotuner (:mod:`repro.core.autotune`) scores every
candidate plan with the closed-form timing model.  Each score is cheap in
principle, but it pulls the candidate's micro-kernels through the
registry — modulo scheduling on a cold cache — so a ~53-candidate grid
costs real wall time, and the serving layer simply refused to pay it
(PR 4 warms buckets with the rule-based tuner only).  This module makes
the search cheap enough to run online, with two tools:

**Lower bounds** (:func:`plan_bound`) — for every candidate a *kernel-free*
floor on the analytic time, built from the two resources no plan can
cheat: the busiest core's DDR byte count over its bandwidth share, and
its FMAC work at per-core peak (plus the per-kernel call overhead, which
is what sinks small-``k_a`` plans).  The bound mirrors the byte accounting
of :mod:`repro.executor.analytic` term by term, so ``bound <= analytic
seconds`` holds by construction (and is asserted over a shape grid in
``tests/test_plan_search.py``).  Best-first search orders candidates by
bound and stops expanding once the next bound exceeds the incumbent
finalist set — a pure *search-order* optimization: the selected plan is
bit-identical to exhaustive search (tested).

**Plan database** (:class:`PlanDB`) — a persistent store of search
outcomes keyed by a coarse :class:`ShapeClass` signature (strategy
domain, dtype, exact N, log2 bands of K and M, core count).  A new search
warm-starts from the nearest tuned neighbor's plan (again only a search
*order* hint), and may *short-circuit* entirely when the caller passes an
explicit tolerance and the transferred plan's analytic time is within it
of the whole grid's lower bound — the only mode in which the result may
differ from exhaustive search, and it is reported as such.  The database
lives alongside the kernel disk cache (``$REPRO_KERNEL_CACHE``), with the
same atomic writes and ``*.bad`` corrupt-entry quarantine.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import PlanError
from ..hw.config import ClusterConfig
from ..obs.registry import current as _obs_current
from .blocking import KPlan, MPlan, adjust_plan
from .shapes import GemmShape
from .tuner import choose_strategy

#: bump when the on-disk plan-database layout changes incompatibly.
PLAN_DB_FORMAT = 1

#: guard against float-association drift between the bound and the model:
#: the bound is scaled down by this factor before any pruning comparison.
_BOUND_SAFETY = 1.0 - 1e-9

_PLAN_TYPES = {"m": MPlan, "k": KPlan}


def _count(event: str, value: float = 1) -> None:
    m = _obs_current()
    if m is not None:
        m.counter(f"tuner/{event}").inc(value)


# ---------------------------------------------------------------------------
# analytic lower bounds
# ---------------------------------------------------------------------------


class _FloorKernel:
    """A stand-in kernel reporting the cycle floor no real kernel beats."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float) -> None:
        self.cycles = cycles


class _FloorRegistry:
    """Registry shim: kernels cost call overhead + MACs at per-core peak.

    A generated kernel's cycle count is ``kernel_call_overhead_cycles``
    plus its scheduled blocks, and the blocks must issue ``2*ms*nc*kc``
    flops through FMAC units that retire at most ``fma_lanes_per_cycle *
    flops_per_lane`` flops per cycle — so ``overhead + flops/ppc`` is a
    floor on every kernel the generator can emit (FP64 kernels have half
    the lanes, so the FP32 floor still under-estimates them).
    """

    def __init__(self, core) -> None:
        self._overhead = core.kernel_call_overhead_cycles
        self._ppc = core.fma_lanes_per_cycle * core.flops_per_lane

    def _floor(self, ms: int, nc: int, kc: int) -> _FloorKernel:
        return _FloorKernel(self._overhead + 2.0 * ms * nc * kc / self._ppc)

    def ftimm(self, ms: int, nc: int, kc: int, dtype: str = "f32") -> _FloorKernel:
        return self._floor(ms, nc, kc)

    def tgemm(self, ms: int, nc: int, kc: int) -> _FloorKernel:
        return self._floor(ms, nc, kc)


def plan_bound(
    shape: GemmShape, cluster: ClusterConfig, strategy: str, plan
) -> float:
    """A kernel-free lower bound on the candidate's analytic time.

    Runs the *actual* closed-form model (:mod:`repro.executor.analytic`)
    with every micro-kernel replaced by its cycle floor
    (:class:`_FloorRegistry`).  The model is monotone non-decreasing in
    kernel cycles (sums, maxes and the two-slot ping-pong recurrence),
    so ``plan_bound(...) <= analytic seconds`` for the same (shape, plan)
    by construction — asserted across a shape grid in the tests.  Pure
    arithmetic: the expensive part of scoring (kernel generation +
    modulo scheduling) never runs.
    """
    from ..executor.analytic import analytic_parallel_k, analytic_parallel_m

    shim = _FloorRegistry(cluster.core)
    if strategy == "m":
        t = analytic_parallel_m(shape, cluster, plan, shim)
    elif strategy == "k":
        t = analytic_parallel_k(shape, cluster, plan, shim)
    else:
        raise PlanError(f"no bound for strategy {strategy!r}")
    return t.seconds * _BOUND_SAFETY

# ---------------------------------------------------------------------------
# shape-class signatures
# ---------------------------------------------------------------------------


def _band(x: int) -> int:
    """Coarse log2 band of a dimension (0 for 1, 10 for 1024..2047, ...)."""
    return max(0, int(x).bit_length() - 1)


@dataclass(frozen=True)
class ShapeClass:
    """The transfer-granularity signature of a GEMM tuning problem.

    Two shapes in the same class share the strategy domain the rules
    would pick, the exact N (which fixes the kernel width ``n_a``), the
    log2 bands of K and M (which fix the block-count regime), and the
    core count.  Near misses are ranked by :meth:`distance`.
    """

    domain: str          # "m" | "k" — choose_strategy's verdict
    dtype: str
    n: int
    k_band: int
    m_band: int
    n_cores: int

    @classmethod
    def of(
        cls, shape: GemmShape, cluster: ClusterConfig, dtype: str = "f32"
    ) -> "ShapeClass":
        return cls(
            domain=choose_strategy(shape, cluster),
            dtype=dtype,
            n=shape.n,
            k_band=_band(shape.k),
            m_band=_band(shape.m),
            n_cores=cluster.n_cores,
        )

    def key(self) -> str:
        return (
            f"{self.domain}/{self.dtype}/n{self.n}"
            f"/k{self.k_band}/m{self.m_band}@{self.n_cores}c"
        )

    def distance(self, other: "ShapeClass") -> float:
        """Transfer distance; ``inf`` when transfer makes no sense at all."""
        if (
            self.domain != other.domain
            or self.dtype != other.dtype
            or self.n_cores != other.n_cores
        ):
            return math.inf
        d = abs(self.k_band - other.k_band) + abs(self.m_band - other.m_band)
        if self.n != other.n:
            # a different N means different kernels: transferable only
            # after re-adjustment, so it is heavily penalized
            d += 2 + abs(_band(self.n) - _band(other.n))
        return float(d)


# ---------------------------------------------------------------------------
# persistent plan database
# ---------------------------------------------------------------------------


@dataclass
class PlanRecord:
    """One tuned outcome: the winning plan and its search provenance."""

    strategy: str                   # "m" | "k"
    plan_fields: dict
    shape: tuple[int, int, int]     # the shape that was searched
    seconds: float                  # the winner's (possibly DES) score
    validated: bool
    scored: int                     # candidates scored to find it

    @property
    def plan(self):
        return _PLAN_TYPES[self.strategy](**self.plan_fields)

    def adapted(self, shape: GemmShape, cluster: ClusterConfig):
        """Refit the stored plan to ``shape``; raises PlanError if unfit."""
        return adjust_plan(self.strategy, self.plan, shape, cluster)

    def to_dict(self) -> dict:
        from ..kernels.serialize import plan_to_dict

        return {
            "plan": plan_to_dict(self.strategy, self.plan),
            "shape": list(self.shape),
            "seconds": self.seconds,
            "validated": self.validated,
            "scored": self.scored,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PlanRecord":
        from ..errors import IsaError
        from ..kernels.serialize import plan_from_dict

        try:
            strategy, plan = plan_from_dict(d["plan"])
        except IsaError as exc:
            raise PlanError(str(exc)) from exc
        if strategy not in _PLAN_TYPES:
            raise PlanError(f"strategy {strategy!r} has no search domain")
        return cls(
            strategy=strategy,
            plan_fields=dataclasses.asdict(plan),
            shape=tuple(int(x) for x in d["shape"]),
            seconds=float(d["seconds"]),
            validated=bool(d["validated"]),
            scored=int(d.get("scored", 0)),
        )


class PlanDB:
    """Persistent cross-shape plan database, aged and size-bounded.

    One JSON file of ``{signature key: {sig, record, gen, tick}}`` under
    ``root`` (``None`` = memory-only), loaded lazily.  Saves are atomic
    (temp file + rename); a corrupt or truncated file is quarantined to
    ``*.bad`` and the database starts empty — surfaced as a
    ``tuner/plandb/quarantined`` counter, never a crash.

    Two staleness guards on top:

    * every entry is stamped with the kernel ``GENERATOR_VERSION`` it
      was tuned under; a generator bump invalidates the stale entries
      individually on load (``tuner/plandb/invalidated``) instead of
      transferring plans whose kernels no longer exist;
    * the database holds at most ``max_entries`` records — inserts over
      the cap evict the least-recently-used entry (``get``/``nearest``
      hits refresh recency; ``tuner/plandb/evicted``), so a long-lived
      serving cache cannot grow without bound.
    """

    FILENAME = f"plans-v{PLAN_DB_FORMAT}.json"

    def __init__(
        self,
        root: Path | str | None = None,
        *,
        max_entries: int = 256,
    ) -> None:
        if max_entries < 1:
            raise PlanError("max_entries must be >= 1")
        self.root = Path(root) if root is not None else None
        self.max_entries = max_entries
        self._entries: dict[str, tuple[ShapeClass, PlanRecord]] | None = None
        self._ticks: dict[str, int] = {}
        self._tick = 0

    @property
    def path(self) -> Path | None:
        return self.root / self.FILENAME if self.root is not None else None

    @staticmethod
    def _generator_version() -> int:
        from ..kernels.generator import GENERATOR_VERSION

        return GENERATOR_VERSION

    def _touch(self, key: str) -> None:
        self._tick += 1
        self._ticks[key] = self._tick

    # -- persistence -------------------------------------------------------

    def _load(self) -> dict[str, tuple[ShapeClass, PlanRecord]]:
        if self._entries is not None:
            return self._entries
        self._entries = {}
        self._ticks = {}
        self._tick = 0
        path = self.path
        if path is None or not path.exists():
            return self._entries
        gen = self._generator_version()
        invalidated = 0
        try:
            raw = json.loads(path.read_text())
            for key, payload in raw.items():
                if int(payload.get("gen", -1)) != gen:
                    # tuned under a different kernel generator: its
                    # kernels (and maybe its plan grammar) are gone
                    invalidated += 1
                    continue
                sig = ShapeClass(**payload["sig"])
                self._entries[key] = (sig, PlanRecord.from_dict(payload["record"]))
                self._ticks[key] = int(payload.get("tick", 0))
            self._tick = max(self._ticks.values(), default=0)
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError, PlanError):
            self._entries = {}
            self._ticks = {}
            self._tick = 0
            _count("plandb/quarantined")
            try:
                os.replace(path, path.with_name(path.name + ".bad"))
            except OSError:
                pass
            return self._entries
        if invalidated:
            _count("plandb/invalidated", invalidated)
        return self._entries

    def _save(self) -> None:
        path = self.path
        if path is None or self._entries is None:
            return
        gen = self._generator_version()
        blob = json.dumps(
            {
                key: {
                    "sig": dataclasses.asdict(sig),
                    "record": rec.to_dict(),
                    "gen": gen,
                    "tick": self._ticks.get(key, 0),
                }
                for key, (sig, rec) in self._entries.items()
            },
            indent=1,
            sort_keys=True,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a read-only or full cache dir must never fail the run
        _count("plandb/writes")

    # -- queries -----------------------------------------------------------

    def get(self, sig: ShapeClass) -> PlanRecord | None:
        key = sig.key()
        entry = self._load().get(key)
        if entry is None:
            return None
        self._touch(key)
        return entry[1]

    def nearest(
        self, sig: ShapeClass, *, max_distance: float = 4.0
    ) -> tuple[ShapeClass, PlanRecord, float] | None:
        """The closest stored class within ``max_distance`` (exact first)."""
        best: tuple[float, str, ShapeClass, PlanRecord] | None = None
        for key, (other, rec) in self._load().items():
            d = sig.distance(other)
            if d > max_distance:
                continue
            if best is None or (d, key) < (best[0], best[1]):
                best = (d, key, other, rec)
        if best is None:
            return None
        self._touch(best[1])
        return best[2], best[3], best[0]

    def put(self, sig: ShapeClass, record: PlanRecord) -> None:
        entries = self._load()
        key = sig.key()
        entries[key] = (sig, record)
        self._touch(key)
        evicted = 0
        while len(entries) > self.max_entries:
            victim = min(
                entries, key=lambda k: (self._ticks.get(k, 0), k)
            )
            del entries[victim]
            self._ticks.pop(victim, None)
            evicted += 1
        if evicted:
            _count("plandb/evicted", evicted)
        self._save()

    def __len__(self) -> int:
        return len(self._load())


_default_db: PlanDB | None = None


def default_plan_db() -> PlanDB:
    """Process-wide database rooted alongside the kernel disk cache.

    Honors ``$REPRO_KERNEL_CACHE`` (including its disable values — then
    the database is memory-only, which still enables in-process
    transfer between searches).
    """
    global _default_db
    if _default_db is None:
        from ..kernels.registry import default_cache_dir

        root = default_cache_dir()
        _default_db = PlanDB(root / "plans" if root is not None else None)
    return _default_db


# ---------------------------------------------------------------------------
# search statistics
# ---------------------------------------------------------------------------


@dataclass
class SearchStats:
    """What the search actually did (the CLI report + the counters)."""

    mode: str = "pruned"            # "pruned" | "exhaustive"
    generated: int = 0              # candidate plans in the grid
    bound_evals: int = 0            # lower bounds computed
    scored: int = 0                 # candidates fully scored (analytic)
    pruned: int = 0                 # generated - scored
    des_validated: int = 0          # finalists (+ rule) re-scored by DES
    transfer: str = "off"       # off | miss | warm | short_circuit | replay
    neighbor: str | None = None     # the donor class key, when any
    neighbor_distance: float | None = None
    transfer_tol: float | None = None
    pooled: bool = False            # True when scoring used worker processes
    #: (candidates scored so far, label, analytic seconds) at each
    #: incumbent improvement — the trajectory the CLI report prints
    trajectory: list[tuple[int, str, float]] = field(default_factory=list)

    def describe(self) -> str:
        parts = [
            f"generated {self.generated}",
            f"bound-pruned {self.pruned}",
            f"scored {self.scored}",
            f"DES-validated {self.des_validated}",
        ]
        if self.transfer != "off":
            t = f"transfer {self.transfer}"
            if self.neighbor is not None:
                t += f" (neighbor {self.neighbor}, d={self.neighbor_distance:g})"
            if self.transfer_tol is not None:
                t += f" tol={self.transfer_tol:g}"
            parts.append(t)
        return ", ".join(parts)
