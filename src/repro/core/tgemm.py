"""TGEMM — the traditional GEMM implementation (Alg. 1), as the baseline.

Loop structure (Goto-style, adapted to FT-m7032 by [23], [24]):

* A is staged through GSM in ``m_g x k_g`` panels (``A_g``, ping-pong);
* the N dimension is split in ``n_a``-wide strips, **and this is the only
  multi-core parallel loop** — with ``N <= 96`` a single strip exists and
  only one DSP core computes, which is TGEMM's structural weakness on
  irregular shapes (Section III-C, problem 2);
* per strip, ``B_a`` (``k_g x n_a``) and ``C_a`` (``m_g x n_a``) live in AM
  (both ping-pong), ``A_s`` (``m_s x k_g``) in SM (ping-pong), and the fixed
  6x96 micro-kernel runs with implicit padding (problem 1).

The A_g panel loads are split across all cores' DMA engines (cooperative
fill); a cluster barrier separates panel fill from use, with the standard
two-slot discipline letting panel ``j+1`` stream in while panel ``j`` is
consumed.
"""

from __future__ import annotations

from ..errors import PlanError
from ..hw.config import ClusterConfig
from ..hw.memory import MemKind
from ..kernels.registry import KernelRegistry
from .blocking import TgemmPlan
from .lowering import GemmOperands, LoweringContext, block_ranges, chunks_for_core
from .plans import GemmExecution, OpStreamBuilder
from .shapes import GemmShape


def build_tgemm(
    shape: GemmShape,
    cluster: ClusterConfig,
    plan: TgemmPlan | None = None,
    data: GemmOperands | None = None,
    registry: KernelRegistry | None = None,
    *,
    kernel_exec: str = "numpy",
    faults=None,
) -> GemmExecution:
    """Lower a GEMM to TGEMM's op streams."""
    plan = (plan or TgemmPlan()).validate(cluster)
    ctx = LoweringContext(
        cluster, shape, data, registry, kernel_exec=kernel_exec, faults=faults
    )
    n_cores = cluster.n_cores
    builder = OpStreamBuilder(n_cores)
    m, n, k = shape.m, shape.n, shape.k

    # on-chip buffers: A_g in GSM (shared); per-core B_a / C_a in AM and
    # A_s in SM.  Only cores that own an N-strip ever touch their AM/SM
    # tiles, but TGEMM allocates them unconditionally (static layout).
    a_g = ctx.alloc(MemKind.GSM, 0, plan.m_g, plan.k_g, "A_g", slots=2)
    b_a = [
        ctx.alloc(MemKind.AM, c, plan.k_g, plan.n_a, "B_a", slots=2)
        for c in range(n_cores)
    ]
    c_a = [
        ctx.alloc(MemKind.AM, c, plan.m_g, plan.n_a, "C_a", slots=2)
        for c in range(n_cores)
    ]
    a_s = [
        ctx.alloc(MemKind.SM, c, plan.m_s, plan.k_g, "A_s", slots=2)
        for c in range(n_cores)
    ]

    for _i_idx, i0, mr in block_ranges(m, plan.m_g):
        for j_idx, j0, kc in block_ranges(k, plan.k_g):
            jslot = j_idx % 2
            # cooperative fill of the shared A_g panel
            for core, rs, re in ctx.split_rows(mr):
                run = None
                if ctx.backed:
                    ag_arr = a_g[jslot].array()
                    src = ctx.data.a[i0 + rs : i0 + rs + re, j0 : j0 + kc]

                    def run(
                        ag_arr=ag_arr, rs=rs, re=re, kc=kc, src=src, core=core
                    ) -> None:
                        ctx.store(ag_arr[rs : rs + re, :kc], src, core)

                builder.dma(
                    core,
                    ctx.desc(MemKind.DDR, MemKind.GSM, re, kc, "A->A_g"),
                    run=run,
                    tag="A->A_g",
                )
            builder.sync(tag=f"A_g[{i0},{j0}] ready")

            # the parallel loop: N-strips round-robin across cores
            for t_idx, t0, nc in block_ranges(n, plan.n_a):
                core = t_idx % n_cores
                tslot = t_idx % 2
                ba_buf = b_a[core][tslot]
                ca_buf = c_a[core][tslot]
                builder.dma(
                    core,
                    ctx.desc(MemKind.DDR, MemKind.AM, kc, nc, "B->B_a"),
                    buffer="B_a",
                    slot=tslot,
                    run=ctx.copy_in(
                        ba_buf, ctx.data.b[j0 : j0 + kc, t0 : t0 + nc], kc, nc,
                        core,
                    )
                    if ctx.backed
                    else None,
                    tag="B->B_a",
                )
                builder.dma(
                    core,
                    ctx.desc(MemKind.DDR, MemKind.AM, mr, nc, "C->C_a"),
                    buffer="C_a",
                    slot=tslot,
                    run=ctx.copy_in(
                        ca_buf, ctx.data.c[i0 : i0 + mr, t0 : t0 + nc], mr, nc,
                        core,
                    )
                    if ctx.backed
                    else None,
                    tag="C->C_a",
                )
                last_kernel = -1
                for ii_idx, ii0, ms_r in block_ranges(mr, plan.m_s):
                    aslot = ii_idx % 2
                    as_buf = a_s[core][aslot]
                    run = None
                    if ctx.backed:
                        ag_arr = a_g[jslot].array()
                        as_arr = as_buf.array()

                        def run(
                            as_arr=as_arr, ag_arr=ag_arr, ii0=ii0, ms_r=ms_r,
                            kc=kc, core=core
                        ) -> None:
                            ctx.store(
                                as_arr[:ms_r, :kc],
                                ag_arr[ii0 : ii0 + ms_r, :kc],
                                core,
                            )

                    builder.dma(
                        core,
                        ctx.desc(MemKind.GSM, MemKind.SM, ms_r, kc, "A_g->A_s"),
                        buffer="A_s",
                        slot=aslot,
                        run=run,
                        tag="A_g->A_s",
                    )
                    kern = ctx.registry.tgemm(ms_r, nc, kc)
                    krun = None
                    if ctx.backed:
                        as_arr = as_buf.array()
                        ba_arr = ba_buf.array()
                        ca_arr = ca_buf.array()

                        def krun(
                            kern=kern,
                            as_arr=as_arr,
                            ba_arr=ba_arr,
                            ca_arr=ca_arr,
                            ii0=ii0,
                            ms_r=ms_r,
                            kc=kc,
                            nc=nc,
                            core=core,
                        ) -> None:
                            ctx.apply_kernel(
                                kern,
                                as_arr[:ms_r, :kc],
                                ba_arr[:kc, :nc],
                                ca_arr[ii0 : ii0 + ms_r, :nc],
                                core,
                            )

                    last_kernel = builder.kernel(
                        core,
                        kern.cycles,
                        kern.flops,
                        reads=(("A_s", aslot), ("B_a", tslot), ("C_a", tslot)),
                        run=krun,
                        tag=f"mk{ms_r}x{nc}x{kc}",
                    )
                out_idx = builder.dma(
                    core,
                    ctx.desc(MemKind.AM, MemKind.DDR, mr, nc, "C_a->C"),
                    extra_deps=(last_kernel,) if last_kernel >= 0 else (),
                    run=ctx.copy_out(
                        ctx.data.c[i0 : i0 + mr, t0 : t0 + nc], ca_buf, mr, nc,
                        core,
                    )
                    if ctx.backed
                    else None,
                    tag="C_a->C",
                )
                builder.consume(core, "C_a", tslot, out_idx)
                builder.consume(core, "B_a", tslot, out_idx if last_kernel < 0 else last_kernel)

    if shape.n == 0:
        raise PlanError("empty GEMM")
    return builder.finish(
        shape,
        "tgemm",
        cluster,
        plan=plan,
        kernel_exec=ctx.kernel_exec,
        peak_am=max(s.peak_used for s in ctx.spaces.am),
        peak_sm=max(s.peak_used for s in ctx.spaces.sm),
        peak_gsm=ctx.spaces.gsm.peak_used,
    )
