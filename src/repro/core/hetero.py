"""Heterogeneous CPU + DSP co-execution (extension).

FT-m7032 is a *heterogeneous* processor — the paper uses its 16-core CPU
only as a baseline (Fig. 7), leaving it idle during DSP GEMMs.  This
extension statically partitions the M dimension between the CPU (running
the modeled OpenBLAS) and one GPDSP cluster (running ftIMM), the classic
CPU+accelerator split:

* the split ratio minimizes ``max(t_cpu(r*M), t_dsp((1-r)*M))``, found by
  evaluating both cost models over a ratio grid (both models are cheap);
* B is shared read-only; each side owns its M-slice of A and C, so no
  reduction is needed;
* functional mode computes the CPU slice with NumPy (the real OpenBLAS
  stand-in) and the DSP slice through the simulated ftIMM, so correctness
  is testable end to end.

For irregular shapes the CPU contributes little (its modeled OpenBLAS is
memory-starved — the whole point of Fig. 7), so the expected gain is a
few percent; the experiment quantifies exactly that, which is itself a
result: offload-everything is the right design for this chip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.cpu_openblas import openblas_sgemm
from ..errors import ShapeError
from ..hw.config import MachineConfig, default_machine
from .ftimm import GemmResult, ftimm_gemm
from .shapes import GemmShape

#: granularity of the CPU-share grid search.
RATIO_STEPS = 32


@dataclass
class HeteroResult:
    """Outcome of a co-executed GEMM."""

    shape: GemmShape
    cpu_rows: int
    dsp_rows: int
    seconds: float
    cpu_seconds: float
    dsp_seconds: float
    dsp_result: GemmResult | None

    @property
    def cpu_share(self) -> float:
        return self.cpu_rows / self.shape.m

    @property
    def gflops(self) -> float:
        return self.shape.flops / self.seconds / 1e9

    @property
    def gain_vs_dsp_only(self) -> float:
        """Speedup over running everything on the DSP cluster."""
        return self.dsp_only_seconds / self.seconds

    dsp_only_seconds: float = 0.0


def _cpu_seconds(rows: int, shape: GemmShape, machine: MachineConfig) -> float:
    if rows == 0:
        return 0.0
    return openblas_sgemm(GemmShape(rows, shape.n, shape.k), machine.cpu).seconds


def _dsp_seconds(rows: int, shape: GemmShape, machine: MachineConfig) -> float:
    if rows == 0:
        return 0.0
    return ftimm_gemm(
        rows, shape.n, shape.k, machine=machine, timing="analytic"
    ).seconds


def best_split(shape: GemmShape, machine: MachineConfig) -> int:
    """CPU row count minimizing the makespan of the static M split."""
    best_rows, best_time = 0, _dsp_seconds(shape.m, shape, machine)
    for step in range(1, RATIO_STEPS):
        rows = shape.m * step // (4 * RATIO_STEPS)  # CPU share caps at 25%
        if rows in (0, shape.m):
            continue
        t = max(
            _cpu_seconds(rows, shape, machine),
            _dsp_seconds(shape.m - rows, shape, machine),
        )
        if t < best_time:
            best_rows, best_time = rows, t
    return best_rows


def hetero_gemm(
    m: int,
    n: int,
    k: int,
    *,
    machine: MachineConfig | None = None,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    c: np.ndarray | None = None,
    cpu_rows: int | None = None,
) -> HeteroResult:
    """Co-execute ``C += A @ B`` on the CPU and one GPDSP cluster."""
    machine = machine or default_machine()
    shape = GemmShape(m, n, k)
    if cpu_rows is None:
        cpu_rows = best_split(shape, machine)
    if not 0 <= cpu_rows < m:
        raise ShapeError(f"cpu_rows={cpu_rows} outside 0..{m - 1}")
    dsp_rows = m - cpu_rows

    dsp_kwargs = {}
    if a is not None:
        # CPU slice: the NumPy matmul *is* the OpenBLAS stand-in
        if cpu_rows:
            c[:cpu_rows] += a[:cpu_rows] @ b
        dsp_kwargs = dict(a=a[cpu_rows:], b=b, c=c[cpu_rows:])

    dsp_result = ftimm_gemm(
        dsp_rows, n, k, machine=machine, timing="analytic", **dsp_kwargs
    )
    cpu_s = _cpu_seconds(cpu_rows, shape, machine)
    dsp_s = dsp_result.seconds
    return HeteroResult(
        shape=shape,
        cpu_rows=cpu_rows,
        dsp_rows=dsp_rows,
        seconds=max(cpu_s, dsp_s),
        cpu_seconds=cpu_s,
        dsp_seconds=dsp_s,
        dsp_result=dsp_result,
        dsp_only_seconds=_dsp_seconds(m, shape, machine),
    )
