"""Shared machinery for lowering GEMM drivers to op streams.

The three drivers (TGEMM, M-parallel, K-parallel) differ in loop structure
but share everything else: tile buffer allocation against the capacity-
checked :class:`~repro.hw.cluster.ClusterSpaces`, DMA descriptor creation,
functional copy-in/copy-out closures, cooperative (split-across-cores)
loads of shared GSM tiles, and round-robin chunk assignment.

In *timing-only* mode (``data=None``) buffers are unbacked and closures are
omitted — the emitted plan carries only geometry and cycle counts, so
multi-gigabyte problems lower cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..errors import InputError, PlanError
from ..hw.cluster import ClusterSpaces
from ..hw.config import ClusterConfig
from ..hw.dma import DmaDescriptor
from ..hw.memory import Buffer, MemKind
from ..kernels.registry import KernelRegistry, registry_for
from .blocking import DTYPE_SIZES
from .shapes import GemmShape

FP32 = 4
DTYPE_NUMPY = {"f32": np.float32, "f64": np.float64}


def block_ranges(total: int, block: int) -> Iterator[tuple[int, int, int]]:
    """Yield ``(index, start, extent)`` for blocking ``total`` by ``block``."""
    if block < 1:
        raise PlanError(f"block size must be >= 1, got {block}")
    index = 0
    start = 0
    while start < total:
        yield index, start, min(block, total - start)
        index += 1
        start += block


def chunks_for_core(total: int, block: int, core: int, n_cores: int):
    """Round-robin assignment of blocked chunks to one core."""
    for index, start, extent in block_ranges(total, block):
        if index % n_cores == core:
            yield index, start, extent


@dataclass
class GemmOperands:
    """The DDR-resident operands of one GEMM call (functional mode)."""

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    @classmethod
    def check(cls, shape: GemmShape, a, b, c, dtype: str = "f32") -> "GemmOperands":
        """Validate operands at the API boundary.

        Raises :class:`~repro.errors.InputError` (a :class:`PlanError`
        subclass) for anything unusable: non-array operands, wrong rank,
        wrong dtype, shape mismatches against ``shape``, and non-finite
        entries in A or B — a NaN/Inf input would otherwise poison the
        whole result and defeat the ABFT checksums, which must assume
        finite inputs.
        """
        expected = DTYPE_NUMPY[dtype]
        for name, arr in (("A", a), ("B", b), ("C", c)):
            if not isinstance(arr, np.ndarray):
                raise InputError(
                    f"{name} must be a numpy array, got {type(arr).__name__}"
                )
            if arr.ndim != 2:
                raise InputError(f"{name} must be 2-D, got {arr.ndim}-D")
            if arr.dtype != expected:
                raise InputError(
                    f"{name} must be {np.dtype(expected).name}, got {arr.dtype}"
                )
        if a.shape != (shape.m, shape.k):
            raise InputError(f"A shape {a.shape} != {(shape.m, shape.k)}")
        if b.shape != (shape.k, shape.n):
            raise InputError(f"B shape {b.shape} != {(shape.k, shape.n)}")
        if c.shape != (shape.m, shape.n):
            raise InputError(f"C shape {c.shape} != {(shape.m, shape.n)}")
        for name, arr in (("A", a), ("B", b)):
            if not np.isfinite(arr).all():
                raise InputError(f"{name} contains NaN or Inf entries")
        return cls(a, b, c)


class LoweringContext:
    """Per-lowering state: spaces, kernel registry, functional operands.

    ``kernel_exec`` selects how emitted KERNEL closures compute:
    ``"numpy"`` (default, ``c += a @ b``), or ``"compiled"``/``"interp"``
    to run the generated instruction stream on the ISA machine model —
    ISA-fidelity functional runs at trace-compiled or interpreter speed.
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        shape: GemmShape,
        data: GemmOperands | None,
        registry: KernelRegistry | None = None,
        dtype: str = "f32",
        kernel_exec: str = "numpy",
        faults=None,
    ) -> None:
        self.cluster = cluster
        self.shape = shape
        self.data = data
        self.dtype = dtype
        self.esize = DTYPE_SIZES[dtype]
        self.spaces = ClusterSpaces(cluster)
        self.registry = registry or registry_for(cluster.core)
        if kernel_exec not in ("numpy", "compiled", "interp"):
            raise PlanError(
                f"unknown kernel execution mode {kernel_exec!r}; "
                "expected 'numpy', 'compiled' or 'interp'"
            )
        self.kernel_exec = kernel_exec
        #: optional :class:`~repro.faults.inject.FaultInjector`; when set,
        #: tile stores and kernel applications route through its guards
        #: (read-back verified copies, ABFT-checked GEMMs).  When ``None``
        #: the fast paths below are plain assignment / ``apply_exec`` —
        #: guaranteeing bit-identical results to a build without faults.
        self.faults = faults

    # -- fault-guarded primitives ------------------------------------------

    def store(self, dst: np.ndarray, src: np.ndarray, core: int = 0) -> None:
        """``dst[...] = src``, read-back verified when faults are armed."""
        if self.faults is None:
            dst[...] = src
        else:
            self.faults.guarded_copy(dst, src, core)

    def apply_kernel(self, kern, a, b, c, core: int = 0) -> None:
        """Tile GEMM ``c += a @ b``, ABFT-checked when faults are armed."""
        if self.faults is None:
            kern.apply_exec(a, b, c, self.kernel_exec)
        else:
            self.faults.guarded_gemm(kern, a, b, c, self.kernel_exec, core)

    @property
    def backed(self) -> bool:
        return self.data is not None

    # -- buffers -----------------------------------------------------------

    def alloc(
        self,
        kind: MemKind,
        core: int,
        rows: int,
        cols: int,
        label: str,
        *,
        slots: int = 1,
    ) -> list[Buffer]:
        """Allocate ``slots`` identical tile buffers (ping-pong pairs)."""
        space = self.spaces.space(kind, core)
        return [
            space.alloc(
                (rows, cols),
                DTYPE_NUMPY[self.dtype],
                backed=self.backed,
                label=f"{label}[{s}]" if slots > 1 else label,
            )
            for s in range(slots)
        ]

    # -- functional closures -------------------------------------------------

    def copy_in(
        self, buf: Buffer, src: np.ndarray, rows: int, cols: int, core: int = 0
    ) -> Callable[[], None] | None:
        if not self.backed:
            return None
        dst = buf.array()

        def run() -> None:
            self.store(dst[:rows, :cols], src, core)

        return run

    def copy_out(
        self, dst: np.ndarray, buf: Buffer, rows: int, cols: int, core: int = 0
    ) -> Callable[[], None] | None:
        if not self.backed:
            return None
        src = buf.array()

        def run() -> None:
            self.store(dst, src[:rows, :cols], core)

        return run

    # -- descriptors ---------------------------------------------------------

    def desc(
        self, src: MemKind, dst: MemKind, rows: int, cols: int, tag: str
    ) -> DmaDescriptor:
        return DmaDescriptor(
            src, dst, rows=rows, row_bytes=cols * self.esize, tag=tag
        )

    # -- cooperative GSM fills -------------------------------------------------

    def split_rows(self, rows: int) -> list[tuple[int, int, int]]:
        """Split ``rows`` as evenly as possible across cores.

        Returns ``(core, start, extent)`` triples; cores with no share are
        omitted.  Used for loading shared GSM tiles (A_g in Alg. 1, B_g in
        Alg. 4, C_g in Alg. 5) with all DMA engines cooperating.
        """
        n = self.cluster.n_cores
        base, rem = divmod(rows, n)
        out = []
        start = 0
        for core in range(n):
            extent = base + (1 if core < rem else 0)
            if extent > 0:
                out.append((core, start, extent))
            start += extent
        return out
