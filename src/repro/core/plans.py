"""Execution plans: the op-stream IR shared by all executors.

A GEMM driver (TGEMM / M-parallel / K-parallel) lowers a problem + blocking
plan into one op list per core.  Three op kinds:

* ``DMA``    — a 2-D transfer (descriptor carries geometry and memory
  levels); executes on the core's DMA engine, contending for DDR/GSM
  bandwidth.
* ``KERNEL`` — a micro-kernel invocation (cycle count + flops); executes on
  the core's compute pipeline.
* ``SYNC``   — a cluster-wide synchronization point (barrier or the GSM
  reduction of Alg. 5, which additionally carries a modeled duration).

Ordering semantics:

* ops of one core issue in list order; DMA ops serialize through the
  engine's channels, KERNEL ops through the single compute pipeline;
* ``deps`` are indices into the *same core's* list: the op may not start
  before those complete — this is how ping-pong double buffering is
  expressed (the DMA refilling slot ``s`` depends on the kernel that last
  consumed slot ``s``);
* a SYNC with a given ``sync_id`` must appear in *every* core's stream;
  no core proceeds past it until all cores reach it.

Functional execution simply runs ``op.run`` callbacks in emission order
(per-core lists interleaved in a deterministic round-robin that respects
SYNCs) — sequential semantics are valid because the deps only ever relax
ordering, never create it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from ..errors import PlanError
from ..hw.config import ClusterConfig
from ..hw.dma import DmaDescriptor
from .shapes import GemmShape


class OpKind(enum.Enum):
    DMA = "dma"
    KERNEL = "kernel"
    SYNC = "sync"


@dataclass
class Op:
    kind: OpKind
    core: int
    desc: DmaDescriptor | None = None
    cycles: int = 0
    flops: int = 0
    sync_id: int = -1
    sync_seconds: float = 0.0
    deps: tuple[int, ...] = ()
    run: Callable[[], None] | None = None
    tag: str = ""
    #: global emission order — functional execution replays ops sorted by
    #: this, which is sequentially consistent by construction.
    seq: int = -1

    def validate(self, index: int) -> None:
        if self.kind is OpKind.DMA and self.desc is None:
            raise PlanError(f"DMA op {index} without descriptor")
        if self.kind is OpKind.KERNEL and self.cycles <= 0:
            raise PlanError(f"kernel op {index} with cycles={self.cycles}")
        if self.kind is OpKind.SYNC and self.sync_id < 0:
            raise PlanError(f"sync op {index} without sync_id")
        for d in self.deps:
            if d >= index:
                raise PlanError(f"op {index} depends on later op {d}")


@dataclass
class GemmExecution:
    """A fully lowered plan, ready for any executor."""

    shape: GemmShape
    strategy: str
    cluster: ClusterConfig
    core_ops: list[list[Op]]
    n_syncs: int = 0
    meta: dict = field(default_factory=dict)

    def validate(self) -> "GemmExecution":
        if len(self.core_ops) != self.cluster.n_cores:
            raise PlanError(
                f"plan has {len(self.core_ops)} op streams for "
                f"{self.cluster.n_cores} cores"
            )
        for ops in self.core_ops:
            for i, op in enumerate(ops):
                op.validate(i)
        # every sync id must appear exactly once in every core stream
        for sid in range(self.n_syncs):
            for core, ops in enumerate(self.core_ops):
                hits = [o for o in ops if o.kind is OpKind.SYNC and o.sync_id == sid]
                if len(hits) != 1:
                    raise PlanError(
                        f"sync {sid} appears {len(hits)} times on core {core}"
                    )
        return self

    # -- aggregate statistics (used by reports and tests) -----------------

    @property
    def total_flops(self) -> int:
        return sum(
            op.flops for ops in self.core_ops for op in ops if op.kind is OpKind.KERNEL
        )

    @property
    def total_dma_bytes(self) -> int:
        return sum(
            op.desc.nbytes
            for ops in self.core_ops
            for op in ops
            if op.kind is OpKind.DMA
        )

    @property
    def kernel_cycles_by_core(self) -> list[int]:
        return [
            sum(op.cycles for op in ops if op.kind is OpKind.KERNEL)
            for ops in self.core_ops
        ]

    @property
    def n_ops(self) -> int:
        return sum(len(ops) for ops in self.core_ops)

    def describe(self) -> str:
        """Human-readable plan summary: per-core load, traffic by route,
        kernel-shape histogram — what a performance engineer reads before
        trusting a lowering."""
        lines = [
            f"plan: {self.strategy} for {self.shape} on "
            f"{self.cluster.n_cores} cores "
            f"({self.n_ops} ops, {self.n_syncs} syncs)"
        ]
        route_bytes: dict[str, int] = {}
        kernel_hist: dict[str, int] = {}
        rows = []
        for core, ops in enumerate(self.core_ops):
            dma = kern = 0
            core_bytes = 0
            cycles = 0
            for op in ops:
                if op.kind is OpKind.DMA and op.desc is not None:
                    dma += 1
                    core_bytes += op.desc.nbytes
                    route = f"{op.desc.src.value}->{op.desc.dst.value}"
                    route_bytes[route] = route_bytes.get(route, 0) + op.desc.nbytes
                elif op.kind is OpKind.KERNEL:
                    kern += 1
                    cycles += op.cycles
                    if op.tag:
                        kernel_hist[op.tag] = kernel_hist.get(op.tag, 0) + 1
            rows.append(
                f"  core{core}: {kern} kernels ({cycles} cycles), "
                f"{dma} DMAs ({core_bytes / 1024:.0f} KiB)"
            )
        lines.extend(rows)
        lines.append("traffic by route:")
        for route, nbytes in sorted(route_bytes.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {route}: {nbytes / 1024:.0f} KiB")
        lines.append("kernels:")
        for tag, count in sorted(kernel_hist.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {tag} x {count}")
        if "peak_am" in self.meta:
            lines.append(
                f"on-chip peaks: AM {self.meta['peak_am'] / 1024:.0f} KiB, "
                f"SM {self.meta.get('peak_sm', 0) / 1024:.0f} KiB, "
                f"GSM {self.meta.get('peak_gsm', 0) / 1024:.0f} KiB"
            )
        return "\n".join(lines)


class OpStreamBuilder:
    """Helper the drivers use to build per-core op lists.

    Tracks op indices so ping-pong dependencies can be expressed by slot:
    ``last_consumer(buffer, slot)`` / ``last_producer(buffer, slot)``.
    """

    def __init__(self, n_cores: int) -> None:
        self.core_ops: list[list[Op]] = [[] for _ in range(n_cores)]
        self._sync_counter = 0
        self._seq = 0
        self._producers: dict[tuple[int, str, int], int] = {}
        self._consumers: dict[tuple[int, str, int], int] = {}

    # -- emission ----------------------------------------------------------

    def dma(
        self,
        core: int,
        desc: DmaDescriptor,
        *,
        buffer: str = "",
        slot: int = 0,
        extra_deps: tuple[int, ...] = (),
        run: Callable[[], None] | None = None,
        tag: str = "",
    ) -> int:
        """Emit a DMA filling ``buffer``/``slot``; waits for its last consumer."""
        deps = list(extra_deps)
        if buffer:
            last_use = self._consumers.get((core, buffer, slot))
            if last_use is not None:
                deps.append(last_use)
        idx = len(self.core_ops[core])
        self.core_ops[core].append(
            Op(
                OpKind.DMA,
                core,
                desc=desc,
                deps=tuple(sorted(set(deps))),
                run=run,
                tag=tag or desc.tag,
                seq=self._next_seq(),
            )
        )
        if buffer:
            self._producers[(core, buffer, slot)] = idx
        return idx

    def kernel(
        self,
        core: int,
        cycles: int,
        flops: int,
        *,
        reads: tuple[tuple[str, int], ...] = (),
        extra_deps: tuple[int, ...] = (),
        run: Callable[[], None] | None = None,
        tag: str = "",
    ) -> int:
        """Emit a kernel call consuming the named (buffer, slot) pairs."""
        deps = list(extra_deps)
        for buffer, slot in reads:
            prod = self._producers.get((core, buffer, slot))
            if prod is not None:
                deps.append(prod)
        idx = len(self.core_ops[core])
        self.core_ops[core].append(
            Op(
                OpKind.KERNEL,
                core,
                cycles=cycles,
                flops=flops,
                deps=tuple(sorted(set(deps))),
                run=run,
                tag=tag,
                seq=self._next_seq(),
            )
        )
        for buffer, slot in reads:
            self._consumers[(core, buffer, slot)] = idx
        return idx

    def consume(self, core: int, buffer: str, slot: int, op_idx: int) -> None:
        """Mark ``op_idx`` as the latest consumer of a buffer slot (e.g. a
        DMA that stores a C tile out consumes that C buffer)."""
        self._consumers[(core, buffer, slot)] = op_idx

    def producer_of(self, core: int, buffer: str, slot: int) -> int | None:
        return self._producers.get((core, buffer, slot))

    def sync(
        self,
        *,
        seconds: float = 0.0,
        runs: dict[int, Callable[[], None]] | None = None,
        tag: str = "",
    ) -> int:
        """Emit a cluster-wide SYNC into every core stream."""
        sid = self._sync_counter
        self._sync_counter += 1
        for core, ops in enumerate(self.core_ops):
            ops.append(
                Op(
                    OpKind.SYNC,
                    core,
                    sync_id=sid,
                    sync_seconds=seconds,
                    run=(runs or {}).get(core),
                    tag=tag,
                    seq=self._next_seq(),
                )
            )
        return sid

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def finish(
        self, shape: GemmShape, strategy: str, cluster: ClusterConfig, **meta
    ) -> GemmExecution:
        return GemmExecution(
            shape=shape,
            strategy=strategy,
            cluster=cluster,
            core_ops=self.core_ops,
            n_syncs=self._sync_counter,
            meta=meta,
        ).validate()
