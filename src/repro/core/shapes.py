"""GEMM problem shapes and the paper's irregular-shape taxonomy.

Section III-A: ftIMM targets single-precision ``C += A x B`` where at least
one of M, K is large and ``N <= 96``.  Three types:

* **Type 1** — tall-and-skinny x small: ``M >> K ~ N``
  (K-means distance matrices, first CNN layers after im2col).
* **Type 2** — skinny-and-tall x tall-and-skinny: ``K >> M ~ N``
  (inner-product-dominated reductions).
* **Type 3** — large regular x tall-and-skinny: ``M ~ K >> N``.

Shapes outside the irregular domain are classified ``REGULAR`` and are the
home turf of the TGEMM baseline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ShapeError

#: the "small dimension" ceiling of the irregular domain (paper: N <= 96).
IRREGULAR_N_MAX = 96
#: a dimension counts as "large" beyond this (assumption: a few blocks).
LARGE_DIM = 2048
#: M and K count as "comparable" within this ratio (for type 3 vs 1/2).
COMPARABLE_RATIO = 8.0


class GemmType(enum.Enum):
    TALL_SKINNY_TIMES_SMALL = "type1"     # M >> K ~ N
    SKINNY_TALL_TIMES_TALL = "type2"      # K >> M ~ N
    REGULAR_TIMES_TALL_SKINNY = "type3"   # M ~ K >> N
    REGULAR = "regular"


@dataclass(frozen=True)
class GemmShape:
    """An ``M x N x K`` single-precision GEMM problem (``C += A @ B``)."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1 or self.k < 1:
            raise ShapeError(f"GEMM dims must be positive, got {self}")

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k

    @property
    def a_bytes(self) -> int:
        return 4 * self.m * self.k

    @property
    def b_bytes(self) -> int:
        return 4 * self.k * self.n

    @property
    def c_bytes(self) -> int:
        return 4 * self.m * self.n

    @property
    def total_bytes(self) -> int:
        """Compulsory traffic: read A, B, C and write C once."""
        return self.a_bytes + self.b_bytes + 2 * self.c_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per compulsory DDR byte."""
        return self.flops / self.total_bytes

    def classify(self) -> GemmType:
        m, n, k = self.m, self.n, self.k
        if n > IRREGULAR_N_MAX:
            return GemmType.REGULAR
        m_large = m >= LARGE_DIM
        k_large = k >= LARGE_DIM
        if m_large and k_large and max(m, k) <= COMPARABLE_RATIO * min(m, k):
            return GemmType.REGULAR_TIMES_TALL_SKINNY
        if m_large and m > k:
            return GemmType.TALL_SKINNY_TIMES_SMALL
        if k_large and k > m:
            return GemmType.SKINNY_TALL_TIMES_TALL
        if m_large:
            return GemmType.TALL_SKINNY_TIMES_SMALL
        if k_large:
            return GemmType.SKINNY_TALL_TIMES_TALL
        return GemmType.REGULAR

    @property
    def is_irregular(self) -> bool:
        return self.classify() is not GemmType.REGULAR

    def __str__(self) -> str:
        return f"{self.m}x{self.n}x{self.k}"
