"""Block-size selection: CMR formulas (Eqs. 1–4) and capacity constraints.

The paper derives initial block sizes per parallelization strategy by
maximizing the computation-to-memory ratio (CMR) of each transfer level
under the on-chip capacity limits (Section IV-C), then adjusts them at
runtime to the actual matrix shape (the *dynamic adjusting* that, together
with generated kernels, gives ftIMM its edge on irregular shapes).

Both plan dataclasses know their own on-chip footprints; the paper's
printed defaults fill AM to the byte (B_a double-buffered + C resident =
exactly 768 KB for both strategies), which the tests assert.

``solve_*_plan`` re-derive initial blocks by maximizing CMR on this
machine model; they land near the paper's values but not exactly on them
(the authors' unstated alignment/margin conventions differ), so the paper
defaults are canonical and the solver is exercised as an ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import PlanError
from ..hw.config import ClusterConfig
from .shapes import GemmShape

FP32 = 4
#: element sizes and widest-kernel widths per precision.  The paper is
#: FP32-only; FP64 support is this reproduction's extension (a vector
#: register holds 16 doubles, so kernels top out at n_a = 48).
DTYPE_SIZES = {"f32": 4, "f64": 8}
DTYPE_N_MAX = {"f32": 96, "f64": 48}
#: kernels below this row count waste FMAC slots; the tuner keeps m_s >= 6
#: whenever M allows (Section IV-C, last paragraph).
MIN_GOOD_M_S = 6
#: widest kernel / block column width (FP32).
N_MAX = 96


# ---------------------------------------------------------------------------
# CMR formulas — Eqs. (1)-(4) of the paper, verbatim
# ---------------------------------------------------------------------------


def cmr_f1(m_a: int, k_g: int, n_g: int, num_core: int) -> float:
    """Eq. 1: GSM-level CMR of the M-parallel strategy."""
    num = 2.0 * m_a * k_g * n_g * num_core
    den = num_core * m_a * (k_g + 2.0 * n_g) + k_g * n_g
    return num / den


def cmr_f2(m_a: int, k_a: int, n_a: int, num_core: int) -> float:
    """Eq. 2: AM-level CMR of the M-parallel strategy."""
    num = 2.0 * m_a * k_a * n_a * num_core
    den = num_core * m_a * (k_a + 2.0 * n_a) + k_a * n_a
    return num / den


def cmr_f3(m_g: int, k_a: int, n_g: int, num_core: int) -> float:
    """Eq. 3: GSM-level CMR of the K-parallel strategy."""
    num = 2.0 * m_g * k_a * n_g * num_core
    den = num_core * k_a * (m_g + n_g) + 2.0 * m_g * n_g
    return num / den


def cmr_f4(m_a: int, k_a: int, n_a: int, num_core: int) -> float:
    """Eq. 4: AM-level CMR of the K-parallel strategy."""
    num = 2.0 * m_a * k_a * n_a * num_core
    den = num_core * k_a * (m_a + n_a) + 2.0 * m_a * n_a
    return num / den


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TgemmPlan:
    """TGEMM's fixed blocking (Alg. 1): m_g=512, k_g=512, n_a=96, m_s=6."""

    m_g: int = 512
    k_g: int = 512
    n_a: int = 96
    m_s: int = 6
    dtype: str = "f32"

    @property
    def esize(self) -> int:
        return DTYPE_SIZES[self.dtype]

    def am_bytes(self) -> int:
        # B_a (k_g x n_a, double-buffered) + C_a (m_g x n_a, double-buffered)
        return self.esize * (2 * self.k_g * self.n_a + 2 * self.m_g * self.n_a)

    def sm_bytes(self) -> int:
        return self.esize * 2 * self.m_s * self.k_g

    def gsm_bytes(self) -> int:
        return self.esize * 2 * self.m_g * self.k_g

    def validate(self, cluster: ClusterConfig) -> "TgemmPlan":
        _check_capacity(self, cluster)
        return self


@dataclass(frozen=True)
class MPlan:
    """Blocking of the M-parallel strategy (Alg. 4).

    Defaults are the paper's initial sizes: ``k_g=5888, n_g=96, m_a=320,
    n_a=96, k_a=864, m_s=8``.
    """

    k_g: int = 5888
    n_g: int = 96
    m_a: int = 320
    n_a: int = 96
    k_a: int = 864
    m_s: int = 8
    dtype: str = "f32"

    @property
    def esize(self) -> int:
        return DTYPE_SIZES[self.dtype]

    def am_bytes(self) -> int:
        # B_a double-buffered + C_a resident (single-buffered, per Alg. 4)
        return self.esize * (2 * self.k_a * self.n_a + self.m_a * self.n_a)

    def sm_bytes(self) -> int:
        return self.esize * 2 * self.m_s * self.k_a

    def gsm_bytes(self) -> int:
        return self.esize * 2 * self.k_g * self.n_g  # B_g double-buffered

    def validate(self, cluster: ClusterConfig) -> "MPlan":
        if self.n_a > self.n_g or self.k_a > self.k_g:
            raise PlanError(f"inner blocks exceed outer blocks in {self}")
        if self.m_s > self.m_a:
            raise PlanError(f"m_s={self.m_s} exceeds m_a={self.m_a}")
        _check_capacity(self, cluster)
        return self


@dataclass(frozen=True)
class KPlan:
    """Blocking of the K-parallel strategy (Alg. 5).

    Defaults are the paper's initial sizes: ``m_g=1024, n_g=512, m_a=1024,
    n_a=96, k_a=512, m_s=14`` (``n_g`` is clamped to the problem's N at
    adjust time; the irregular domain has N <= 96).
    """

    m_g: int = 1024
    n_g: int = 512
    m_a: int = 1024
    n_a: int = 96
    k_a: int = 512
    m_s: int = 14
    dtype: str = "f32"

    @property
    def esize(self) -> int:
        return DTYPE_SIZES[self.dtype]

    def am_bytes(self) -> int:
        # B_a double-buffered + C_a partial resident
        return self.esize * (2 * self.k_a * self.n_a + self.m_a * self.n_a)

    def sm_bytes(self) -> int:
        return self.esize * 2 * self.m_s * self.k_a

    def gsm_bytes(self) -> int:
        # C_g tile cached in GSM + reduction staging for one C_a per core
        return self.esize * self.m_g * min(self.n_g, N_MAX)

    def validate(self, cluster: ClusterConfig) -> "KPlan":
        if self.n_a > self.n_g:
            raise PlanError(f"n_a={self.n_a} exceeds n_g={self.n_g}")
        if self.m_a > self.m_g:
            raise PlanError(f"m_a={self.m_a} exceeds m_g={self.m_g}")
        if self.m_s > self.m_a:
            raise PlanError(f"m_s={self.m_s} exceeds m_a={self.m_a}")
        _check_capacity(self, cluster)
        return self


def _check_capacity(plan, cluster: ClusterConfig) -> None:
    core = cluster.core
    if plan.am_bytes() > core.am_bytes:
        raise PlanError(
            f"{type(plan).__name__} AM footprint {plan.am_bytes()} B "
            f"exceeds {core.am_bytes} B: {plan}"
        )
    if plan.sm_bytes() > core.sm_bytes:
        raise PlanError(
            f"{type(plan).__name__} SM footprint {plan.sm_bytes()} B "
            f"exceeds {core.sm_bytes} B: {plan}"
        )
    if plan.gsm_bytes() > cluster.gsm_bytes:
        raise PlanError(
            f"{type(plan).__name__} GSM footprint {plan.gsm_bytes()} B "
            f"exceeds {cluster.gsm_bytes} B: {plan}"
        )


# ---------------------------------------------------------------------------
# initial-block solvers (ablation: re-derive the paper's defaults)
# ---------------------------------------------------------------------------


def solve_m_plan(cluster: ClusterConfig, *, step: int = 32) -> MPlan:
    """Maximize Eq. 2 under AM/SM capacity, then size k_g to fill GSM.

    Search over ``k_a`` (multiples of ``step``); ``m_a`` takes the AM bytes
    left after double-buffering B_a.  ``k_g`` is the largest GSM-resident
    chunk, favoring large values exactly as the paper argues (C_a reuse).
    """
    core = cluster.core
    n_a = n_g = N_MAX
    best: tuple[float, int, int] | None = None
    for k_a in range(step, core.am_bytes // (2 * n_a * FP32) + 1, step):
        am_left = core.am_bytes - 2 * k_a * n_a * FP32
        m_a = am_left // (n_a * FP32)
        if m_a < MIN_GOOD_M_S:
            continue
        score = cmr_f2(m_a, k_a, n_a, cluster.n_cores)
        if best is None or score > best[0]:
            best = (score, k_a, m_a)
    if best is None:
        raise PlanError("AM too small for any M-plan")
    _score, k_a, m_a = best
    k_g = (cluster.gsm_bytes // (2 * n_g * FP32)) // step * step
    k_g = max(k_g, k_a)
    m_s = min(14, core.sm_bytes // (2 * k_a * FP32))
    m_s = max(m_s, 1)
    m_a = m_a // m_s * m_s
    return MPlan(k_g=k_g, n_g=n_g, m_a=m_a, n_a=n_a, k_a=k_a, m_s=m_s).validate(
        cluster
    )


def solve_k_plan(cluster: ClusterConfig, *, step: int = 32) -> KPlan:
    """Maximize Eq. 4 under AM/SM capacity for the K-parallel strategy."""
    core = cluster.core
    n_a = N_MAX
    best: tuple[float, int, int] | None = None
    for k_a in range(step, core.am_bytes // (2 * n_a * FP32) + 1, step):
        am_left = core.am_bytes - 2 * k_a * n_a * FP32
        m_a = am_left // (n_a * FP32)
        if m_a < MIN_GOOD_M_S:
            continue
        score = cmr_f4(m_a, k_a, n_a, cluster.n_cores)
        if best is None or score > best[0]:
            best = (score, k_a, m_a)
    if best is None:
        raise PlanError("AM too small for any K-plan")
    _score, k_a, m_a = best
    m_s = min(14, core.sm_bytes // (2 * k_a * FP32))
    m_s = max(m_s, 1)
    m_g = m_a
    n_g = min(512, cluster.gsm_bytes // (m_g * FP32))
    return KPlan(
        m_g=m_g, n_g=n_g, m_a=m_a, n_a=n_a, k_a=k_a, m_s=m_s
    ).validate(cluster)


# ---------------------------------------------------------------------------
# dynamic adjusting (Section IV-C)
# ---------------------------------------------------------------------------


def _round_up(x: int, mult: int) -> int:
    return -(-x // mult) * mult


def adjust_m_plan(plan: MPlan, shape: GemmShape, cluster: ClusterConfig) -> MPlan:
    """Shrink blocks to the problem and regrow the parallel (M) dimension.

    Rules from Section IV-C: clamp each block to its matrix extent; with the
    AM/SM space freed by a narrow N or short K, enlarge ``m_a`` (the
    dimension the strategy parallelizes) to cut per-block overheads; keep
    ``m_s >= 6`` whenever M allows because narrower kernels underperform.
    """
    core = cluster.core
    esize = plan.esize
    n_a = min(plan.n_a, _round_up(shape.n, 1), DTYPE_N_MAX[plan.dtype])
    n_g = min(plan.n_g, max(n_a, shape.n))
    k_a = min(plan.k_a, _round_up(shape.k, 1))
    k_g = min(plan.k_g, max(k_a, shape.k))
    k_g = max(k_g, k_a)

    m_s = plan.m_s
    if shape.m < plan.m_s * cluster.n_cores:
        m_s = max(1, shape.m // cluster.n_cores)
    if shape.m >= MIN_GOOD_M_S:
        m_s = max(m_s, MIN_GOOD_M_S)
    m_s = min(m_s, max(1, shape.m))
    # SM capacity bounds m_s for the (possibly shrunken) k_a
    m_s = max(1, min(m_s, core.sm_bytes // (2 * max(k_a, 1) * esize) or 1))

    # regrow m_a into the AM space freed by smaller B_a, but size it so the
    # m_a chunks deal out evenly across cores (an uneven deal leaves the
    # busiest core with up to one whole extra chunk of work)
    am_left = core.am_bytes - 2 * k_a * n_a * esize
    m_a_max = max(m_s, (am_left // (n_a * esize)) // m_s * m_s)
    n_chunks = -(-shape.m // m_a_max)
    n_chunks = -(-n_chunks // cluster.n_cores) * cluster.n_cores
    m_a = min(m_a_max, _round_up(-(-shape.m // n_chunks), m_s))
    m_a = max(m_a, m_s)

    return MPlan(
        k_g=k_g, n_g=n_g, m_a=m_a, n_a=n_a, k_a=k_a, m_s=m_s,
        dtype=plan.dtype,
    ).validate(cluster)


def adjust_k_plan(plan: KPlan, shape: GemmShape, cluster: ClusterConfig) -> KPlan:
    """Shrink blocks to the problem and regrow the parallel (K) dimension."""
    core = cluster.core
    esize = plan.esize
    n_a = min(plan.n_a, shape.n, DTYPE_N_MAX[plan.dtype])
    n_g = min(plan.n_g, shape.n)
    n_g = max(n_g, n_a)
    if shape.m < MIN_GOOD_M_S:
        m_s = shape.m
    else:
        # keep m_s >= 6 but pick the candidate (largest on ties) that wastes
        # the fewest padded rows on this M
        candidates = range(MIN_GOOD_M_S, min(plan.m_s, shape.m) + 1)
        m_s = min(
            candidates,
            key=lambda ms: (_round_up(shape.m, ms) - shape.m, -ms),
            default=min(plan.m_s, shape.m),
        )
    m_a = min(plan.m_a, _round_up(shape.m, m_s))
    m_a = max(m_a, m_s)
    m_g = min(plan.m_g, max(m_a, shape.m))
    m_g = max(m_g, m_a)

    # regrow k_a (the parallelized dimension) into freed AM, sized so the
    # K chunks deal out evenly across cores
    am_left = core.am_bytes - m_a * n_a * esize
    k_a_max = am_left // (2 * n_a * esize)
    k_a_max = min(k_a_max, core.sm_bytes // (2 * m_s * esize), shape.k)
    k_a_max = max(k_a_max, 1)
    n_chunks = -(-shape.k // k_a_max)
    n_chunks = -(-n_chunks // cluster.n_cores) * cluster.n_cores
    k_a = min(k_a_max, -(-shape.k // n_chunks))
    if k_a >= 8:
        k_a = -(-k_a // 8) * 8  # keep DMA rows tidy, kernel k_u pairs aligned
        k_a = min(k_a, k_a_max)
    k_a = max(k_a, 1)

    return KPlan(
        m_g=m_g, n_g=n_g, m_a=m_a, n_a=n_a, k_a=k_a, m_s=m_s,
        dtype=plan.dtype,
    ).validate(cluster)


def adjust_plan(
    strategy: str, plan, shape: GemmShape, cluster: ClusterConfig
):
    """Refit a plan of either search strategy to a new shape.

    The strategy-dispatching form of :func:`adjust_m_plan` /
    :func:`adjust_k_plan`, used wherever plans travel detached from
    their :class:`~repro.core.tuner.TuningDecision` — notably the plan
    database's cross-shape transfer
    (:meth:`repro.core.plan_search.PlanRecord.adapted`).
    """
    from ..errors import PlanError

    if strategy == "m":
        return adjust_m_plan(plan, shape, cluster)
    if strategy == "k":
        return adjust_k_plan(plan, shape, cluster)
    raise PlanError(f"strategy {strategy!r} has no adjustable plan")
