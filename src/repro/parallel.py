"""Process-pool helpers for plan search and experiment fan-out.

The autotuner scores hundreds of candidate plans analytically and
DES-validates the finalists; both are CPU-bound pure-Python work, so the
only way to speed them up on a multi-core host is multiple processes.
This module wraps :class:`concurrent.futures.ProcessPoolExecutor` with the
project's conventions:

* **deterministic ordering** — results come back in input order
  (``Executor.map`` semantics), so parallel and serial runs are
  result-identical;
* **picklable work units** — callers pass a module-level function plus
  picklable items (frozen config dataclasses, shapes, plain tuples);
* **jobs control** — ``jobs=None`` resolves ``$REPRO_JOBS``, then the CPU
  count; ``jobs=1`` (or a single item) runs serially in-process, which is
  also the fallback wherever a pool cannot be created (e.g. restricted
  sandboxes);
* **worker warm-up** — workers inherit nothing mutable from the parent:
  each re-derives kernels through the registry, where the persistent disk
  cache (:mod:`repro.kernels.registry`) keeps them from repeating the
  parent's modulo scheduling.

Hardening (all surfaced as ``parallel/*`` counters in :mod:`repro.obs`,
so ``repro perf`` shows what the pool survived):

* a crashed worker (:class:`BrokenProcessPool`) fails only the
  uncollected items; they are resubmitted to a fresh pool up to
  ``retries`` times before :class:`~repro.errors.WorkerError` is raised;
* ``timeout`` (seconds per task) turns hung workers into retries the
  same way — exceptions raised by ``fn`` itself always propagate
  unchanged;
* pools that cannot be created fall back to serial execution, and after
  :data:`_BREAKER_LIMIT` consecutive such failures a process-wide breaker
  stops attempting pools at all.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

from .errors import WorkerError
from .obs.registry import MetricsRegistry, collecting
from .obs.registry import current as _obs_current

T = TypeVar("T")
R = TypeVar("R")

#: consecutive pool-creation failures before giving up on pools entirely
_BREAKER_LIMIT = 3

_consecutive_pool_failures = 0
_pool_disabled = False


def _count(event: str, value: float = 1) -> None:
    m = _obs_current()
    if m is not None:
        m.counter(f"parallel/{event}").inc(value)


def _note_pool_ok() -> None:
    global _consecutive_pool_failures
    _consecutive_pool_failures = 0


def _note_pool_failure() -> None:
    global _consecutive_pool_failures, _pool_disabled
    _consecutive_pool_failures += 1
    _count("pool_failures")
    if _consecutive_pool_failures >= _BREAKER_LIMIT and not _pool_disabled:
        _pool_disabled = True
        _count("breaker_trips")


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set and positive, else CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            jobs = 0
        if jobs >= 1:
            return jobs
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None, n_items: int | None = None) -> int:
    """Effective worker count for a task of ``n_items`` units."""
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    if n_items is not None:
        jobs = min(jobs, max(1, n_items))
    return jobs


class _CollectingCall:
    """Picklable wrapper: run ``fn`` under a fresh registry in the worker
    and ship ``(result, metrics snapshot)`` back for the parent to merge.

    Without this, any metrics a worker process records land in that
    process's ambient registry and die with it.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, item: T):
        with collecting(MetricsRegistry()) as reg:
            result = self.fn(item)
        return result, reg.snapshot()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    *,
    chunksize: int = 1,
    timeout: float | None = None,
    retries: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned across processes.

    Results are returned in input order regardless of completion order.
    Serial fallback when the effective job count is 1, there are fewer
    than two items, the host refuses to fork a pool, or the pool breaker
    has tripped.

    ``timeout`` bounds each task's wait in seconds; a task that times out
    or dies with its worker is resubmitted to a fresh pool up to
    ``retries`` times, then :class:`~repro.errors.WorkerError` is raised.
    Exceptions raised by ``fn`` itself propagate unchanged on first
    occurrence — they are the caller's bug, not pool weather.

    When a metrics registry is ambient (:func:`repro.obs.collecting`),
    each work unit runs under a fresh worker-side registry whose snapshot
    rides back with the result and is merged into the parent registry
    (:meth:`~repro.obs.MetricsRegistry.merge`) — worker metrics are never
    silently dropped.
    """
    seq: Sequence[T] = items if isinstance(items, Sequence) else list(items)
    jobs = resolve_jobs(jobs, len(seq))
    if jobs == 1 or len(seq) < 2 or _pool_disabled:
        # in-process: fn records straight into the ambient registry
        if _pool_disabled and jobs > 1 and len(seq) >= 2:
            _count("serial_fallbacks")
        return [fn(x) for x in seq]
    parent = _obs_current()
    call = fn if parent is None else _CollectingCall(fn)
    out = _run_map(call, seq, jobs, chunksize, timeout, retries)
    if parent is None:
        return out
    results = []
    for result, snap in out:
        parent.merge(MetricsRegistry.from_snapshot(snap))
        results.append(result)
    return results


def _run_map(
    fn: Callable[[T], R],
    seq: Sequence[T],
    jobs: int,
    chunksize: int,
    timeout: float | None,
    retries: int,
) -> list[R]:
    if timeout is None:
        # fast path: Executor.map gets chunking; crashes fall through to
        # the submit-based retry path below
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                out = list(pool.map(fn, seq, chunksize=chunksize))
            _note_pool_ok()
            return out
        except (OSError, PermissionError):
            _note_pool_failure()
            _count("serial_fallbacks")
            return [fn(x) for x in seq]
        except BrokenProcessPool:
            _count("worker_crashes")
    return _submit_map(fn, seq, jobs, timeout, retries)


def _submit_map(
    fn: Callable[[T], R],
    seq: Sequence[T],
    jobs: int,
    timeout: float | None,
    retries: int,
) -> list[R]:
    """Submit-based map with per-task timeout and crash/hang retries."""
    results: list = [None] * len(seq)
    remaining = list(range(len(seq)))
    for attempt in range(retries + 1):
        if not remaining:
            break
        if attempt:
            _count("retries", len(remaining))
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(remaining)))
        except (OSError, PermissionError):
            _note_pool_failure()
            _count("serial_fallbacks")
            for i in remaining:
                results[i] = fn(seq[i])
            return results
        failed: list[int] = []
        try:
            futures = {i: pool.submit(fn, seq[i]) for i in remaining}
            for i in remaining:
                try:
                    results[i] = futures[i].result(timeout=timeout)
                except _FutureTimeout:
                    _count("timeouts")
                    futures[i].cancel()
                    failed.append(i)
                except BrokenProcessPool:
                    _count("worker_crashes")
                    failed.append(i)
        finally:
            # never block on a hung worker during shutdown; abandoned
            # processes are reaped by the OS when they finish or die
            pool.shutdown(wait=False, cancel_futures=True)
        remaining = failed
    if remaining:
        raise WorkerError(
            f"{len(remaining)} of {len(seq)} pool tasks still "
            f"crashed or hung after {retries} retries"
        )
    _note_pool_ok()
    return results
