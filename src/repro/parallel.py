"""Process-pool helpers for plan search and experiment fan-out.

The autotuner scores hundreds of candidate plans analytically and
DES-validates the finalists; both are CPU-bound pure-Python work, so the
only way to speed them up on a multi-core host is multiple processes.
This module wraps :class:`concurrent.futures.ProcessPoolExecutor` with the
project's conventions:

* **deterministic ordering** — results come back in input order
  (``Executor.map`` semantics), so parallel and serial runs are
  result-identical;
* **picklable work units** — callers pass a module-level function plus
  picklable items (frozen config dataclasses, shapes, plain tuples);
* **jobs control** — ``jobs=None`` resolves ``$REPRO_JOBS``, then the CPU
  count; ``jobs=1`` (or a single item) runs serially in-process, which is
  also the fallback wherever a pool cannot be created (e.g. restricted
  sandboxes);
* **worker warm-up** — workers inherit nothing mutable from the parent:
  each re-derives kernels through the registry, where the persistent disk
  cache (:mod:`repro.kernels.registry`) keeps them from repeating the
  parent's modulo scheduling.

Hardening (all surfaced as ``parallel/*`` counters in :mod:`repro.obs`,
so ``repro perf`` shows what the pool survived):

* a crashed worker (:class:`BrokenProcessPool`) fails only the
  uncollected items; they are resubmitted to a fresh pool up to
  ``retries`` times before :class:`~repro.errors.WorkerError` is raised;
* ``timeout`` (seconds per task) turns hung workers into retries the
  same way — exceptions raised by ``fn`` itself always propagate
  unchanged;
* pools that cannot be created fall back to serial execution, and after
  :data:`_BREAKER_LIMIT` consecutive such failures a process-wide breaker
  stops attempting pools at all.

Amortization (the BENCH_PR2 lesson): spawning a process pool costs real
wall time — hundreds of milliseconds on a cold interpreter — which a
small work list can never earn back (the autotuner's ~53-candidate grid
ran 0.66x *slower* with ``jobs=2``).  Two defenses:

* ``parallel_map(..., min_units=N)`` runs serially below ``N`` work
  units (counted as ``parallel/amortized_serial``), with
  :data:`POOL_MIN_UNITS` as the calibrated spawn-amortization threshold;
* :func:`worker_pool` keeps one :class:`WorkerPool` alive across many
  ``parallel_map`` calls (counted as ``parallel/pool_reuses``) — a
  ``tune_many`` batch or a serve warmup session spawns workers once, and
  every subsequent search rides the warm pool.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import TypeVar

from .errors import WorkerError
from .obs.registry import MetricsRegistry, collecting
from .obs.registry import current as _obs_current

T = TypeVar("T")
R = TypeVar("R")

#: consecutive pool-creation failures before giving up on pools entirely
_BREAKER_LIMIT = 3

#: work units below which a one-shot pool spawn cannot pay for itself;
#: callers with a small fixed fan-out (the autotuner's candidate grid)
#: should stay serial unless a persistent pool is already warm.
POOL_MIN_UNITS = 128

_consecutive_pool_failures = 0
_pool_disabled = False


def _count(event: str, value: float = 1) -> None:
    m = _obs_current()
    if m is not None:
        m.counter(f"parallel/{event}").inc(value)


def _note_pool_ok() -> None:
    global _consecutive_pool_failures
    _consecutive_pool_failures = 0


def _note_pool_failure() -> None:
    global _consecutive_pool_failures, _pool_disabled
    _consecutive_pool_failures += 1
    _count("pool_failures")
    if _consecutive_pool_failures >= _BREAKER_LIMIT and not _pool_disabled:
        _pool_disabled = True
        _count("breaker_trips")


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set and positive, else CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            jobs = 0
        if jobs >= 1:
            return jobs
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None, n_items: int | None = None) -> int:
    """Effective worker count for a task of ``n_items`` units."""
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    if n_items is not None:
        jobs = min(jobs, max(1, n_items))
    return jobs


class _CollectingCall:
    """Picklable wrapper: run ``fn`` under a fresh registry in the worker
    and ship ``(result, metrics snapshot)`` back for the parent to merge.

    Without this, any metrics a worker process records land in that
    process's ambient registry and die with it.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, item: T):
        with collecting(MetricsRegistry()) as reg:
            result = self.fn(item)
        return result, reg.snapshot()


class WorkerPool:
    """A process pool that persists across :func:`parallel_map` calls.

    The executor is spawned lazily on first use and reused until
    :meth:`close`; a worker crash discards the broken executor so the
    next call respawns a fresh one.  Usable directly as a context
    manager, but the usual entry point is :func:`worker_pool`, which also
    installs the pool as the ambient default for ``parallel_map``.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._pool: ProcessPoolExecutor | None = None
        self._spawned = False

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            if self._spawned:
                _count("pool_respawns")
            self._spawned = True
        return self._pool

    def map(self, fn: Callable[[T], R], seq: Sequence[T], chunksize: int = 1):
        """``Executor.map`` on the persistent pool; raises
        :class:`BrokenProcessPool` (after discarding the dead executor) so
        the caller's retry path can take over."""
        try:
            return list(self._executor().map(fn, seq, chunksize=chunksize))
        except BrokenProcessPool:
            self._discard()
            raise

    def _discard(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_active_pool: WorkerPool | None = None


def active_pool() -> WorkerPool | None:
    """The ambient persistent pool, when inside :func:`worker_pool`."""
    return _active_pool


@contextmanager
def worker_pool(jobs: int | None = None):
    """Install a persistent :class:`WorkerPool` for the enclosed block.

    Every ``parallel_map`` call inside the block (without a per-task
    ``timeout``) reuses the same worker processes instead of spawning a
    pool per call, and skips the ``min_units`` serial cutoff — the spawn
    cost is already paid.  Nests: the previous pool is restored on exit.
    """
    global _active_pool
    pool = WorkerPool(jobs)
    prev = _active_pool
    _active_pool = pool
    try:
        yield pool
    finally:
        _active_pool = prev
        pool.close()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    *,
    chunksize: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    min_units: int = 2,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned across processes.

    Results are returned in input order regardless of completion order.
    Serial fallback when the effective job count is 1, there are fewer
    than ``min_units`` items (spawn amortization — unless a persistent
    :func:`worker_pool` is already active), the host refuses to fork a
    pool, or the pool breaker has tripped.

    ``timeout`` bounds each task's wait in seconds; a task that times out
    or dies with its worker is resubmitted to a fresh pool up to
    ``retries`` times, then :class:`~repro.errors.WorkerError` is raised.
    Exceptions raised by ``fn`` itself propagate unchanged on first
    occurrence — they are the caller's bug, not pool weather.

    When a metrics registry is ambient (:func:`repro.obs.collecting`),
    each work unit runs under a fresh worker-side registry whose snapshot
    rides back with the result and is merged into the parent registry
    (:meth:`~repro.obs.MetricsRegistry.merge`) — worker metrics are never
    silently dropped.
    """
    seq: Sequence[T] = items if isinstance(items, Sequence) else list(items)
    jobs = resolve_jobs(jobs, len(seq))
    pool_ready = _active_pool is not None and timeout is None
    too_small = len(seq) < 2 or (len(seq) < min_units and not pool_ready)
    if jobs == 1 or too_small or _pool_disabled:
        # in-process: fn records straight into the ambient registry
        if jobs > 1 and len(seq) >= 2:
            if _pool_disabled:
                _count("serial_fallbacks")
            elif too_small:
                _count("amortized_serial")
        return [fn(x) for x in seq]
    parent = _obs_current()
    call = fn if parent is None else _CollectingCall(fn)
    out = _run_map(call, seq, jobs, chunksize, timeout, retries)
    if parent is None:
        return out
    results = []
    for result, snap in out:
        parent.merge(MetricsRegistry.from_snapshot(snap))
        results.append(result)
    return results


def _run_map(
    fn: Callable[[T], R],
    seq: Sequence[T],
    jobs: int,
    chunksize: int,
    timeout: float | None,
    retries: int,
) -> list[R]:
    if timeout is None:
        # fast path: Executor.map gets chunking; a warm persistent pool is
        # reused outright; crashes fall through to the submit-based retry
        # path below
        try:
            if _active_pool is not None:
                _count("pool_reuses")
                out = _active_pool.map(fn, seq, chunksize=chunksize)
            else:
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    out = list(pool.map(fn, seq, chunksize=chunksize))
            _note_pool_ok()
            return out
        except (OSError, PermissionError):
            _note_pool_failure()
            _count("serial_fallbacks")
            return [fn(x) for x in seq]
        except BrokenProcessPool:
            _count("worker_crashes")
    return _submit_map(fn, seq, jobs, timeout, retries)


def _submit_map(
    fn: Callable[[T], R],
    seq: Sequence[T],
    jobs: int,
    timeout: float | None,
    retries: int,
) -> list[R]:
    """Submit-based map with per-task timeout and crash/hang retries."""
    results: list = [None] * len(seq)
    remaining = list(range(len(seq)))
    for attempt in range(retries + 1):
        if not remaining:
            break
        if attempt:
            _count("retries", len(remaining))
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(remaining)))
        except (OSError, PermissionError):
            _note_pool_failure()
            _count("serial_fallbacks")
            for i in remaining:
                results[i] = fn(seq[i])
            return results
        failed: list[int] = []
        try:
            futures = {i: pool.submit(fn, seq[i]) for i in remaining}
            for i in remaining:
                try:
                    results[i] = futures[i].result(timeout=timeout)
                except _FutureTimeout:
                    _count("timeouts")
                    futures[i].cancel()
                    failed.append(i)
                except BrokenProcessPool:
                    _count("worker_crashes")
                    failed.append(i)
        finally:
            # never block on a hung worker during shutdown; abandoned
            # processes are reaped by the OS when they finish or die
            pool.shutdown(wait=False, cancel_futures=True)
        remaining = failed
    if remaining:
        raise WorkerError(
            f"{len(remaining)} of {len(seq)} pool tasks still "
            f"crashed or hung after {retries} retries"
        )
    _note_pool_ok()
    return results
