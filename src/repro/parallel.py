"""Process-pool helpers for plan search and experiment fan-out.

The autotuner scores hundreds of candidate plans analytically and
DES-validates the finalists; both are CPU-bound pure-Python work, so the
only way to speed them up on a multi-core host is multiple processes.
This module wraps :class:`concurrent.futures.ProcessPoolExecutor` with the
project's conventions:

* **deterministic ordering** — results come back in input order
  (``Executor.map`` semantics), so parallel and serial runs are
  result-identical;
* **picklable work units** — callers pass a module-level function plus
  picklable items (frozen config dataclasses, shapes, plain tuples);
* **jobs control** — ``jobs=None`` resolves ``$REPRO_JOBS``, then the CPU
  count; ``jobs=1`` (or a single item) runs serially in-process, which is
  also the fallback wherever a pool cannot be created (e.g. restricted
  sandboxes);
* **worker warm-up** — workers inherit nothing mutable from the parent:
  each re-derives kernels through the registry, where the persistent disk
  cache (:mod:`repro.kernels.registry`) keeps them from repeating the
  parent's modulo scheduling.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` if set and positive, else CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            jobs = 0
        if jobs >= 1:
            return jobs
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None, n_items: int | None = None) -> int:
    """Effective worker count for a task of ``n_items`` units."""
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, int(jobs))
    if n_items is not None:
        jobs = min(jobs, max(1, n_items))
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    *,
    chunksize: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned across processes.

    Results are returned in input order regardless of completion order.
    Serial fallback when the effective job count is 1, there are fewer
    than two items, or the host refuses to fork a pool.
    """
    seq: Sequence[T] = items if isinstance(items, Sequence) else list(items)
    jobs = resolve_jobs(jobs, len(seq))
    if jobs == 1 or len(seq) < 2:
        return [fn(x) for x in seq]
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(fn, seq, chunksize=chunksize))
    except (OSError, PermissionError):
        return [fn(x) for x in seq]
