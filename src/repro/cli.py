"""Command-line interface.

::

    python -m repro gemm 20480x32x20480 [--impl ftimm|tgemm|both]
                                        [--cores N] [--timing MODE]
                                        [--verify] [--trace out.json]
    python -m repro kernel M N K [--table] [--asm] [--tgemm]
    python -m repro classify MxNxK
    python -m repro experiment fig3|fig4|fig5|fig6|fig7|tables|all
    python -m repro machine

Everything the CLI prints comes from the same public API the examples
use; the CLI exists so the reproduction can be poked at without writing
Python.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import format_table
from .baselines.cpu_openblas import openblas_sgemm
from .baselines.roofline import roofline
from .core.ftimm import ftimm_gemm, tgemm_gemm
from .core.shapes import GemmShape
from .errors import ReproError
from .hw.config import default_machine
from .kernels.registry import registry_for
from .workloads.generators import random_operands, reference_result


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().replace("*", "x").split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"shape must look like MxNxK, got {text!r}"
        )
    try:
        m, n, k = (int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return m, n, k


def _cmd_gemm(args: argparse.Namespace) -> int:
    m, n, k = args.shape
    shape = GemmShape(m, n, k)
    machine = default_machine()
    base = reference = None
    if args.verify:
        base = random_operands(shape, seed=0)
        if args.dtype == "f64":
            base = tuple(arr.astype("float64") for arr in base)
        reference = reference_result(*base)

    rows = []
    impls = ["ftimm", "tgemm"] if args.impl == "both" else [args.impl]
    if args.dtype == "f64":
        impls = [i for i in impls if i == "ftimm"]  # no FP64 baseline
    for impl in impls:
        fn = ftimm_gemm if impl == "ftimm" else tgemm_gemm
        kwargs = dict(cores=args.cores, timing=args.timing)
        if impl == "ftimm" and args.dtype != "f32":
            kwargs["dtype"] = args.dtype
        if args.verify:
            a, b, c0 = base
            c = c0.copy()  # each impl accumulates into its own C
            kwargs.update(a=a, b=b, c=c)
        if impl == "ftimm" and args.force_strategy:
            kwargs["force_strategy"] = args.force_strategy
        result = fn(m, n, k, **kwargs)
        rows.append(
            [
                impl,
                result.strategy,
                result.timing_mode,
                f"{result.seconds * 1e6:.1f}" if result.timing else "-",
                f"{result.gflops:.1f}",
                f"{100 * result.efficiency:.1f}%",
            ]
        )
        if args.verify:
            import numpy as np

            err = float(np.abs(kwargs["c"] - reference).max())
            print(f"verify [{impl}]: max |C - reference| = {err:.3e}")
        if (args.trace or args.plan) and impl == "ftimm":
            from .core.ftimm import _lower  # noqa: SLF001 - CLI convenience
            from .core.tuner import tune

            cluster = machine.cluster
            if args.cores:
                cluster = cluster.with_cores(args.cores)
            decision = tune(shape, cluster, dtype=args.dtype)
            lowered = _lower(
                shape, cluster, decision, None, registry_for(cluster.core)
            )
            if args.plan:
                print(lowered.describe())
            if args.trace:
                from .executor.timed import run_timed
                from .executor.trace import TraceRecorder

                recorder = TraceRecorder()
                run_timed(lowered, trace=recorder)
                path = recorder.save(args.trace)
                print(f"trace: {recorder.n_spans} spans -> {path}")
                print(recorder.ascii_timeline())

    print(f"shape {shape} ({shape.classify().value}), "
          f"AI {shape.arithmetic_intensity:.1f} flops/byte")
    ceiling = roofline(shape, machine.cluster, n_cores=args.cores)
    print(f"roofline max ({args.cores or 8} cores): {ceiling.max_gflops:.0f} GFLOPS")
    cpu = openblas_sgemm(shape, machine.cpu)
    print(f"OpenBLAS on the 16-core CPU (modeled): {cpu.gflops:.1f} GFLOPS "
          f"({100 * cpu.efficiency:.1f}%)")
    print()
    print(format_table(
        ["impl", "strategy", "timing", "time (us)", "GFLOPS", "efficiency"],
        rows,
    ))
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    registry = registry_for(default_machine().cluster.core)
    if args.tgemm:
        kern = registry.tgemm(min(args.m, 6), args.n, args.k)
    else:
        kern = registry.ftimm(args.m, args.n, args.k, args.dtype)
    info = kern.blocks[0]
    print(f"kernel {kern.spec} ({kern.name}): m_u={info.m_u} k_u={info.k_u} "
          f"II={kern.ii} cycles={kern.cycles} "
          f"efficiency={100 * kern.efficiency:.1f}% "
          f"({kern.gflops:.1f} GFLOPS/core)")
    sregs, vregs = kern.registers_used()
    print(f"registers: {vregs} vector, {sregs} scalar; "
          f"blocks: {[(b.m_u, b.k_u, b.ii) for b in kern.blocks]}")
    if args.table:
        print()
        print(kern.pipeline_table())
    if args.asm:
        from .isa.emitter import render_assembly

        block = kern.program.blocks[0]
        print("\nsetup:")
        print(render_assembly(block.setup))
        print(f"\nbody (x{block.trip}):")
        print(render_assembly(block.body))
        print("\nteardown:")
        print(render_assembly(block.teardown))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    m, n, k = args.shape
    shape = GemmShape(m, n, k)
    print(f"{shape}: {shape.classify().value}")
    print(f"flops: {shape.flops:,}  compulsory bytes: {shape.total_bytes:,}  "
          f"AI: {shape.arithmetic_intensity:.2f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_all

    from . import experiments as _exp

    modules = {
        "fig3": _exp.fig3, "fig4": _exp.fig4, "fig5": _exp.fig5,
        "fig6": _exp.fig6, "fig7": _exp.fig7, "tables": _exp.tables123,
        "fp64": _exp.ext_fp64, "multicluster": _exp.ext_multicluster,
        "autotune": _exp.ext_autotune, "workloads": _exp.ext_workloads,
        "sensitivity": _exp.ext_sensitivity, "hetero": _exp.ext_hetero,
        "bandwidth": _exp.ext_bandwidth,
    }
    if args.name == "all":
        run_all.main([])
        return 0
    for result in modules[args.name].run():
        print(result.render(chart=True))
        print()
    return 0


def _cmd_machine(_args: argparse.Namespace) -> int:
    machine = default_machine()
    cluster, core = machine.cluster, machine.cluster.core
    rows = [
        ["DSP cores per cluster", cluster.n_cores],
        ["core clock", f"{core.clock_hz / 1e9:.1f} GHz"],
        ["FP32 SIMD width", core.simd_lanes],
        ["FMAC pipes / core", core.n_vector_fmac],
        ["core peak", f"{core.peak_flops / 1e9:.1f} GFLOPS"],
        ["cluster peak", f"{cluster.peak_flops / 1e9:.1f} GFLOPS"],
        ["AM / SM per core", f"{core.am_bytes // 1024} / {core.sm_bytes // 1024} KiB"],
        ["GSM", f"{cluster.gsm_bytes // (1024 * 1024)} MiB"],
        ["DDR port", f"{cluster.ddr_bandwidth / 1e9:.1f} GB/s"],
        ["CPU", f"{machine.cpu.n_cores} cores, "
                f"{machine.cpu.peak_flops / 1e9:.1f} GFLOPS"],
    ]
    print("FT-m7032 model (one GPDSP cluster + host CPU):")
    print(format_table(["parameter", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ftIMM on a simulated FT-m7032 (CLUSTER 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gemm = sub.add_parser("gemm", help="run / model one GEMM")
    p_gemm.add_argument("shape", type=_parse_shape, help="MxNxK")
    p_gemm.add_argument("--impl", choices=["ftimm", "tgemm", "both"],
                        default="both")
    p_gemm.add_argument("--cores", type=int, default=None)
    p_gemm.add_argument("--timing", default="auto",
                        choices=["auto", "des", "analytic", "none"])
    p_gemm.add_argument("--force-strategy", choices=["m", "k", "tgemm"],
                        default=None)
    p_gemm.add_argument("--dtype", choices=["f32", "f64"], default="f32")
    p_gemm.add_argument("--verify", action="store_true",
                        help="run functionally on random operands and check")
    p_gemm.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome-trace of the DES run")
    p_gemm.add_argument("--plan", action="store_true",
                        help="print the lowered op-stream summary")
    p_gemm.set_defaults(fn=_cmd_gemm)

    p_kernel = sub.add_parser("kernel", help="generate one micro-kernel")
    p_kernel.add_argument("m", type=int)
    p_kernel.add_argument("n", type=int)
    p_kernel.add_argument("k", type=int)
    p_kernel.add_argument("--table", action="store_true",
                          help="print the pipeline reservation table")
    p_kernel.add_argument("--asm", action="store_true",
                          help="print the instruction stream")
    p_kernel.add_argument("--tgemm", action="store_true",
                          help="the fixed TGEMM kernel instead")
    p_kernel.add_argument("--dtype", choices=["f32", "f64"], default="f32")
    p_kernel.set_defaults(fn=_cmd_kernel)

    p_classify = sub.add_parser("classify", help="shape taxonomy")
    p_classify.add_argument("shape", type=_parse_shape)
    p_classify.set_defaults(fn=_cmd_classify)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument(
        "name",
        choices=[
            "fig3", "fig4", "fig5", "fig6", "fig7", "tables",
            "fp64", "multicluster", "autotune", "workloads", "sensitivity",
            "hetero", "bandwidth", "all",
        ],
    )
    p_exp.set_defaults(fn=_cmd_experiment)

    p_machine = sub.add_parser("machine", help="show the machine model")
    p_machine.set_defaults(fn=_cmd_machine)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
