"""Command-line interface.

::

    python -m repro gemm 20480x32x20480 [--impl ftimm|tgemm|both]
                                        [--cores N] [--timing MODE]
                                        [--verify] [--kernel-exec MODE]
                                        [--trace out.json] [--perf]
    python -m repro perf --shape MxNxK [--runlog runs.jsonl] [--compare]
                         [--json]
    python -m repro autotune MxNxK [--jobs N] [--no-validate]
                                   [--exhaustive] [--no-transfer]
                                   [--transfer-tol T] [--stack-hint M]
    python -m repro kernel M N K [--table] [--asm] [--tgemm]
    python -m repro classify MxNxK
    python -m repro chaos [--seeds N] [--impl ftimm|tgemm|both]
    python -m repro serve [--mix NAME] [--policy P] [--loads R1,R2,...]
                          [--compare-naive] [--latency-table]
                          [--trace out.json]
    python -m repro trace runs.jsonl|trace.json [--quantile Q]
    python -m repro experiment fig3|fig4|fig5|fig6|fig7|tables|all
    python -m repro machine

Everything the CLI prints comes from the same public API the examples
use; the CLI exists so the reproduction can be poked at without writing
Python.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import format_table
from .baselines.cpu_openblas import openblas_sgemm
from .baselines.roofline import roofline
from .core.ftimm import ftimm_gemm, tgemm_gemm
from .core.shapes import GemmShape
from .errors import ReproError
from .hw.config import default_machine
from .kernels.registry import registry_for
from .workloads.generators import random_operands, reference_result


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = text.lower().replace("*", "x").split("x")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"shape must look like MxNxK, got {text!r}"
        )
    try:
        m, n, k = (int(p) for p in parts)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return m, n, k


def _trace_summary(recorder) -> str:
    """Row-utilization table of a captured trace."""
    rows = [
        [s.row, s.spans, f"{s.busy * 1e6:.1f}", f"{100 * s.utilization:.1f}%"]
        for s in recorder.summarize()
    ]
    return format_table(["row", "spans", "busy (us)", "util"], rows)


def _cmd_gemm(args: argparse.Namespace) -> int:
    m, n, k = args.shape
    shape = GemmShape(m, n, k)
    machine = default_machine()
    base = reference = None
    if args.verify:
        base = random_operands(shape, seed=0)
        if args.dtype == "f64":
            base = tuple(arr.astype("float64") for arr in base)
        reference = reference_result(*base)

    rows = []
    impls = ["ftimm", "tgemm"] if args.impl == "both" else [args.impl]
    if args.dtype == "f64":
        impls = [i for i in impls if i == "ftimm"]  # no FP64 baseline
    for impl in impls:
        fn = ftimm_gemm if impl == "ftimm" else tgemm_gemm
        kwargs = dict(
            cores=args.cores, timing=args.timing,
            kernel_exec=args.kernel_exec,
        )
        if impl == "ftimm" and args.dtype != "f32":
            kwargs["dtype"] = args.dtype
        if args.verify:
            a, b, c0 = base
            c = c0.copy()  # each impl accumulates into its own C
            kwargs.update(a=a, b=b, c=c)
        if impl == "ftimm" and args.force_strategy:
            kwargs["force_strategy"] = args.force_strategy
        result = fn(m, n, k, **kwargs)
        rows.append(
            [
                impl,
                result.strategy,
                result.timing_mode,
                f"{result.seconds * 1e6:.1f}" if result.timing else "-",
                f"{result.gflops:.1f}",
                f"{100 * result.efficiency:.1f}%",
            ]
        )
        if args.verify:
            import numpy as np

            err = float(np.abs(kwargs["c"] - reference).max())
            print(f"verify [{impl}]: max |C - reference| = {err:.3e}")
        if (args.trace or args.plan or args.perf) and impl == "ftimm":
            from .core.ftimm import _lower  # noqa: SLF001 - CLI convenience
            from .core.tuner import tune

            cluster = machine.cluster
            if args.cores:
                cluster = cluster.with_cores(args.cores)
            decision = tune(
                shape, cluster, dtype=args.dtype,
                force_strategy=args.force_strategy,
            )
            lowered = _lower(
                shape, cluster, decision, None, registry_for(cluster.core)
            )
            if args.plan:
                print(lowered.describe())
            if args.trace or args.perf:
                from .executor.timed import run_timed
                from .executor.trace import TraceRecorder

                recorder = TraceRecorder() if args.trace else None
                timed = run_timed(lowered, trace=recorder, profile=args.perf)
                if recorder is not None:
                    path = recorder.save(args.trace)
                    print(f"trace: {recorder.n_spans} spans -> {path}")
                    print(recorder.ascii_timeline())
                    print(_trace_summary(recorder))
                if args.perf:
                    from .analysis.bottleneck import attribute

                    print(attribute(timed, shape, cluster).render())

    print(f"shape {shape} ({shape.classify().value}), "
          f"AI {shape.arithmetic_intensity:.1f} flops/byte")
    ceiling = roofline(shape, machine.cluster, n_cores=args.cores)
    print(f"roofline max ({args.cores or 8} cores): {ceiling.max_gflops:.0f} GFLOPS")
    cpu = openblas_sgemm(shape, machine.cpu)
    print(f"OpenBLAS on the 16-core CPU (modeled): {cpu.gflops:.1f} GFLOPS "
          f"({100 * cpu.efficiency:.1f}%)")
    print()
    print(format_table(
        ["impl", "strategy", "timing", "time (us)", "GFLOPS", "efficiency"],
        rows,
    ))
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    registry = registry_for(default_machine().cluster.core)
    if args.tgemm:
        kern = registry.tgemm(min(args.m, 6), args.n, args.k)
    else:
        kern = registry.ftimm(args.m, args.n, args.k, args.dtype)
    info = kern.blocks[0]
    print(f"kernel {kern.spec} ({kern.name}): m_u={info.m_u} k_u={info.k_u} "
          f"II={kern.ii} cycles={kern.cycles} "
          f"efficiency={100 * kern.efficiency:.1f}% "
          f"({kern.gflops:.1f} GFLOPS/core)")
    sregs, vregs = kern.registers_used()
    print(f"registers: {vregs} vector, {sregs} scalar; "
          f"blocks: {[(b.m_u, b.k_u, b.ii) for b in kern.blocks]}")
    if args.table:
        print()
        print(kern.pipeline_table())
    if args.asm:
        from .isa.emitter import render_assembly

        block = kern.program.blocks[0]
        print("\nsetup:")
        print(render_assembly(block.setup))
        print(f"\nbody (x{block.trip}):")
        print(render_assembly(block.body))
        print("\nteardown:")
        print(render_assembly(block.teardown))
    return 0


def _histogram_lines(reg) -> list[str]:
    """One line per non-empty histogram in the registry."""
    lines = []
    for name, snap in sorted(reg.snapshot().items()):
        if snap.get("type") != "histogram" or not snap["count"]:
            continue
        lines.append(
            f"  {name}: n={snap['count']} "
            f"p50={snap['p50'] * 1e3:.3f}ms p95={snap['p95'] * 1e3:.3f}ms "
            f"p99={snap['p99'] * 1e3:.3f}ms max={snap['max'] * 1e3:.3f}ms"
        )
    return lines


def _cmd_perf(args: argparse.Namespace) -> int:
    from .analysis.bottleneck import attribute, diff_records
    from .core.blocking import TgemmPlan
    from .core.ftimm import _lower  # noqa: SLF001 - CLI convenience
    from .core.tuner import TuningDecision, tune
    from .executor.timed import run_timed
    from .obs import (
        append_record,
        collecting,
        last_matching,
        make_record,
        read_records,
    )

    m, n, k = args.shape
    shape = GemmShape(m, n, k)
    cluster = default_machine().cluster
    if args.cores:
        cluster = cluster.with_cores(args.cores)
    if args.impl == "tgemm":
        decision = TuningDecision(
            strategy="tgemm",
            tgemm_plan=TgemmPlan().validate(cluster),
            reason="baseline",
        )
    else:
        decision = tune(
            shape, cluster, dtype=args.dtype,
            force_strategy=args.force_strategy,
        )
    with collecting() as reg:
        lowered = _lower(
            shape, cluster, decision, None, registry_for(cluster.core)
        )
        result = run_timed(lowered, profile=True)
    report = attribute(result, shape, cluster, impl=args.impl)
    record = make_record(
        **report.to_record_fields(),
        profile=result.profile.to_dict(),
        metrics=reg.snapshot(),
    )
    earlier = read_records(args.runlog, skip_invalid=True)
    append_record(args.runlog, record)

    if args.json:
        # machine-readable mode: the appended run-log record, nothing else
        import json

        print(json.dumps(record, sort_keys=True))
        return 0

    print(report.render())

    for prefix, label in (
        ("kernels/cache/", "kernel cache"),
        ("faults/", "faults"),
        ("parallel/", "pool"),
    ):
        counts = {
            name[len(prefix):]: snap["value"]
            for name, snap in reg.snapshot().items()
            if name.startswith(prefix) and snap.get("type") == "counter"
        }
        if counts:
            print()
            print(label + ": " + "  ".join(
                f"{k}={v:g}" for k, v in sorted(counts.items())
            ))

    hist_lines = _histogram_lines(reg)
    if hist_lines:
        print()
        print("histograms:")
        print("\n".join(hist_lines))

    if args.compare:
        prev = last_matching(
            earlier, shape=str(shape), impl=args.impl, cores=cluster.n_cores
        )
        print()
        if prev is None:
            print(f"compare: no earlier {shape} run in {args.runlog}")
        else:
            print(diff_records(prev, record))
    print(f"run-log: {args.runlog} ({len(earlier) + 1} records)")
    if args.metrics:
        print(reg.to_json(indent=1))
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from .core.autotune import autotune
    from .obs import collecting

    m, n, k = args.shape
    shape = GemmShape(m, n, k)
    cluster = default_machine().cluster
    if args.cores:
        cluster = cluster.with_cores(args.cores)
    validate_top = 0 if args.no_validate else args.validate_top
    with collecting() as reg:
        result = autotune(
            shape, cluster, validate_top=validate_top, jobs=args.jobs,
            mode="exhaustive" if args.exhaustive else "pruned",
            transfer=not args.no_transfer,
            transfer_tol=args.transfer_tol,
            stack_hint=args.stack_hint,
        )
    print(f"shape {shape}: searched {result.n_candidates} candidates")
    if args.stack_hint is not None:
        print(f"  stack hint: tuned at M={args.stack_hint} "
              f"(expected stacked batch)")
    print(f"  best: {result.best.label}  "
          f"{result.best.seconds * 1e6:.1f} us"
          f"{' (DES-validated)' if result.best.validated else ''}"
          f"{' (transferred)' if result.best.transferred else ''}")
    print(f"  rule: {result.rule.label}  "
          f"{result.rule.seconds * 1e6:.1f} us")
    print(f"  rule/best: {result.improvement:.3f}x")
    stats = result.stats
    if stats is not None:
        print(f"  search [{stats.mode}"
              + (", pooled" if stats.pooled else ", serial")
              + f"]: {stats.describe()}")
        if stats.trajectory:
            print("  incumbent trajectory:")
            for scored, label, seconds in stats.trajectory:
                print(f"    after {scored:3d} scored: {label}  "
                      f"{seconds * 1e6:.1f} us")
    for name in reg.names("tuner/"):
        snap = reg.snapshot()[name]
        if snap["type"] == "timer":
            print(f"  {name}: {snap['total']:.3f} s")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import chaos_sweep
    from .obs import collecting

    impls = ("ftimm", "tgemm") if args.impl == "both" else (args.impl,)
    rates = tuple(float(r) for r in args.rates.split(","))
    with collecting() as reg:
        summary = chaos_sweep(
            seeds=range(args.seeds),
            rates=rates,
            impls=impls,
            core_failures=not args.no_core_failures,
            timed_probe=not args.no_timed_probe,
        )
    print(summary.describe())
    fault_counts = {
        name[len("faults/"):]: snap["value"]
        for name, snap in reg.snapshot().items()
        if name.startswith("faults/") and snap.get("type") == "counter"
    }
    if fault_counts:
        print("injector: " + "  ".join(
            f"{k}={v:g}" for k, v in sorted(fault_counts.items())
        ))
    return 0 if summary.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from .analysis.critical_path import critical_path
    from .faults.plan import FaultPlan
    from .obs import append_record, collecting, make_record, tracing
    from .serve import (
        DegradePolicy,
        ServeConfig,
        chaos_serve,
        gateway_replay,
        make_requests,
        monitor,
        serve,
        sweep,
    )

    try:
        loads = sorted(float(x) for x in args.loads.split(","))
    except ValueError as exc:
        raise ReproError(f"bad --loads: {exc}") from None
    if args.cold_tune == "auto":
        cold_tune_s: float | None = None
    else:
        try:
            cold_tune_s = float(args.cold_tune)
        except ValueError:
            raise ReproError(
                f"bad --cold-tune {args.cold_tune!r} (float or 'auto')"
            ) from None
    stack_hints: bool | str = not args.no_stack_hints
    if args.observed_hints:
        stack_hints = "observed"
    config = ServeConfig(
        policy=args.policy,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait,
        queue_cap=args.queue_cap,
        by_digest=not args.no_digest,
        warmup=not args.no_warmup,
        warmup_tune=args.warm_tune,
        stack_hints=stack_hints,
        cold_tune_s=cold_tune_s,
        degrade=(DegradePolicy()
                 if (args.degrade or args.chaos) else None),
        trace_sample=args.trace_sample,
        replicate_b=args.replicate_b,
        replica_budget_bytes=args.replica_budget,
        max_replicas=args.max_replicas,
        promote_after=args.promote_after,
    )

    if args.gateway:
        # live-path demo driver: push the highest offered load through
        # the asyncio gateway and hold it to the replay bit-identity
        # contract right here
        requests = make_requests(
            args.mix, rate_rps=loads[-1], n_requests=args.n,
            seed=args.seed, arrivals=args.arrivals,
        )
        replayed = make_requests(
            args.mix, rate_rps=loads[-1], n_requests=args.n,
            seed=args.seed, arrivals=args.arrivals,
        )
        with collecting() as reg:
            live = gateway_replay(requests, config)
        replay = serve(replayed, config)
        identical = live.records == replay.records
        print(f"gateway [{args.policy}] at {loads[-1]:.0f} rps offered:")
        print(live.describe())
        print()
        gw_counts = {
            name[len("serve/gateway/"):]: v["value"]
            for name, v in reg.snapshot().items()
            if name.startswith("serve/gateway/")
        }
        if gw_counts:
            print("gateway counters: " + "  ".join(
                f"{k}={v:g}" for k, v in sorted(gw_counts.items())
            ))
        print("records bit-identical to pre-drawn replay: "
              f"{'yes' if identical else 'NO — contract violation'}")
        return 0 if identical else 1

    if args.chaos:
        # serve-level chaos: one sick cluster under aggressive bit-flips
        # at the highest offered load, contract-audited end to end
        n_clusters = default_machine().n_clusters
        chaos_config = dataclasses.replace(
            config,
            faults=FaultPlan(
                seed=args.seed, bitflip_rate=1.0, max_kernel_retries=0,
            ),
            cluster_fault_scale=(1.0,) + (0.0,) * (n_clusters - 1),
        )
        requests = make_requests(
            args.mix, rate_rps=loads[-1], n_requests=args.n,
            seed=args.seed, arrivals=args.arrivals,
        )
        with collecting() as reg:
            chaos = chaos_serve(requests, chaos_config)
        print(chaos.describe())
        degrade_counts = {
            name[len("serve/degrade/"):]: v["value"]
            for name, v in reg.snapshot().items()
            if name.startswith("serve/degrade/")
        }
        if degrade_counts:
            print("degrade counters: " + "  ".join(
                f"{k}={v:g}" for k, v in sorted(degrade_counts.items())
            ))
        return 0 if chaos.ok else 1

    with collecting() as reg:
        result = sweep(
            args.mix, loads,
            n_requests=args.n, seed=args.seed, config=config,
            arrivals=args.arrivals, compare_naive=args.compare_naive,
        )
    print(result.render())

    warmup = result.points[-1].report.warmup
    if warmup.n_buckets:
        line = (f"warmup [{warmup.mode}]: {warmup.n_buckets} bucket(s) "
                f"in {warmup.wall_s * 1e3:.1f} ms")
        if warmup.hinted:
            line += f", {warmup.hinted} at hinted stacked M"
        if warmup.mode == "search":
            line += (f", transfer hits {warmup.transfer_hits} "
                     f"(short-circuits {warmup.short_circuits})")
        print()
        print(line)

    hist_lines = _histogram_lines(reg)
    if hist_lines:
        print()
        print("latency histograms (all sweep points pooled):")
        print("\n".join(hist_lines))

    if args.latency_table:
        last = result.points[-1].report
        print()
        print(f"per-request latency at {result.points[-1].offered_rps:.0f} "
              "rps (highest offered load):")
        print(last.latency_table())

    last = result.points[-1]

    # critical-path attribution + SLO monitoring at the highest offered
    # load — the point where queueing and shedding actually show up
    cp = critical_path(last.report.records, last.report.batches)
    print()
    print(f"critical path at {last.offered_rps:.0f} rps:")
    print(cp.render())
    slo = monitor(last.report.records)
    print()
    print(slo.render())
    if last.report.placement is not None:
        print()
        print(last.report.placement.describe())

    record = make_record(
        shape=f"mix:{result.mix_name}",
        impl="serve",
        strategy=result.policy,
        cores=default_machine().cluster.n_cores,
        seconds=last.report.makespan_s,
        gflops=last.report.throughput_gflops,
        efficiency=(last.report.goodput_rps / last.offered_rps
                    if last.offered_rps else 0.0),
        bound="serve",
        profile=result.to_record_fields(),
        metrics=reg.snapshot(),
    )
    # full per-request / per-batch rows so `repro trace runs.jsonl` can
    # re-run the analysis offline (make_record has a fixed signature)
    record["serve"] = {
        "requests": [dataclasses.asdict(r) for r in last.report.records],
        "batches": [dataclasses.asdict(b) for b in last.report.batches],
    }
    append_record(args.runlog, record)
    n_alerts = slo.append_to_runlog(args.runlog)
    print()
    print(f"run-log: {args.runlog}"
          + (f" (+{n_alerts} SLO alert record(s))" if n_alerts else ""))

    if args.trace:
        # re-run the highest-load point under the tracer (exactly the
        # harness's recipe, so the trace matches the numbers above)
        requests = make_requests(
            args.mix, rate_rps=last.offered_rps, n_requests=args.n,
            seed=args.seed, arrivals=args.arrivals,
        )
        with tracing() as tracer:
            serve(requests, config)
        path = tracer.save(args.trace)
        print(f"trace: {len(tracer.spans)} spans -> {path} "
              "(load in https://ui.perfetto.dev)")
    return 0


def _load_critical_path(path, quantile: float):
    """One trace input -> (CriticalPathReport, human description).

    ``.json`` is an exported Chrome trace (validated, reconstructed from
    the span sidecar); anything else is a JSONL run-log whose most recent
    serve record carries the per-request/per-batch rows.
    """
    import json
    from pathlib import Path

    from .analysis.critical_path import critical_path, from_spans
    from .obs import load_spans, read_records, validate_chrome_trace
    from .serve import BatchRecord, RequestRecord

    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such file: {path}")
    if path.suffix == ".json":
        trace = json.loads(path.read_text())
        validate_chrome_trace(trace)
        spans = load_spans(path)
        desc = (f"{path}: {len(trace['traceEvents'])} events / "
                f"{len(spans)} spans — valid Chrome trace "
                "(load in https://ui.perfetto.dev)")
        return from_spans(spans, quantile=quantile), desc, spans
    records = read_records(path, skip_invalid=True)
    serve_recs = [r for r in records
                  if r.get("impl") == "serve" and r.get("serve")]
    if not serve_recs:
        raise ReproError(
            f"{path}: no serve records with per-request rows "
            "(run `repro serve` first)"
        )
    payload = serve_recs[-1]["serve"]
    reqs = [RequestRecord(**d) for d in payload["requests"]]
    batches = [BatchRecord(**d) for d in payload["batches"]]
    desc = (f"{path}: serve record {len(serve_recs)} of {len(records)} "
            f"run-log rows ({len(reqs)} requests, {len(batches)} batches)")
    return critical_path(reqs, batches, quantile=quantile), desc, reqs


def _cmd_trace(args: argparse.Namespace) -> int:
    from collections import Counter
    from pathlib import Path

    from .analysis.critical_path import diff_critical_paths
    from .obs import read_records
    from .serve import SLO_SCHEMA, monitor

    if args.path_b is not None:
        # cross-run diff: where did run B's tail move relative to run A's?
        cp_a, desc_a, _ = _load_critical_path(args.path_a, args.quantile)
        cp_b, desc_b, _ = _load_critical_path(args.path_b, args.quantile)
        print(f"A: {desc_a}")
        print(f"B: {desc_b}")
        print()
        diff = diff_critical_paths(
            cp_a, cp_b, quantiles=(0.50, args.quantile)
        )
        print(diff.render())
        return 0
    if args.compare:
        raise ReproError("--compare needs two inputs: repro trace A B")

    path = Path(args.path_a)
    cp, desc, extra = _load_critical_path(path, args.quantile)
    print(desc)
    if path.suffix == ".json":
        census = Counter(s.category for s in extra)
        print("spans by category: " + "  ".join(
            f"{cat}={n}" for cat, n in sorted(census.items())
        ))
        print()
        print(cp.render())
        return 0
    print()
    print(cp.render())
    print()
    print(monitor(extra).render())
    alerts = read_records(path, SLO_SCHEMA)
    if alerts:
        print(f"(run-log already holds {len(alerts)} SLO alert record(s))")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    m, n, k = args.shape
    shape = GemmShape(m, n, k)
    print(f"{shape}: {shape.classify().value}")
    print(f"flops: {shape.flops:,}  compulsory bytes: {shape.total_bytes:,}  "
          f"AI: {shape.arithmetic_intensity:.2f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_all

    from . import experiments as _exp

    modules = {
        "fig3": _exp.fig3, "fig4": _exp.fig4, "fig5": _exp.fig5,
        "fig6": _exp.fig6, "fig7": _exp.fig7, "tables": _exp.tables123,
        "fp64": _exp.ext_fp64, "multicluster": _exp.ext_multicluster,
        "autotune": _exp.ext_autotune, "workloads": _exp.ext_workloads,
        "sensitivity": _exp.ext_sensitivity, "hetero": _exp.ext_hetero,
        "bandwidth": _exp.ext_bandwidth,
    }
    if args.name == "all":
        run_all.main([])
        return 0
    for result in modules[args.name].run():
        print(result.render(chart=True))
        print()
    return 0


def _cmd_machine(_args: argparse.Namespace) -> int:
    machine = default_machine()
    cluster, core = machine.cluster, machine.cluster.core
    rows = [
        ["DSP cores per cluster", cluster.n_cores],
        ["core clock", f"{core.clock_hz / 1e9:.1f} GHz"],
        ["FP32 SIMD width", core.simd_lanes],
        ["FMAC pipes / core", core.n_vector_fmac],
        ["core peak", f"{core.peak_flops / 1e9:.1f} GFLOPS"],
        ["cluster peak", f"{cluster.peak_flops / 1e9:.1f} GFLOPS"],
        ["AM / SM per core", f"{core.am_bytes // 1024} / {core.sm_bytes // 1024} KiB"],
        ["GSM", f"{cluster.gsm_bytes // (1024 * 1024)} MiB"],
        ["DDR port", f"{cluster.ddr_bandwidth / 1e9:.1f} GB/s"],
        ["CPU", f"{machine.cpu.n_cores} cores, "
                f"{machine.cpu.peak_flops / 1e9:.1f} GFLOPS"],
    ]
    print("FT-m7032 model (one GPDSP cluster + host CPU):")
    print(format_table(["parameter", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ftIMM on a simulated FT-m7032 (CLUSTER 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gemm = sub.add_parser("gemm", help="run / model one GEMM")
    p_gemm.add_argument("shape", type=_parse_shape, help="MxNxK")
    p_gemm.add_argument("--impl", choices=["ftimm", "tgemm", "both"],
                        default="both")
    p_gemm.add_argument("--cores", type=int, default=None)
    p_gemm.add_argument("--timing", default="auto",
                        choices=["auto", "des", "analytic", "none"])
    p_gemm.add_argument("--force-strategy", choices=["m", "k", "tgemm"],
                        default=None)
    p_gemm.add_argument("--dtype", choices=["f32", "f64"], default="f32")
    p_gemm.add_argument("--verify", action="store_true",
                        help="run functionally on random operands and check")
    p_gemm.add_argument("--kernel-exec",
                        choices=["numpy", "compiled", "interp"],
                        default="numpy",
                        help="how functional kernels compute: numpy fast "
                             "path, or the generated ISA stream "
                             "(trace-compiled or interpreted)")
    p_gemm.add_argument("--trace", metavar="OUT.json", default=None,
                        help="write a Chrome-trace of the DES run")
    p_gemm.add_argument("--plan", action="store_true",
                        help="print the lowered op-stream summary")
    p_gemm.add_argument("--perf", action="store_true",
                        help="print the per-epoch bottleneck attribution")
    p_gemm.set_defaults(fn=_cmd_gemm)

    p_perf = sub.add_parser(
        "perf", help="profile one GEMM and attribute its bottleneck"
    )
    p_perf.add_argument("--shape", type=_parse_shape, required=True,
                        metavar="MxNxK")
    p_perf.add_argument("--impl", choices=["ftimm", "tgemm"], default="ftimm")
    p_perf.add_argument("--cores", type=int, default=None)
    p_perf.add_argument("--dtype", choices=["f32", "f64"], default="f32")
    p_perf.add_argument("--force-strategy", choices=["m", "k", "tgemm"],
                        default=None)
    p_perf.add_argument("--runlog", metavar="OUT.jsonl", default="runs.jsonl",
                        help="JSONL run-log to append to (default runs.jsonl)")
    p_perf.add_argument("--compare", action="store_true",
                        help="diff against the latest matching run-log entry")
    p_perf.add_argument("--metrics", action="store_true",
                        help="also dump the raw metrics registry as JSON")
    p_perf.add_argument("--json", action="store_true",
                        help="print only the run-log record as one JSON "
                             "object (machine-readable; still appends)")
    p_perf.set_defaults(fn=_cmd_perf)

    p_kernel = sub.add_parser("kernel", help="generate one micro-kernel")
    p_kernel.add_argument("m", type=int)
    p_kernel.add_argument("n", type=int)
    p_kernel.add_argument("k", type=int)
    p_kernel.add_argument("--table", action="store_true",
                          help="print the pipeline reservation table")
    p_kernel.add_argument("--asm", action="store_true",
                          help="print the instruction stream")
    p_kernel.add_argument("--tgemm", action="store_true",
                          help="the fixed TGEMM kernel instead")
    p_kernel.add_argument("--dtype", choices=["f32", "f64"], default="f32")
    p_kernel.set_defaults(fn=_cmd_kernel)

    p_tune = sub.add_parser(
        "autotune", help="search candidate plans for one shape"
    )
    p_tune.add_argument("shape", type=_parse_shape, help="MxNxK")
    p_tune.add_argument("--cores", type=int, default=None)
    p_tune.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default $REPRO_JOBS, then "
                             "the CPU count; 1 = serial)")
    p_tune.add_argument("--validate-top", type=int, default=3,
                        help="DES-validate the best N candidates")
    p_tune.add_argument("--no-validate", action="store_true",
                        help="pure analytic search (skip DES validation)")
    p_tune.add_argument("--exhaustive", action="store_true",
                        help="score every candidate (no bound pruning; "
                             "the escape hatch the pruned search is "
                             "tested against)")
    p_tune.add_argument("--no-transfer", action="store_true",
                        help="skip the cross-shape plan database")
    p_tune.add_argument("--transfer-tol", type=float, default=None,
                        metavar="T",
                        help="adopt a transferred neighbor plan outright "
                             "when it is within (1+T) of the grid's lower "
                             "bound (default: warm-start only, no "
                             "short-circuit)")
    p_tune.add_argument("--stack-hint", type=int, default=None, metavar="M",
                        help="tune at this expected stacked/batched M "
                             "instead of the shape's M")
    p_tune.set_defaults(fn=_cmd_autotune)

    p_classify = sub.add_parser("classify", help="shape taxonomy")
    p_classify.add_argument("shape", type=_parse_shape)
    p_classify.set_defaults(fn=_cmd_classify)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection sweep: every run bit-correct or a typed error",
    )
    p_chaos.add_argument("--seeds", type=int, default=4,
                         help="fault-plan seeds per scenario (default 4)")
    p_chaos.add_argument("--rates", default="1e-3,1e-2",
                         help="comma-separated bit-flip rates")
    p_chaos.add_argument("--impl", choices=["ftimm", "tgemm", "both"],
                         default="both")
    p_chaos.add_argument("--no-core-failures", action="store_true",
                         help="skip the mid-run core-loss scenarios")
    p_chaos.add_argument("--no-timed-probe", action="store_true",
                         help="skip the DES run with DMA failures")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_serve = sub.add_parser(
        "serve",
        help="online serving: offered-load sweep over a request mix",
    )
    from .serve import MIXES, POLICIES

    p_serve.add_argument("--mix", choices=sorted(MIXES), default="overload")
    p_serve.add_argument("--policy", choices=list(POLICIES),
                         default="least_loaded")
    p_serve.add_argument("--loads", default="30000,60000,120000,240000",
                         help="comma-separated offered loads (requests/s)")
    p_serve.add_argument("--n", type=int, default=150,
                         help="requests per sweep point (default 150)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--arrivals", choices=["poisson", "bursty"],
                         default="poisson")
    p_serve.add_argument("--max-batch", type=int, default=4,
                         help="max requests coalesced per batch (default 4)")
    p_serve.add_argument("--max-wait", type=float, default=5e-4,
                         help="max bucket wait in seconds (default 5e-4)")
    p_serve.add_argument("--queue-cap", type=int, default=64,
                         help="admission queue bound (default 64)")
    p_serve.add_argument("--no-digest", action="store_true",
                         help="bucket B by object identity, not content")
    p_serve.add_argument("--no-warmup", action="store_true",
                         help="skip plan/kernel warmup (pay cold tunes)")
    p_serve.add_argument("--warm-tune", choices=["rule", "search"],
                         default="rule",
                         help="warmup tuner: rule-based (default) or the "
                              "pruned plan search with cross-shape "
                              "transfer")
    p_serve.add_argument("--no-stack-hints", action="store_true",
                         help="warm each bucket at its first request's M "
                              "instead of the expected stacked M")
    p_serve.add_argument("--observed-hints", action="store_true",
                         help="seed warmup from the stack heights a "
                              "previous run persisted beside the plan DB "
                              "(and persist this run's for the next)")
    p_serve.add_argument("--gateway", action="store_true",
                         help="drive the highest offered load through the "
                              "live asyncio gateway instead of the sweep "
                              "and audit bit-identity against the "
                              "pre-drawn replay (non-zero exit on "
                              "violation)")
    p_serve.add_argument("--cold-tune", default="5e-4", metavar="S",
                         help="un-warmed bucket penalty in seconds, or "
                              "'auto' to re-cost from measured warmup "
                              "tune walls (default 5e-4; 'auto' is "
                              "machine-dependent)")
    p_serve.add_argument("--compare-naive", action="store_true",
                         help="also sweep the one-call-per-request baseline")
    p_serve.add_argument("--degrade", action="store_true",
                         help="enable graceful degradation: priority "
                              "classes, burn-driven proactive shedding "
                              "and cluster quarantine")
    p_serve.add_argument("--chaos", action="store_true",
                         help="run the serve-level chaos harness instead "
                              "of the sweep: one sick cluster under "
                              "bit-flips at the highest offered load, "
                              "end-to-end contract audited (implies "
                              "--degrade; non-zero exit on violation)")
    p_serve.add_argument("--replicate-b",
                         choices=["off", "static", "adaptive"],
                         default="off",
                         help="replicated-B placement: promote hot "
                              "shared-B buckets to multi-cluster replica "
                              "sets and route batches to replica holders "
                              "(default off; off is bit-identical to the "
                              "pre-placement engine)")
    p_serve.add_argument("--replica-budget", type=int, default=8 << 20,
                         metavar="BYTES",
                         help="per-cluster replica memory budget in bytes "
                              "(default 8 MiB; cold replicas are "
                              "LRU-demoted to stay under it)")
    p_serve.add_argument("--max-replicas", type=int, default=4,
                         help="clusters each hot B is replicated across "
                              "(default 4, capped at the pool size)")
    p_serve.add_argument("--promote-after", type=int, default=2,
                         metavar="N",
                         help="batches a bucket must attract before "
                              "adaptive promotion fires (default 2)")
    p_serve.add_argument("--trace-sample", type=float, default=1.0,
                         metavar="RATE",
                         help="deterministic per-request trace sampling "
                              "rate in [0, 1]; sheds, failures and SLO "
                              "misses are always kept (default 1.0)")
    p_serve.add_argument("--latency-table", action="store_true",
                         help="print the per-request latency table at the "
                              "highest offered load")
    p_serve.add_argument("--runlog", metavar="OUT.jsonl",
                         default="runs.jsonl")
    p_serve.add_argument("--trace", metavar="OUT.json", default=None,
                         help="re-run the highest-load point under the "
                              "request tracer and write a Chrome trace")
    p_serve.set_defaults(fn=_cmd_serve)

    p_trace = sub.add_parser(
        "trace",
        help="analyze a serve run: critical path + SLO from a run-log, "
             "or validate and analyze an exported Chrome trace; give two "
             "inputs to diff their tail decompositions",
    )
    p_trace.add_argument("path_a", metavar="runs.jsonl|trace.json",
                         help=".jsonl run-log or .json Chrome trace")
    p_trace.add_argument("path_b", metavar="B", nargs="?", default=None,
                         help="second run to diff against (same formats); "
                              "prints per-segment p50/p99 tail deltas")
    p_trace.add_argument("--compare", action="store_true",
                         help="explicit alias for the two-input diff mode "
                              "(errors without a second input)")
    p_trace.add_argument("--quantile", type=float, default=0.99,
                         help="tail quantile to attribute (default 0.99)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument(
        "name",
        choices=[
            "fig3", "fig4", "fig5", "fig6", "fig7", "tables",
            "fp64", "multicluster", "autotune", "workloads", "sensitivity",
            "hetero", "bandwidth", "all",
        ],
    )
    p_exp.set_defaults(fn=_cmd_experiment)

    p_machine = sub.add_parser("machine", help="show the machine model")
    p_machine.set_defaults(fn=_cmd_machine)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
