"""The model-assumption sensitivity experiment."""

from repro.experiments import ext_sensitivity


class TestSensitivity:
    def test_all_claims_hold(self):
        results = ext_sensitivity.run()
        for result in results:
            for claim in result.claims:
                assert claim.holds, f"{claim.name}: {claim.measured}"

    def test_sweeps_cover_every_assumption(self):
        names = {name for name, _values in ext_sensitivity.SWEEPS}
        assert names == {
            "t_fma", "t_vldw", "t_bcast", "ddr_efficiency",
            "row_overhead_bytes", "startup_cycles", "channel_bandwidth",
            "gsm_bandwidth", "barrier_cycles",
        }

    def test_perturbation_actually_changes_results(self):
        """Guard against a sweep that silently ignores the knob."""
        base = ext_sensitivity._headlines(
            ext_sensitivity._perturbed("ddr_efficiency", 0.72)
        )
        slow = ext_sensitivity._headlines(
            ext_sensitivity._perturbed("ddr_efficiency", 0.5)
        )
        assert base != slow
