"""Process-pool helpers and parallel-vs-serial result identity.

The contract of :mod:`repro.parallel` is that parallelism is *invisible*
in the results: ``parallel_map`` returns in input order, and the callers
(autotune, tune_many, run_all) are result-identical for every job count.
"""

import pytest

from repro.core.autotune import autotune
from repro.core.shapes import GemmShape
from repro.core.tuner import tune, tune_many
from repro.hw.config import default_machine
from repro.parallel import default_jobs, parallel_map, resolve_jobs


def _square(x: int) -> int:
    return x * x


def _neg(x: int) -> int:
    return -x


class TestJobsResolution:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_invalid_falls_through(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "zero")
        assert default_jobs() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_env_unset_uses_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)

    def test_resolve_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4
        assert resolve_jobs(None, n_items=2) == 2
        assert resolve_jobs(0) == 1
        assert resolve_jobs(8, n_items=0) == 1
        assert resolve_jobs(2, n_items=100) == 2


class TestParallelMap:
    def test_results_in_input_order(self):
        items = list(range(20, -1, -1))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_serial_path_identical(self):
        items = [3, 1, 4, 1, 5]
        assert parallel_map(_neg, items, jobs=1) == parallel_map(
            _neg, items, jobs=3
        )

    def test_single_item_runs_serially(self):
        assert parallel_map(_square, [7], jobs=8) == [49]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_accepts_generators(self):
        assert parallel_map(_square, (x for x in (2, 3)), jobs=2) == [4, 9]


class TestAutotuneIdentity:
    @pytest.fixture(scope="class")
    def cluster(self):
        return default_machine().cluster

    def test_parallel_equals_serial(self, cluster):
        shape = GemmShape(512, 32, 512)
        serial = autotune(shape, cluster, validate_top=1, jobs=1)
        fanned = autotune(shape, cluster, validate_top=1, jobs=2)
        assert fanned.best == serial.best
        assert fanned.rule == serial.rule
        assert fanned.n_candidates == serial.n_candidates

    def test_tune_many_equals_tune(self, cluster):
        shapes = [
            GemmShape(512, 32, 512),
            GemmShape(64, 8, 4096),
            GemmShape(2048, 96, 256),
        ]
        fanned = tune_many(shapes, cluster, jobs=2)
        serial = [tune(s, cluster) for s in shapes]
        assert [d.strategy for d in fanned] == [d.strategy for d in serial]
        assert [d.plan for d in fanned] == [d.plan for d in serial]
