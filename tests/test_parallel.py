"""Process-pool helpers and parallel-vs-serial result identity.

The contract of :mod:`repro.parallel` is that parallelism is *invisible*
in the results: ``parallel_map`` returns in input order, and the callers
(autotune, tune_many, run_all) are result-identical for every job count.
"""

import pytest

from repro.core.autotune import autotune
from repro.core.shapes import GemmShape
from repro.core.tuner import tune, tune_many
from repro.hw.config import default_machine
from repro.obs import collecting
from repro.parallel import (
    POOL_MIN_UNITS,
    WorkerPool,
    active_pool,
    default_jobs,
    parallel_map,
    resolve_jobs,
    worker_pool,
)


def _square(x: int) -> int:
    return x * x


def _neg(x: int) -> int:
    return -x


def _raise(x: int) -> int:
    raise ValueError(x)


class TestJobsResolution:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_invalid_falls_through(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "zero")
        assert default_jobs() == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "-2")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_env_unset_uses_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == (os.cpu_count() or 1)

    def test_resolve_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4
        assert resolve_jobs(None, n_items=2) == 2
        assert resolve_jobs(0) == 1
        assert resolve_jobs(8, n_items=0) == 1
        assert resolve_jobs(2, n_items=100) == 2


class TestParallelMap:
    def test_results_in_input_order(self):
        items = list(range(20, -1, -1))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]

    def test_serial_path_identical(self):
        items = [3, 1, 4, 1, 5]
        assert parallel_map(_neg, items, jobs=1) == parallel_map(
            _neg, items, jobs=3
        )

    def test_single_item_runs_serially(self):
        assert parallel_map(_square, [7], jobs=8) == [49]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_accepts_generators(self):
        assert parallel_map(_square, (x for x in (2, 3)), jobs=2) == [4, 9]

    def test_min_units_stays_serial(self):
        """Below the amortization floor, jobs>1 must not spawn a pool."""
        items = list(range(8))
        with collecting() as reg:
            out = parallel_map(
                _square, items, jobs=4, min_units=POOL_MIN_UNITS
            )
        assert out == [x * x for x in items]
        snap = reg.snapshot()
        assert snap["parallel/amortized_serial"]["value"] == 1
        assert "parallel/pool_reuses" not in snap

    def test_min_units_overridden_by_active_pool(self):
        """A warm ambient pool is free: small batches may ride it."""
        items = list(range(8))
        with collecting() as reg, worker_pool(2):
            out = parallel_map(
                _square, items, jobs=2, min_units=POOL_MIN_UNITS
            )
        assert out == [x * x for x in items]
        assert reg.snapshot()["parallel/pool_reuses"]["value"] == 1


class TestWorkerPool:
    def test_result_identity_for_every_job_count(self):
        items = list(range(40, -1, -1))
        expect = [x * x for x in items]
        for jobs in (1, 2, 3):
            with WorkerPool(jobs) as pool:
                assert list(pool.map(_square, items)) == expect

    def test_pool_reused_across_maps(self):
        with collecting() as reg, worker_pool(2) as pool:
            assert active_pool() is pool
            for _ in range(3):
                parallel_map(_square, [1, 2, 3], jobs=2)
        assert active_pool() is None
        assert reg.snapshot()["parallel/pool_reuses"]["value"] == 3

    def test_nested_pools_restore_outer(self):
        with worker_pool(2) as outer:
            with worker_pool(2) as inner:
                assert active_pool() is inner
            assert active_pool() is outer
        assert active_pool() is None

    def test_exceptions_propagate(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError):
                list(pool.map(_raise, [1]))


class TestAutotuneIdentity:
    @pytest.fixture(scope="class")
    def cluster(self):
        return default_machine().cluster

    def test_parallel_equals_serial(self, cluster):
        shape = GemmShape(512, 32, 512)
        serial = autotune(shape, cluster, validate_top=1, jobs=1,
                          plan_db=False)
        fanned = autotune(shape, cluster, validate_top=1, jobs=2,
                          plan_db=False)
        assert fanned.best == serial.best
        assert fanned.rule == serial.rule
        assert fanned.n_candidates == serial.n_candidates

    def test_parallel_identity_inside_warm_pool(self, cluster):
        """A warm ambient pool changes the wave schedule, not the result."""
        shape = GemmShape(512, 32, 512)
        serial = autotune(shape, cluster, validate_top=1, jobs=1,
                          plan_db=False)
        with worker_pool(2):
            pooled = autotune(shape, cluster, validate_top=1, jobs=2,
                              plan_db=False)
        assert pooled.best == serial.best
        assert pooled.stats.pooled

    def test_tune_many_equals_tune(self, cluster):
        shapes = [
            GemmShape(512, 32, 512),
            GemmShape(64, 8, 4096),
            GemmShape(2048, 96, 256),
        ]
        fanned = tune_many(shapes, cluster, jobs=2)
        serial = [tune(s, cluster) for s in shapes]
        assert [d.strategy for d in fanned] == [d.strategy for d in serial]
        assert [d.plan for d in fanned] == [d.plan for d in serial]
