"""Property-style serve invariants across seeds × policies × modes.

Hypothesis-style coverage without the dependency: a seeded parametrized
matrix (3 seeds × all 3 policies × replication off/static/adaptive ×
fault plan on/off) drives randomized request streams through the serve
engine and asserts the invariants every run must satisfy, whatever the
draw:

* **conservation** — offered == completed + shed + failed, every shed
  carries a typed reason, every failure a typed error;
* **latency decomposition** — queue + batch-wait + compute == end-to-end
  latency (within float rounding) for every completed request;
* **batch decomposition** — tune + stage + gemm + lost == finish − start
  for every dispatched batch;
* **cluster monotonicity** — per-cluster batch intervals never overlap
  and never run backwards (the ``busy_until_s`` monotone contract);
* **replica budget** — per-cluster replica residency never exceeds the
  configured budget, and placement accounting matches the batch records.

Plus the ``cold_tune_s`` regression: explicit (constant) values keep
replays bit-identical across runs — the contract
``WarmupReport.measured_tune_s`` documents as the thing ``None`` trades
away.
"""

import math
from dataclasses import replace as dc_replace

import pytest

from repro.faults import FaultPlan
from repro.serve import ServeConfig, make_requests, serve
from repro.serve.request import COMPLETED, FAILED, SHED

from test_serve import fast_requests

SEEDS = [0, 1, 2]
POLICIES = ["fifo", "least_loaded", "edf"]
REPLICATE = ["off", "static", "adaptive"]

#: typed shed reasons the admission path may emit
SHED_REASONS = {"queue_full", "class_shed", "burn_shed", "shutdown"}


def _config(policy, replicate, faulty, seed):
    kw = dict(
        policy=policy,
        queue_cap=8,
        replicate_b=replicate,
        promote_after=2,
    )
    if faulty:
        kw.update(
            faults=FaultPlan(seed=seed, bitflip_rate=0.3,
                             max_kernel_retries=0),
            max_redispatch=1,
        )
    return ServeConfig(**kw)


def _check_conservation(report, n_offered):
    assert len(report.records) == n_offered
    assert report.completed + report.shed + report.failed == n_offered
    for rec in report.records:
        assert rec.status in (COMPLETED, SHED, FAILED)
        if rec.status == SHED:
            assert rec.shed_reason in SHED_REASONS
            assert rec.error is not None
        if rec.status == FAILED:
            assert rec.error is not None


def _check_latency_decomposition(report):
    for rec in report.records:
        if rec.status != COMPLETED:
            continue
        assert rec.latency_s is not None
        total = rec.queue_s + rec.batch_s + rec.compute_s
        assert math.isclose(
            rec.latency_s, total, rel_tol=1e-9, abs_tol=1e-12
        ), f"req {rec.req_id}: {rec.latency_s} != {total}"
        assert rec.queue_s >= 0
        assert rec.batch_s >= -1e-12
        assert rec.compute_s > 0


def _check_batch_decomposition(report):
    for b in report.batches:
        span = b.tune_s + b.stage_s + b.gemm_s + b.lost_s
        assert math.isclose(
            b.finish_s - b.start_s, span, rel_tol=1e-9, abs_tol=1e-12
        ), f"batch {b.batch_id}: {b.finish_s - b.start_s} != {span}"
        assert b.start_s >= b.close_s - 1e-12


def _check_cluster_monotone(report):
    """Per-cluster intervals are ordered and non-overlapping.

    ``ClusterBackend.charge``/``occupy`` refuse to run backwards, so a
    cluster's dispatched batches — sorted by start — must tile forward in
    time.  Replica staging may insert gaps (it occupies the timeline
    without a batch record) but can never cause an overlap.
    """
    per = {}
    for b in report.batches:
        per.setdefault(b.cluster, []).append(b)
    for cluster, batches in per.items():
        batches.sort(key=lambda b: (b.start_s, b.batch_id))
        prev_finish = 0.0
        for b in batches:
            assert b.start_s >= prev_finish - 1e-12, (
                f"cluster {cluster}: batch {b.batch_id} starts at "
                f"{b.start_s} before previous finish {prev_finish}"
            )
            assert b.finish_s >= b.start_s
            prev_finish = b.finish_s


def _check_replica_budget(report):
    placement = report.placement
    if report.config.replicate_b == "off":
        assert placement is None
        assert not any(b.b_resident for b in report.batches)
        return
    assert placement is not None
    assert placement.mode == report.config.replicate_b
    for peak in placement.peak_bytes:
        assert peak <= placement.budget_bytes
    # placement accounting matches the batch records bit for bit
    assert placement.hits == sum(1 for b in report.batches if b.b_resident)
    assert placement.promotions >= placement.replica_sets


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("replicate", REPLICATE)
@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faults"])
def test_serve_invariants(seed, policy, replicate, faulty):
    requests = fast_requests(n=24, rate=150_000, seed=seed)
    report = serve(requests, _config(policy, replicate, faulty, seed))
    _check_conservation(report, len(requests))
    _check_latency_decomposition(report)
    _check_batch_decomposition(report)
    _check_cluster_monotone(report)
    _check_replica_budget(report)


@pytest.mark.parametrize("policy", POLICIES)
def test_invariants_on_overload_mix(policy):
    """One richer draw per policy: the transformer overload mix."""
    requests = make_requests(
        "overload", rate_rps=240_000, n_requests=40, seed=3
    )
    report = serve(requests, ServeConfig(
        policy=policy, queue_cap=16, replicate_b="adaptive",
    ))
    _check_conservation(report, len(requests))
    _check_latency_decomposition(report)
    _check_batch_decomposition(report)
    _check_cluster_monotone(report)
    _check_replica_budget(report)


def test_sheds_happen_and_are_typed():
    """The conservation clause about sheds must not be vacuous."""
    requests = fast_requests(n=24, rate=500_000, seed=0)
    report = serve(requests, ServeConfig(
        policy="least_loaded", queue_cap=2, replicate_b="adaptive",
    ))
    assert report.shed > 0
    for rec in report.records:
        if rec.status == SHED:
            assert rec.shed_reason == "queue_full"
            assert rec.error is not None


def test_budget_pressure_demotes_lru_and_stays_under_budget():
    """A budget below two replicas forces LRU demotion, never overflow."""
    # FAST_MIX B sizes: tiny 16x16 f32 = 1 KiB, wide 64x48 f32 = 12 KiB
    requests = fast_requests(n=48, rate=150_000, seed=1)
    report = serve(requests, ServeConfig(
        policy="least_loaded", queue_cap=64,
        replicate_b="static", replica_budget_bytes=13 << 10,
        max_replicas=4, promote_after=1,
    ))
    placement = report.placement
    assert placement.demotions > 0
    for peak in placement.peak_bytes:
        assert peak <= 13 << 10
    _check_cluster_monotone(report)


def test_oversized_b_is_never_promoted():
    """A digest whose B exceeds the per-cluster budget stays pinned."""
    requests = fast_requests(n=24, rate=150_000, seed=0)
    report = serve(requests, ServeConfig(
        policy="least_loaded",
        replicate_b="static", replica_budget_bytes=2 << 10,
    ))
    placement = report.placement
    # only the 1 KiB tiny bucket fits the 2 KiB budget
    for e in placement.events:
        assert "x16x16/" in e.label
    for peak in placement.peak_bytes:
        assert peak <= 2 << 10


class TestColdTuneReplayContract:
    """Explicit ``cold_tune_s`` keeps replays bit-identical.

    ``cold_tune_s=None`` charges the *measured* warmup tune wall — a
    ``time.perf_counter`` quantity that varies run to run and machine to
    machine, which ``WarmupReport.measured_tune_s`` documents as trading
    away the deterministic-replay contract.  This is the regression
    test for the other side of that trade: any explicit constant must
    replay bit for bit, cold tunes included.
    """

    def test_explicit_cold_tune_bit_identical_across_runs(self):
        config = ServeConfig(
            policy="least_loaded", warmup=False, cold_tune_s=5e-4,
        )
        first = serve(fast_requests(n=24, seed=2), config)
        second = serve(fast_requests(n=24, seed=2), config)
        assert first.records == second.records
        assert first.batches == second.batches
        # the cold penalty actually landed (warmup was off)
        assert any(b.tune_s == 5e-4 for b in first.batches)

    def test_explicit_cold_tune_bit_identical_with_replication(self):
        config = ServeConfig(
            policy="edf", warmup=False, cold_tune_s=5e-4,
            replicate_b="adaptive",
        )
        first = serve(fast_requests(n=24, seed=2), config)
        second = serve(fast_requests(n=24, seed=2), config)
        assert first.records == second.records
        assert first.batches == second.batches

    def test_measured_tune_walls_are_flagged_machine_dependent(self):
        # the docstring is the documentation fix; hold it to naming the
        # machine-dependence so a rewrite cannot silently drop the caveat
        from repro.serve import WarmupReport

        doc = WarmupReport.measured_tune_s.fget.__doc__
        assert "Machine-dependent" in doc
        assert "cold_tune_s" in doc
