"""TGEMM-specific behaviour of the analytic model and its drivers.

The baseline's pathologies are load-bearing for every speedup claim in the
paper, so they get their own scrutiny: implicit-padding compute waste,
one-strip multi-core degeneration, A-panel staging through GSM.
"""

import pytest

from repro.core.blocking import TgemmPlan
from repro.core.ftimm import tgemm_gemm
from repro.core.plans import OpKind
from repro.core.shapes import GemmShape
from repro.core.tgemm import build_tgemm
from repro.executor.analytic import analytic_tgemm
from repro.executor.timed import run_timed
from repro.hw.memory import MemKind


class TestPaddingCost:
    def test_time_barely_depends_on_n_below_96(self, cluster, registry):
        """The padded kernel computes 96-wide regardless; only the B/C DMA
        volume shrinks with N, so time moves a little, not 3x."""
        plan = TgemmPlan()
        t32 = analytic_tgemm(GemmShape(4096, 32, 2048), cluster, plan, registry)
        t96 = analytic_tgemm(GemmShape(4096, 96, 2048), cluster, plan, registry)
        assert t96.seconds < 1.35 * t32.seconds

    def test_useful_gflops_scale_with_n(self, cluster, registry):
        plan = TgemmPlan()
        g32 = analytic_tgemm(GemmShape(4096, 32, 2048), cluster, plan, registry).gflops
        g96 = analytic_tgemm(GemmShape(4096, 96, 2048), cluster, plan, registry).gflops
        assert g96 / g32 == pytest.approx(3.0, rel=0.3)


class TestMultiCoreDegeneration:
    def test_wide_n_scales_but_narrow_does_not(self):
        """N = 4 strips engages 4 cores; N <= 96 engages 1."""
        narrow_1 = tgemm_gemm(4096, 96, 2048, cores=1, timing="analytic")
        narrow_8 = tgemm_gemm(4096, 96, 2048, cores=8, timing="analytic")
        wide_1 = tgemm_gemm(4096, 96 * 4, 2048, cores=1, timing="analytic")
        wide_8 = tgemm_gemm(4096, 96 * 4, 2048, cores=8, timing="analytic")
        narrow_scaling = narrow_1.seconds / narrow_8.seconds
        wide_scaling = wide_1.seconds / wide_8.seconds
        assert wide_scaling > 2.0
        assert narrow_scaling < wide_scaling

    def test_single_strip_multi_core_near_single_core(self):
        one = tgemm_gemm(4096, 32, 2048, cores=1, timing="analytic")
        eight = tgemm_gemm(4096, 32, 2048, cores=8, timing="analytic")
        # cooperative A_g fill gives a small multi-core edge, nothing more
        assert eight.seconds > 0.6 * one.seconds


class TestAgStaging:
    def test_a_panel_goes_through_gsm(self, cluster, registry):
        ex = build_tgemm(GemmShape(1024, 32, 1024), cluster, registry=registry)
        routes = set()
        for ops in ex.core_ops:
            for op in ops:
                if op.kind is OpKind.DMA and op.desc is not None:
                    routes.add((op.desc.src, op.desc.dst))
        assert (MemKind.DDR, MemKind.GSM) in routes   # A -> A_g
        assert (MemKind.GSM, MemKind.SM) in routes    # A_g -> A_s

    def test_cooperative_fill_uses_every_engine(self, cluster, registry):
        ex = build_tgemm(GemmShape(1024, 32, 1024), cluster, registry=registry)
        fillers = [
            any(
                op.kind is OpKind.DMA
                and op.desc is not None
                and op.desc.dst is MemKind.GSM
                for op in ops
            )
            for ops in ex.core_ops
        ]
        assert all(fillers)

    def test_c_reloaded_per_k_panel(self, cluster, registry):
        """K > k_g: C is staged in and out once per K panel (the reuse
        limitation the paper attributes to bounded k_g)."""
        shape = GemmShape(512, 32, 2048)  # 4 K panels
        ex = build_tgemm(shape, cluster, registry=registry)
        c_loads = sum(
            1
            for ops in ex.core_ops
            for op in ops
            if op.kind is OpKind.DMA and op.tag == "C->C_a"
        )
        assert c_loads == 4

    def test_des_matches_analytic_for_wide_n(self, cluster, registry):
        shape = GemmShape(2048, 192, 1024)
        plan = TgemmPlan()
        des = run_timed(build_tgemm(shape, cluster, plan=plan, registry=registry))
        ana = analytic_tgemm(shape, cluster, plan, registry)
        assert ana.seconds == pytest.approx(des.seconds, rel=0.25)
