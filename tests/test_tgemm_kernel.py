"""TGEMM's fixed micro-kernel and its implicit-padding pathology."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels.tgemm_kernel import TGEMM_M_S, TGEMM_N_A, generate_tgemm_kernel


class TestPadding:
    def test_cycles_independent_of_n(self, registry):
        """The fixed kernel always computes the full 96-wide tile: narrow
        outputs cost exactly as much as wide ones (problem 1 of III-C)."""
        cycles = {n: registry.tgemm(6, n, 512).cycles for n in (96, 64, 32, 8)}
        assert len(set(cycles.values())) == 1

    def test_efficiency_scales_with_n_over_96(self, registry):
        base = registry.tgemm(6, 96, 512).efficiency
        for n in (64, 32, 16):
            eff = registry.tgemm(6, n, 512).efficiency
            assert eff == pytest.approx(base * n / 96, rel=1e-6)

    def test_compute_width_always_96(self, registry):
        for n in (96, 50, 8):
            assert registry.tgemm(6, n, 512).compute_n == TGEMM_N_A

    def test_ftimm_kernel_beats_tgemm_kernel_on_narrow_n(self, registry):
        """The whole point of kernel auto-generation (Section IV-A)."""
        for n in (8, 16, 32, 64):
            assert (
                registry.ftimm(6, n, 512).efficiency
                > registry.tgemm(6, n, 512).efficiency
            )

    def test_parity_at_full_width(self, registry):
        """At N = 96 and deep K both kernels are near peak."""
        ft = registry.ftimm(6, 96, 512).efficiency
        tg = registry.tgemm(6, 96, 512).efficiency
        assert tg > 0.9
        assert abs(ft - tg) < 0.08


class TestStructure:
    def test_fixed_shape_limits(self, core):
        with pytest.raises(KernelError):
            generate_tgemm_kernel(7, 96, 512, core)
        with pytest.raises(KernelError):
            generate_tgemm_kernel(6, 97, 512, core)
        with pytest.raises(KernelError):
            generate_tgemm_kernel(0, 96, 512, core)

    def test_single_accumulator_copy(self, registry):
        kern = registry.tgemm(6, 96, 512)
        assert all(b.k_u == 1 for b in kern.blocks)

    def test_name_tag(self, registry):
        assert registry.tgemm(6, 96, 512).name == "tgemm"

    def test_remainder_rows_supported(self, registry):
        for m in (1, 2, 5):
            kern = registry.tgemm(m, 96, 64)
            assert kern.blocks[0].m_u == m


class TestCorrectness:
    @pytest.mark.parametrize("m,n,k", [(6, 96, 16), (6, 40, 19), (5, 40, 19), (1, 8, 4), (6, 33, 12)])
    def test_interpreter_equals_numpy(self, registry, m, n, k):
        kern = registry.tgemm(m, n, k)
        rng = np.random.default_rng(1)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        c0 = rng.standard_normal((m, n)).astype(np.float32)
        c_np = c0.copy()
        kern.apply(a, b, c_np)
        c_isa = c0.copy()
        kern.apply_interpreted(a, b, c_isa)
        np.testing.assert_allclose(c_isa, c_np, rtol=1e-4, atol=1e-4)
