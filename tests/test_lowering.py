"""Lowering utilities: blocking iterators, operand checks, tile context."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lowering import (
    GemmOperands,
    LoweringContext,
    block_ranges,
    chunks_for_core,
)
from repro.core.shapes import GemmShape
from repro.errors import CapacityError, PlanError
from repro.hw.memory import MemKind


class TestBlockRanges:
    def test_exact_division(self):
        assert list(block_ranges(12, 4)) == [(0, 0, 4), (1, 4, 4), (2, 8, 4)]

    def test_remainder(self):
        assert list(block_ranges(10, 4)) == [(0, 0, 4), (1, 4, 4), (2, 8, 2)]

    def test_block_bigger_than_total(self):
        assert list(block_ranges(3, 10)) == [(0, 0, 3)]

    def test_zero_total(self):
        assert list(block_ranges(0, 4)) == []

    def test_invalid_block_rejected(self):
        with pytest.raises(PlanError):
            list(block_ranges(10, 0))

    @given(total=st.integers(0, 10_000), block=st.integers(1, 512))
    def test_property_partition(self, total, block):
        """Blocks tile [0, total) exactly, in order, without overlap."""
        ranges = list(block_ranges(total, block))
        assert sum(extent for _i, _s, extent in ranges) == total
        cursor = 0
        for idx, (i, start, extent) in enumerate(ranges):
            assert i == idx
            assert start == cursor
            assert 1 <= extent <= block
            cursor += extent


class TestChunksForCore:
    def test_round_robin(self):
        mine = list(chunks_for_core(40, 10, core=1, n_cores=2))
        assert [i for i, _s, _e in mine] == [1, 3]

    def test_all_cores_cover_everything(self):
        total, block, p = 105, 10, 4
        seen = []
        for core in range(p):
            seen.extend(chunks_for_core(total, block, core, p))
        assert sum(e for _i, _s, e in seen) == total


class TestGemmOperands:
    def test_valid(self):
        shape = GemmShape(4, 5, 6)
        a = np.zeros((4, 6), np.float32)
        b = np.zeros((6, 5), np.float32)
        c = np.zeros((4, 5), np.float32)
        ops = GemmOperands.check(shape, a, b, c)
        assert ops.a is a

    @pytest.mark.parametrize("bad", ["a", "b", "c"])
    def test_shape_mismatch_rejected(self, bad):
        shape = GemmShape(4, 5, 6)
        arrays = {
            "a": np.zeros((4, 6), np.float32),
            "b": np.zeros((6, 5), np.float32),
            "c": np.zeros((4, 5), np.float32),
        }
        arrays[bad] = np.zeros((3, 3), np.float32)
        with pytest.raises(PlanError):
            GemmOperands.check(shape, arrays["a"], arrays["b"], arrays["c"])

    def test_wrong_dtype_rejected(self):
        shape = GemmShape(2, 2, 2)
        f64 = np.zeros((2, 2), np.float64)
        f32 = np.zeros((2, 2), np.float32)
        with pytest.raises(PlanError):
            GemmOperands.check(shape, f64, f32, f32)


class TestLoweringContext:
    def make(self, cluster, shape=GemmShape(64, 32, 64), data=None):
        return LoweringContext(cluster, shape, data)

    def test_unbacked_by_default(self, cluster):
        ctx = self.make(cluster)
        assert not ctx.backed
        bufs = ctx.alloc(MemKind.AM, 0, 8, 8, "t")
        assert len(bufs) == 1
        assert bufs[0].data is None

    def test_backed_with_data(self, cluster):
        shape = GemmShape(4, 4, 4)
        z = np.zeros((4, 4), np.float32)
        data = GemmOperands.check(shape, z, z.copy(), z.copy())
        ctx = LoweringContext(cluster, shape, data)
        assert ctx.backed
        buf = ctx.alloc(MemKind.AM, 0, 8, 8, "t")[0]
        assert buf.data is not None

    def test_ping_pong_slots(self, cluster):
        ctx = self.make(cluster)
        bufs = ctx.alloc(MemKind.SM, 2, 4, 16, "A_s", slots=2)
        assert len(bufs) == 2
        assert bufs[0].offset != bufs[1].offset

    def test_capacity_enforced_per_core(self, cluster):
        ctx = self.make(cluster)
        with pytest.raises(CapacityError):
            ctx.alloc(MemKind.SM, 0, 1024, 1024, "too-big")

    def test_copy_closures_none_when_unbacked(self, cluster):
        ctx = self.make(cluster)
        buf = ctx.alloc(MemKind.AM, 0, 4, 4, "t")[0]
        assert ctx.copy_in(buf, np.zeros((2, 2), np.float32), 2, 2) is None
        assert ctx.copy_out(np.zeros((2, 2), np.float32), buf, 2, 2) is None

    def test_copy_closures_move_data(self, cluster):
        shape = GemmShape(4, 4, 4)
        z = np.zeros((4, 4), np.float32)
        data = GemmOperands.check(shape, z, z.copy(), z.copy())
        ctx = LoweringContext(cluster, shape, data)
        buf = ctx.alloc(MemKind.AM, 0, 4, 4, "t")[0]
        src = np.arange(4, dtype=np.float32).reshape(2, 2)
        ctx.copy_in(buf, src, 2, 2)()
        np.testing.assert_array_equal(buf.array()[:2, :2], src)
        dst = np.zeros((2, 2), np.float32)
        ctx.copy_out(dst, buf, 2, 2)()
        np.testing.assert_array_equal(dst, src)

    def test_split_rows_even(self, cluster):
        ctx = self.make(cluster)
        parts = ctx.split_rows(80)
        assert len(parts) == cluster.n_cores
        assert sum(e for _c, _s, e in parts) == 80
        extents = [e for _c, _s, e in parts]
        assert max(extents) - min(extents) <= 1

    def test_split_rows_fewer_than_cores(self, cluster):
        parts = self.make(cluster).split_rows(3)
        assert len(parts) == 3
        assert all(e == 1 for _c, _s, e in parts)

    def test_split_rows_contiguous(self, cluster):
        parts = self.make(cluster).split_rows(37)
        cursor = 0
        for _core, start, extent in parts:
            assert start == cursor
            cursor += extent
        assert cursor == 37
