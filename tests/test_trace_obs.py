"""Request tracing, critical-path attribution, and SLO monitoring.

The guarantees under test:

* tracing is observation-only — functional results, modeled times and
  every serve record are bit-identical with the tracer on or off;
* spans nest: every DES kernel span lands inside an epoch span, every
  serve segment child inside its batch span, parents exist and precede
  their children;
* the Chrome exporter emits schema-valid traces (and the validator
  actually rejects malformed ones), and the span sidecar round-trips
  losslessly through save/load;
* the critical-path analyzer covers >= 95% of every completed request's
  latency, and reconstructing it from the trace sidecar agrees with
  reconstructing it from the serve records;
* SLO burn-rate alerts are a pure function of the records: the overload
  mix at saturation fires, the light mix never does, and replaying the
  same records yields the same alerts;
* ``MetricsRegistry.merge`` folds worker snapshots in without losing
  counts, and ``parallel_map`` uses it so pool workers' metrics survive.
"""

import json

import numpy as np
import pytest

from repro.analysis import critical_path, from_spans
from repro.core.ftimm import _lower, ftimm_gemm
from repro.core.shapes import GemmShape
from repro.core.tuner import tune
from repro.errors import InputError, PlanError, ReproError
from repro.executor.timed import run_timed
from repro.hw.config import default_machine
from repro.kernels.registry import registry_for
from repro.obs import (
    MetricsRegistry,
    Tracer,
    collecting,
    current_tracer,
    load_spans,
    maybe_scope,
    read_records,
    set_tracer,
    tracing,
    validate_chrome_trace,
)
from repro.parallel import parallel_map
from repro.serve import (
    SLO_SCHEMA,
    BurnWindow,
    ServeConfig,
    SloPolicy,
    make_requests,
    monitor,
    serve,
)
from repro.workloads.generators import random_operands

OVERLOAD_RPS = 480_000.0
LIGHT_RPS = 30_000.0
N_REQUESTS = 100


def serve_run(mix="overload", rate=OVERLOAD_RPS, n=N_REQUESTS, seed=0):
    requests = make_requests(mix, rate_rps=rate, n_requests=n, seed=seed)
    return serve(requests, ServeConfig())


def timed_lowered(shape=GemmShape(512, 32, 256)):
    machine = default_machine()
    decision = tune(shape, machine.cluster)
    return _lower(
        shape, machine.cluster, decision, None,
        registry_for(machine.cluster.core),
    )


# ---------------------------------------------------------------- tracer


class TestTracer:
    def test_off_by_default(self):
        assert current_tracer() is None

    def test_ambient_install_and_teardown(self):
        with tracing() as tr:
            assert current_tracer() is tr
        assert current_tracer() is None

    def test_scope_nesting_sets_parents(self):
        with tracing() as tr:
            with tr.scope("outer"):
                with tr.scope("inner"):
                    pass
        outer = next(s for s in tr.spans if s.name == "outer")
        inner = next(s for s in tr.spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_record_with_explicit_times(self):
        tr = Tracer()
        sid = tr.record("a", start_s=1.0, end_s=2.5)
        (span,) = tr.spans
        assert span.span_id == sid
        assert span.duration_s == pytest.approx(1.5)
        assert span.wall_end >= span.wall_start

    def test_span_rejects_negative_duration(self):
        tr = Tracer()
        with pytest.raises(ReproError):
            tr.record("bad", start_s=2.0, end_s=1.0)

    def test_at_offset_shifts_sim_times(self):
        tr = Tracer()
        with tr.at_offset(10.0):
            tr.record("shifted", start_s=1.0, end_s=2.0)
        (span,) = tr.spans
        assert span.start_s == pytest.approx(11.0)
        assert span.end_s == pytest.approx(12.0)

    def test_maybe_scope_is_none_without_tracer(self):
        with maybe_scope("nothing") as scope:
            assert scope is None

    def test_sidecar_roundtrip(self, tmp_path):
        with tracing() as tr:
            with tr.scope("outer", args={"x": 1}):
                tr.instant("tick", at_s=0.5)
        path = tr.save(tmp_path / "t.json")
        loaded = load_spans(path)
        assert [s.to_dict() for s in loaded] == [s.to_dict() for s in tr.spans]


class TestDesNesting:
    """Spans from concurrent DES processes still nest consistently."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        with tracing() as tr:
            result = run_timed(timed_lowered())
        return tr, result

    def test_kernel_spans_inside_epochs(self, traced_run):
        tr, _result = traced_run
        epochs = sorted(
            (s for s in tr.spans if s.category == "epoch"),
            key=lambda s: s.start_s,
        )
        kernels = [s for s in tr.spans if s.category == "kernel"]
        assert epochs and kernels
        eps = 1e-12
        for k in kernels:
            assert any(
                e.start_s - eps <= k.start_s and k.end_s <= e.end_s + eps
                for e in epochs
            ), f"kernel span [{k.start_s}, {k.end_s}] outside every epoch"

    def test_concurrent_core_tracks_are_distinct(self, traced_run):
        tr, _result = traced_run
        tracks = {s.track for s in tr.spans if s.category == "kernel"}
        assert len(tracks) == default_machine().cluster.n_cores

    def test_parents_exist_and_contain_children(self, traced_run):
        tr, _result = traced_run
        by_id = {s.span_id: s for s in tr.spans}
        for s in tr.spans:
            if s.parent_id is None:
                continue
            parent = by_id[s.parent_id]
            assert parent.span_id != s.span_id

    def test_dma_spans_cover_transfers(self, traced_run):
        tr, result = traced_run
        dma = [s for s in tr.spans if s.category == "dma"]
        assert dma
        assert all(s.end_s <= result.seconds + 1e-9 for s in dma)


# ----------------------------------------------------------- chrome export


class TestChromeExport:
    @pytest.fixture(scope="class")
    def trace(self):
        with tracing() as tr:
            run_timed(timed_lowered())
        return tr.to_chrome()

    def test_validates(self, trace):
        validate_chrome_trace(trace)  # raises on schema violation

    def test_complete_events_carry_us_timestamps(self, trace):
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs
        for e in xs:
            assert e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)

    def test_metadata_names_processes_and_threads(self, trace):
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in metas}
        assert {"process_name", "thread_name"} <= names

    def test_validator_rejects_malformed(self):
        with pytest.raises(ReproError):
            validate_chrome_trace({"no_events": []})
        with pytest.raises(ReproError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x",
                                                   "pid": 0, "tid": 0,
                                                   "ts": 0.0}]})
        with pytest.raises(ReproError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x",
                                                    "pid": 0, "tid": 0,
                                                    "ts": 0.0, "dur": -1.0}]})

    def test_json_serializable(self, trace):
        json.dumps(trace)


# ------------------------------------------------------------ bit-identical


class TestObservationOnly:
    def test_ftimm_bit_identical_with_tracing(self):
        shape = GemmShape(384, 24, 640)
        a, b, c0 = random_operands(shape, seed=3)
        c_off, c_on = c0.copy(), c0.copy()
        r_off = ftimm_gemm(384, 24, 640, a=a, b=b, c=c_off, timing="des")
        with tracing():
            r_on = ftimm_gemm(384, 24, 640, a=a, b=b, c=c_on, timing="des")
        assert np.array_equal(c_off, c_on)
        assert r_off.seconds == r_on.seconds
        assert r_off.strategy == r_on.strategy

    def test_serve_bit_identical_with_tracing(self):
        rep_off = serve_run()
        with tracing() as tr:
            rep_on = serve_run()
        assert tr.spans  # the traced run actually traced
        assert rep_off.records == rep_on.records
        assert rep_off.batches == rep_on.batches


# ------------------------------------------------------------ critical path


class TestCriticalPath:
    @pytest.fixture(scope="class")
    def traced_serve(self):
        with tracing() as tr:
            report = serve_run()
        return tr, report

    def test_coverage_at_least_95_percent(self, traced_serve):
        _tr, report = traced_serve
        cp = critical_path(report.records, report.batches)
        assert cp.n_requests > 0
        assert cp.min_coverage >= 0.95

    def test_segments_sum_to_latency(self, traced_serve):
        _tr, report = traced_serve
        cp = critical_path(report.records, report.batches)
        for path in cp.paths:
            assert path.covered_s == pytest.approx(path.latency_s, rel=1e-6)

    def test_from_spans_agrees_with_records(self, traced_serve):
        tr, report = traced_serve
        a = critical_path(report.records, report.batches)
        b = from_spans(tr.spans)
        assert b.n_requests == a.n_requests
        assert b.tail_dominant == a.tail_dominant
        assert b.tail_latency_s() == pytest.approx(a.tail_latency_s(), rel=1e-6)
        b_segs = b.tail_segments()
        for seg, val in a.tail_segments().items():
            assert b_segs[seg] == pytest.approx(val, abs=1e-9)

    def test_dominant_segment_is_largest(self, traced_serve):
        _tr, report = traced_serve
        cp = critical_path(report.records, report.batches)
        segs = cp.tail_segments()
        assert segs[cp.tail_dominant] == max(segs.values())

    def test_render_mentions_dominant(self, traced_serve):
        _tr, report = traced_serve
        text = critical_path(report.records, report.batches).render()
        assert "dominant" in text

    def test_empty_records_give_empty_report(self):
        cp = critical_path([], [])
        assert cp.n_requests == 0
        assert cp.min_coverage == 1.0
        assert "0 completed requests" in cp.render()

    def test_from_spans_rejects_traceless(self):
        with pytest.raises(InputError):
            from_spans([])

    def test_bad_quantile_rejected(self, traced_serve):
        _tr, report = traced_serve
        with pytest.raises(InputError):
            critical_path(report.records, report.batches, quantile=1.5)


# -------------------------------------------------------------------- slo


class TestSlo:
    def test_overload_fires(self):
        report = serve_run("overload", OVERLOAD_RPS)
        slo = monitor(report.records)
        assert slo.alerts, "saturated overload mix must fire an alert"
        assert not slo.ok

    def test_light_mix_never_fires(self):
        report = serve_run("transformer", LIGHT_RPS)
        slo = monitor(report.records)
        assert slo.bad_events == 0
        assert slo.alerts == []
        assert slo.ok

    def test_deterministic_replay(self):
        records = serve_run("overload", OVERLOAD_RPS).records

        def stripped(report):
            # drop the wall-clock stamp; everything else must match exactly
            return [
                {k: v for k, v in a.to_record().items() if k != "ts"}
                for a in report.alerts
            ]

        first = monitor(records)
        second = monitor(records)
        assert stripped(first) == stripped(second)
        assert first.peak_burn == second.peak_burn

    def test_one_alert_per_window(self):
        report = serve_run("overload", OVERLOAD_RPS)
        slo = monitor(report.records)
        windows = [a.window for a in slo.alerts]
        assert len(windows) == len(set(windows))

    def test_min_events_guard(self):
        # a lone early failure in a tiny stream must not page
        report = serve_run("overload", OVERLOAD_RPS, n=4)
        slo = monitor(report.records, SloPolicy(min_events=8))
        assert slo.alerts == []

    def test_alert_records_append_and_read_back(self, tmp_path):
        report = serve_run("overload", OVERLOAD_RPS)
        slo = monitor(report.records)
        log = tmp_path / "runs.jsonl"
        n = slo.append_to_runlog(log)
        assert n == len(slo.alerts) > 0
        rows = read_records(log, SLO_SCHEMA)
        assert len(rows) == n
        assert all(r["kind"] == "slo_alert" for r in rows)
        # the perf-schema reader skips them by design
        assert read_records(log) == []

    def test_policy_validation(self):
        with pytest.raises(PlanError):
            SloPolicy(objective=1.5)
        with pytest.raises(PlanError):
            SloPolicy(windows=())
        with pytest.raises(PlanError):
            BurnWindow("w", window_s=-1.0, threshold=1.0)
        with pytest.raises(PlanError):
            monitor([])


# ---------------------------------------------------------- registry merge


def _worker_fn(x):
    from repro.obs import current

    reg = current()
    if reg is not None:
        reg.counter("worker/calls").inc()
        reg.distribution("worker/x").add(float(x))
    return x * 2


class TestRegistryMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(3)
        b.counter("c").inc(4)
        b.counter("only_b").inc()
        a.merge(b)
        assert a.snapshot()["c"]["value"] == 7
        assert a.snapshot()["only_b"]["value"] == 1

    def test_histograms_merge_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1e-3, 2e-3):
            a.histogram("h").add(v)
        for v in (4e-3, 8e-3, 16e-3):
            b.histogram("h").add(v)
        a.merge(b)
        snap = a.snapshot()["h"]
        assert snap["count"] == 5
        assert snap["max"] == pytest.approx(16e-3)
        assert snap["min"] == pytest.approx(1e-3)

    def test_distribution_and_timer_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.distribution("d").add(1.0)
        b.distribution("d").add(3.0)
        b.timer("t").add(0.5)
        a.merge(b)
        assert a.snapshot()["d"]["count"] == 2
        assert a.snapshot()["d"]["max"] == pytest.approx(3.0)
        assert a.snapshot()["t"]["count"] == 1

    def test_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(ReproError):
            a.merge(b)

    def test_merge_returns_self(self):
        a = MetricsRegistry()
        assert a.merge(MetricsRegistry()) is a

    def test_baseline_merge_never_double_counts(self):
        """Regression: re-merging a still-growing registry (the gateway
        teardown pattern) must apply only the delta since the snapshot
        already folded in."""
        main, live = MetricsRegistry(), MetricsRegistry()
        live.counter("c").inc(3)
        live.histogram("h").add(1e-3)
        live.histogram("h").add(2e-3)
        live.distribution("d").add(1.0)
        main.merge(live)                                # in-flight snapshot
        base = MetricsRegistry.from_snapshot(live.snapshot())
        live.counter("c").inc(2)
        live.histogram("h").add(4e-3)
        live.distribution("d").add(5.0)
        main.merge(live, baseline=base)                 # teardown fold
        snap = main.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["h"]["count"] == 3
        assert snap["h"]["total"] == pytest.approx(7e-3)
        ref = MetricsRegistry().merge(live).snapshot()["h"]
        assert snap["h"]["counts"] == ref["counts"]
        assert snap["d"]["count"] == 2
        assert snap["d"]["max"] == pytest.approx(5.0)

    def test_baseline_merge_kind_mismatch_raises(self):
        main, live, base = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry(),
        )
        live.counter("x").inc()
        base.gauge("x").set(1.0)
        with pytest.raises(ReproError):
            main.merge(live, baseline=base)

    def test_parallel_map_merges_worker_metrics(self):
        with collecting() as reg:
            out = parallel_map(_worker_fn, list(range(6)), jobs=2)
        assert out == [x * 2 for x in range(6)]
        snap = reg.snapshot()
        assert snap["worker/calls"]["value"] == 6
        assert snap["worker/x"]["count"] == 6

    def test_parallel_map_serial_still_records(self):
        with collecting() as reg:
            parallel_map(_worker_fn, [1, 2, 3], jobs=1)
        assert reg.snapshot()["worker/calls"]["value"] == 3
