"""Golden-number regression pins.

The headline metrics recorded in README/EXPERIMENTS came out of this
model; these pins catch accidental drift when any component changes.
Tolerances are deliberately loose enough to survive harmless refactors
but tight enough that a modeling change shows up here first.
"""

import pytest

from repro.baselines.cpu_openblas import openblas_sgemm
from repro.baselines.roofline import roofline
from repro.core.ftimm import ftimm_gemm, tgemm_gemm
from repro.core.shapes import GemmShape
from repro.hw.config import default_machine


GOLDEN_KERNEL_EFF = {
    # (m_s, n_a, k_a) -> percent of core peak (paper values nearby)
    (12, 96, 512): 96.4,
    (12, 64, 512): 95.2,
    (14, 32, 512): 64.5,
    (14, 96, 32): 77.2,
    (16, 64, 32): 68.0,
    (14, 32, 32): 43.5,
}

GOLDEN_GEMM_GFLOPS = {
    # (m, n, k, impl) -> analytic GFLOPS
    (65536, 32, 32, "ftimm"): 104.0,
    (65536, 32, 32, "tgemm"): 29.2,
    (32, 32, 65536, "ftimm"): 195.0,
    (20480, 32, 20480, "ftimm"): 465.0,
    (20480, 32, 20480, "tgemm"): 93.0,
}


class TestKernelGolden:
    @pytest.mark.parametrize("spec,expected", list(GOLDEN_KERNEL_EFF.items()))
    def test_kernel_efficiency_pin(self, registry, spec, expected):
        eff = 100.0 * registry.ftimm(*spec).efficiency
        assert eff == pytest.approx(expected, abs=3.0)


class TestGemmGolden:
    @pytest.mark.parametrize("key,expected", list(GOLDEN_GEMM_GFLOPS.items()))
    def test_gemm_gflops_pin(self, key, expected):
        m, n, k, impl = key
        fn = ftimm_gemm if impl == "ftimm" else tgemm_gemm
        gflops = fn(m, n, k, timing="analytic").gflops
        assert gflops == pytest.approx(expected, rel=0.15)


class TestHeadlineRelations:
    def test_fig5_speedup_band(self):
        ft = ftimm_gemm(20480, 32, 20480, timing="analytic")
        tg = tgemm_gemm(20480, 32, 20480, timing="analytic")
        assert 3.5 <= ft.gflops / tg.gflops <= 6.5  # paper: up to 7.2x

    def test_roofline_fraction_band(self):
        machine = default_machine()
        shape = GemmShape(20480, 32, 20480)
        ft = ftimm_gemm(*((shape.m, shape.n, shape.k)), timing="analytic")
        frac = ft.gflops / roofline(shape, machine.cluster).max_gflops
        assert 0.5 <= frac <= 0.75  # paper: <= 67%

    def test_fig7_efficiency_ratio_band(self):
        machine = default_machine()
        shape = GemmShape(32, 32, 65536)
        ft = ftimm_gemm(shape.m, shape.n, shape.k, timing="analytic")
        cpu = openblas_sgemm(shape, machine.cpu)
        ratio = ft.efficiency / cpu.efficiency
        assert 2.0 <= ratio <= 4.5  # paper: up to 3.1x

    def test_single_core_fig4_band(self):
        ft = ftimm_gemm(20480, 32, 20480, cores=1, timing="analytic")
        tg = tgemm_gemm(20480, 32, 20480, cores=1, timing="analytic")
        assert 1.4 <= ft.gflops / tg.gflops <= 2.6  # paper: 2.0x
