"""Metrics and experiment-result rendering."""

import pytest

from repro.analysis.metrics import efficiency, gflops, percent, speedup
from repro.analysis.tables import Claim, ExperimentResult, Series, format_table
from repro.core.shapes import GemmShape


class TestMetrics:
    def test_gflops(self):
        assert gflops(GemmShape(1000, 1000, 1000), 1.0) == pytest.approx(2.0)

    def test_gflops_rejects_zero_time(self):
        with pytest.raises(ValueError):
            gflops(GemmShape(1, 1, 1), 0.0)

    def test_efficiency(self):
        # both arguments in FLOP/s (the unit asymmetry fix)
        assert efficiency(100e9, 200e9) == pytest.approx(0.5)

    def test_efficiency_unit_symmetry(self):
        # scaling both arguments by the same factor changes nothing
        assert efficiency(1e9, 4e9) == pytest.approx(efficiency(1.0, 4.0))

    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)

    def test_percent(self):
        assert percent(0.982) == "98.2%"


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1.0])

    def test_peak(self):
        assert Series("s", [1, 2, 3], [1.0, 5.0, 2.0]).peak == 5.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [100, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[1234.5678], [0.004]])
        assert "1.23e+03" in text
        assert "0.004" in text


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            exp_id="figX",
            title="demo",
            x_label="N",
            y_label="GFLOPS",
            series=[
                Series("ftIMM", [8, 16], [10.0, 20.0]),
                Series("TGEMM", [8, 16], [5.0, 6.0]),
            ],
            claims=[Claim("wins", "yes", "2.0x", True)],
            notes=["a note"],
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "figX" in text and "ftIMM" in text and "wins" in text
        assert "note: a note" in text

    def test_markdown_tables(self):
        md = self.make().to_markdown()
        assert md.startswith("### figX")
        assert "| N | ftIMM | TGEMM |" in md
        assert "| wins | yes | 2.0x | yes |" in md

    def test_failed_claim_flagged(self):
        result = self.make()
        result.claims.append(Claim("fails", "x", "y", False))
        assert "**no**" in result.to_markdown()
        assert "NO" in result.render()

    def test_series_by_label(self):
        result = self.make()
        assert result.series_by_label("ftIMM").peak == 20.0
        with pytest.raises(KeyError):
            result.series_by_label("nope")
