"""Memory spaces: allocation, capacity enforcement, free-list invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, CapacityError
from repro.hw.memory import Buffer, MemKind, MemorySpace, make_core_spaces


def space(capacity=4096, alignment=64):
    return MemorySpace("test", MemKind.AM, capacity, alignment)


class TestAlloc:
    def test_simple_alloc(self):
        sp = space()
        buf = sp.alloc((8, 8), np.float32, label="t")
        assert buf.nbytes >= 8 * 8 * 4
        assert buf.offset == 0
        assert sp.used == buf.nbytes

    def test_alloc_backed_gives_zeroed_array(self):
        buf = space().alloc((4, 4), backed=True)
        assert buf.array().shape == (4, 4)
        assert np.all(buf.array() == 0)

    def test_alloc_unbacked_array_raises(self):
        buf = space().alloc((4, 4))
        with pytest.raises(AllocationError):
            buf.array()

    def test_alignment_rounding(self):
        sp = space(alignment=64)
        buf = sp.alloc((1, 1), np.float32)  # 4 bytes -> 64
        assert buf.nbytes == 64

    def test_offsets_do_not_overlap(self):
        sp = space()
        bufs = [sp.alloc((4, 4)) for _ in range(8)]
        spans = sorted((b.offset, b.end) for b in bufs)
        for (o1, e1), (o2, _e2) in zip(spans, spans[1:]):
            assert e1 <= o2

    def test_capacity_exceeded_raises(self):
        sp = space(capacity=256)
        with pytest.raises(CapacityError):
            sp.alloc((100, 100))

    def test_capacity_exact_fit_allowed(self):
        sp = space(capacity=256)
        buf = sp.alloc((8, 8), np.float32)  # exactly 256 B
        assert buf.nbytes == 256
        assert sp.free_bytes == 0

    def test_negative_extent_rejected(self):
        with pytest.raises(AllocationError):
            space().alloc((-1, 4))

    def test_dtype_respected(self):
        buf = space().alloc((4, 4), np.float64)
        assert buf.nbytes >= 4 * 4 * 8

    def test_peak_used_tracks_high_water(self):
        sp = space()
        a = sp.alloc((8, 8))
        b = sp.alloc((8, 8))
        peak = sp.used
        sp.free(a)
        sp.free(b)
        assert sp.peak_used == peak
        assert sp.used == 0


class TestFree:
    def test_free_returns_bytes(self):
        sp = space()
        buf = sp.alloc((8, 8))
        sp.free(buf)
        assert sp.used == 0
        assert sp.live_buffers == 0

    def test_double_free_raises(self):
        sp = space()
        buf = sp.alloc((8, 8))
        sp.free(buf)
        with pytest.raises(AllocationError):
            sp.free(buf)

    def test_free_foreign_buffer_raises(self):
        sp1, sp2 = space(), space()
        buf = sp1.alloc((4, 4))
        with pytest.raises(AllocationError):
            sp2.free(buf)

    def test_coalescing_allows_full_realloc(self):
        sp = space(capacity=1024)
        bufs = [sp.alloc((4, 16)) for _ in range(4)]  # 4 x 256
        for buf in bufs:
            sp.free(buf)
        big = sp.alloc((16, 16))  # 1024 B only fits if coalesced
        assert big.nbytes == 1024

    def test_reset_clears_everything(self):
        sp = space()
        sp.alloc((8, 8))
        sp.reset()
        assert sp.used == 0
        assert sp.alloc((8, 8)).offset == 0


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            MemorySpace("x", MemKind.AM, 0)

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(CapacityError):
            MemorySpace("x", MemKind.AM, 128, alignment=48)

    def test_kind_on_chip(self):
        assert MemKind.AM.on_chip and MemKind.GSM.on_chip and MemKind.SM.on_chip
        assert not MemKind.DDR.on_chip

    def test_make_core_spaces(self):
        spaces = make_core_spaces(3, 1024, 512)
        assert spaces[MemKind.AM].capacity == 1024
        assert spaces[MemKind.SM].capacity == 512
        assert spaces[MemKind.AM].name == "am3"


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(1, 40), st.integers(1, 40)),
            st.tuples(st.just("free"), st.integers(0, 30), st.integers(0, 0)),
        ),
        max_size=40,
    )
)
def test_allocator_invariants(ops):
    """Random alloc/free sequences never corrupt the free list.

    Invariants: live allocations are disjoint and in bounds; used bytes
    equal the sum of live buffer sizes; free + used == capacity.
    """
    sp = MemorySpace("prop", MemKind.AM, 64 * 1024)
    live: list[Buffer] = []
    for op, a, b in ops:
        if op == "alloc":
            try:
                live.append(sp.alloc((a, b), np.float32))
            except CapacityError:
                pass
        elif live:
            sp.free(live.pop(a % len(live)))
    spans = sorted((buf.offset, buf.end) for buf in live)
    for (o1, e1), (o2, _e2) in zip(spans, spans[1:]):
        assert e1 <= o2, "live buffers overlap"
    for o, e in spans:
        assert 0 <= o and e <= sp.capacity
    assert sp.used == sum(buf.nbytes for buf in live)
    assert sp.live_buffers == len(live)
