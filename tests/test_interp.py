"""The ISA interpreter: per-opcode semantics and error paths."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa.instructions import Affine, Instr, MemRef, Opcode, fma
from repro.isa.interp import LANES, MachineState, run_block
from repro.isa.program import LoopProgram


def state(**arrays):
    defaults = {
        "A": np.arange(8 * 8, dtype=np.float32).reshape(8, 8),
        "B": np.arange(8 * 64, dtype=np.float32).reshape(8, 64),
        "C": np.zeros((8, 64), dtype=np.float32),
    }
    defaults.update(arrays)
    return MachineState(defaults)


class TestScalarOps:
    def test_sldh_loads_one_element(self):
        st = state()
        st.execute(Instr(Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(1), Affine(2))))
        assert st.sregs["s0"] == np.float32(10.0)

    def test_sldw_loads_pair(self):
        st = state()
        st.execute(Instr(Opcode.SLDW, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(2))))
        np.testing.assert_array_equal(st.sregs["s0"], [2.0, 3.0])

    def test_sfext_low_of_pair(self):
        st = state()
        st.execute(Instr(Opcode.SLDW, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(4))))
        st.execute(Instr(Opcode.SFEXTS32L, dsts=("lo",), srcs=("s0",)))
        assert st.sregs["lo"] == np.float32(4.0)

    def test_sbale2h_high_of_pair(self):
        st = state()
        st.execute(Instr(Opcode.SLDW, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(4))))
        st.execute(Instr(Opcode.SBALE2H, dsts=("hi",), srcs=("s0",)))
        assert st.sregs["hi"] == np.float32(5.0)

    def test_sbale2h_on_scalar_raises(self):
        st = state()
        st.execute(Instr(Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(0))))
        with pytest.raises(IsaError):
            st.execute(Instr(Opcode.SBALE2H, dsts=("hi",), srcs=("s0",)))

    def test_sfext_passthrough_on_scalar(self):
        st = state()
        st.execute(Instr(Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(7))))
        st.execute(Instr(Opcode.SFEXTS32L, dsts=("lo",), srcs=("s0",)))
        assert st.sregs["lo"] == np.float32(7.0)


class TestBroadcast:
    def test_svbcast(self):
        st = state()
        st.execute(Instr(Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(3))))
        st.execute(Instr(Opcode.SFEXTS32L, dsts=("lo",), srcs=("s0",)))
        st.execute(Instr(Opcode.SVBCAST, dsts=("v0",), srcs=("lo",)))
        np.testing.assert_array_equal(st.vregs["v0"], np.full(LANES, 3.0))

    def test_svbcast2(self):
        st = state()
        st.execute(Instr(Opcode.SLDW, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(0))))
        st.execute(Instr(Opcode.SFEXTS32L, dsts=("lo",), srcs=("s0",)))
        st.execute(Instr(Opcode.SBALE2H, dsts=("hi",), srcs=("s0",)))
        st.execute(Instr(Opcode.SVBCAST2, dsts=("v0", "v1"), srcs=("lo", "hi")))
        np.testing.assert_array_equal(st.vregs["v0"], np.zeros(LANES))
        np.testing.assert_array_equal(st.vregs["v1"], np.ones(LANES))

    def test_broadcast_pair_register_raises(self):
        st = state()
        st.execute(Instr(Opcode.SLDW, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(0))))
        with pytest.raises(IsaError):
            st.execute(Instr(Opcode.SVBCAST, dsts=("v0",), srcs=("s0",)))


class TestVectorOps:
    def test_vldw(self):
        st = state()
        st.execute(Instr(Opcode.VLDW, dsts=("v0",), mem=MemRef("B", Affine(1), Affine(32))))
        np.testing.assert_array_equal(st.vregs["v0"], np.arange(96, 128))

    def test_vlddw_two_registers(self):
        st = state()
        st.execute(Instr(Opcode.VLDDW, dsts=("v0", "v1"), mem=MemRef("B", Affine(0), Affine(0))))
        np.testing.assert_array_equal(st.vregs["v0"], np.arange(0, 32))
        np.testing.assert_array_equal(st.vregs["v1"], np.arange(32, 64))

    def test_vstw_and_vstdw(self):
        st = state()
        st.execute(Instr(Opcode.VMOVI, dsts=("v0",), imm=2.5))
        st.execute(Instr(Opcode.VMOVI, dsts=("v1",), imm=1.5))
        st.execute(Instr(Opcode.VSTW, srcs=("v0",), mem=MemRef("C", Affine(0), Affine(0))))
        st.execute(Instr(Opcode.VSTDW, srcs=("v0", "v1"), mem=MemRef("C", Affine(1), Affine(0))))
        assert np.all(st.arrays["C"][0, :32] == 2.5)
        assert np.all(st.arrays["C"][1, :32] == 2.5)
        assert np.all(st.arrays["C"][1, 32:64] == 1.5)

    def test_fma_accumulates_float32(self):
        st = state()
        st.execute(Instr(Opcode.VMOVI, dsts=("vc",), imm=1.0))
        st.execute(Instr(Opcode.VMOVI, dsts=("va",), imm=2.0))
        st.execute(Instr(Opcode.VMOVI, dsts=("vb",), imm=3.0))
        st.execute(fma("vc", "va", "vb"))
        np.testing.assert_array_equal(st.vregs["vc"], np.full(LANES, 7.0))
        assert st.vregs["vc"].dtype == np.float32

    def test_vadds32(self):
        st = state()
        st.execute(Instr(Opcode.VMOVI, dsts=("va",), imm=2.0))
        st.execute(Instr(Opcode.VMOVI, dsts=("vb",), imm=3.0))
        st.execute(Instr(Opcode.VADDS32, dsts=("vd",), srcs=("va", "vb")))
        np.testing.assert_array_equal(st.vregs["vd"], np.full(LANES, 5.0))

    def test_sbr_is_noop(self):
        st = state()
        st.execute(Instr(Opcode.SBR))
        assert st.instructions_retired == 1


class TestErrors:
    def test_out_of_bounds_load_raises(self):
        st = state()
        with pytest.raises(IsaError):
            st.execute(Instr(Opcode.VLDW, dsts=("v0",), mem=MemRef("B", Affine(0), Affine(48))))

    def test_unknown_tile_raises(self):
        st = state()
        with pytest.raises(IsaError):
            st.execute(Instr(Opcode.VLDW, dsts=("v0",), mem=MemRef("Z", Affine(0), Affine(0))))

    def test_undefined_register_read_raises(self):
        st = state()
        with pytest.raises(IsaError):
            st.execute(Instr(Opcode.VADDS32, dsts=("vd",), srcs=("nope", "nope")))

    def test_undefined_scalar_raises(self):
        st = state()
        with pytest.raises(IsaError):
            st.execute(Instr(Opcode.SVBCAST, dsts=("v0",), srcs=("missing",)))

    def test_non_2d_tile_rejected(self):
        with pytest.raises(IsaError):
            MachineState({"A": np.zeros(8, dtype=np.float32)})

    def test_integer_tile_rejected(self):
        with pytest.raises(IsaError):
            MachineState({"A": np.zeros((2, 2), dtype=np.int32)})

    def test_mixed_dtype_tiles_rejected(self):
        with pytest.raises(IsaError):
            MachineState({
                "A": np.zeros((2, 2), dtype=np.float32),
                "B": np.zeros((2, 2), dtype=np.float64),
            })

    def test_f64_tiles_use_16_lanes(self):
        st = MachineState({"A": np.zeros((2, 32), dtype=np.float64)})
        assert st.vlanes == 16


class TestLoopExecution:
    def test_affine_stepping_across_iterations(self):
        """A tiny hand-built dot-product loop: C[0,:] += sum_k A[0,k]*B[k,:]."""
        a = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        b = np.arange(4 * 32, dtype=np.float32).reshape(4, 32)
        c = np.zeros((1, 32), dtype=np.float32)
        body = [
            Instr(Opcode.SLDH, dsts=("s0",), mem=MemRef("A", Affine(0), Affine(0, 1))),
            Instr(Opcode.SFEXTS32L, dsts=("lo",), srcs=("s0",)),
            Instr(Opcode.SVBCAST, dsts=("va",), srcs=("lo",)),
            Instr(Opcode.VLDW, dsts=("vb",), mem=MemRef("B", Affine(0, 1), Affine(0))),
            fma("vc", "va", "vb"),
        ]
        setup = [Instr(Opcode.VMOVI, dsts=("vc",), imm=0.0)]
        teardown = [Instr(Opcode.VSTW, srcs=("vc",), mem=MemRef("C", Affine(0), Affine(0)))]
        block = LoopProgram(setup, body, trip=4, teardown=teardown)
        st = MachineState({"A": a, "B": b, "C": c})
        run_block(block, st)
        np.testing.assert_allclose(c[0], (a @ b)[0], rtol=1e-6)
